//! Cross-crate observability conformance: every `McTable` implementor in
//! the workspace populates its [`TableStats`], and the engine tables'
//! probe histogram reconciles exactly with the independent mem-model
//! access meter.

use cuckoo_baselines::{Bcht, BchtConfig, BloomGuidedCuckoo, CuckooConfig, DaryCuckoo};
use mccuckoo_core::{
    BlockedConfig, BlockedMcCuckoo, ConcurrentMcCuckoo, McConfig, McCuckoo, McMap, McTable,
    ShardedMcCuckoo, TableStats,
};
use mem_model::InsertOutcome;
use proptest::prelude::*;

/// Drive a common workload through the trait object: `n` fresh inserts,
/// one upsert, a hit and a miss lookup, one remove and one remove miss.
fn exercise(t: &mut dyn McTable<u64, u64>, n: u64) -> TableStats {
    for k in 0..n {
        assert!(t.insert_new(k, k).stored(), "fresh insert lost at {k}");
    }
    assert_eq!(t.insert(0, 99).outcome, InsertOutcome::Updated);
    assert_eq!(t.lookup(&0), Some(99));
    assert_eq!(t.lookup(&(n + 1)), None);
    assert_eq!(t.remove(&1), Some(1));
    assert_eq!(t.remove(&(n + 7)), None);
    t.stats()
}

/// Shared assertions on the stats every implementor must report.
fn assert_populated(name: &str, s: &TableStats, n: u64) {
    assert_eq!(s.ops.inserts, n, "{name}: fresh inserts");
    assert_eq!(s.ops.updates, 1, "{name}: updates");
    assert_eq!(s.ops.lookup_hits, 1, "{name}: lookup hits");
    assert_eq!(s.ops.lookup_misses, 1, "{name}: lookup misses");
    assert_eq!(s.ops.removes, 1, "{name}: removes");
    assert_eq!(s.ops.remove_misses, 1, "{name}: remove misses");
    assert_eq!(s.ops.failed_inserts, 0, "{name}: failed inserts");
    assert_eq!(
        s.kick_hist.count, n,
        "{name}: kick samples = fresh attempts"
    );
    assert_eq!(s.probe_hist.count, 2, "{name}: probe samples = lookups");
    assert!(s.probe_hist.sum >= 1, "{name}: lookups cost reads");
}

/// Acceptance sweep: all eight `McTable` implementors in the workspace
/// return populated, mutually consistent stats for the same workload.
#[test]
fn all_eight_implementors_populate_stats() {
    type NamedTable = (&'static str, Box<dyn McTable<u64, u64>>);
    const N: u64 = 400;
    let buckets = 1024;
    let mut tables: Vec<NamedTable> = vec![
        (
            "McCuckoo",
            Box::new(McCuckoo::new(McConfig::paper_with_deletion(buckets, 3))),
        ),
        (
            "BlockedMcCuckoo",
            Box::new(BlockedMcCuckoo::new(BlockedConfig {
                base: McConfig::paper_with_deletion(buckets, 3),
                slots: 3,
                aggressive_lookup: false,
            })),
        ),
        (
            "ConcurrentMcCuckoo",
            Box::new(ConcurrentMcCuckoo::new(McConfig::paper(buckets, 3))),
        ),
        (
            "ShardedMcCuckoo",
            Box::new(ShardedMcCuckoo::new(4, McConfig::paper(buckets / 4, 3))),
        ),
        ("McMap", Box::new(McMap::with_capacity_and_seed(2048, 3))),
        (
            "DaryCuckoo",
            Box::new(DaryCuckoo::new(CuckooConfig::paper(buckets, 3))),
        ),
        ("Bcht", Box::new(Bcht::new(BchtConfig::paper(buckets, 3)))),
        (
            "BloomGuidedCuckoo",
            Box::new(BloomGuidedCuckoo::new(
                CuckooConfig::paper(buckets, 3),
                8,
                3,
            )),
        ),
    ];
    assert_eq!(tables.len(), 8, "the workspace has eight implementors");
    for (name, t) in &mut tables {
        let s = exercise(t.as_mut(), N);
        assert_populated(name, &s, N);
        if *name == "ShardedMcCuckoo" {
            assert_eq!(s.shards.len(), 4, "per-shard breakdown present");
            let shard_inserts: u64 = s.shards.iter().map(|sh| sh.ops.inserts).sum();
            assert_eq!(shard_inserts, N, "aggregate equals the shard sum");
            assert!(s.occupancy_skew() >= 1.0);
            assert!(s.hottest_shard().is_some());
        } else {
            assert!(s.shards.is_empty(), "{name}: unsharded tables report none");
        }
    }
}

/// Counters are monotonic: `clear()` wipes the items, not the history,
/// so baseline-diffing over a clear stays exact.
#[test]
fn counters_survive_clear() {
    let mut t: McCuckoo<u64, u64> = McCuckoo::new(McConfig::paper(256, 9));
    for k in 0..100 {
        t.insert(k, k).unwrap();
    }
    let before = t.stats();
    McTable::clear(&mut t);
    assert_eq!(t.len(), 0);
    let after = t.stats();
    assert_eq!(before.ops.inserts, after.ops.inserts);
    assert_eq!(before.kick_hist, after.kick_hist);
}

proptest! {
    /// The probe histogram is not an estimate: on the metered engine
    /// tables, its sample count equals the number of lookups issued and
    /// its value sum equals the independent mem-model meter's read delta
    /// (off-chip + stash) over the same window, for any fill and any
    /// hit/miss mix.
    #[test]
    fn probe_histogram_reconciles_with_meter(
        seed in any::<u64>(),
        fill in 1u64..600,
        lookups in proptest::collection::vec(any::<u64>(), 1..200),
        blocked in any::<bool>(),
    ) {
        let mut t: Box<dyn McTable<u64, u64>> = if blocked {
            Box::new(BlockedMcCuckoo::new(BlockedConfig {
                base: McConfig::paper(512, seed),
                slots: 2,
                aggressive_lookup: true,
            }))
        } else {
            Box::new(McCuckoo::new(McConfig::paper(512, seed)))
        };
        for k in 0..fill {
            prop_assert!(t.insert_new(k, k).stored());
        }
        let stats0 = t.stats();
        let meter0 = t.mem_stats();
        let mut hits = 0u64;
        for &q in &lookups {
            let q = q % (fill * 2); // ~half present, half absent
            if t.lookup(&q).is_some() {
                hits += 1;
            }
        }
        let ds = {
            let s = t.stats();
            (
                s.probe_hist.count - stats0.probe_hist.count,
                s.probe_hist.sum - stats0.probe_hist.sum,
                s.ops.lookup_hits - stats0.ops.lookup_hits,
            )
        };
        let dm = t.mem_stats() - meter0;
        prop_assert_eq!(ds.0, lookups.len() as u64, "one sample per lookup");
        prop_assert_eq!(ds.1, dm.offchip_reads + dm.stash_reads, "sum = metered reads");
        prop_assert_eq!(ds.2, hits);
    }
}
