//! Tests pinning the reproduction's refinements and secondary findings
//! (EXPERIMENTS.md §Findings).

use mccuckoo_bench::harness::fill_sweep;
use mccuckoo_bench::{AnyTable, Scheme};
use mccuckoo_core::{BlockedConfig, DeletionMode, McConfig, McCuckoo};
use workloads::UniqueKeys;

/// Finding 3: the paper's "solely on-chip" counter maintenance is not
/// quite achievable — identifying a victim's sibling copies needs
/// verification reads when another item coincidentally shares the
/// counter value. With the creation-time hint bitmaps the exact
/// implementation keeps that overhead under ~8% of fill-time reads
/// (≈0.05–0.1 extra reads per insertion); without hints it was ~19%.
#[test]
fn verify_reads_are_bounded() {
    for scheme in [Scheme::McCuckoo, Scheme::BMcCuckoo] {
        let mut t = AnyTable::build(scheme, 45_000, 900, 500, false);
        let bands: Vec<f64> = (1..=17).map(|i| i as f64 * 0.05).collect();
        let stats = fill_sweep(&mut t, &bands, 901, |_, _| {});
        let s = t.snapshot();
        assert!(s.offchip_reads > 0);
        let frac = s.verify_reads as f64 / s.offchip_reads as f64;
        // Measured: ~6% for single-slot, ~13% for blocked (whose total
        // reads are much lower, inflating the fraction).
        let limit = if scheme == Scheme::McCuckoo {
            0.08
        } else {
            0.16
        };
        assert!(
            frac < limit,
            "{}: verify reads are {:.3}% of reads",
            scheme.label(),
            frac * 100.0
        );
        let inserts: u64 = stats.iter().map(|b| b.inserts).sum();
        let per_insert = s.verify_reads as f64 / inserts as f64;
        assert!(
            per_insert < 0.15,
            "{}: {per_insert:.3} verify reads per insertion",
            scheme.label()
        );
    }
}

/// Finding 1 (flow_table): under uniform access McCuckoo's hit lookups
/// beat standard cuckoo's, but for the *earliest-inserted* keys the
/// ordering inverts — standard cuckoo leaves them at their first
/// candidate while McCuckoo's surviving copy is positionally arbitrary.
#[test]
fn early_key_locality_inversion() {
    let n = 20_000;
    let mut mc = AnyTable::build(Scheme::McCuckoo, 3 * n, 910, 500, false);
    let mut cu = AnyTable::build(Scheme::Cuckoo, 3 * n, 910, 500, false);
    let mut keys = UniqueKeys::new(911);
    let all = keys.take_vec(3 * n * 81 / 100);
    for &k in &all {
        mc.insert_new(k, k);
        cu.insert_new(k, k);
    }
    let probe = |t: &AnyTable, ks: &[u64]| {
        let b = t.snapshot();
        for k in ks {
            assert_eq!(t.get(k), Some(*k));
        }
        (t.snapshot() - b).offchip_reads as f64 / ks.len() as f64
    };
    // Uniform sample: McCuckoo wins.
    assert!(probe(&mc, &all) < probe(&cu, &all), "uniform ordering");
    // Earliest tenth: standard cuckoo wins.
    let early = &all[..all.len() / 10];
    assert!(
        probe(&cu, early) < probe(&mc, early),
        "early-key ordering must invert"
    );
}

/// The blocked table works across its full supported geometry.
#[test]
fn blocked_geometry_sweep() {
    use mccuckoo_core::BlockedMcCuckoo;
    for d in [2usize, 3, 4] {
        for l in [1usize, 2, 4, 8] {
            let n = 256;
            let mut t: BlockedMcCuckoo<u64, u64> = BlockedMcCuckoo::new(BlockedConfig {
                base: McConfig::paper_with_deletion(n, 920).with_d(d),
                slots: l,
                aggressive_lookup: false,
            });
            let cap = d * n * l;
            let target = cap / 2;
            let mut keys = UniqueKeys::new(921 + (d * 10 + l) as u64);
            let ks = keys.take_vec(target);
            for &k in &ks {
                t.insert_new(k, k).unwrap();
            }
            for &k in &ks {
                assert_eq!(t.get(&k), Some(&k), "d={d} l={l}");
            }
            for &k in ks.iter().take(target / 2) {
                assert_eq!(t.remove(&k), Some(k), "d={d} l={l}");
            }
            t.check_invariants()
                .unwrap_or_else(|e| panic!("d={d} l={l}: {e}"));
        }
    }
}

/// Rehash and growth compose with all deletion modes and the map
/// wrapper sustains interleaved growth + churn.
#[test]
fn growth_under_churn() {
    use mccuckoo_core::McMap;
    let mut m: McMap<u64, u64> = McMap::with_capacity(64);
    let mut keys = UniqueKeys::new(930);
    let mut live: Vec<u64> = Vec::new();
    let mut rng = hash_kit::SplitMix64::new(931);
    for _ in 0..40_000 {
        match rng.next_below(5) {
            0..=2 => {
                let k = keys.next_key();
                m.insert(k, k);
                live.push(k);
            }
            3 if !live.is_empty() => {
                let i = rng.next_below(live.len() as u64) as usize;
                let k = live.swap_remove(i);
                assert_eq!(m.remove(&k), Some(k));
            }
            _ if !live.is_empty() => {
                let i = rng.next_below(live.len() as u64) as usize;
                assert_eq!(m.get(&live[i]), Some(&live[i]));
            }
            _ => {}
        }
    }
    assert_eq!(m.len(), live.len());
    m.table().check_invariants().unwrap();
}

/// Tombstone-mode rule 1 stays sound across rehash (tombstones do not
/// survive a rehash — the rebuilt table starts scar-free).
#[test]
fn rehash_clears_tombstone_decay() {
    let mut t: McCuckoo<u64, u64> =
        McCuckoo::new(McConfig::paper(2_048, 940).with_deletion(DeletionMode::Tombstone));
    let mut keys = UniqueKeys::new(941);
    let ks = keys.take_vec(3_000);
    for &k in &ks {
        t.insert_new(k, k).unwrap();
    }
    for &k in ks.iter().take(1_500) {
        t.remove(&k);
    }
    // Decayed filter: misses now cost reads.
    let miss_reads = |t: &McCuckoo<u64, u64>, keys: &UniqueKeys| {
        let b = t.meter().snapshot();
        for j in 0..2_000 {
            assert_eq!(t.get(&keys.absent_key(j)), None);
        }
        (t.meter().snapshot() - b).offchip_reads as f64 / 2_000.0
    };
    let before = miss_reads(&t, &keys);
    t.rehash(None, 942).unwrap();
    let after = miss_reads(&t, &keys);
    assert!(
        after < before,
        "rehash must restore filter power: {after} ≥ {before}"
    );
    for &k in ks.iter().skip(1_500) {
        assert_eq!(t.get(&k), Some(&k));
    }
    t.check_invariants().unwrap();
}
