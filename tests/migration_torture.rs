//! Grow-under-fire torture: incremental shard splits racing live
//! traffic.
//!
//! Two layers, mirroring `concurrent_torture`:
//!
//! * A **single-threaded differential** run drives a seeded
//!   `GrowUnderFire` op stream (plus periodic batched ops) against a
//!   `HashMap` oracle while `begin_split` fires at fixed op indices —
//!   every result must match the oracle *exactly*, including ops that
//!   land mid-drain on forwarded keys.
//! * A **multi-threaded torture** run: 2 writers hammer overlapping key
//!   ranges and 2 batched readers sweep `lookup_batch` while a dedicated
//!   migration thread splits shard after shard. With overlapping writers
//!   no per-key final value is decidable, but the allowed-value set is:
//!   every value observed by a reader, a writer or the post-run sweep
//!   must be one some writer's deterministic stream wrote to that key.
//!   Post-run, the invariant validator runs and the obs counters are
//!   reconciled against the issued-op tallies — the exactness identities
//!   must survive migration (the cursor's own transfers are unrecorded).
//!
//! Replay: a failure prints the `MCC_MIGRATION_SEED` /
//! `MCC_MIGRATION_ITERS` pair to re-run just that schedule.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};

use hash_kit::SplitMix64;
use mccuckoo_core::{McConfig, ShardedMcCuckoo, SplitReport};
use mccuckoo_testkit::{gen_ops, MixProfile, TableOp};

const WRITERS: usize = 2;
const READERS: usize = 2;
const OPS_PER_WRITER: usize = 300;
/// Writers share this whole domain — every key is contended.
const KEY_DOMAIN: u64 = 96;
/// Splits issued by the migration thread per iteration: 2 → 8 shards.
const SPLITS: usize = 6;
/// Keys per reader `lookup_batch` call.
const BATCH: usize = 16;

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => {
            let v = v.trim();
            let parsed = match v.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => v.parse(),
            };
            parsed.unwrap_or_else(|_| panic!("{name} must be an integer, got {v:?}"))
        }
        Err(_) => default,
    }
}

/// Per-writer deterministic schedule, derived from the iteration seed.
fn writer_ops(iter_seed: u64, tid: usize) -> Vec<TableOp> {
    gen_ops(
        iter_seed.wrapping_add((tid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        MixProfile::GrowUnderFire,
        OPS_PER_WRITER,
        KEY_DOMAIN,
    )
}

/// Overlapping ranges: writer 0 uses the generated key verbatim, writer
/// 1 is shifted by a quarter of the domain — every key has both writers
/// racing on it somewhere in the run.
fn key_of(generated: u64, tid: usize) -> u64 {
    match tid {
        0 => generated,
        _ => (generated + KEY_DOMAIN / 4) % KEY_DOMAIN,
    }
}

/// The allowed-value oracle: for each key, every value ANY writer's
/// stream could store there. A superset of reachable states, which is
/// exactly what membership assertions need.
fn allowed_values(iter_seed: u64) -> HashMap<u64, HashSet<u64>> {
    let mut allowed: HashMap<u64, HashSet<u64>> = HashMap::new();
    for tid in 0..WRITERS {
        for op in writer_ops(iter_seed, tid) {
            match op {
                TableOp::Insert(k, v) | TableOp::InsertNew(k, v) => {
                    allowed.entry(key_of(k, tid)).or_default().insert(v);
                }
                _ => {}
            }
        }
    }
    allowed
}

/// Issued-op tallies, summed across threads and reconciled against the
/// table's own obs counters after the run.
#[derive(Default, Clone, Copy)]
struct Tally {
    insert_attempts: u64,
    lookups: u64,
    removes_hit: u64,
    removes_miss: u64,
}

/// One grow-under-fire iteration. Returns the summed tally and the
/// split reports from the migration thread.
fn torture_once(table: &ShardedMcCuckoo<u64, u64>, iter_seed: u64) -> (Tally, Vec<SplitReport>) {
    let allowed = allowed_values(iter_seed);
    let stop = AtomicBool::new(false);
    let ctx = |detail: &str| {
        format!(
            "migration torture: {detail}\n\
             replay: MCC_MIGRATION_SEED={iter_seed:#x} MCC_MIGRATION_ITERS=1 \
             cargo test --test migration_torture"
        )
    };

    let (tally, reports) = std::thread::scope(|scope| {
        let mut writers = Vec::new();
        for tid in 0..WRITERS {
            let allowed = &allowed;
            let ctx = &ctx;
            writers.push(scope.spawn(move || {
                let mut tl = Tally::default();
                for op in writer_ops(iter_seed, tid) {
                    match op {
                        TableOp::Insert(k, v) | TableOp::InsertNew(k, v) => {
                            // InsertNew downgrades to upsert: with
                            // overlapping writers "believed absent" is
                            // undecidable, and the allowed-set already
                            // contains the value either way.
                            tl.insert_attempts += 1;
                            let _ = table.insert(key_of(k, tid), v);
                        }
                        TableOp::Get(k) | TableOp::Contains(k) => {
                            let k = key_of(k, tid);
                            tl.lookups += 1;
                            if let Some(v) = table.get(&k) {
                                assert!(
                                    allowed.get(&k).is_some_and(|s| s.contains(&v)),
                                    "{}",
                                    ctx(&format!(
                                        "writer {tid} read foreign value {v} under key {k}"
                                    ))
                                );
                            }
                        }
                        TableOp::Remove(k) => {
                            if table.remove(&key_of(k, tid)).is_some() {
                                tl.removes_hit += 1;
                            } else {
                                tl.removes_miss += 1;
                            }
                        }
                        TableOp::Clear | TableOp::RefreshStash => {
                            unreachable!("GrowUnderFire never emits these")
                        }
                    }
                }
                tl
            }));
        }

        // The migration thread splits shard after shard while the
        // writers and readers run. The shard ids are deterministic
        // (children are appended in order), so the final layout is too.
        let migrator = scope.spawn(|| {
            let mut reports = Vec::with_capacity(SPLITS);
            for shard in 0..SPLITS {
                let report = table
                    .begin_split(shard)
                    .unwrap_or_else(|e| panic!("{}", ctx(&format!("split {shard}: {e}"))));
                assert_eq!(
                    report.failed,
                    0,
                    "{}",
                    ctx(&format!("split {shard} left keys behind"))
                );
                assert!(
                    report.forwarding_cleared,
                    "{}",
                    ctx(&format!("split {shard} left forwarding active"))
                );
                reports.push(report);
                // Give the writers a window between splits so traffic
                // lands on settled routing too, not only mid-drain.
                std::thread::yield_now();
            }
            reports
        });

        let mut readers = Vec::new();
        for rid in 0..READERS {
            let stop = &stop;
            let allowed = &allowed;
            let ctx = &ctx;
            readers.push(scope.spawn(move || {
                let mut tl = Tally::default();
                let mut rng = SplitMix64::new(iter_seed ^ (0xBEEF + rid as u64));
                let mut batch = [0u64; BATCH];
                while !stop.load(Ordering::Acquire) {
                    for slot in batch.iter_mut() {
                        *slot = rng.next_below(KEY_DOMAIN);
                    }
                    tl.lookups += BATCH as u64;
                    for (k, hit) in batch.iter().zip(table.lookup_batch(&batch)) {
                        if let Some(v) = hit {
                            assert!(
                                allowed.get(k).is_some_and(|s| s.contains(&v)),
                                "{}",
                                ctx(&format!(
                                    "reader {rid} read foreign value {v} under key {k}"
                                ))
                            );
                        }
                    }
                }
                tl
            }));
        }

        // Writers and the migrator finish on their own; the readers spin
        // until released. A panicking thread re-raises its own assertion
        // message (which carries the replay line).
        let mut sum = Tally::default();
        let mut join = |h: std::thread::ScopedJoinHandle<'_, Tally>| match h.join() {
            Ok(tl) => {
                sum.insert_attempts += tl.insert_attempts;
                sum.lookups += tl.lookups;
                sum.removes_hit += tl.removes_hit;
                sum.removes_miss += tl.removes_miss;
            }
            Err(e) => {
                stop.store(true, Ordering::Release);
                std::panic::resume_unwind(e);
            }
        };
        for h in writers {
            join(h);
        }
        let reports = match migrator.join() {
            Ok(reports) => reports,
            Err(e) => {
                stop.store(true, Ordering::Release);
                std::panic::resume_unwind(e);
            }
        };
        stop.store(true, Ordering::Release);
        for h in readers {
            join(h);
        }
        (sum, reports)
    });

    // Post-run: the table settles into SOME serializable history — every
    // surviving value must be one a writer wrote.
    let mut tally = tally;
    for k in 0..KEY_DOMAIN {
        tally.lookups += 1;
        if let Some(v) = table.get(&k) {
            assert!(
                allowed.get(&k).is_some_and(|s| s.contains(&v)),
                "{}",
                ctx(&format!(
                    "post-run sweep found foreign value {v} under key {k}"
                ))
            );
        }
    }
    table
        .check_invariants()
        .unwrap_or_else(|e| panic!("{}", ctx(&format!("invariants violated: {e}"))));
    (tally, reports)
}

/// Reconcile the table's obs counters against the issued-op tally: the
/// migration cursor's transfers are unrecorded, so the identities from
/// the sequential suite must hold verbatim under a live split.
fn reconcile(stats: mccuckoo_core::TableStats, tally: Tally, iter_seed: u64) {
    let attempts = stats.ops.inserts + stats.ops.updates + stats.ops.failed_inserts;
    assert_eq!(
        attempts, tally.insert_attempts,
        "seed {iter_seed:#x}: insert attempts"
    );
    assert_eq!(
        stats.ops.lookup_hits + stats.ops.lookup_misses,
        tally.lookups,
        "seed {iter_seed:#x}: lookups"
    );
    assert_eq!(
        stats.probe_hist.count, tally.lookups,
        "seed {iter_seed:#x}: probe histogram"
    );
    assert_eq!(
        stats.ops.removes, tally.removes_hit,
        "seed {iter_seed:#x}: removes"
    );
    assert_eq!(
        stats.ops.remove_misses, tally.removes_miss,
        "seed {iter_seed:#x}: remove misses"
    );
    assert_eq!(
        stats.kick_hist.count,
        stats.ops.inserts + stats.ops.failed_inserts,
        "seed {iter_seed:#x}: kick histogram counts fresh attempts only"
    );
}

#[test]
fn torture_sharded_under_migration() {
    let base = env_u64("MCC_MIGRATION_SEED", 0x6120_u64);
    let iters = env_u64("MCC_MIGRATION_ITERS", 150);
    let mut rng = SplitMix64::new(base);
    for _ in 0..iters {
        // When replaying a single schedule, the seed IS the schedule.
        let iter_seed = if iters == 1 { base } else { rng.next_u64() };
        let t = ShardedMcCuckoo::<u64, u64>::new(2, McConfig::paper(48, iter_seed));
        let (tally, reports) = torture_once(&t, iter_seed);

        assert_eq!(t.shard_count(), 2 + SPLITS, "seed {iter_seed:#x}");
        assert_eq!(reports.len(), SPLITS);
        let stats = t.stats();
        assert_eq!(
            stats.migration.splits_started, SPLITS as u64,
            "seed {iter_seed:#x}: splits started"
        );
        assert_eq!(
            stats.migration.splits_completed, SPLITS as u64,
            "seed {iter_seed:#x}: splits completed"
        );
        let moved: u64 = reports.iter().map(|r| r.moved).sum();
        assert_eq!(
            stats.migration.keys_moved, moved,
            "seed {iter_seed:#x}: keys moved"
        );
        assert_eq!(
            stats.migration.move_failures, 0,
            "seed {iter_seed:#x}: move failures"
        );
        reconcile(stats, tally, iter_seed);
    }
}

/// Single-threaded grow-under-fire differential: with one mutator the
/// oracle is exact, so every op — including the ones that land mid-
/// drain and take the forwarding path — must agree with a `HashMap`
/// bit for bit. Batched lookups, inserts and removes run on a cadence
/// so the batch planner also crosses live splits.
#[test]
fn grow_under_fire_differential_matches_oracle() {
    const N: usize = 4_000;
    for seed in [0x6120_AA01_u64, 0x6120_AA02, 0x6120_AA03] {
        let t = ShardedMcCuckoo::<u64, u64>::new(2, McConfig::paper(96, seed));
        let domain = MixProfile::GrowUnderFire.key_domain(t.capacity());
        let ops = gen_ops(seed, MixProfile::GrowUnderFire, N, domain);
        let mut oracle: HashMap<u64, u64> = HashMap::new();
        let mut rng = SplitMix64::new(seed ^ 0xD1FF);
        let mut splits = 0usize;

        for (i, op) in ops.iter().enumerate() {
            // Four splits at fixed op indices: 2 → 6 shards, each drain
            // racing the op stream logically (same thread, so the split
            // interleaves between ops, and forwarding entries are live
            // for the ops that follow a mid-split snapshot of routing).
            if i > 0 && i % (N / 5) == 0 && splits < 4 {
                let report = t.begin_split(splits).expect("split must succeed");
                assert_eq!(report.failed, 0, "seed {seed:#x}: split left keys");
                assert!(report.forwarding_cleared, "seed {seed:#x}");
                splits += 1;
                t.check_invariants().expect("post-split invariants");
                assert_eq!(t.len(), oracle.len(), "seed {seed:#x} after split {splits}");
            }
            match *op {
                TableOp::Insert(k, v) => {
                    t.insert(k, v).expect("capacity is ample");
                    oracle.insert(k, v);
                }
                TableOp::InsertNew(k, v) => {
                    // Downgrade to upsert when the oracle knows the key
                    // is live, exactly like the testkit runner.
                    if oracle.contains_key(&k) {
                        t.insert(k, v).expect("capacity is ample");
                    } else {
                        t.insert_new(k, v).expect("capacity is ample");
                    }
                    oracle.insert(k, v);
                }
                TableOp::Get(k) => {
                    assert_eq!(t.get(&k), oracle.get(&k).copied(), "seed {seed:#x} op {i}");
                }
                TableOp::Contains(k) => {
                    assert_eq!(t.contains(&k), oracle.contains_key(&k), "seed {seed:#x}");
                }
                TableOp::Remove(k) => {
                    assert_eq!(t.remove(&k), oracle.remove(&k), "seed {seed:#x} op {i}");
                }
                TableOp::Clear | TableOp::RefreshStash => {
                    unreachable!("GrowUnderFire never emits these")
                }
            }
            // Batched traffic on a cadence, off-phase with the splits.
            if i % 97 == 31 {
                let keys: Vec<u64> = (0..32).map(|_| rng.next_below(domain)).collect();
                let hits = t.lookup_batch(&keys);
                for (k, hit) in keys.iter().zip(hits) {
                    assert_eq!(hit, oracle.get(k).copied(), "seed {seed:#x} batch at {i}");
                }
            }
            if i % 89 == 13 {
                let items: Vec<(u64, u64)> = (0..8)
                    .map(|j| (rng.next_below(domain), i as u64 + j))
                    .collect();
                for (r, (k, v)) in t.insert_batch(&items).into_iter().zip(&items) {
                    r.expect("capacity is ample");
                    oracle.insert(*k, *v);
                }
            }
            if i % 101 == 57 {
                let keys: Vec<u64> = (0..8).map(|_| rng.next_below(domain)).collect();
                // remove_batch on duplicate keys removes the first hit
                // only, matching sequential removal order.
                for (r, k) in t.remove_batch(&keys).into_iter().zip(&keys) {
                    assert_eq!(r, oracle.remove(k), "seed {seed:#x} remove batch at {i}");
                }
            }
        }

        assert_eq!(splits, 4, "all planned splits must have fired");
        assert_eq!(t.shard_count(), 6);
        assert_eq!(t.len(), oracle.len(), "seed {seed:#x}");
        for (k, v) in &oracle {
            assert_eq!(t.get(k), Some(*v), "seed {seed:#x}: key {k}");
        }
        for k in domain..domain + 64 {
            assert_eq!(t.get(&k), None, "seed {seed:#x}: phantom key {k}");
        }
        t.check_invariants().expect("final invariants");
    }
}
