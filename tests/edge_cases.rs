//! Boundary-condition coverage across the public API.

use mccuckoo_core::{
    BlockedConfig, BlockedMcCuckoo, DeletionMode, McConfig, McCuckoo, StashPolicy,
};

/// The smallest legal table (d=2, one bucket per sub-table) still obeys
/// the full contract: two items fit, the third goes to the stash, and
/// everything stays findable.
#[test]
fn minimal_geometry() {
    let mut t: McCuckoo<u64, u64> = McCuckoo::new(McConfig::paper(1, 1).with_d(2).with_maxloop(4));
    t.insert_new(10, 100).unwrap();
    // First item takes both buckets (2 copies).
    assert_eq!(t.copy_count(&10), 2);
    t.insert_new(20, 200).unwrap();
    t.insert_new(30, 300).unwrap();
    assert!(t.stash_len() >= 1, "2 buckets cannot hold 3 items");
    for (k, v) in [(10, 100), (20, 200), (30, 300)] {
        assert_eq!(t.get(&k), Some(&v));
    }
    t.check_invariants().unwrap();
}

/// An empty table answers everything without panicking.
#[test]
fn empty_table_queries() {
    let mut t: McCuckoo<u64, u64> = McCuckoo::new(McConfig::paper_with_deletion(8, 2));
    assert!(t.is_empty());
    assert_eq!(t.get(&1), None);
    assert!(!t.contains(&2));
    assert_eq!(t.remove(&3), None);
    assert_eq!(t.copy_count(&4), 0);
    assert_eq!(t.iter().count(), 0);
    assert_eq!(t.refresh_stash(), 0);
    t.check_invariants().unwrap();
}

/// Insert/delete the same key repeatedly in both deletion modes; the
/// table must neither leak capacity nor corrupt counters.
#[test]
fn same_key_churn() {
    for mode in [DeletionMode::Reset, DeletionMode::Tombstone] {
        let mut t: McCuckoo<u64, String> =
            McCuckoo::new(McConfig::paper(64, 3).with_deletion(mode));
        for round in 0..500u64 {
            t.insert_new(42, format!("r{round}")).unwrap();
            assert_eq!(t.get(&42), Some(&format!("r{round}")));
            assert_eq!(t.remove(&42), Some(format!("r{round}")));
            assert_eq!(t.get(&42), None, "{mode:?} round {round}");
        }
        assert!(t.is_empty());
        t.check_invariants().unwrap();
    }
}

/// Tombstone saturation: delete everything, refill completely, repeat.
/// Tombstones must recycle without capacity loss.
#[test]
fn tombstone_full_cycles() {
    let n = 128;
    let mut t: McCuckoo<u64, u64> =
        McCuckoo::new(McConfig::paper(n, 4).with_deletion(DeletionMode::Tombstone));
    for cycle in 0..5u64 {
        let base = cycle * 1_000_000;
        let count = 3 * n / 2; // 50% load
        for i in 0..count as u64 {
            t.insert_new(base + i, i).unwrap();
        }
        assert_eq!(t.len(), count);
        for i in 0..count as u64 {
            assert_eq!(t.remove(&(base + i)), Some(i));
        }
        assert!(t.is_empty(), "cycle {cycle}");
        t.check_invariants().unwrap();
    }
}

/// `clear` resets a heavily loaded, stash-backed, deletion-scarred
/// table to a pristine state.
#[test]
fn clear_resets_everything() {
    let n = 64;
    let mut t: McCuckoo<u64, u64> = McCuckoo::new(
        McConfig::paper(n, 5)
            .with_maxloop(10)
            .with_deletion(DeletionMode::Reset),
    );
    for k in 0..(3 * n) as u64 {
        t.insert_new(k, k).unwrap();
    }
    for k in 0..(n / 2) as u64 {
        t.remove(&k);
    }
    t.clear();
    assert!(t.is_empty());
    assert_eq!(t.stash_len(), 0);
    assert_eq!(t.redundant_writes(), 0);
    // Fully usable afterwards.
    for k in 0..100u64 {
        t.insert_new(k, k + 1).unwrap();
    }
    for k in 0..100u64 {
        assert_eq!(t.get(&k), Some(&(k + 1)));
    }
    t.check_invariants().unwrap();
}

/// Zero-sized values work (set semantics).
#[test]
fn unit_values() {
    let mut t: McCuckoo<u64, ()> = McCuckoo::new(McConfig::paper(128, 6));
    for k in 0..200u64 {
        t.insert_new(k, ()).unwrap();
    }
    assert!(t.contains(&100));
    assert!(!t.contains(&1_000));
}

/// Large values move through kick-outs intact.
#[test]
fn large_values_survive_relocation() {
    let n = 256;
    let mut t: McCuckoo<u64, Vec<u8>> = McCuckoo::new(McConfig::paper(n, 7));
    let blob = |k: u64| vec![(k % 251) as u8; 512];
    let count = 3 * n * 85 / 100;
    for k in 0..count as u64 {
        t.insert_new(k, blob(k)).unwrap();
    }
    for k in 0..count as u64 {
        assert_eq!(t.get(&k), Some(&blob(k)));
    }
}

/// Blocked table with no stash surfaces failures but loses nothing
/// except the reported eviction.
#[test]
fn blocked_no_stash_overflow_accounting() {
    let mut t: BlockedMcCuckoo<u64, u64> = BlockedMcCuckoo::new(BlockedConfig {
        base: McConfig::paper(4, 8)
            .with_maxloop(8)
            .with_stash(StashPolicy::None),
        slots: 2,
        aggressive_lookup: false,
    });
    let cap = t.capacity();
    let mut stored: Vec<u64> = Vec::new();
    let mut lost: Vec<u64> = Vec::new();
    for k in 0..(cap + 10) as u64 {
        match t.insert_new(k, k) {
            Ok(_) => stored.push(k),
            Err(full) => {
                let (ek, _) = full.evicted;
                // The inserted key may have displaced someone else.
                stored.push(k);
                stored.retain(|&x| x != ek);
                lost.push(ek);
            }
        }
    }
    assert!(!lost.is_empty(), "overfull table must overflow");
    assert_eq!(t.len(), stored.len());
    for k in &stored {
        assert_eq!(t.get(k), Some(k), "stored key lost");
    }
    for k in &lost {
        assert_eq!(t.get(k), None, "evicted key resurfaced");
    }
    t.check_invariants().unwrap();
}

/// Negative and extreme integer keys hash fine.
#[test]
fn extreme_keys() {
    let mut t: McCuckoo<i64, i64> = McCuckoo::new(McConfig::paper(64, 9));
    for k in [i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX - 1, i64::MAX] {
        t.insert_new(k, k).unwrap();
    }
    for k in [i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX - 1, i64::MAX] {
        assert_eq!(t.get(&k), Some(&k));
    }
    t.check_invariants().unwrap();
}

/// Byte-array keys (16-byte fingerprints) exercise the lookup3 path.
#[test]
fn fingerprint_keys() {
    let mut t: McCuckoo<[u8; 16], u64> = McCuckoo::new(McConfig::paper(256, 10));
    let fp = |i: u64| {
        let mut b = [0u8; 16];
        b[..8].copy_from_slice(&i.to_le_bytes());
        b[8..].copy_from_slice(&i.wrapping_mul(0x9E37).to_le_bytes());
        b
    };
    for i in 0..400u64 {
        t.insert_new(fp(i), i).unwrap();
    }
    for i in 0..400u64 {
        assert_eq!(t.get(&fp(i)), Some(&i));
    }
    assert_eq!(t.get(&fp(10_000)), None);
}
