//! Trait-conformance suite: every table in the workspace — the two
//! McCuckoo engine layouts (in both deletion modes), the lock-free
//! concurrent table, and both baselines — must honour the shared
//! [`McTable`] contract. One generic driver exercises insert / upsert /
//! lookup / remove / clear / load semantics; each table type gets its
//! own `#[test]` so a failure names the offender.
//!
//! The only tolerated behavioural split is upsert reporting:
//! `ConcurrentMcCuckoo` reports `Placed` for an overwrite of a present
//! key (it does not distinguish the two), and the baselines implement
//! upsert as remove-then-insert and report `Updated` like the engine
//! does. The driver takes the expected outcome as a parameter.

use mccuckoo_suite::cuckoo_baselines::{Bcht, BchtConfig, CuckooConfig, DaryCuckoo};
use mccuckoo_suite::mccuckoo_core::{
    BlockedConfig, BlockedMcCuckoo, ConcurrentMcCuckoo, DeletionMode, McConfig, McCuckoo, McTable,
};
use mem_model::InsertOutcome;

const N: u64 = 200;

/// Drive the full `McTable` contract against `t`.
///
/// `upsert_outcome` is what `insert` of a *present* key must report
/// (`Updated` for everything except the concurrent table's `Placed`).
fn conformance<T: McTable<u64, u64>>(mut t: T, upsert_outcome: InsertOutcome) {
    // Fresh table.
    assert!(t.is_empty());
    assert_eq!(t.len(), 0);
    assert_eq!(t.lookup(&1), None);
    assert!(!t.contains(&1));
    assert_eq!(t.remove(&1), None);

    // Fill with distinct keys; every insert at this light load must land.
    for k in 0..N {
        let r = t.insert_new(k, k * 3);
        assert!(r.stored(), "insert_new({k}) failed: {:?}", r.outcome);
    }
    assert_eq!(t.len(), N as usize);
    assert!(!t.is_empty());
    assert!(t.load() > 0.0 && t.load() <= 1.0);
    for k in 0..N {
        assert_eq!(t.lookup(&k), Some(k * 3), "lookup({k}) after fill");
        assert!(t.contains(&k));
    }
    assert_eq!(t.lookup(&(N + 1)), None);

    // Upsert: value replaced, length unchanged, outcome as declared.
    let r = t.insert(7, 777);
    assert_eq!(r.outcome, upsert_outcome, "upsert report");
    assert_eq!(t.lookup(&7), Some(777));
    assert_eq!(t.len(), N as usize);

    // Remove the even keys; odd keys must survive.
    for k in (0..N).step_by(2) {
        let expect = if k == 7 { 777 } else { k * 3 };
        assert_eq!(t.remove(&k), Some(expect), "remove({k})");
    }
    assert_eq!(t.len(), (N / 2) as usize);
    for k in 0..N {
        if k % 2 == 0 {
            assert_eq!(t.lookup(&k), None, "lookup({k}) after remove");
        } else {
            let expect = if k == 7 { 777 } else { k * 3 };
            assert_eq!(t.lookup(&k), Some(expect), "odd key {k} must survive");
        }
    }

    // Double-remove misses.
    assert_eq!(t.remove(&0), None);

    // Stash accessors are callable on every implementor (baselines
    // default to empty) and refresh never invents occupancy.
    let _ = t.stash_len();
    let drained = t.refresh_stash();
    assert!(drained <= N as usize);
    let _ = t.mem_stats();

    // Clear, then the table must be reusable from scratch.
    t.clear();
    assert!(t.is_empty());
    assert_eq!(t.len(), 0);
    assert_eq!(t.stash_len(), 0);
    for k in 0..N {
        assert_eq!(t.lookup(&k), None, "lookup({k}) after clear");
    }
    for k in 0..N {
        assert!(t.insert_new(k, k + 1).stored(), "reinsert({k}) after clear");
    }
    assert_eq!(t.len(), N as usize);
    assert_eq!(t.lookup(&42), Some(43));
}

#[test]
fn mccuckoo_reset_conforms() {
    conformance(
        McCuckoo::<u64, u64>::new(McConfig::paper_with_deletion(1024, 11)),
        InsertOutcome::Updated,
    );
}

#[test]
fn mccuckoo_tombstone_conforms() {
    conformance(
        McCuckoo::<u64, u64>::new(McConfig::paper(1024, 12).with_deletion(DeletionMode::Tombstone)),
        InsertOutcome::Updated,
    );
}

#[test]
fn blocked_two_slot_conforms() {
    conformance(
        BlockedMcCuckoo::<u64, u64>::new(BlockedConfig {
            base: McConfig::paper_with_deletion(512, 13),
            slots: 2,
            aggressive_lookup: true,
        }),
        InsertOutcome::Updated,
    );
}

#[test]
fn blocked_three_slot_tombstone_conforms() {
    conformance(
        BlockedMcCuckoo::<u64, u64>::new(BlockedConfig {
            base: McConfig::paper(512, 14).with_deletion(DeletionMode::Tombstone),
            slots: 3,
            aggressive_lookup: false,
        }),
        InsertOutcome::Updated,
    );
}

#[test]
fn concurrent_conforms() {
    conformance(
        ConcurrentMcCuckoo::<u64, u64>::new(McConfig::paper(1024, 15)),
        InsertOutcome::Placed,
    );
}

#[test]
fn dary_cuckoo_conforms() {
    conformance(
        DaryCuckoo::<u64, u64>::new(CuckooConfig::paper(1024, 16)),
        InsertOutcome::Updated,
    );
}

#[test]
fn bcht_conforms() {
    conformance(
        Bcht::<u64, u64>::new(BchtConfig::paper(256, 17)),
        InsertOutcome::Updated,
    );
}
