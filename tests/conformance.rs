//! Trait-conformance suite: every table in the workspace — the two
//! McCuckoo engine layouts (in both deletion modes), the lock-free
//! concurrent table, the sharded serving layer, and both baselines —
//! must honour the shared [`McTable`] contract. One generic driver
//! exercises insert / upsert / lookup / remove / clear / load semantics;
//! each table type gets its own `#[test]` so a failure names the
//! offender.
//!
//! There is no tolerated behavioural split any more: upsert of a present
//! key reports `Updated` and rewrites the value **in place** on every
//! implementor (the baselines used to emulate upsert as destructive
//! remove-then-insert; the concurrent table used to report `Placed`),
//! and a `Failed` insert leaves the table untouched. The storm drivers
//! at the bottom pin both properties down under near-full load.

use mccuckoo_suite::cuckoo_baselines::{Bcht, BchtConfig, CuckooConfig, DaryCuckoo};
use mccuckoo_suite::mccuckoo_core::{
    BlockedConfig, BlockedMcCuckoo, ConcurrentMcCuckoo, DeletionMode, KickPolicyKind, McConfig,
    McCuckoo, McTable, ShardedMcCuckoo, StashPolicy,
};
use mem_model::InsertOutcome;

const N: u64 = 200;

/// Drive the full `McTable` contract against `t`.
fn conformance<T: McTable<u64, u64>>(mut t: T) {
    // Fresh table.
    assert!(t.is_empty());
    assert_eq!(t.len(), 0);
    assert_eq!(t.lookup(&1), None);
    assert!(!t.contains(&1));
    assert_eq!(t.remove(&1), None);

    // Fill with distinct keys; every insert at this light load must land.
    for k in 0..N {
        let r = t.insert_new(k, k * 3);
        assert!(r.stored(), "insert_new({k}) failed: {:?}", r.outcome);
    }
    assert_eq!(t.len(), N as usize);
    assert!(!t.is_empty());
    assert!(t.load() > 0.0 && t.load() <= 1.0);
    for k in 0..N {
        assert_eq!(t.lookup(&k), Some(k * 3), "lookup({k}) after fill");
        assert!(t.contains(&k));
    }
    assert_eq!(t.lookup(&(N + 1)), None);

    // Upsert: value replaced, length unchanged, reported as an update.
    let r = t.insert(7, 777);
    assert_eq!(r.outcome, InsertOutcome::Updated, "upsert report");
    assert_eq!(t.lookup(&7), Some(777));
    assert_eq!(t.len(), N as usize);

    // Remove the even keys; odd keys must survive.
    for k in (0..N).step_by(2) {
        let expect = if k == 7 { 777 } else { k * 3 };
        assert_eq!(t.remove(&k), Some(expect), "remove({k})");
    }
    assert_eq!(t.len(), (N / 2) as usize);
    for k in 0..N {
        if k % 2 == 0 {
            assert_eq!(t.lookup(&k), None, "lookup({k}) after remove");
        } else {
            let expect = if k == 7 { 777 } else { k * 3 };
            assert_eq!(t.lookup(&k), Some(expect), "odd key {k} must survive");
        }
    }

    // Double-remove misses.
    assert_eq!(t.remove(&0), None);

    // Stash accessors are callable on every implementor (baselines
    // default to empty) and refresh never invents occupancy.
    let _ = t.stash_len();
    let drained = t.refresh_stash();
    assert!(drained <= N as usize);
    let _ = t.mem_stats();

    // Clear, then the table must be reusable from scratch.
    t.clear();
    assert!(t.is_empty());
    assert_eq!(t.len(), 0);
    assert_eq!(t.stash_len(), 0);
    for k in 0..N {
        assert_eq!(t.lookup(&k), None, "lookup({k}) after clear");
    }
    for k in 0..N {
        assert!(t.insert_new(k, k + 1).stored(), "reinsert({k}) after clear");
    }
    assert_eq!(t.len(), N as usize);
    assert_eq!(t.lookup(&42), Some(43));
}

#[test]
fn mccuckoo_reset_conforms() {
    conformance(McCuckoo::<u64, u64>::new(McConfig::paper_with_deletion(
        1024, 11,
    )));
}

#[test]
fn mccuckoo_tombstone_conforms() {
    conformance(McCuckoo::<u64, u64>::new(
        McConfig::paper(1024, 12).with_deletion(DeletionMode::Tombstone),
    ));
}

#[test]
fn blocked_two_slot_conforms() {
    conformance(BlockedMcCuckoo::<u64, u64>::new(BlockedConfig {
        base: McConfig::paper_with_deletion(512, 13),
        slots: 2,
        aggressive_lookup: true,
    }));
}

#[test]
fn blocked_three_slot_tombstone_conforms() {
    conformance(BlockedMcCuckoo::<u64, u64>::new(BlockedConfig {
        base: McConfig::paper(512, 14).with_deletion(DeletionMode::Tombstone),
        slots: 3,
        aggressive_lookup: false,
    }));
}

#[test]
fn concurrent_conforms() {
    conformance(ConcurrentMcCuckoo::<u64, u64>::new(McConfig::paper(
        1024, 15,
    )));
}

#[test]
fn sharded_conforms() {
    conformance(ShardedMcCuckoo::<u64, u64>::new(
        4,
        McConfig::paper(256, 18),
    ));
}

#[test]
fn bfs_and_bubble_policies_conform() {
    // The plan-first kick policies honour the same contract on both the
    // sequential engine and the striped concurrent table.
    for kind in [KickPolicyKind::Bfs, KickPolicyKind::Bubble] {
        conformance(McCuckoo::<u64, u64>::new(
            McConfig::paper_with_deletion(1024, 19).with_kick_policy(kind),
        ));
        conformance(BlockedMcCuckoo::<u64, u64>::new(BlockedConfig {
            base: McConfig::paper_with_deletion(512, 20).with_kick_policy(kind),
            slots: 2,
            aggressive_lookup: true,
        }));
        conformance(ConcurrentMcCuckoo::<u64, u64>::new(
            McConfig::paper(1024, 21).with_kick_policy(kind),
        ));
    }
}

#[test]
fn dary_cuckoo_conforms() {
    conformance(DaryCuckoo::<u64, u64>::new(CuckooConfig::paper(1024, 16)));
}

#[test]
fn bcht_conforms() {
    conformance(Bcht::<u64, u64>::new(BchtConfig::paper(256, 17)));
}

// ---------------------------------------------------------------------
// Upsert regression storms (the destructive remove-then-insert bug)
// ---------------------------------------------------------------------

/// Fill `t` near its insertion limit, then hammer upserts of the live
/// keys. On every implementor the upserts must (a) report `Updated`,
/// never `Failed` — a destructive remove-then-insert emulation puts the
/// key at eviction risk exactly here — (b) keep every other key intact
/// with its newest value, and (c) cost at most `writes_bound` off-chip
/// writes each (`None` skips the meter check for unmetered tables). The
/// old baseline adapters paid 2 writes per upsert (remove + insert);
/// the multi-copy engine pays one write per stored copy, never more
/// than its `d = 3`.
fn near_full_upsert_storm<T: McTable<u64, u64>>(mut t: T, writes_bound: Option<u64>) {
    // Fill until the table pushes back (or a generous cap for tables
    // that stash instead of failing).
    let mut live: Vec<u64> = Vec::new();
    for k in 0..(t.capacity() as u64 * 2) {
        if !t.insert_new(k, k).stored() {
            break;
        }
        live.push(k);
    }
    assert!(
        t.load() > 0.5,
        "fill stalled at load {:.2}; the storm needs a crowded table",
        t.load()
    );

    for round in 1..=3u64 {
        for &k in &live {
            let before = t.mem_stats();
            let r = t.insert(k, k + round * 10_000);
            let delta = t.mem_stats() - before;
            assert_eq!(
                r.outcome,
                InsertOutcome::Updated,
                "round {round}: upsert of live key {k} must update in place"
            );
            if let Some(bound) = writes_bound {
                assert!(
                    delta.offchip_writes <= bound,
                    "round {round}: upsert of key {k} cost {} writes (bound {bound})",
                    delta.offchip_writes
                );
            }
        }
        assert_eq!(t.len(), live.len(), "round {round}: upserts changed len");
        for &k in &live {
            assert_eq!(
                t.lookup(&k),
                Some(k + round * 10_000),
                "round {round}: key {k} lost or stale after upsert storm"
            );
        }
    }
}

#[test]
fn near_full_upserts_mccuckoo() {
    near_full_upsert_storm(
        McCuckoo::<u64, u64>::new(McConfig::paper_with_deletion(128, 21)),
        Some(3),
    );
}

#[test]
fn near_full_upserts_blocked() {
    near_full_upsert_storm(
        BlockedMcCuckoo::<u64, u64>::new(BlockedConfig {
            base: McConfig::paper_with_deletion(64, 22),
            slots: 3,
            aggressive_lookup: true,
        }),
        Some(3),
    );
}

#[test]
fn near_full_upserts_concurrent() {
    near_full_upsert_storm(
        ConcurrentMcCuckoo::<u64, u64>::new(McConfig::paper(128, 23)),
        None,
    );
}

#[test]
fn near_full_upserts_sharded() {
    near_full_upsert_storm(
        ShardedMcCuckoo::<u64, u64>::new(4, McConfig::paper(32, 24)),
        None,
    );
}

#[test]
fn near_full_upserts_dary() {
    // An in-place upsert is exactly one off-chip write; the destructive
    // adapter paid two (remove, then re-insert).
    near_full_upsert_storm(
        DaryCuckoo::<u64, u64>::new(CuckooConfig::paper(128, 25)),
        Some(1),
    );
}

#[test]
fn near_full_upserts_bcht() {
    near_full_upsert_storm(Bcht::<u64, u64>::new(BchtConfig::paper(48, 26)), Some(1));
}

/// A `Failed` insert must be a strict no-op: the offered key absent,
/// every stored key intact with its current value, `len` unchanged.
/// Before the unwind fix, the baselines' failed kick walks left the
/// offered key stored and a victim evicted.
fn failed_insert_noop_storm<T: McTable<u64, u64>>(mut t: T, attempts: u64) {
    let mut model: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut failures = 0u64;
    for k in 0..attempts {
        let r = t.insert(k, k ^ 0x5A5A);
        if r.stored() {
            model.insert(k, k ^ 0x5A5A);
        } else {
            failures += 1;
            assert!(!t.contains(&k), "rejected key {k} must not be stored");
            assert_eq!(t.len(), model.len(), "failed insert of {k} changed len");
            for (&mk, &mv) in &model {
                assert_eq!(
                    t.lookup(&mk),
                    Some(mv),
                    "failed insert of {k} damaged stored key {mk}"
                );
            }
        }
    }
    assert!(
        failures > 0,
        "storm never overflowed the table; shrink it or raise attempts"
    );
}

#[test]
fn failed_inserts_are_noops_dary() {
    failed_insert_noop_storm(
        DaryCuckoo::<u64, u64>::new(CuckooConfig {
            maxloop: 8,
            ..CuckooConfig::paper(4, 31)
        }),
        80,
    );
}

#[test]
fn failed_inserts_are_noops_bcht() {
    failed_insert_noop_storm(
        Bcht::<u64, u64>::new(BchtConfig {
            maxloop: 8,
            ..BchtConfig::paper(2, 32)
        }),
        80,
    );
}

#[test]
fn failed_inserts_are_noops_concurrent() {
    failed_insert_noop_storm(
        ConcurrentMcCuckoo::<u64, u64>::new(McConfig {
            maxloop: 8,
            ..McConfig::paper(4, 33)
        }),
        80,
    );
}

#[test]
fn failed_inserts_are_noops_sharded() {
    failed_insert_noop_storm(
        ShardedMcCuckoo::<u64, u64>::new(
            2,
            McConfig {
                maxloop: 8,
                ..McConfig::paper(4, 34)
            },
        ),
        120,
    );
}

/// Stronger than [`failed_insert_noop_storm`]: a plan-first policy's
/// failed insert must be a *physical* no-op — planning only reads, so a
/// failing attempt costs **zero off-chip writes** on top of leaving
/// every stored key intact. (The sequential random walk is exempt by
/// design: the paper's walk mutates as it goes and stashes the last
/// carried item on failure, so only BFS/bubbling engines and the
/// concurrent table — plan-first for every policy — qualify.)
fn failed_insert_physical_noop_storm<T: McTable<u64, u64>>(mut t: T, attempts: u64, label: &str) {
    let mut model: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut failures = 0u64;
    for k in 0..attempts {
        let before = t.mem_stats();
        let r = t.insert(k, k ^ 0x5A5A);
        if r.stored() {
            model.insert(k, k ^ 0x5A5A);
        } else {
            failures += 1;
            let delta = t.mem_stats() - before;
            assert_eq!(
                delta.offchip_writes, 0,
                "{label}: failed insert of {k} wrote off-chip"
            );
            assert!(!t.contains(&k), "{label}: rejected key {k} stored");
            assert_eq!(t.len(), model.len(), "{label}: failed insert changed len");
            for (&mk, &mv) in &model {
                assert_eq!(
                    t.lookup(&mk),
                    Some(mv),
                    "{label}: failed insert of {k} damaged stored key {mk}"
                );
            }
        }
    }
    assert!(
        failures > 0,
        "{label}: storm never overflowed the table; shrink it or raise attempts"
    );
}

#[test]
fn failed_inserts_are_physical_noops_planned_engines() {
    for kind in [KickPolicyKind::Bfs, KickPolicyKind::Bubble] {
        // StashPolicy::None so overflow surfaces as Failed instead of
        // being absorbed by the stash.
        failed_insert_physical_noop_storm(
            McCuckoo::<u64, u64>::new(
                McConfig::paper(4, 35)
                    .with_maxloop(8)
                    .with_stash(StashPolicy::None)
                    .with_kick_policy(kind),
            ),
            80,
            kind.label(),
        );
    }
}

#[test]
fn failed_inserts_are_physical_noops_concurrent_all_policies() {
    for kind in KickPolicyKind::ALL {
        failed_insert_physical_noop_storm(
            ConcurrentMcCuckoo::<u64, u64>::new(
                McConfig::paper(4, 36)
                    .with_maxloop(8)
                    .with_kick_policy(kind),
            ),
            80,
            kind.label(),
        );
    }
}
