//! Concurrency torture suite for the striped-seqlock writers.
//!
//! Many seeded iterations; in each one, N writer threads hammer
//! **overlapping** key ranges of one table while M reader threads
//! continuously probe it. Because writers overlap, no per-key final
//! value is decidable — but the *allowed-value set* is: every value a
//! reader (or the post-run sweep) observes under key `k` must be one
//! some writer's deterministic op stream actually wrote to `k`, or
//! absent. Any other observation is a torn read, a lost update
//! surfacing a foreign value, or a resurrection — all bugs.
//!
//! Post-run, the table's invariant validator runs and the obs counters
//! are reconciled against the issued-op tallies: the identities must
//! hold under every interleaving, not just sequential runs.
//!
//! Replay: every iteration derives from `(base_seed, iter)`. A failure
//! prints the exact `MCC_TORTURE_SEED` / `MCC_TORTURE_ITERS` pair to
//! re-run just that schedule; the writer op streams are plain testkit
//! `gen_ops` sequences, so a failing iteration can be fed back through
//! the testkit shrinker.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};

use hash_kit::SplitMix64;
use mccuckoo_core::{ConcurrentMcCuckoo, McConfig, ShardedMcCuckoo};
use mccuckoo_testkit::{gen_ops, MixProfile, TableOp};

const WRITERS: usize = 3;
const READERS: usize = 2;
const OPS_PER_WRITER: usize = 250;
/// Writers share this whole domain — every key is contended.
const KEY_DOMAIN: u64 = 48;

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => {
            let v = v.trim();
            let parsed = match v.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => v.parse(),
            };
            parsed.unwrap_or_else(|_| panic!("{name} must be an integer, got {v:?}"))
        }
        Err(_) => default,
    }
}

/// Per-writer deterministic schedule, derived from the iteration seed.
fn writer_ops(iter_seed: u64, tid: usize) -> Vec<TableOp> {
    gen_ops(
        iter_seed.wrapping_add((tid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        MixProfile::ContendedStripes,
        OPS_PER_WRITER,
        KEY_DOMAIN,
    )
}

/// The allowed-value oracle: for each key, every value ANY writer's
/// stream could store there. A superset of reachable states (an insert
/// may fail, an InsertNew may be downgraded), which is exactly what
/// membership assertions need.
fn allowed_values(iter_seed: u64) -> HashMap<u64, HashSet<u64>> {
    let mut allowed: HashMap<u64, HashSet<u64>> = HashMap::new();
    for tid in 0..WRITERS {
        for op in writer_ops(iter_seed, tid) {
            match op {
                TableOp::Insert(k, v) | TableOp::InsertNew(k, v) => {
                    allowed.entry(key_of(k, tid)).or_default().insert(v);
                }
                _ => {}
            }
        }
    }
    allowed
}

/// Overlapping ranges: writers 0 and 1 share the low half of the
/// domain verbatim, writer 2 is shifted by a quarter — every key has at
/// least two writers racing on it somewhere in the run.
fn key_of(generated: u64, tid: usize) -> u64 {
    match tid {
        0 | 1 => generated,
        _ => (generated + KEY_DOMAIN / 4) % KEY_DOMAIN,
    }
}

/// Issued-op tallies, summed across threads and reconciled against the
/// table's own obs counters after the run.
#[derive(Default, Clone, Copy)]
struct Tally {
    insert_attempts: u64,
    lookups: u64,
    removes_hit: u64,
    removes_miss: u64,
}

/// One torture iteration against any table exposing the shared op
/// surface. Returns the summed tally (including reader lookups).
fn torture_once<T>(table: &T, iter_seed: u64, label: &str) -> Tally
where
    T: TortureTable + Sync,
{
    let allowed = allowed_values(iter_seed);
    let stop = AtomicBool::new(false);
    let ctx = |detail: &str| {
        format!(
            "{label}: {detail}\n\
             replay: MCC_TORTURE_SEED={iter_seed:#x} MCC_TORTURE_ITERS=1 \
             cargo test --test concurrent_torture"
        )
    };

    let tally = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for tid in 0..WRITERS {
            let allowed = &allowed;
            let ctx = &ctx;
            handles.push(scope.spawn(move || {
                let mut tl = Tally::default();
                for op in writer_ops(iter_seed, tid) {
                    match op {
                        TableOp::Insert(k, v) | TableOp::InsertNew(k, v) => {
                            // InsertNew downgrades to upsert: with
                            // overlapping writers "believed absent" is
                            // undecidable, and the allowed-set already
                            // contains the value either way.
                            tl.insert_attempts += 1;
                            let _ = table.upsert(key_of(k, tid), v);
                        }
                        TableOp::Get(k) | TableOp::Contains(k) => {
                            let k = key_of(k, tid);
                            tl.lookups += 1;
                            if let Some(v) = table.lookup(&k) {
                                assert!(
                                    allowed.get(&k).is_some_and(|s| s.contains(&v)),
                                    "{}",
                                    ctx(&format!(
                                        "writer {tid} read foreign value {v} under key {k}"
                                    ))
                                );
                            }
                        }
                        TableOp::Remove(k) => {
                            if table.delete(&key_of(k, tid)).is_some() {
                                tl.removes_hit += 1;
                            } else {
                                tl.removes_miss += 1;
                            }
                        }
                        TableOp::Clear | TableOp::RefreshStash => {
                            unreachable!("ContendedStripes never emits these")
                        }
                    }
                }
                tl
            }));
        }
        for rid in 0..READERS {
            let stop = &stop;
            let allowed = &allowed;
            let ctx = &ctx;
            handles.push(scope.spawn(move || {
                let mut tl = Tally::default();
                let mut rng = SplitMix64::new(iter_seed ^ (0xBEEF + rid as u64));
                while !stop.load(Ordering::Acquire) {
                    let k = rng.next_below(KEY_DOMAIN);
                    tl.lookups += 1;
                    if let Some(v) = table.lookup(&k) {
                        assert!(
                            allowed.get(&k).is_some_and(|s| s.contains(&v)),
                            "{}",
                            ctx(&format!(
                                "reader {rid} read foreign value {v} under key {k}"
                            ))
                        );
                    }
                }
                tl
            }));
        }
        // Writers are the first WRITERS handles; once the last one has
        // joined, release the readers. A panicking thread re-raises its
        // own assertion message (which carries the replay line).
        let mut sum = Tally::default();
        for (i, h) in handles.into_iter().enumerate() {
            let tl = match h.join() {
                Ok(tl) => tl,
                Err(e) => {
                    stop.store(true, Ordering::Release);
                    std::panic::resume_unwind(e);
                }
            };
            sum.insert_attempts += tl.insert_attempts;
            sum.lookups += tl.lookups;
            sum.removes_hit += tl.removes_hit;
            sum.removes_miss += tl.removes_miss;
            if i == WRITERS - 1 {
                stop.store(true, Ordering::Release);
            }
        }
        sum
    });

    // Post-run: the table settles into SOME serializable history — every
    // surviving value must be one a writer wrote.
    let mut tally = tally;
    for k in 0..KEY_DOMAIN {
        tally.lookups += 1;
        if let Some(v) = table.lookup(&k) {
            assert!(
                allowed.get(&k).is_some_and(|s| s.contains(&v)),
                "{}",
                ctx(&format!(
                    "post-run sweep found foreign value {v} under key {k}"
                ))
            );
        }
    }
    table
        .validate()
        .unwrap_or_else(|e| panic!("{}", ctx(&format!("invariants violated: {e}"))));
    tally
}

/// Reconcile the table's obs counters against the issued-op tally.
fn reconcile(stats: mccuckoo_core::TableStats, tally: Tally, iter_seed: u64, label: &str) {
    let attempts = stats.ops.inserts + stats.ops.updates + stats.ops.failed_inserts;
    assert_eq!(
        attempts, tally.insert_attempts,
        "{label} seed {iter_seed:#x}: insert attempts"
    );
    assert_eq!(
        stats.ops.lookup_hits + stats.ops.lookup_misses,
        tally.lookups,
        "{label} seed {iter_seed:#x}: lookups"
    );
    assert_eq!(
        stats.probe_hist.count, tally.lookups,
        "{label} seed {iter_seed:#x}: probe histogram"
    );
    assert_eq!(
        stats.ops.removes, tally.removes_hit,
        "{label} seed {iter_seed:#x}: removes"
    );
    assert_eq!(
        stats.ops.remove_misses, tally.removes_miss,
        "{label} seed {iter_seed:#x}: remove misses"
    );
    assert_eq!(
        stats.kick_hist.count,
        stats.ops.inserts + stats.ops.failed_inserts,
        "{label} seed {iter_seed:#x}: kick histogram counts fresh attempts only"
    );
}

/// Minimal op surface shared by the two tables under torture.
trait TortureTable {
    fn upsert(&self, k: u64, v: u64) -> Result<bool, (u64, u64)>;
    fn lookup(&self, k: &u64) -> Option<u64>;
    fn delete(&self, k: &u64) -> Option<u64>;
    fn validate(&self) -> Result<(), String>;
}

impl TortureTable for ConcurrentMcCuckoo<u64, u64> {
    fn upsert(&self, k: u64, v: u64) -> Result<bool, (u64, u64)> {
        self.insert(k, v)
    }
    fn lookup(&self, k: &u64) -> Option<u64> {
        self.get(k)
    }
    fn delete(&self, k: &u64) -> Option<u64> {
        self.remove(k)
    }
    fn validate(&self) -> Result<(), String> {
        self.check_invariants()
    }
}

impl TortureTable for ShardedMcCuckoo<u64, u64> {
    fn upsert(&self, k: u64, v: u64) -> Result<bool, (u64, u64)> {
        self.insert(k, v)
    }
    fn lookup(&self, k: &u64) -> Option<u64> {
        self.get(k)
    }
    fn delete(&self, k: &u64) -> Option<u64> {
        self.remove(k)
    }
    fn validate(&self) -> Result<(), String> {
        self.check_invariants()
    }
}

fn iteration_seeds(test_salt: u64) -> impl Iterator<Item = (u64, u64)> {
    let base = env_u64("MCC_TORTURE_SEED", 0x7047_u64);
    let iters = env_u64("MCC_TORTURE_ITERS", 600);
    let mut rng = SplitMix64::new(base ^ test_salt);
    (0..iters).map(move |i| {
        // When replaying a single schedule, the seed IS the schedule.
        if iters == 1 {
            (i, base)
        } else {
            (i, rng.next_u64())
        }
    })
}

#[test]
fn torture_concurrent_table() {
    for (_, iter_seed) in iteration_seeds(0) {
        let t = ConcurrentMcCuckoo::<u64, u64>::new(McConfig::paper(64, iter_seed));
        let tally = torture_once(&t, iter_seed, "concurrent");
        reconcile(t.stats(), tally, iter_seed, "concurrent");
    }
}

#[test]
fn torture_sharded_table() {
    for (_, iter_seed) in iteration_seeds(1) {
        let t = ShardedMcCuckoo::<u64, u64>::new(4, McConfig::paper(32, iter_seed));
        let tally = torture_once(&t, iter_seed, "sharded");
        reconcile(t.stats(), tally, iter_seed, "sharded");
    }
}
