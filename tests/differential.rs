//! Cross-crate differential testing: every scheme replayed against a
//! `HashMap` model under mixed operation streams from the `workloads`
//! crate.

use std::collections::HashMap;

use mccuckoo_bench::{AnyTable, Scheme};
use workloads::{Op, OpMix, OpStream};

fn drive(scheme: Scheme, mix: OpMix, ops: usize, seed: u64) {
    let mut t = AnyTable::build(scheme, 30_000, seed, 500, true);
    let mut model: HashMap<u64, u64> = HashMap::new();
    let mut stream = OpStream::new(mix, seed);
    for k in stream.preload(5_000) {
        t.insert_new(k, k ^ 0xA5);
        model.insert(k, k ^ 0xA5);
    }
    for _ in 0..ops {
        match stream.next_op() {
            Op::Insert(k) => {
                let r = t.insert_new(k, k ^ 0xA5);
                assert!(r.stored(), "{}: insert lost", scheme.label());
                model.insert(k, k ^ 0xA5);
            }
            Op::Update(k) => {
                // AnyTable has no upsert entry point; model the update
                // as read-modify-write via remove + insert.
                let old = t.remove(&k);
                assert_eq!(old, model.get(&k).copied(), "{}", scheme.label());
                t.insert_new(k, k ^ 0x5A);
                model.insert(k, k ^ 0x5A);
            }
            Op::LookupHit(k) => {
                assert_eq!(t.get(&k), model.get(&k).copied(), "{}", scheme.label());
            }
            Op::LookupMiss(k) => {
                assert_eq!(t.get(&k), None, "{}", scheme.label());
            }
            Op::Delete(k) => {
                assert_eq!(t.remove(&k), model.remove(&k), "{}", scheme.label());
            }
        }
    }
    assert_eq!(t.len(), model.len(), "{}", scheme.label());
    for (k, v) in &model {
        assert_eq!(t.get(k), Some(*v), "{}: final audit", scheme.label());
    }
}

#[test]
fn read_heavy_mix_all_schemes() {
    for scheme in Scheme::ALL {
        drive(scheme, OpMix::read_heavy(), 60_000, 500);
    }
}

#[test]
fn churn_mix_all_schemes() {
    for scheme in Scheme::ALL {
        drive(scheme, OpMix::churn(), 60_000, 510);
    }
}

#[test]
fn ycsb_mixes_all_schemes() {
    for scheme in Scheme::ALL {
        drive(scheme, OpMix::ycsb_a(), 40_000, 540);
        drive(scheme, OpMix::ycsb_b(), 40_000, 550);
    }
}

#[test]
fn delete_heavy_mix_all_schemes() {
    let mix = OpMix {
        insert: 25,
        update: 0,
        lookup_hit: 10,
        lookup_miss: 15,
        delete: 50,
    };
    for scheme in Scheme::ALL {
        drive(scheme, mix, 60_000, 520);
    }
}

/// Multi-copy invariants hold after long mixed streams (checked on the
/// concrete types, which expose the validators).
#[test]
fn invariants_after_churn() {
    use mccuckoo_core::{BlockedConfig, BlockedMcCuckoo, McConfig, McCuckoo};
    let mut single: McCuckoo<u64, u64> = McCuckoo::new(McConfig::paper_with_deletion(8_192, 530));
    let mut blocked: BlockedMcCuckoo<u64, u64> = BlockedMcCuckoo::new(BlockedConfig {
        base: McConfig::paper_with_deletion(2_730, 531),
        slots: 3,
        aggressive_lookup: false,
    });
    let mut stream = OpStream::new(OpMix::churn(), 532);
    for k in stream.preload(4_000) {
        single.insert_new(k, k).unwrap();
        blocked.insert_new(k, k).unwrap();
    }
    for _ in 0..40_000 {
        match stream.next_op() {
            Op::Insert(k) => {
                single.insert_new(k, k).unwrap();
                blocked.insert_new(k, k).unwrap();
            }
            Op::Update(k) => {
                single.insert(k, k ^ 1).unwrap();
                blocked.insert(k, k ^ 1).unwrap();
            }
            Op::Delete(k) => {
                assert!(single.remove(&k).is_some());
                assert!(blocked.remove(&k).is_some());
            }
            Op::LookupHit(k) => {
                assert!(single.contains(&k));
                assert!(blocked.contains(&k));
            }
            Op::LookupMiss(k) => {
                assert!(!single.contains(&k));
                assert!(!blocked.contains(&k));
            }
        }
    }
    single.check_invariants().unwrap();
    blocked.check_invariants().unwrap();
}
