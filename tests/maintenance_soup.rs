//! Maintenance-operation soup: interleave the heavyweight maintenance
//! paths (rehash, grow, stash refresh, snapshot/restore, clear) with
//! ordinary operations under a model check. These paths rebuild large
//! parts of the structure; any bookkeeping slip shows up as a model
//! divergence or an invariant failure.

use std::collections::HashMap;

use hash_kit::SplitMix64;
use mccuckoo_core::{DeletionMode, McConfig, McCuckoo};
use workloads::UniqueKeys;

#[test]
fn maintenance_soup_against_model() {
    let mut t: McCuckoo<u64, u64> = McCuckoo::new(
        McConfig::paper(512, 1)
            .with_maxloop(50)
            .with_deletion(DeletionMode::Reset),
    );
    let mut model: HashMap<u64, u64> = HashMap::new();
    let mut keys = UniqueKeys::new(2);
    let mut rng = SplitMix64::new(3);
    let mut live: Vec<u64> = Vec::new();
    let mut rehashes = 0u32;
    let mut snapshots = 0u32;

    for step in 0..30_000u64 {
        match rng.next_below(100) {
            // Ordinary operations dominate.
            0..=39 => {
                let k = keys.next_key();
                t.insert_new(k, step).unwrap();
                model.insert(k, step);
                live.push(k);
            }
            40..=59 if !live.is_empty() => {
                let i = rng.next_below(live.len() as u64) as usize;
                assert_eq!(t.get(&live[i]), model.get(&live[i]));
            }
            60..=74 if !live.is_empty() => {
                let i = rng.next_below(live.len() as u64) as usize;
                let k = live.swap_remove(i);
                assert_eq!(t.remove(&k), model.remove(&k));
            }
            75..=84 if !live.is_empty() => {
                // Upsert churn on a live key.
                let i = rng.next_below(live.len() as u64) as usize;
                let k = live[i];
                t.insert(k, step).unwrap();
                model.insert(k, step);
            }
            // Maintenance events.
            85..=89 => {
                t.refresh_stash();
            }
            90..=93 => {
                t.rehash(None, step ^ 0xABCD).unwrap();
                rehashes += 1;
            }
            94 => {
                // Occasionally resize: up if loaded, down if sparse.
                let target = if t.load_ratio() > 0.6 {
                    t.buckets_per_table() * 2
                } else {
                    (t.buckets_per_table() / 2).max(256)
                };
                t.rehash(Some(target), step ^ 0x1234).unwrap();
                rehashes += 1;
            }
            95..=96 => {
                // Snapshot round-trip: the restored table replaces the
                // live one mid-stream.
                let snap = t.to_snapshot();
                t = McCuckoo::try_from_snapshot(snap).expect("stash-backed restore fits");
                snapshots += 1;
            }
            97 if live.len() < 50 => {
                // Rare full clear while small (keeps the test fast).
                t.clear();
                model.clear();
                live.clear();
            }
            _ => {
                let k = keys.absent_key(step);
                assert_eq!(t.get(&k), None);
            }
        }
        if step % 5_000 == 0 {
            t.check_invariants().unwrap();
            assert_eq!(t.len(), model.len(), "step {step}");
        }
    }
    assert!(rehashes > 0 && snapshots > 0, "maintenance paths exercised");
    assert_eq!(t.len(), model.len());
    for (k, v) in &model {
        assert_eq!(t.get(k), Some(v));
    }
    t.check_invariants().unwrap();
}
