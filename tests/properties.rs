//! Property-based tests (proptest) over the core data structures.

use std::collections::HashMap;

use mccuckoo_core::{
    BlockedConfig, BlockedMcCuckoo, DeletionMode, McConfig, McCuckoo, StashPolicy,
};
use proptest::prelude::*;

/// A symbolic operation over a small key universe (small so that
/// deletes/updates actually collide with live keys).
#[derive(Debug, Clone, Copy)]
enum SymOp {
    Upsert(u16, u32),
    Remove(u16),
    Lookup(u16),
}

fn sym_op() -> impl Strategy<Value = SymOp> {
    prop_oneof![
        3 => (0u16..400, any::<u32>()).prop_map(|(k, v)| SymOp::Upsert(k, v)),
        1 => (0u16..400).prop_map(SymOp::Remove),
        2 => (0u16..400).prop_map(SymOp::Lookup),
    ]
}

/// Replay `ops` against table `$t` and a `HashMap` model, asserting
/// identical observable behaviour. (A macro rather than a function so it
/// monomorphises over both table types without borrow gymnastics.)
macro_rules! replay_against_model {
    ($t:ident, $ops:expr) => {{
        let mut model: HashMap<u16, u32> = HashMap::new();
        for &op in $ops {
            match op {
                SymOp::Upsert(k, v) => {
                    $t.insert(k, v).unwrap();
                    model.insert(k, v);
                }
                SymOp::Remove(k) => {
                    assert_eq!($t.remove(&k), model.remove(&k), "remove({k})");
                }
                SymOp::Lookup(k) => {
                    assert_eq!($t.get(&k).copied(), model.get(&k).copied(), "lookup({k})");
                }
            }
        }
        assert_eq!($t.len(), model.len());
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-slot McCuckoo behaves exactly like a map under arbitrary
    /// upsert/remove/lookup interleavings (Reset deletion).
    #[test]
    fn single_slot_is_a_map_reset(ops in prop::collection::vec(sym_op(), 1..600)) {
        let mut t: McCuckoo<u16, u32> =
            McCuckoo::new(McConfig::paper(512, 1).with_deletion(DeletionMode::Reset));
        replay_against_model!(t, &ops);
        t.check_invariants().unwrap();
    }

    /// Same with tombstone deletion.
    #[test]
    fn single_slot_is_a_map_tombstone(ops in prop::collection::vec(sym_op(), 1..600)) {
        let mut t: McCuckoo<u16, u32> =
            McCuckoo::new(McConfig::paper(512, 2).with_deletion(DeletionMode::Tombstone));
        replay_against_model!(t, &ops);
        t.check_invariants().unwrap();
    }

    /// Blocked McCuckoo behaves exactly like a map.
    #[test]
    fn blocked_is_a_map(ops in prop::collection::vec(sym_op(), 1..600)) {
        let mut t: BlockedMcCuckoo<u16, u32> = BlockedMcCuckoo::new(BlockedConfig {
            base: McConfig::paper_with_deletion(128, 3),
            slots: 3,
            aggressive_lookup: false,
        });
        replay_against_model!(t, &ops);
        t.check_invariants().unwrap();
    }

    /// The hashed stash behaves exactly like a map even under heavy
    /// overload (tiny main table forces most keys into the stash).
    #[test]
    fn overloaded_table_with_hashed_stash_is_a_map(
        ops in prop::collection::vec(sym_op(), 1..400)
    ) {
        let mut t: McCuckoo<u16, u32> = McCuckoo::new(
            McConfig::paper(24, 4)
                .with_maxloop(10)
                .with_deletion(DeletionMode::Reset)
                .with_stash(StashPolicy::Hashed),
        );
        replay_against_model!(t, &ops);
        t.check_invariants().unwrap();
    }

    /// Lookup never reads more than d buckets off-chip (Theorem 3's
    /// consequence: pruning only ever shrinks the probe set).
    #[test]
    fn lookup_probe_bound(keys in prop::collection::hash_set(any::<u64>(), 1..300)) {
        let mut t: McCuckoo<u64, u64> = McCuckoo::new(McConfig::paper(256, 5));
        for &k in &keys {
            let _ = t.insert_new(k, k);
        }
        for &k in &keys {
            let before = t.meter().snapshot();
            let _ = t.get(&k);
            let delta = t.meter().snapshot() - before;
            prop_assert!(delta.offchip_reads <= 3, "{} reads", delta.offchip_reads);
            prop_assert_eq!(delta.offchip_writes, 0);
        }
    }

    /// Absent keys are never falsely reported present, and deletion
    /// leaves no trace findable (both modes).
    #[test]
    fn no_ghost_keys(
        present in prop::collection::hash_set(0u64..1000, 1..200),
        absent in prop::collection::hash_set(1000u64..2000, 1..200),
        mode in prop_oneof![Just(DeletionMode::Reset), Just(DeletionMode::Tombstone)],
    ) {
        let mut t: McCuckoo<u64, u64> =
            McCuckoo::new(McConfig::paper(512, 6).with_deletion(mode));
        for &k in &present {
            t.insert_new(k, k).unwrap();
        }
        for &k in &absent {
            prop_assert_eq!(t.get(&k), None);
        }
        for &k in &present {
            prop_assert_eq!(t.remove(&k), Some(k));
            prop_assert_eq!(t.get(&k), None, "deleted key resurfaced");
        }
    }

    /// Counter invariant under pure insertion: every candidate counter
    /// of a present key is non-zero, and copy counts never exceed d.
    #[test]
    fn bloom_and_copy_bounds(keys in prop::collection::hash_set(any::<u64>(), 1..400)) {
        let mut t: McCuckoo<u64, u64> = McCuckoo::new(McConfig::paper(256, 7));
        for &k in &keys {
            let _ = t.insert_new(k, k);
        }
        for &k in &keys {
            let c = t.copy_count(&k);
            prop_assert!(c <= 3);
            // Inserted keys live in the main table or the stash; either
            // way a lookup must succeed.
            prop_assert_eq!(t.get(&k).copied(), Some(k));
        }
        t.check_invariants().unwrap();
    }
}
