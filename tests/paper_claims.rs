//! The paper's qualitative claims, encoded as executable assertions.
//!
//! Each test pins one headline behaviour from the evaluation (§IV) at a
//! reduced scale: the *shape* must hold (who wins, roughly by how much,
//! where crossovers fall), not the absolute numbers.

use mccuckoo_bench::harness::{
    fill_sweep, first_collision_load, first_failure_load, mean, measure_deletions,
    measure_lookup_hits, measure_lookup_misses,
};
use mccuckoo_bench::{AnyTable, Scheme};

const CAP: usize = 45_000;
const RUNS: u64 = 3;

fn averaged(scheme: Scheme, f: impl Fn(u64) -> f64) -> f64 {
    let _ = scheme;
    mean((0..RUNS).map(f))
}

/// Table I: first collision comes in the order
/// Cuckoo < McCuckoo < BCHT < B-McCuckoo, with meaningful gaps.
#[test]
fn table1_first_collision_ordering() {
    let mut loads = Vec::new();
    for scheme in Scheme::ALL {
        loads.push(averaged(scheme, |r| {
            let mut t = AnyTable::build(scheme, CAP, 300 + r, 500, false);
            first_collision_load(&mut t, 310 + r)
        }));
    }
    assert!(
        loads[1] > loads[0] * 1.3,
        "McCuckoo {} should defer the first collision well past Cuckoo {}",
        loads[1],
        loads[0]
    );
    assert!(
        loads[2] > loads[1],
        "BCHT {} > McCuckoo {}",
        loads[2],
        loads[1]
    );
    assert!(
        loads[3] > loads[2] * 1.1,
        "B-McCuckoo {} > BCHT {}",
        loads[3],
        loads[2]
    );
}

/// Fig. 9: at 85% load McCuckoo kicks at least 40% less than Cuckoo;
/// at 95% B-McCuckoo kicks at least 60% less than BCHT (paper: 59.3%
/// and 77.9%).
#[test]
fn fig9_kickout_reductions() {
    let kicks_at = |scheme: Scheme, band: f64, seed: u64| {
        let mut t = AnyTable::build(scheme, CAP, seed, 500, false);
        let pre = (band - 0.05).max(0.05);
        let stats = fill_sweep(&mut t, &[pre, band], seed + 7, |_, _| {});
        stats[1].kickouts_per_insert
    };
    let c = mean((0..RUNS).map(|r| kicks_at(Scheme::Cuckoo, 0.85, 320 + r)));
    let m = mean((0..RUNS).map(|r| kicks_at(Scheme::McCuckoo, 0.85, 320 + r)));
    assert!(
        m < c * 0.6,
        "McCuckoo kicks {m:.2} not under 60% of Cuckoo's {c:.2} at 85%"
    );
    let b = mean((0..RUNS).map(|r| kicks_at(Scheme::Bcht, 0.95, 330 + r)));
    let bm = mean((0..RUNS).map(|r| kicks_at(Scheme::BMcCuckoo, 0.95, 330 + r)));
    assert!(
        bm < b * 0.4,
        "B-McCuckoo kicks {bm:.3} not under 40% of BCHT's {b:.3} at 95%"
    );
}

/// Fig. 10a: McCuckoo's insertion reads are near zero at low load (the
/// counters expose empty buckets) while Cuckoo always probes.
#[test]
fn fig10_low_load_insert_reads() {
    let mut mc = AnyTable::build(Scheme::McCuckoo, CAP, 340, 500, false);
    let mc_stats = fill_sweep(&mut mc, &[0.10], 341, |_, _| {});
    // Not exactly zero: principle-3 overwrites must read their victim
    // once, and a few occur even this early.
    assert!(
        mc_stats[0].reads_per_insert < 0.15,
        "McCuckoo reads/insert at 10% load: {}",
        mc_stats[0].reads_per_insert
    );
    let mut c = AnyTable::build(Scheme::Cuckoo, CAP, 340, 500, false);
    let c_stats = fill_sweep(&mut c, &[0.10], 341, |_, _| {});
    assert!(
        c_stats[0].reads_per_insert >= 1.0,
        "Cuckoo must read at least one bucket per insert"
    );
}

/// Fig. 10b: multi-copy writes start ~3 per insert and cross below the
/// single-copy writes before very high load.
#[test]
fn fig10_write_crossover() {
    let bands: Vec<f64> = (1..=17).map(|i| i as f64 * 0.05).collect();
    let mut mc = AnyTable::build(Scheme::McCuckoo, CAP, 350, 500, false);
    let mc_stats = fill_sweep(&mut mc, &bands, 351, |_, _| {});
    let mut c = AnyTable::build(Scheme::Cuckoo, CAP, 350, 500, false);
    let c_stats = fill_sweep(&mut c, &bands, 351, |_, _| {});
    assert!(
        mc_stats[0].writes_per_insert > 2.5,
        "multi-copy starts ~3 writes"
    );
    assert!(
        c_stats[0].writes_per_insert <= 1.05,
        "single-copy starts ~1 write"
    );
    let crossover = mc_stats
        .iter()
        .zip(&c_stats)
        .find(|(m, c)| m.writes_per_insert <= c.writes_per_insert)
        .map(|(m, _)| m.load);
    let crossover = crossover.expect("multi-copy writes must cross below single-copy");
    assert!(
        (0.3..=0.75).contains(&crossover),
        "crossover at {crossover}, paper says about half load"
    );
}

/// Fig. 11: with the same maxloop budget, multi-copy reaches a higher
/// failure-free load than its single-copy counterpart (on average).
#[test]
fn fig11_failure_free_load() {
    let f = |scheme: Scheme, ml: u32| {
        mean((0..RUNS).map(|r| {
            let mut t = AnyTable::build(scheme, CAP, 360 + r, ml, false);
            first_failure_load(&mut t, 370 + r)
        }))
    };
    for ml in [50u32, 200] {
        let c = f(Scheme::Cuckoo, ml);
        let m = f(Scheme::McCuckoo, ml);
        assert!(
            m > c - 0.01,
            "maxloop {ml}: McCuckoo {m} should be at or above Cuckoo {c}"
        );
    }
}

/// Fig. 12: fewer reads per hit lookup for McCuckoo than Cuckoo at
/// moderate-to-high load.
#[test]
fn fig12_hit_lookup_reads() {
    for band in [0.5f64, 0.8] {
        let run = |scheme: Scheme| {
            let mut t = AnyTable::build(scheme, CAP, 380, 500, false);
            fill_sweep(&mut t, &[band], 381, |_, _| {});
            let inserted = (band * CAP as f64).round() as u64;
            measure_lookup_hits(&t, 381, inserted, 20_000)
        };
        let c = run(Scheme::Cuckoo);
        let m = run(Scheme::McCuckoo);
        assert!(m < c, "band {band}: McCuckoo {m} reads ≥ Cuckoo {c}");
    }
}

/// Fig. 13: absent-key lookups — Cuckoo always pays d reads; McCuckoo
/// pays far less (Bloom screening), increasing with load.
#[test]
fn fig13_miss_lookup_reads() {
    let run = |scheme: Scheme, band: f64| {
        let mut t = AnyTable::build(scheme, CAP, 390, 500, false);
        fill_sweep(&mut t, &[band], 391, |_, _| {});
        measure_lookup_misses(&t, 391, 20_000).0
    };
    assert!((run(Scheme::Cuckoo, 0.5) - 3.0).abs() < 1e-9);
    let low = run(Scheme::McCuckoo, 0.3);
    let high = run(Scheme::McCuckoo, 0.85);
    assert!(low < 0.6, "McCuckoo misses at 30% load cost {low} reads");
    assert!(high < 2.6, "McCuckoo misses at 85% load cost {high} reads");
    assert!(low < high, "screening power must decay with load");
}

/// Fig. 14: multi-copy deletion writes nothing off-chip while the
/// single-copy baselines always pay exactly one write.
///
/// Deviation from the paper, documented in EXPERIMENTS.md: the paper
/// reports *more* reads per multi-copy deletion ("more read is required
/// to confirm all the existing copies"); our implementation applies the
/// partition-counting shortcut — once the remaining copies are pinned by
/// counting, they need no reads — so its deletion reads come out at or
/// below the baseline's. We assert the stronger property.
#[test]
fn fig14_deletion_costs() {
    let run = |scheme: Scheme| {
        let mut t = AnyTable::build(scheme, CAP, 400, 500, true);
        fill_sweep(&mut t, &[0.6], 401, |_, _| {});
        let inserted = (0.6 * CAP as f64).round() as u64;
        measure_deletions(&mut t, 401, inserted, 10_000)
    };
    let (c_reads, c_writes) = run(Scheme::Cuckoo);
    let (m_reads, m_writes) = run(Scheme::McCuckoo);
    assert_eq!(m_writes, 0.0, "McCuckoo deletion writes off-chip");
    assert_eq!(c_writes, 1.0, "Cuckoo deletion is exactly one write");
    assert!(m_reads >= 1.0, "at least the found copy is read");
    assert!(
        m_reads < c_reads * 1.5,
        "counting shortcut keeps deletion reads bounded: {m_reads} vs {c_reads}"
    );
}

/// Tables II–III: at overload the stash absorbs failures, larger
/// maxloop shrinks it, and absent-key queries almost never visit it.
#[test]
fn tables2_3_stash_behaviour() {
    let run = |scheme: Scheme, band: f64, ml: u32| {
        let mut t = AnyTable::build(scheme, CAP, 410, ml, false);
        fill_sweep(&mut t, &[band], 411, |_, _| {});
        let (_, delta) = measure_lookup_misses(&t, 411, 20_000);
        (t.stash_len(), delta.stash_visits as f64 / 20_000.0)
    };
    let (stash_200, visits_200) = run(Scheme::McCuckoo, 0.93, 200);
    let (stash_500, _) = run(Scheme::McCuckoo, 0.93, 500);
    assert!(stash_200 > 0, "93% load must overflow into the stash");
    assert!(
        stash_500 <= stash_200,
        "bigger budget cannot grow the stash: {stash_500} > {stash_200}"
    );
    assert!(
        visits_200 < 0.01,
        "screening must keep stash visits rare, got {visits_200}"
    );
    // Blocked variant barely needs the stash even at 99.5%.
    let (b_stash, b_visits) = run(Scheme::BMcCuckoo, 0.995, 500);
    assert!(
        b_stash < CAP / 200,
        "B-McCuckoo stash at 99.5%: {b_stash} items"
    );
    assert!(b_visits < 0.01);
}

/// Theorem 2: proactive redundant writes over a full build stay under
/// S·5/6 for d = 3 (checked on the real structure, not the model).
#[test]
fn theorem2_bound_holds_at_scale() {
    use mccuckoo_core::{McConfig, McCuckoo};
    use workloads::DocWordsLike;
    let n = CAP / 3;
    let mut t: McCuckoo<u64, u64> = McCuckoo::new(McConfig::paper(n, 420));
    let mut gen = DocWordsLike::nytimes_like(421);
    for _ in 0..(3 * n) * 95 / 100 {
        let k = gen.next_key();
        let _ = t.insert_new(k, k);
    }
    let bound = (3 * n) as f64 * 5.0 / 6.0;
    assert!(
        (t.redundant_writes() as f64) <= bound,
        "redundant writes {} > bound {bound}",
        t.redundant_writes()
    );
}
