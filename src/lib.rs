//! # mccuckoo-suite — the umbrella crate of the McCuckoo reproduction
//!
//! This crate hosts the cross-crate integration tests (`tests/`) and the
//! runnable examples (`examples/`), and re-exports the workspace's
//! public surface for convenience:
//!
//! * [`mccuckoo_core`] — the paper's contribution: [`McCuckoo`],
//!   [`BlockedMcCuckoo`], [`ConcurrentMcCuckoo`], [`MultisetIndex`];
//! * [`cuckoo_baselines`] — standard [`DaryCuckoo`] and [`Bcht`];
//! * [`hash_kit`] — the hash families (Jenkins "BOB hash" et al.);
//! * [`mem_model`] — access metering and the FPGA-substitute latency
//!   model;
//! * [`workloads`] — DocWords-like dataset substitutes and op streams;
//! * [`mccuckoo_bench`] — the table/figure reproduction harness.
//!
//! Run the examples with e.g. `cargo run --release --example quickstart`.

pub use cuckoo_baselines::{self, Bcht, DaryCuckoo};
pub use hash_kit::{self, KeyHash};
pub use mccuckoo_bench;
pub use mccuckoo_core::{
    self, BlockedMcCuckoo, ConcurrentMcCuckoo, McConfig, McCuckoo, MultisetIndex,
};
pub use mem_model::{self, MemStats, PlatformModel};
pub use workloads::{self, DocWordsLike, UniqueKeys};
