//! In-tree stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the subset of the proptest 1.x API this workspace's
//! property tests use: the [`proptest!`] macro, integer/float range and
//! [`any`] strategies, tuple composition, [`prop_map`], `prop_oneof!`,
//! [`Just`], `prop::collection::{vec, hash_set}`, `prop::sample::Index`,
//! a `".{a,b}"` string pattern strategy, and greedy value shrinking.
//!
//! Differences from upstream, by design:
//!
//! * **Deterministic.** Case seeds derive from the test name and case
//!   index, so every run explores the same inputs and any failure is
//!   replayable with no persistence file. `PROPTEST_SEED=<u64>` in the
//!   environment re-bases the sequence to explore new ground.
//! * **Value-level shrinking.** Strategies shrink produced values
//!   directly (toward range starts, shorter collections, smaller
//!   integers) rather than replaying a generation tree. Mapped and
//!   union strategies do not shrink through the mapping; collection
//!   elements still shrink element-wise.
//! * `prop_assert*` panic (the runner catches panics), rather than
//!   returning `Result` — observable behaviour inside `proptest!` is
//!   the same.
//!
//! [`prop_map`]: Strategy::prop_map

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;

pub mod collection;
pub mod runner;
pub mod sample;

/// Deterministic split-mix PRNG driving all generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a generator.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-high reduction; bias is irrelevant at test scales.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------

/// A recipe for generating (and shrinking) values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Clone + Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of `v`, simplest first. The runner
    /// keeps a candidate only if the test still fails on it.
    fn simplify(&self, _v: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Clone + Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<T: Clone + Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
    fn simplify(&self, v: &T) -> Vec<T> {
        (**self).simplify(v)
    }
}

/// Box a strategy for use in heterogeneous unions (`prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Strategy yielding a single constant value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A `prop_map`-ped strategy.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Clone + Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice among strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u32,
}

impl<T: Clone + Debug> Union<T> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Self { arms, total }
    }
}

impl<T: Clone + Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as u64) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

// ---------------------------------------------------------------------
// Integer / float ranges
// ---------------------------------------------------------------------

macro_rules! impl_uint_range {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
            fn simplify(&self, v: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                if *v > self.start {
                    out.push(self.start);
                    let mid = self.start + (*v - self.start) / 2;
                    if mid != self.start && mid != *v {
                        out.push(mid);
                    }
                    out.push(*v - 1);
                }
                out.dedup();
                out
            }
        }
    )+};
}
impl_uint_range!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
    fn simplify(&self, v: &f64) -> Vec<f64> {
        let mut out = Vec::new();
        if *v > self.start {
            out.push(self.start);
            let mid = self.start + (*v - self.start) / 2.0;
            if mid != self.start && mid != *v {
                out.push(mid);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Clone + Debug + 'static {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
    /// Candidate simplifications (toward zero / trivial).
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

/// The canonical strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy produced by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
    fn simplify(&self, v: &T) -> Vec<T> {
        v.shrink()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                if *self != 0 {
                    out.push(0);
                    let half = self / 2;
                    if half != 0 {
                        out.push(half);
                    }
                }
                out
            }
        }
    )+};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Arbitrary for sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        sample::Index::new(rng.next_u64())
    }
}

// ---------------------------------------------------------------------
// Tuples of strategies
// ---------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($S:ident . $idx:tt),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn simplify(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.simplify(&v.$idx) {
                        let mut nv = v.clone();
                        nv.$idx = cand;
                        out.push(nv);
                    }
                )+
                out
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// ---------------------------------------------------------------------
// String pattern strategy
// ---------------------------------------------------------------------

/// `&'static str` acts as a (very small) regex-style pattern strategy.
/// `".{a,b}"` — between `a` and `b` printable-ASCII chars — is parsed
/// exactly; any other pattern falls back to 0–16 alphanumeric chars.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (min, max) = parse_dot_range(self).unwrap_or((0, 16));
        let len = min as u64 + rng.below((max - min + 1) as u64);
        (0..len)
            .map(|_| (0x20 + rng.below(0x5F) as u8) as char) // printable ASCII
            .collect()
    }
    fn simplify(&self, v: &String) -> Vec<String> {
        let (min, _) = parse_dot_range(self).unwrap_or((0, 16));
        let mut out = Vec::new();
        if v.len() > min {
            out.push(v.chars().take(min).collect());
            out.push(v.chars().take(v.len() / 2).collect());
            let mut short = v.clone();
            short.pop();
            out.push(short);
        }
        out.retain(|s: &String| s.chars().count() >= min && s != v);
        out.dedup();
        out
    }
}

fn parse_dot_range(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (a, b) = rest.split_once(',')?;
    let min = a.trim().parse().ok()?;
    let max = b.trim().parse().ok()?;
    (min <= max).then_some((min, max))
}

// ---------------------------------------------------------------------
// Config + macros
// ---------------------------------------------------------------------

/// Runner configuration (only `cases` is meaningful here).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Define property tests: `fn name(binding in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::runner::run(
                    $cfg,
                    concat!(module_path!(), "::", stringify!($name)),
                    ($($strat,)+),
                    |($($pat,)+)| $body,
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Weighted (`w => strat`) or uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::boxed($strat))),+])
    };
}

/// Assert inside a property test (panics; the runner catches and shrinks).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, boxed, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        let s = 10u64..20;
        for _ in 0..1000 {
            let v = s.generate(&mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn simplify_moves_toward_start() {
        let s = 3u32..100;
        let cands = s.simplify(&50);
        assert!(cands.contains(&3));
        assert!(cands.iter().all(|&c| (3..50).contains(&c)));
        assert!(s.simplify(&3).is_empty());
    }

    #[test]
    fn union_respects_weights_roughly() {
        let u = prop_oneof![9 => Just(1u32), 1 => Just(2u32)];
        let mut rng = TestRng::new(7);
        let ones = (0..1000).filter(|_| u.generate(&mut rng) == 1).count();
        assert!(ones > 800, "{ones} of 1000");
    }

    #[test]
    fn tuple_and_map_compose() {
        let s = (0u16..10, any::<u32>()).prop_map(|(a, b)| (a as u64) + (b as u64));
        let mut rng = TestRng::new(3);
        let _ = s.generate(&mut rng);
    }

    #[test]
    fn string_pattern_respects_bounds() {
        let s: &'static str = ".{2,5}";
        let mut rng = TestRng::new(9);
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((2..=5).contains(&v.chars().count()), "{v:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself works end-to-end.
        #[test]
        fn macro_smoke(x in 0u64..100, v in prop::collection::vec(0u8..10, 0..20)) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 20);
        }
    }

    #[test]
    fn failing_property_shrinks_to_minimum() {
        // Drive the runner directly: property "v < 17" fails; the shrink
        // loop must land exactly on 17.
        let got = std::panic::catch_unwind(|| {
            runner::run(
                ProptestConfig::with_cases(200),
                "shrink_demo",
                (0u64..1000,),
                |(v,)| assert!(v < 17),
            );
        });
        let msg = panic_message(got.unwrap_err());
        assert!(
            msg.contains("(17,)"),
            "expected minimal input 17, got: {msg}"
        );
        assert!(
            msg.contains("PROPTEST_SEED"),
            "must print replay seed: {msg}"
        );
    }

    fn panic_message(e: Box<dyn std::any::Any + Send>) -> String {
        e.downcast_ref::<String>()
            .cloned()
            .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default()
    }
}
