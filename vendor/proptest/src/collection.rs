//! Collection strategies: `prop::collection::{vec, hash_set}`.

use std::collections::HashSet;
use std::fmt::Debug;
use std::hash::Hash;
use std::ops::Range;

use crate::{Strategy, TestRng};

/// `Vec<T>` with a length drawn from `size` and elements from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range");
    VecStrategy { element, size }
}

/// Strategy returned by [`fn@vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.start + rng.below((self.size.end - self.size.start) as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }

    fn simplify(&self, v: &Self::Value) -> Vec<Self::Value> {
        let min = self.size.start;
        let mut out: Vec<Self::Value> = Vec::new();
        // Structural shrinks first: aggressive halving, then single
        // removals (bounded so huge vectors stay cheap to shrink).
        if v.len() > min {
            out.push(v[..min.max(v.len() / 2)].to_vec());
            out.push(v[v.len() - min.max(v.len() / 2)..].to_vec());
            let step = (v.len() / 16).max(1);
            for i in (0..v.len()).step_by(step) {
                let mut nv = v.clone();
                nv.remove(i);
                if nv.len() >= min {
                    out.push(nv);
                }
            }
        }
        // Element-wise shrinks on a bounded number of positions.
        for i in 0..v.len().min(8) {
            for cand in self.element.simplify(&v[i]) {
                let mut nv = v.clone();
                nv[i] = cand;
                out.push(nv);
            }
        }
        // No identity check (Value is not PartialEq): structural shrinks
        // are strictly shorter and element shrinks change an element, so
        // candidates equal to `v` cannot arise from well-behaved element
        // strategies; the shrink budget bounds any pathological case.
        out.retain(|nv| nv.len() >= min);
        out
    }
}

/// `HashSet<T>` with a size drawn from `size` and elements from `element`.
pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    assert!(size.start < size.end, "empty size range");
    HashSetStrategy { element, size }
}

/// Strategy returned by [`hash_set`].
#[derive(Clone, Debug)]
pub struct HashSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.start + rng.below((self.size.end - self.size.start) as u64) as usize;
        let mut set = HashSet::with_capacity(target);
        // Duplicates (e.g. a narrow element domain) shrink the yield;
        // bound the attempts so generation always terminates.
        let mut attempts = 0usize;
        while set.len() < target && attempts < target * 20 + 32 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }

    fn simplify(&self, v: &Self::Value) -> Vec<Self::Value> {
        let min = self.size.start;
        if v.len() <= min {
            return Vec::new();
        }
        let mut out = Vec::new();
        let items: Vec<&S::Value> = v.iter().collect();
        // Halve.
        out.push(
            items[..min.max(items.len() / 2)]
                .iter()
                .map(|x| (*x).clone())
                .collect(),
        );
        // Drop single elements (bounded).
        let step = (items.len() / 16).max(1);
        for i in (0..items.len()).step_by(step) {
            let nv: HashSet<S::Value> = items
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, x)| (*x).clone())
                .collect();
            if nv.len() >= min {
                out.push(nv);
            }
        }
        out.retain(|nv| nv.len() >= min && nv != v);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_and_elements() {
        let s = vec(0u8..5, 2..10);
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((2..10).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn vec_simplify_never_violates_min_len() {
        let s = vec(0u8..5, 3..10);
        let mut rng = TestRng::new(2);
        let v = s.generate(&mut rng);
        for cand in s.simplify(&v) {
            assert!(cand.len() >= 3);
            assert_ne!(&cand, &v);
        }
    }

    #[test]
    fn hash_set_handles_narrow_domains() {
        // Only 3 possible values but min size 1: generation must
        // terminate and stay within the possible sizes.
        let s = hash_set(0u8..3, 1..50);
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(!v.is_empty() && v.len() <= 3);
        }
    }
}
