//! `prop::sample` — sampling helpers.

/// An index into a collection of not-yet-known length: generated as an
/// unconstrained value, projected with [`Index::index`] at use time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Index {
    raw: u64,
}

impl Index {
    /// Wrap a raw draw.
    pub fn new(raw: u64) -> Self {
        Self { raw }
    }

    /// Project onto `[0, len)`.
    ///
    /// # Panics
    /// Panics if `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        (self.raw % len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_projects_in_range() {
        for raw in [0u64, 1, 41, u64::MAX] {
            let i = Index::new(raw);
            for len in [1usize, 2, 7, 1000] {
                assert!(i.index(len) < len);
            }
        }
    }
}
