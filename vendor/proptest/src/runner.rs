//! The case runner: deterministic generation, panic capture, greedy
//! shrinking, and a replayable failure report.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::{ProptestConfig, Strategy, TestRng};

/// Upper bound on shrink attempts per failure, so pathological
/// strategies cannot loop forever.
const SHRINK_BUDGET: usize = 2_000;

/// Execute a property: `cases` deterministic inputs from `strategy`,
/// failing with a shrunk, replayable report on the first panic.
///
/// The per-test seed is `PROPTEST_SEED` (if set) combined with a hash
/// of the fully-qualified test name, so different tests explore
/// different sequences but every run of one test is identical.
pub fn run<S, F, R>(config: ProptestConfig, name: &str, strategy: S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> R,
{
    let base_seed = base_seed(name);
    for case in 0..config.cases {
        let mut rng = TestRng::new(case_seed(base_seed, case));
        let input = strategy.generate(&mut rng);
        if let Err(msg) = run_one(&test, input.clone()) {
            let (minimal, min_msg) = shrink(&strategy, &test, input, msg);
            panic!(
                "proptest stand-in: property '{name}' failed.\n\
                 \x20 replay: PROPTEST_SEED={base_seed} (case {case} of {cases})\n\
                 \x20 minimal failing input: {minimal:?}\n\
                 \x20 failure: {min_msg}",
                cases = config.cases,
            );
        }
    }
}

fn base_seed(name: &str) -> u64 {
    let env = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0x4D63_4375_636B_6F6F); // "McCuckoo"
                                           // FNV-1a over the test name, mixed with the base.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ env
}

fn case_seed(base: u64, case: u32) -> u64 {
    base.wrapping_add((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Run one case, capturing a panic as `Err(message)`. The default panic
/// hook is silenced for the call so expected failures (especially the
/// many probes of the shrink loop) do not spam stderr.
fn run_one<V, R>(test: &impl Fn(V) -> R, input: V) -> Result<(), String> {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        test(input);
    }));
    std::panic::set_hook(prev);
    outcome.map(|_| ()).map_err(|e| {
        e.downcast_ref::<String>()
            .cloned()
            .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "<non-string panic payload>".to_owned())
    })
}

/// Greedy shrink: repeatedly take the first simplification candidate
/// that still fails, until none does or the budget runs out.
fn shrink<S, F, R>(
    strategy: &S,
    test: &F,
    mut current: S::Value,
    mut current_msg: String,
) -> (S::Value, String)
where
    S: Strategy,
    F: Fn(S::Value) -> R,
{
    let mut budget = SHRINK_BUDGET;
    loop {
        let mut improved = false;
        for cand in strategy.simplify(&current) {
            if budget == 0 {
                return (current, current_msg);
            }
            budget -= 1;
            if let Err(msg) = run_one(test, cand.clone()) {
                current = cand;
                current_msg = msg;
                improved = true;
                break;
            }
        }
        if !improved {
            return (current, current_msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let seen = std::sync::Mutex::new(0u32);
        run(
            ProptestConfig::with_cases(10),
            "count_cases",
            (0u64..100,),
            |(_v,)| {
                *seen.lock().unwrap() += 1;
            },
        );
        assert_eq!(seen.into_inner().unwrap(), 10);
    }

    #[test]
    fn determinism_same_name_same_inputs() {
        let collect = |name: &str| {
            let inputs = std::sync::Mutex::new(Vec::new());
            run(
                ProptestConfig::with_cases(20),
                name,
                (0u64..1_000_000,),
                |(v,)| inputs.lock().unwrap().push(v),
            );
            inputs.into_inner().unwrap()
        };
        assert_eq!(collect("alpha"), collect("alpha"));
        assert_ne!(collect("alpha"), collect("beta"));
    }

    #[test]
    fn vec_failures_shrink_structurally() {
        // Property: no vector contains a value >= 50. The minimal
        // counterexample is a single-element vector [50].
        let got = catch_unwind(AssertUnwindSafe(|| {
            run(
                ProptestConfig::with_cases(100),
                "vec_shrink",
                (crate::collection::vec(0u32..1000, 1..100),),
                |(v,)| assert!(v.iter().all(|&x| x < 50)),
            );
        }))
        .unwrap_err();
        let msg = got.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("([50],)"),
            "expected minimal input ([50],), got: {msg}"
        );
    }
}
