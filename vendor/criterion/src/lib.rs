//! In-tree stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the subset of the criterion 0.5 API the workspace's
//! benches use — groups, `bench_function`, `bench_with_input`,
//! `Bencher::iter` / `iter_batched`, and the two entry-point macros —
//! with a simple calibrated wall-clock measurement (warm-up, then a
//! fixed measurement window, reporting mean ns/iter). No statistics,
//! plots or HTML: the goal is that `cargo bench` compiles, runs and
//! prints usable numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized (accepted for API compatibility; the
/// stand-in always runs one routine call per batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state (setup dominates; fewer batches).
    LargeInput,
    /// One batch per measurement.
    PerIteration,
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter value.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Build an id from a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    measurement: Duration,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement: Duration::from_millis(400),
            warm_up: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; CLI filtering is not implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Set the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(self.warm_up, self.measurement, name, &mut f);
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility (the stand-in is time-budgeted,
    /// not sample-count-budgeted).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Benchmark a closure under `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(
            self.criterion.warm_up,
            self.criterion.measurement,
            &label,
            &mut f,
        );
        self
    }

    /// Benchmark a closure that receives a borrowed input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(
            self.criterion.warm_up,
            self.criterion.measurement,
            &label,
            &mut |b| f(b, input),
        );
        self
    }

    /// Finish the group (no-op; numbers are printed as they are taken).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] or
/// [`Bencher::iter_batched`] exactly once.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    result: Option<Measurement>,
}

struct Measurement {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `routine` called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that fills
        // the measurement window.
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let target = ((self.measurement.as_secs_f64() / per_iter.max(1e-9)) as u64).max(1);
        let begin = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.result = Some(Measurement {
            iters: target,
            elapsed: begin.elapsed(),
        });
    }

    /// Measure `routine` over fresh inputs produced by `setup` (setup
    /// time excluded from the measurement).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        // One warm-up batch, then measure whole batches until the window
        // is exhausted (at least 3 batches).
        black_box(routine(setup()));
        let mut elapsed = Duration::ZERO;
        let mut batches = 0u64;
        while elapsed < self.measurement || batches < 3 {
            let input = setup();
            let begin = Instant::now();
            black_box(routine(input));
            elapsed += begin.elapsed();
            batches += 1;
            if batches >= 1_000 {
                break;
            }
        }
        self.result = Some(Measurement {
            iters: batches,
            elapsed,
        });
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    warm_up: Duration,
    measurement: Duration,
    label: &str,
    f: &mut F,
) {
    let mut b = Bencher {
        warm_up,
        measurement,
        result: None,
    };
    f(&mut b);
    match b.result.take() {
        Some(m) => {
            let ns = m.elapsed.as_nanos() as f64 / m.iters.max(1) as f64;
            println!("bench {label:<50} {ns:>14.1} ns/iter ({} iters)", m.iters);
        }
        None => println!("bench {label:<50} (no measurement taken)"),
    }
}

/// Bundle benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_reports_plausible_time() {
        let mut c = Criterion {
            measurement: Duration::from_millis(10),
            warm_up: Duration::from_millis(2),
        };
        let mut g = c.benchmark_group("g");
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn iter_batched_runs_setup_per_batch() {
        let mut c = Criterion {
            measurement: Duration::from_millis(5),
            warm_up: Duration::from_millis(1),
        };
        let mut setups = 0u32;
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("f", 1), &3u32, |b, &x| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![x; 8]
                },
                |v| v.iter().sum::<u32>(),
                BatchSize::LargeInput,
            );
        });
        g.finish();
        assert!(setups >= 3);
    }
}
