//! In-tree stand-in for the `crossbeam` crate (see `vendor/README.md`).
//!
//! Only `crossbeam::atomic::AtomicCell` is provided, because that is the
//! only item the workspace uses (the concurrent table's bucket cells).
//! Upstream `AtomicCell<T>` is lock-free for small `T` and falls back to
//! a striped spinlock for larger ones; this stand-in always takes the
//! lock-based route via `std::sync::Mutex`, which is safe (no `unsafe`
//! anywhere) and preserves the linearizability the table relies on. The
//! concurrent table additionally brackets every mutation with its own
//! per-bucket seqlock versions, so reader-visible semantics are
//! unchanged — only raw throughput differs from upstream.

pub mod atomic {
    use std::sync::{Mutex, PoisonError};

    /// A thread-safe mutable memory location, API-compatible with the
    /// subset of `crossbeam::atomic::AtomicCell` the workspace uses.
    #[derive(Debug, Default)]
    pub struct AtomicCell<T> {
        value: Mutex<T>,
    }

    impl<T> AtomicCell<T> {
        /// Create a cell holding `value`.
        pub const fn new(value: T) -> Self {
            Self {
                value: Mutex::new(value),
            }
        }

        /// Replace the contents, returning the previous value.
        pub fn swap(&self, value: T) -> T {
            std::mem::replace(
                &mut self.value.lock().unwrap_or_else(PoisonError::into_inner),
                value,
            )
        }

        /// Store `value`.
        pub fn store(&self, value: T) {
            *self.value.lock().unwrap_or_else(PoisonError::into_inner) = value;
        }

        /// Consume the cell, returning the value.
        pub fn into_inner(self) -> T {
            self.value
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T: Copy> AtomicCell<T> {
        /// Load a copy of the contents.
        pub fn load(&self) -> T {
            *self.value.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T: Default> AtomicCell<T> {
        /// Take the value, leaving `T::default()`.
        pub fn take(&self) -> T {
            self.swap(T::default())
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::Arc;

        #[test]
        fn load_store_swap() {
            let c = AtomicCell::new(Some((1u64, 2u64)));
            assert_eq!(c.load(), Some((1, 2)));
            c.store(None);
            assert_eq!(c.load(), None);
            assert_eq!(c.swap(Some((3, 4))), None);
            assert_eq!(c.take(), Some((3, 4)));
            assert_eq!(c.load(), None);
        }

        #[test]
        fn concurrent_store_load_is_torn_free() {
            // Writers alternate between two "wide" values; readers must
            // never observe a mix of the two.
            let c = Arc::new(AtomicCell::new((0u64, 0u64)));
            let w = {
                let c = c.clone();
                std::thread::spawn(move || {
                    for i in 0..50_000u64 {
                        if i % 2 == 0 {
                            c.store((u64::MAX, u64::MAX));
                        } else {
                            c.store((0, 0));
                        }
                    }
                })
            };
            for _ in 0..50_000 {
                let (a, b) = c.load();
                assert_eq!(a, b, "torn read");
            }
            w.join().unwrap();
        }
    }
}
