//! In-tree stand-in for the `parking_lot` crate (see `vendor/README.md`).
//!
//! Provides the non-poisoning `Mutex` API the workspace uses, backed by
//! `std::sync::Mutex`. Poisoning is deliberately swallowed: a panicking
//! writer must not wedge every later test in the process, and the
//! invariant validators re-check structural state anyway.

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard; releases the lock on drop.
pub struct MutexGuard<'a, T> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Exclusive access through `&mut self` without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(7u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // A parking_lot-style mutex is unpoisonable.
        assert_eq!(*m.lock(), 7);
        *m.lock() = 8;
        assert_eq!(*m.lock(), 8);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
