#!/bin/sh
# Regenerate every table and figure of the paper at full scale.
# Results land in results/*.csv and results/full_run.txt.
#
# MCB_SMOKE=1 switches to the CI smoke mode: only the quick cross-scheme
# bench_smoke pass runs, at a reduced scale, writing the machine-readable
# summary to results/bench_smoke.json.
set -e
cd "$(dirname "$0")"
if [ "${MCB_SMOKE:-0}" = "1" ]; then
    : "${MCB_CAP:=45000}" "${MCB_RUNS:=1}" "${MCB_LOOKUPS:=10000}"
    BINS="bench_smoke"
else
    : "${MCB_CAP:=393216}" "${MCB_RUNS:=5}" "${MCB_LOOKUPS:=100000}"
    BINS="table1_first_collision fig9_kickouts fig10_insert_access fig11_first_failure \
fig12_lookup_hit fig13_lookup_miss fig14_delete table2_stash_single table3_stash_blocked \
fig15_insert_latency fig16_lookup_latency ablation_counters ablation_pruning \
ablation_deletion ablation_stash_screen ablation_hash_family ablation_chs ablation_pipeline ablation_onchip"
fi
export MCB_CAP MCB_RUNS MCB_LOOKUPS
mkdir -p results
: > results/full_run.txt
for b in $BINS; do
    echo "=== $b (cap=$MCB_CAP runs=$MCB_RUNS) ===" | tee -a results/full_run.txt
    cargo run -q --release -p mccuckoo-bench --bin "$b" 2>&1 | tee -a results/full_run.txt
    echo | tee -a results/full_run.txt
done
echo "all experiments complete" | tee -a results/full_run.txt
