//! DocWords-like synthetic dataset.
//!
//! The paper's software evaluation inserts keys formed by combining the
//! DocID and WordID of the UCI *DocWords* NYTimes bag-of-words collection
//! (§IV.A.2). This generator reproduces that shape without the dataset:
//! documents are visited in order; each document contains a random number
//! of distinct words whose IDs are Zipf-distributed over a fixed
//! vocabulary (word frequency in news text is Zipfian). The `(doc, word)`
//! pair is packed into a `u64` key exactly as the paper does.
//!
//! Distinctness is structural: a key repeats only if the same word is
//! drawn twice in one document, which is filtered with a per-document
//! small set, so the stream yields distinct keys overall (doc IDs never
//! repeat).

use crate::zipf::Zipf;
use hash_kit::splitmix::SplitMix64;

/// NYTimes-like parameters: vocabulary ≈ 102 k words (the real NYTimes
/// collection has 102,660), ~330 distinct words per article.
pub const NYTIMES_VOCABULARY: u64 = 102_660;
/// Mean distinct words per document in the synthetic corpus.
pub const MEAN_WORDS_PER_DOC: u64 = 330;

/// Generator of `(doc_id, word_id)` keys packed as `doc << 32 | word`.
///
/// ```
/// use workloads::DocWordsLike;
///
/// let mut corpus = DocWordsLike::nytimes_like(7);
/// let key = corpus.next_key();
/// let (doc, word) = DocWordsLike::unpack(key);
/// assert!(u64::from(word) < workloads::docwords::NYTIMES_VOCABULARY);
/// assert_eq!(DocWordsLike::pack(doc, word), key);
/// ```
#[derive(Debug, Clone)]
pub struct DocWordsLike {
    vocabulary: u64,
    mean_words_per_doc: u64,
    zipf: Zipf,
    rng: SplitMix64,
    current_doc: u32,
    words_left_in_doc: u32,
    seen_in_doc: Vec<u32>,
}

impl DocWordsLike {
    /// NYTimes-shaped corpus with Zipf exponent ~1 over the vocabulary.
    pub fn nytimes_like(seed: u64) -> Self {
        Self::new(NYTIMES_VOCABULARY, MEAN_WORDS_PER_DOC, 1.0, seed)
    }

    /// Fully parameterised corpus.
    ///
    /// # Panics
    /// Panics if `vocabulary == 0` or `mean_words_per_doc == 0` or the
    /// Zipf exponent is invalid.
    pub fn new(vocabulary: u64, mean_words_per_doc: u64, zipf_s: f64, seed: u64) -> Self {
        assert!(vocabulary > 0, "vocabulary must be non-empty");
        assert!(mean_words_per_doc > 0, "documents must contain words");
        assert!(
            mean_words_per_doc <= vocabulary,
            "documents cannot have more distinct words than the vocabulary"
        );
        let mut rng = SplitMix64::new(seed ^ 0xD0C5_0F7E_57A7_15E5);
        let zipf_seed = rng.next_u64();
        Self {
            vocabulary,
            mean_words_per_doc,
            zipf: Zipf::new(vocabulary, zipf_s, zipf_seed),
            rng,
            current_doc: 0,
            words_left_in_doc: 0,
            seen_in_doc: Vec::new(),
        }
    }

    /// Pack `(doc, word)` into the table key like the paper does.
    #[inline]
    pub fn pack(doc: u32, word: u32) -> u64 {
        ((doc as u64) << 32) | word as u64
    }

    /// Unpack a key back into `(doc, word)`.
    #[inline]
    pub fn unpack(key: u64) -> (u32, u32) {
        ((key >> 32) as u32, key as u32)
    }

    fn start_next_doc(&mut self) {
        self.current_doc = self.current_doc.wrapping_add(1);
        // Document length: uniform in [mean/2, 3*mean/2] — crude but the
        // tables only see key counts, not the length distribution.
        let half = (self.mean_words_per_doc / 2).max(1);
        self.words_left_in_doc = (half + self.rng.next_below(2 * half)) as u32;
        self.seen_in_doc.clear();
    }

    /// Next distinct `(doc, word)` key.
    pub fn next_key(&mut self) -> u64 {
        while self.words_left_in_doc == 0 {
            self.start_next_doc();
        }
        loop {
            let word = (self.zipf.sample() - 1) as u32;
            if !self.seen_in_doc.contains(&word) {
                self.seen_in_doc.push(word);
                self.words_left_in_doc -= 1;
                return Self::pack(self.current_doc, word);
            }
            // Head words repeat often under Zipf; if the document somehow
            // saturates the vocabulary, close it instead of spinning.
            if self.seen_in_doc.len() as u64 >= self.vocabulary {
                self.words_left_in_doc = 0;
                return self.next_key_fresh_doc();
            }
        }
    }

    fn next_key_fresh_doc(&mut self) -> u64 {
        self.start_next_doc();
        self.next_key()
    }

    /// Take `n` keys as a vector.
    pub fn take_vec(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_key()).collect()
    }

    /// A key absent from any possible output: word IDs are `< vocabulary`,
    /// so a word ID of `u32::MAX` can never be generated (vocabulary is
    /// far below 2³²).
    pub fn absent_key(&self, j: u64) -> u64 {
        debug_assert!(self.vocabulary < u32::MAX as u64);
        Self::pack((j >> 16) as u32, u32::MAX - (j as u32 & 0xFFFF))
    }
}

impl Iterator for DocWordsLike {
    type Item = u64;
    fn next(&mut self) -> Option<u64> {
        Some(self.next_key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn pack_unpack_roundtrip() {
        for (d, w) in [(0u32, 0u32), (1, 2), (u32::MAX, u32::MAX), (7, 102_659)] {
            assert_eq!(DocWordsLike::unpack(DocWordsLike::pack(d, w)), (d, w));
        }
    }

    #[test]
    fn keys_are_distinct() {
        let mut g = DocWordsLike::new(10_000, 50, 1.0, 3);
        let mut seen = HashSet::new();
        for _ in 0..200_000 {
            assert!(seen.insert(g.next_key()));
        }
    }

    #[test]
    fn word_ids_stay_in_vocabulary() {
        let vocab = 500u64;
        let mut g = DocWordsLike::new(vocab, 20, 1.1, 4);
        for _ in 0..10_000 {
            let (_, w) = DocWordsLike::unpack(g.next_key());
            assert!((w as u64) < vocab);
        }
    }

    #[test]
    fn head_words_are_popular() {
        let mut g = DocWordsLike::new(10_000, 30, 1.0, 5);
        let mut head = 0u32;
        let n = 50_000;
        for _ in 0..n {
            let (_, w) = DocWordsLike::unpack(g.next_key());
            if w < 10 {
                head += 1;
            }
        }
        // Under Zipf(s=1, n=10k) the top-10 words carry ≈ 29% of mass;
        // per-document dedup trims repeats, so expect a lower but still
        // dominant share.
        let frac = head as f64 / n as f64;
        assert!(frac > 0.05, "head fraction {frac}");
    }

    #[test]
    fn absent_keys_never_collide_with_stream() {
        let mut g = DocWordsLike::new(1000, 20, 1.0, 6);
        let present: HashSet<u64> = g.take_vec(100_000).into_iter().collect();
        for j in 0..50_000u64 {
            assert!(!present.contains(&g.absent_key(j)));
        }
    }

    #[test]
    fn absent_keys_are_mutually_distinct() {
        let g = DocWordsLike::new(1000, 20, 1.0, 6);
        let mut seen = HashSet::new();
        for j in 0..100_000u64 {
            assert!(seen.insert(g.absent_key(j)));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = DocWordsLike::nytimes_like(9);
        let mut b = DocWordsLike::nytimes_like(9);
        assert_eq!(a.take_vec(1000), b.take_vec(1000));
    }

    #[test]
    fn tiny_vocabulary_documents_terminate() {
        // vocabulary smaller than requested doc length: generator must not
        // spin forever.
        let mut g = DocWordsLike::new(5, 5, 1.0, 8);
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(g.next_key()));
        }
    }
}
