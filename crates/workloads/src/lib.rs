//! # workloads — dataset substitutes and operation streams
//!
//! The paper evaluates on the UCI *DocWords* (NYTimes) bag-of-words
//! collection: "The DocID and WordID are combined to form the key of each
//! item and inserted into the hash tables" (§IV.A.2). The dataset itself is
//! not redistributable here, so this crate provides deterministic synthetic
//! substitutes that exercise the identical code paths (see `DESIGN.md` §3):
//!
//! * [`UniqueKeys`] — a bijective stream of distinct, well-mixed 64-bit
//!   keys (a Feistel network over the index, so uniqueness is structural,
//!   not probabilistic);
//! * [`DocWordsLike`] — `(doc_id, word_id)` keys with Zipf-distributed
//!   word frequencies, shaped like the paper's dataset;
//! * [`Zipf`] — a rejection-inversion Zipf sampler (built from scratch;
//!   the sanctioned `rand` has no Zipf distribution);
//! * [`OpStream`] — mixed insert/lookup/delete streams with configurable
//!   ratios and hit rates, for the examples and ablations.

pub mod docwords;
pub mod ops;
pub mod unique;
pub mod zipf;

pub use docwords::DocWordsLike;
pub use ops::{Op, OpMix, OpStream};
pub use unique::UniqueKeys;
pub use zipf::Zipf;
