//! Zipf-distributed sampling over `{1, …, n}`.
//!
//! Implements the rejection-inversion method of Hörmann & Derflinger
//! ("Rejection-inversion to generate variates from monotone discrete
//! distributions", 1996) — the same algorithm used by the Apache Commons
//! and `rand_distr` samplers — built from scratch on the workspace's
//! SplitMix64 stream. Word frequencies in real bag-of-words corpora are
//! famously Zipfian, which is why the DocWords substitute uses this.

use hash_kit::splitmix::SplitMix64;

/// Zipf sampler: `P(k) ∝ 1 / k^s` for `k ∈ {1, …, n}`.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    s: f64,
    // Precomputed constants of the rejection-inversion sampler.
    h_integral_x1: f64,
    h_integral_n: f64,
    threshold: f64,
    rng: SplitMix64,
}

impl Zipf {
    /// Create a sampler for `n` items with exponent `s > 0`, `s != 1` is
    /// handled as well as the harmonic case `s == 1`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s <= 0` or `s` is not finite.
    pub fn new(n: u64, s: f64, seed: u64) -> Self {
        assert!(n > 0, "zipf domain must be non-empty");
        assert!(s > 0.0 && s.is_finite(), "zipf exponent must be positive");
        let mut z = Self {
            n,
            s,
            h_integral_x1: 0.0,
            h_integral_n: 0.0,
            threshold: 0.0,
            rng: SplitMix64::new(seed ^ 0x71BF_00D5_21F0_3A7E),
        };
        z.h_integral_x1 = z.h_integral(1.5) - 1.0;
        z.h_integral_n = z.h_integral(n as f64 + 0.5);
        // Acceptance-shortcut constant of Hörmann & Derflinger:
        // s = 2 − H⁻¹(H(2.5) − h(2)).
        z.threshold = 2.0 - z.h_integral_inverse(z.h_integral(2.5) - z.h(2.0));
        z
    }

    /// H(x) = ∫ h, with h(x) = 1/x^s; closed forms for s == 1 and s != 1.
    fn h_integral(&self, x: f64) -> f64 {
        let log_x = x.ln();
        helper2((1.0 - self.s) * log_x) * log_x
    }

    /// h(x) = 1/x^s = exp(-s ln x)
    fn h(&self, x: f64) -> f64 {
        (-self.s * x.ln()).exp()
    }

    /// Inverse of `h_integral`.
    fn h_integral_inverse(&self, x: f64) -> f64 {
        let mut t = x * (1.0 - self.s);
        if t < -1.0 {
            t = -1.0;
        }
        (helper1(t) * x).exp()
    }

    /// Draw one sample in `{1, …, n}`.
    pub fn sample(&mut self) -> u64 {
        loop {
            let u01 = (self.rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let u = self.h_integral_n + u01 * (self.h_integral_x1 - self.h_integral_n);
            let x = self.h_integral_inverse(u);
            let mut k = (x + 0.5) as u64;
            k = k.clamp(1, self.n);
            if (k as f64 - x) <= self.threshold
                || u >= self.h_integral(k as f64 + 0.5) - self.h(k as f64)
            {
                return k;
            }
        }
    }
}

/// helper1(x) = ln(1+x)/x, stable near zero.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

/// helper2(x) = (exp(x)-1)/x, stable near zero.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_stay_in_domain() {
        let mut z = Zipf::new(100, 1.0, 5);
        for _ in 0..50_000 {
            let k = z.sample();
            assert!((1..=100).contains(&k));
        }
    }

    #[test]
    fn rank_one_dominates() {
        let mut z = Zipf::new(1000, 1.0, 6);
        let mut count1 = 0u32;
        let n = 100_000;
        for _ in 0..n {
            if z.sample() == 1 {
                count1 += 1;
            }
        }
        // For s=1, n=1000: P(1) = 1/H(1000) ≈ 1/7.485 ≈ 0.1336.
        let frac = count1 as f64 / n as f64;
        assert!((frac - 0.1336).abs() < 0.01, "P(1) ≈ {frac}");
    }

    #[test]
    fn frequencies_are_monotone_decreasing() {
        let mut z = Zipf::new(50, 1.2, 7);
        let mut counts = [0u64; 51];
        for _ in 0..200_000 {
            counts[z.sample() as usize] += 1;
        }
        // Compare rank buckets rather than individual ranks to avoid noise.
        let head: u64 = counts[1..=5].iter().sum();
        let mid: u64 = counts[6..=15].iter().sum();
        let tail: u64 = counts[16..=50].iter().sum();
        assert!(head > mid, "head {head} mid {mid}");
        assert!(mid > tail, "mid {mid} tail {tail}");
    }

    #[test]
    fn degenerate_single_item_domain() {
        let mut z = Zipf::new(1, 1.5, 8);
        for _ in 0..100 {
            assert_eq!(z.sample(), 1);
        }
    }

    #[test]
    fn matches_exact_distribution_for_small_n() {
        // Chi-square-style comparison against exact probabilities, n=10, s=2.
        let n = 10u64;
        let s = 2.0;
        let norm: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
        let mut z = Zipf::new(n, s, 9);
        let trials = 200_000u64;
        let mut counts = vec![0u64; n as usize + 1];
        for _ in 0..trials {
            counts[z.sample() as usize] += 1;
        }
        for k in 1..=n {
            let expect = (k as f64).powf(-s) / norm * trials as f64;
            let got = counts[k as usize] as f64;
            // Allow 5 sigma-ish slack on each cell.
            let sigma = expect.sqrt().max(3.0);
            assert!(
                (got - expect).abs() < 6.0 * sigma + 0.01 * expect,
                "rank {k}: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = Zipf::new(100, 1.0, 4);
        let mut b = Zipf::new(100, 1.0, 4);
        for _ in 0..100 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    #[should_panic(expected = "domain")]
    fn empty_domain_panics() {
        let _ = Zipf::new(0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn bad_exponent_panics() {
        let _ = Zipf::new(10, 0.0, 0);
    }
}
