//! Mixed operation streams.
//!
//! Generates insert/lookup/delete sequences with configurable ratios and
//! lookup hit rates, over keys from [`crate::UniqueKeys`]. Used by the
//! example applications, the differential tests (random op soup against a
//! model), and the ablation benches.

use crate::unique::UniqueKeys;
use hash_kit::splitmix::SplitMix64;

/// One table operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Insert a fresh key (value is derived from the key by the consumer).
    Insert(u64),
    /// Update the value of a live key (an upsert on an existing key).
    Update(u64),
    /// Look up a key expected to be present.
    LookupHit(u64),
    /// Look up a key guaranteed absent.
    LookupMiss(u64),
    /// Delete a previously inserted key.
    Delete(u64),
}

/// Ratios of an [`OpStream`]; they need not sum to 1, they are weights.
#[derive(Debug, Clone, Copy)]
pub struct OpMix {
    /// Weight of insertions.
    pub insert: u32,
    /// Weight of live-key updates.
    pub update: u32,
    /// Weight of present-key lookups.
    pub lookup_hit: u32,
    /// Weight of absent-key lookups.
    pub lookup_miss: u32,
    /// Weight of deletions.
    pub delete: u32,
}

impl OpMix {
    /// A read-heavy mix: 5% inserts, 85% hit lookups, 9% miss lookups,
    /// 1% deletes — the "much more lookups than insertions and deletions"
    /// regime the paper's concurrency section assumes.
    pub fn read_heavy() -> Self {
        Self {
            insert: 5,
            update: 0,
            lookup_hit: 85,
            lookup_miss: 9,
            delete: 1,
        }
    }

    /// YCSB workload A: 50% updates, 50% reads (over live keys).
    pub fn ycsb_a() -> Self {
        Self {
            insert: 0,
            update: 50,
            lookup_hit: 50,
            lookup_miss: 0,
            delete: 0,
        }
    }

    /// YCSB workload B: 5% updates, 95% reads.
    pub fn ycsb_b() -> Self {
        Self {
            insert: 0,
            update: 5,
            lookup_hit: 95,
            lookup_miss: 0,
            delete: 0,
        }
    }

    /// YCSB workload C: read-only.
    pub fn ycsb_c() -> Self {
        Self {
            insert: 0,
            update: 0,
            lookup_hit: 1,
            lookup_miss: 0,
            delete: 0,
        }
    }

    /// Insert-only (table build-up phase).
    pub fn insert_only() -> Self {
        Self {
            insert: 1,
            update: 0,
            lookup_hit: 0,
            lookup_miss: 0,
            delete: 0,
        }
    }

    /// A churn-heavy mix exercising delete paths: 30/30/10/30.
    pub fn churn() -> Self {
        Self {
            insert: 30,
            update: 0,
            lookup_hit: 30,
            lookup_miss: 10,
            delete: 30,
        }
    }

    fn total(&self) -> u32 {
        self.insert + self.update + self.lookup_hit + self.lookup_miss + self.delete
    }
}

/// Generator of operation sequences that is consistent by construction:
/// `LookupHit`/`Delete` only reference live keys, `LookupMiss` only
/// impossible keys, `Insert` only fresh keys.
#[derive(Debug)]
pub struct OpStream {
    mix: OpMix,
    keys: UniqueKeys,
    live: Vec<u64>,
    rng: SplitMix64,
    misses_issued: u64,
}

impl OpStream {
    /// Create a stream with the given mix and seed.
    ///
    /// # Panics
    /// Panics if all weights are zero.
    pub fn new(mix: OpMix, seed: u64) -> Self {
        assert!(mix.total() > 0, "op mix must have positive total weight");
        let mut rng = SplitMix64::new(seed ^ 0x0707_57AE_A11B_EA75);
        let keys = UniqueKeys::new(rng.next_u64());
        Self {
            mix,
            keys,
            live: Vec::new(),
            rng,
            misses_issued: 0,
        }
    }

    /// Number of currently live (inserted, not deleted) keys.
    pub fn live_len(&self) -> usize {
        self.live.len()
    }

    /// Pre-populate with `n` inserted keys (returned so the consumer can
    /// apply them to the table first).
    pub fn preload(&mut self, n: usize) -> Vec<u64> {
        let fresh = self.keys.take_vec(n);
        self.live.extend_from_slice(&fresh);
        fresh
    }

    /// Produce the next operation.
    pub fn next_op(&mut self) -> Op {
        let total = self.mix.total();
        loop {
            let roll = self.rng.next_below(total as u64) as u32;
            if roll < self.mix.insert {
                let k = self.keys.next_key();
                self.live.push(k);
                return Op::Insert(k);
            } else if roll < self.mix.insert + self.mix.update {
                if self.live.is_empty() {
                    continue; // nothing to update yet; re-roll
                }
                let i = self.rng.next_below(self.live.len() as u64) as usize;
                return Op::Update(self.live[i]);
            } else if roll < self.mix.insert + self.mix.update + self.mix.lookup_hit {
                if self.live.is_empty() {
                    continue; // nothing to hit yet; re-roll
                }
                let i = self.rng.next_below(self.live.len() as u64) as usize;
                return Op::LookupHit(self.live[i]);
            } else if roll
                < self.mix.insert + self.mix.update + self.mix.lookup_hit + self.mix.lookup_miss
            {
                let k = self.keys.absent_key(self.misses_issued);
                self.misses_issued += 1;
                return Op::LookupMiss(k);
            } else {
                if self.live.is_empty() {
                    continue;
                }
                let i = self.rng.next_below(self.live.len() as u64) as usize;
                let k = self.live.swap_remove(i);
                return Op::Delete(k);
            }
        }
    }

    /// Produce `n` operations.
    pub fn take_ops(&mut self, n: usize) -> Vec<Op> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn stream_is_internally_consistent() {
        // Replay ops against a set; hits must hit, misses must miss,
        // deletes must delete live keys, inserts must be fresh.
        let mut s = OpStream::new(OpMix::churn(), 1);
        let mut model: HashSet<u64> = s.preload(100).into_iter().collect();
        for _ in 0..50_000 {
            match s.next_op() {
                Op::Insert(k) => assert!(model.insert(k), "insert of existing key"),
                Op::Update(k) => assert!(model.contains(&k), "update of absent key"),
                Op::LookupHit(k) => assert!(model.contains(&k), "hit of absent key"),
                Op::LookupMiss(k) => assert!(!model.contains(&k), "miss of present key"),
                Op::Delete(k) => assert!(model.remove(&k), "delete of absent key"),
            }
        }
    }

    #[test]
    fn ratios_are_respected() {
        let mix = OpMix {
            insert: 50,
            update: 0,
            lookup_hit: 30,
            lookup_miss: 15,
            delete: 5,
        };
        let mut s = OpStream::new(mix, 2);
        s.preload(1000);
        let n = 100_000;
        let (mut i, mut h, mut m, mut d) = (0u32, 0u32, 0u32, 0u32);
        for _ in 0..n {
            match s.next_op() {
                Op::Insert(_) => i += 1,
                Op::Update(_) => unreachable!("mix has no updates"),
                Op::LookupHit(_) => h += 1,
                Op::LookupMiss(_) => m += 1,
                Op::Delete(_) => d += 1,
            }
        }
        let frac = |c: u32| c as f64 / n as f64;
        assert!((frac(i) - 0.50).abs() < 0.02, "insert {}", frac(i));
        assert!((frac(h) - 0.30).abs() < 0.02, "hit {}", frac(h));
        assert!((frac(m) - 0.15).abs() < 0.02, "miss {}", frac(m));
        assert!((frac(d) - 0.05).abs() < 0.02, "delete {}", frac(d));
    }

    #[test]
    fn insert_only_never_produces_other_ops() {
        let mut s = OpStream::new(OpMix::insert_only(), 3);
        for _ in 0..1000 {
            assert!(matches!(s.next_op(), Op::Insert(_)));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = OpStream::new(OpMix::read_heavy(), 4);
        let mut b = OpStream::new(OpMix::read_heavy(), 4);
        a.preload(10);
        b.preload(10);
        assert_eq!(a.take_ops(1000), b.take_ops(1000));
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn zero_mix_panics() {
        let _ = OpStream::new(
            OpMix {
                insert: 0,
                update: 0,
                lookup_hit: 0,
                lookup_miss: 0,
                delete: 0,
            },
            0,
        );
    }

    #[test]
    fn lookup_heavy_with_empty_table_rerolls_to_valid_ops() {
        // No preload and tiny insert weight: stream must still make
        // progress and only emit valid ops.
        let mut s = OpStream::new(
            OpMix {
                insert: 1,
                update: 0,
                lookup_hit: 99,
                lookup_miss: 0,
                delete: 0,
            },
            5,
        );
        let mut model = HashSet::new();
        for _ in 0..1000 {
            match s.next_op() {
                Op::Insert(k) => {
                    model.insert(k);
                }
                Op::LookupHit(k) => assert!(model.contains(&k)),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn ycsb_a_balances_updates_and_reads() {
        let mut s = OpStream::new(OpMix::ycsb_a(), 6);
        s.preload(500);
        let n = 20_000;
        let (mut u, mut h) = (0u32, 0u32);
        for _ in 0..n {
            match s.next_op() {
                Op::Update(_) => u += 1,
                Op::LookupHit(_) => h += 1,
                other => unreachable!("unexpected {other:?}"),
            }
        }
        let frac = u as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "update fraction {frac}");
        assert_eq!(u + h, n);
    }

    #[test]
    fn updates_only_reference_live_keys() {
        let mut s = OpStream::new(OpMix::ycsb_b(), 7);
        let live: std::collections::HashSet<u64> = s.preload(200).into_iter().collect();
        for _ in 0..5_000 {
            match s.next_op() {
                Op::Update(k) | Op::LookupHit(k) => assert!(live.contains(&k)),
                other => unreachable!("unexpected {other:?}"),
            }
        }
    }
}
