//! Structurally-unique key streams.
//!
//! `UniqueKeys` enumerates `mix64(perm(i))` where `perm` is a 4-round
//! Feistel network over 64 bits keyed by the seed. Both stages are
//! bijections, so the first `2^64` keys are all distinct *by construction*
//! — no dedup set needed even for the paper's 70 M-item fills — while
//! still looking uniformly random to the tables.

use hash_kit::splitmix::{mix64, SplitMix64};

/// Deterministic stream of distinct 64-bit keys.
///
/// ```
/// use workloads::UniqueKeys;
///
/// let mut gen = UniqueKeys::new(42);
/// let a = gen.next_key();
/// let b = gen.next_key();
/// assert_ne!(a, b);                     // distinct by construction
/// assert_eq!(UniqueKeys::new(42).next_key(), a); // deterministic
/// let absent = gen.absent_key(0);       // never produced by this stream
/// assert_ne!(absent, a);
/// ```
#[derive(Debug, Clone)]
pub struct UniqueKeys {
    round_keys: [u64; 4],
    next_index: u64,
}

impl UniqueKeys {
    /// A stream determined by `seed`; different seeds give disjoint-looking
    /// (though not formally disjoint) key universes.
    pub fn new(seed: u64) -> Self {
        let mut s = SplitMix64::new(seed ^ 0x5EED_5EED_5EED_5EED);
        Self {
            round_keys: [s.next_u64(), s.next_u64(), s.next_u64(), s.next_u64()],
            next_index: 0,
        }
    }

    /// The `i`-th key of the stream (random access).
    #[inline]
    pub fn key_at(&self, i: u64) -> u64 {
        mix64(self.permute(i))
    }

    /// 4-round Feistel over the two 32-bit halves: a bijection on u64.
    #[inline]
    fn permute(&self, x: u64) -> u64 {
        let mut left = (x >> 32) as u32;
        let mut right = x as u32;
        for rk in self.round_keys {
            let f = (mix64((right as u64) ^ rk) >> 17) as u32;
            let new_right = left ^ f;
            left = right;
            right = new_right;
        }
        ((left as u64) << 32) | right as u64
    }

    /// Inverse of [`UniqueKeys::key_at`]'s Feistel stage — recovers the
    /// stream index half of the construction. Exposed so adversarial
    /// workloads can build targeted keys; also proves bijectivity in the
    /// tests.
    #[inline]
    pub fn unpermute(&self, x: u64) -> u64 {
        let mut left = (x >> 32) as u32;
        let mut right = x as u32;
        for rk in self.round_keys.iter().rev() {
            let f = (mix64((left as u64) ^ rk) >> 17) as u32;
            let new_left = right ^ f;
            right = left;
            left = new_left;
        }
        ((left as u64) << 32) | right as u64
    }

    /// Take the next `n` keys as a vector.
    pub fn take_vec(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_key()).collect()
    }

    /// Next key in sequence.
    #[inline]
    pub fn next_key(&mut self) -> u64 {
        let k = self.key_at(self.next_index);
        self.next_index += 1;
        k
    }

    /// How many keys have been produced so far.
    pub fn produced(&self) -> u64 {
        self.next_index
    }

    /// A key guaranteed *not* to be among the first `produced()` keys:
    /// taken from far beyond the consumed prefix of the same bijection.
    /// `j` selects among such absent keys.
    pub fn absent_key(&self, j: u64) -> u64 {
        // Keys at indices counting down from u64::MAX; distinct from the
        // consumed prefix as long as fewer than 2^63 keys were produced.
        debug_assert!(self.next_index < (1 << 63));
        self.key_at(u64::MAX - j)
    }
}

impl Iterator for UniqueKeys {
    type Item = u64;
    fn next(&mut self) -> Option<u64> {
        Some(self.next_key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn permutation_roundtrips() {
        let g = UniqueKeys::new(42);
        let mut s = SplitMix64::new(1);
        for _ in 0..10_000 {
            let x = s.next_u64();
            assert_eq!(g.unpermute(g.permute(x)), x);
        }
        for x in [0u64, 1, u64::MAX] {
            assert_eq!(g.unpermute(g.permute(x)), x);
        }
    }

    #[test]
    fn first_million_keys_are_distinct() {
        let mut g = UniqueKeys::new(7);
        let mut seen = HashSet::with_capacity(1_000_000);
        for _ in 0..1_000_000u32 {
            assert!(seen.insert(g.next_key()));
        }
    }

    #[test]
    fn random_access_matches_stream() {
        let mut g = UniqueKeys::new(9);
        let ra = g.clone();
        for i in 0..1000u64 {
            assert_eq!(g.next_key(), ra.key_at(i));
        }
    }

    #[test]
    fn absent_keys_are_absent() {
        let mut g = UniqueKeys::new(3);
        let present: HashSet<u64> = g.take_vec(100_000).into_iter().collect();
        for j in 0..100_000u64 {
            assert!(!present.contains(&g.absent_key(j)));
        }
    }

    #[test]
    fn absent_keys_are_distinct_from_each_other() {
        let g = UniqueKeys::new(3);
        let mut seen = HashSet::new();
        for j in 0..50_000u64 {
            assert!(seen.insert(g.absent_key(j)));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = UniqueKeys::new(1);
        let mut b = UniqueKeys::new(2);
        let va = a.take_vec(64);
        let vb = b.take_vec(64);
        assert_ne!(va, vb);
    }

    #[test]
    fn keys_look_uniform() {
        // Top byte of the first 64k keys should spread over all 256 values.
        let mut g = UniqueKeys::new(11);
        let mut counts = [0u32; 256];
        for _ in 0..65_536 {
            counts[(g.next_key() >> 56) as usize] += 1;
        }
        let mean = 256.0;
        for &c in &counts {
            assert!((c as f64 - mean).abs() < mean * 0.4, "count {c}");
        }
    }
}
