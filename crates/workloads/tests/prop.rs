//! Property-based tests over the workload generators.

use proptest::prelude::*;
use std::collections::HashSet;
use workloads::{DocWordsLike, Op, OpMix, OpStream, UniqueKeys, Zipf};

proptest! {
    /// Any window of the UniqueKeys stream is collision-free, and
    /// random access agrees with sequential generation.
    #[test]
    fn unique_keys_windows(seed in any::<u64>(), start in 0u64..1_000_000, len in 1usize..2_000) {
        let gen = UniqueKeys::new(seed);
        let mut seen = HashSet::with_capacity(len);
        for i in 0..len as u64 {
            prop_assert!(seen.insert(gen.key_at(start + i)));
        }
    }

    /// Absent keys never collide with any prefix window they are asked
    /// to avoid.
    #[test]
    fn absent_keys_disjoint(seed in any::<u64>(), n in 1usize..3_000, j in 0u64..10_000) {
        let mut gen = UniqueKeys::new(seed);
        let prefix: HashSet<u64> = gen.take_vec(n).into_iter().collect();
        prop_assert!(!prefix.contains(&gen.absent_key(j)));
    }

    /// Zipf samples stay in domain for arbitrary (n, s) parameters.
    #[test]
    fn zipf_domain(n in 1u64..100_000, s in 0.1f64..4.0, seed in any::<u64>()) {
        let mut z = Zipf::new(n, s, seed);
        for _ in 0..200 {
            let v = z.sample();
            prop_assert!((1..=n).contains(&v));
        }
    }

    /// DocWords keys are distinct and their word IDs respect the
    /// vocabulary for arbitrary corpus shapes.
    #[test]
    fn docwords_shape(
        vocab in 2u64..5_000,
        words in 1u64..100,
        seed in any::<u64>(),
    ) {
        let words = words.min(vocab);
        let mut g = DocWordsLike::new(vocab, words, 1.0, seed);
        let mut seen = HashSet::new();
        for _ in 0..500 {
            let k = g.next_key();
            prop_assert!(seen.insert(k), "duplicate key");
            let (_, w) = DocWordsLike::unpack(k);
            prop_assert!((w as u64) < vocab);
        }
    }

    /// OpStream sequences are consistent for arbitrary non-degenerate
    /// mixes: hits hit, misses miss, deletes target live keys, inserts
    /// are fresh.
    #[test]
    fn op_stream_consistency(
        insert in 1u32..50,
        update in 0u32..50,
        hit in 0u32..50,
        miss in 0u32..50,
        delete in 0u32..50,
        seed in any::<u64>(),
    ) {
        let mix = OpMix { insert, update, lookup_hit: hit, lookup_miss: miss, delete };
        let mut s = OpStream::new(mix, seed);
        let mut model: HashSet<u64> = s.preload(20).into_iter().collect();
        for _ in 0..1_000 {
            match s.next_op() {
                Op::Insert(k) => prop_assert!(model.insert(k)),
                Op::Update(k) | Op::LookupHit(k) => prop_assert!(model.contains(&k)),
                Op::LookupMiss(k) => prop_assert!(!model.contains(&k)),
                Op::Delete(k) => prop_assert!(model.remove(&k)),
            }
        }
    }
}
