//! Acceptance: a 10k-op seeded fuzz run passes for every table type and
//! every adversarial mix, with per-batch invariant validation.

use mccuckoo_testkit::{fuzz_multiset_or_panic, fuzz_one_or_panic, MixProfile, TableKind};

#[test]
fn ten_k_ops_all_tables_all_profiles() {
    for kind in TableKind::ALL {
        for profile in MixProfile::ALL {
            fuzz_one_or_panic(kind, profile, 0xC0FFEE, 10_000);
        }
    }
}

#[test]
fn ten_k_ops_multiset() {
    fuzz_multiset_or_panic(0xC0FFEE, 10_000);
}

#[test]
fn a_second_seed_sweep_stays_clean() {
    for seed in [1u64, 7, 0xDEAD] {
        for kind in TableKind::ALL {
            fuzz_one_or_panic(kind, MixProfile::Balanced, seed, 2_000);
        }
        fuzz_multiset_or_panic(seed, 2_000);
    }
}
