//! Crash the maintenance loop at its two worst points and prove neither
//! loses anything.
//!
//! Requires `--features faults` (forwards `mccuckoo-core/testhooks`).
//!
//! * **Retirement.** A degraded split (every child placement forced to
//!   fail) leaves its whole slice served through forwarding. The
//!   retirement pass that should repair it is killed mid-drain, on its
//!   own thread, while readers hammer the forwarded keys and a writer
//!   keeps inserting. Any reader miss is a key lost in the crash window.
//!   A later pass must resume and drive the forwarding count to zero.
//!
//! * **Compaction.** The compactor dies *between* capturing its
//!   snapshot and truncating the log — the one spot where a naive
//!   implementation could lose the tail. The log must still be intact,
//!   full-log replay must still reproduce the table, and a clean re-run
//!   must compact and recover bit-identically across the boundary.

#![cfg(feature = "faults")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use hash_kit::SplitMix64;
use mccuckoo_core::maint::{Compactor, ManagedSnapshot};
use mccuckoo_core::oplog::{parse_log, LogSink, OpLog, OpRecord, VecSink};
use mccuckoo_core::{testhooks, McConfig, ShardedMcCuckoo};

/// Preloaded key domain; the maintenance tests never delete from it, so
/// availability is decidable for the readers.
const DOMAIN: u64 = 384;
/// Fresh keys the writer inserts while retirement runs.
const FRESH: u64 = 256;

fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
    err.downcast_ref::<&str>()
        .copied()
        .map(str::to_owned)
        .or_else(|| err.downcast_ref::<String>().cloned())
        .unwrap_or_default()
}

#[test]
fn crashed_retirement_under_fire_stays_consistent_and_resumes() {
    let t = ShardedMcCuckoo::<u64, u64>::new(2, McConfig::paper(256, 0x7E71_4E5D));
    for k in 0..DOMAIN {
        t.insert(k, k << 8).expect("preload fits");
    }
    // Degrade a split: every child placement fails, so the whole slice
    // stays in the parent behind live forwarding entries — the state the
    // maintenance loop exists to repair.
    testhooks::arm_fail_child_placement(u32::MAX);
    let degraded = t.begin_split(0).expect("split publishes");
    testhooks::disarm();
    assert!(degraded.failed > 0 && !degraded.forwarding_cleared);
    assert!(
        t.forwarding_live() > 0,
        "degraded split must leave forwarding up"
    );

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Readers hammer the preloaded (forwarded) keys. The writer only
        // touches fresh keys, so every probe must hit the exact preload
        // value — a miss is a key dropped by the crashed retirement.
        let mut readers = Vec::new();
        for rid in 0..2u64 {
            let t = &t;
            let stop = &stop;
            readers.push(scope.spawn(move || {
                let mut rng = SplitMix64::new(0xD00D ^ rid);
                let mut batch = [0u64; 16];
                while !stop.load(Ordering::Acquire) {
                    if rid == 0 {
                        let k = rng.next_below(DOMAIN);
                        assert_eq!(t.get(&k), Some(k << 8), "reader lost key {k}");
                    } else {
                        for slot in batch.iter_mut() {
                            *slot = rng.next_below(DOMAIN);
                        }
                        for (k, hit) in batch.iter().zip(t.lookup_batch(&batch)) {
                            assert_eq!(hit, Some(*k << 8), "batch reader lost key {k}");
                        }
                    }
                }
            }));
        }
        // A writer keeps the table moving: fresh inserts route through
        // the degraded child's slice too (forwarded births).
        let writer = scope.spawn(|| {
            for k in DOMAIN..DOMAIN + FRESH {
                t.insert(k, k << 8).expect("fresh insert fits");
            }
        });

        // The maintenance pass: dies mid-retirement, then comes back.
        let maint = scope.spawn(|| {
            // Thread-local: only this thread is sabotaged. The degraded
            // slice holds ~DOMAIN/2 keys, so the 10th visit is well
            // inside the drain.
            testhooks::arm_panic_in_migration(10);
            let crash = catch_unwind(AssertUnwindSafe(|| t.retire_forwarding()));
            testhooks::disarm();
            let err = crash.expect_err("the armed retirement must die");
            let msg = panic_message(err);
            assert!(
                msg.contains("injected panic mid-migration"),
                "retirement died of the wrong cause: {msg:?}"
            );
            // The crash keeps the forwarding entries up — degraded, not
            // broken. Later passes resume the drain and finish the job
            // (bounded retries: concurrent writers can make single
            // passes come up short).
            let mut last = t.retire_forwarding();
            for _ in 0..50 {
                if last.forwarding_live == 0 {
                    break;
                }
                last = t.retire_forwarding();
            }
            assert_eq!(last.forwarding_live, 0, "retirement never converged");
            assert_eq!(last.failed, 0, "final pass left keys behind");
        });

        writer
            .join()
            .unwrap_or_else(|e| std::panic::resume_unwind(e));
        maint
            .join()
            .unwrap_or_else(|e| std::panic::resume_unwind(e));
        stop.store(true, Ordering::Release);
        for h in readers {
            h.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        }
    });

    // Settled state: every key present, structure valid, the directory
    // clean, and the maintenance counters coherent.
    t.check_invariants().expect("post-crash invariants");
    for k in 0..DOMAIN + FRESH {
        assert_eq!(t.get(&k), Some(k << 8), "key {k} lost after recovery");
    }
    assert_eq!(t.forwarding_live(), 0);
    let s = t.stats();
    assert!(
        s.maint.retirements_attempted >= 2,
        "crash + resume attempts"
    );
    assert!(s.maint.retirements_succeeded >= 1);
    assert_eq!(s.maint.forwarding_live, 0);
}

#[test]
fn crashed_compaction_loses_nothing_and_reruns_cleanly() {
    let t = Arc::new(ShardedMcCuckoo::<u64, u64>::new(
        2,
        McConfig::paper(256, 0xC0DE_CAFE),
    ));
    let genesis = t.snapshot_live();
    let sink = VecSink::new();
    let log = OpLog::new(sink.clone());
    for k in 0..150u64 {
        t.insert(k, k.wrapping_mul(3)).unwrap();
        log.record(&OpRecord::Insert {
            key: k,
            value: k.wrapping_mul(3),
        });
    }
    t.begin_split(0).unwrap();
    log.record(&OpRecord::<u64, u64>::Split { shard: 0 });
    let records_before = sink.record_count();
    let compactor = Compactor::new(t.clone(), sink.clone());

    // Die at the worst point of capture-then-truncate: the snapshot
    // exists, the log has not been touched yet.
    testhooks::arm_panic_in_compaction(1);
    let crash = catch_unwind(AssertUnwindSafe(|| compactor.compact()));
    testhooks::disarm();
    let msg = panic_message(crash.expect_err("the armed compaction must die"));
    assert!(
        msg.contains("injected panic mid-compaction"),
        "compactor died of the wrong cause: {msg:?}"
    );

    // Nothing was truncated: the full log is intact and genesis replay
    // still reproduces the live table exactly.
    assert_eq!(sink.record_count(), records_before);
    assert_eq!(sink.first_record_index(), 0);
    let ops = parse_log::<u64, u64>(&sink.lines()).unwrap();
    let replayed = ShardedMcCuckoo::recover(genesis.clone(), &ops).unwrap();
    assert_eq!(replayed.len(), t.len());
    assert_eq!(replayed.shard_count(), t.shard_count());

    // A clean re-run compacts for real…
    let (snapshot, cr) = compactor.compact();
    assert_eq!(cr.records_dropped, records_before);
    assert_eq!(sink.record_count(), 0);
    assert_eq!(sink.first_record_index(), records_before as u64);
    let ms = ManagedSnapshot {
        at_tick: 0,
        log_pos: cr.log_pos,
        snapshot,
    };

    // …and writes across the boundary recover bit-identically from the
    // capture plus the retained tail.
    for k in 300..360u64 {
        t.insert(k, k.wrapping_mul(3)).unwrap();
        log.record(&OpRecord::Insert {
            key: k,
            value: k.wrapping_mul(3),
        });
    }
    for k in 0..20u64 {
        t.remove(&k);
        log.record(&OpRecord::<u64, u64>::Remove { key: k });
    }
    let offset = ms
        .tail_offset(sink.first_record_index())
        .expect("tail must not be truncated past the capture");
    let lines = sink.lines();
    let tail = parse_log::<u64, u64>(&lines[offset..]).unwrap();
    let recovered = ShardedMcCuckoo::recover(ms.snapshot.clone(), &tail).unwrap();
    assert_eq!(recovered.len(), t.len());
    assert_eq!(recovered.shard_count(), t.shard_count());
    let mut a = t.to_snapshot().items;
    let mut b = recovered.to_snapshot().items;
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "recovery diverged across the compaction boundary");
    for &(k, _) in &a {
        assert_eq!(
            recovered.shard_of(&k),
            t.shard_of(&k),
            "routing diverged at {k}"
        );
    }
    recovered.check_invariants().unwrap();
}
