//! Acceptance: an injected bookkeeping fault is caught by the
//! differential harness and shrunk to a tiny replayable sequence.
//!
//! Requires `--features faults` (forwards `mccuckoo-core/testhooks`).
//! The fault: every deletion skips the counter reset of its first copy
//! location, leaving a counter that claims a live copy in a vacated
//! bucket — exactly the kind of silent corruption the validators exist
//! to catch.

#![cfg(feature = "faults")]

use mccuckoo_core::testhooks;
use mccuckoo_testkit::{fuzz_one, MixProfile, TableKind};

#[test]
fn skipped_counter_reset_is_caught_and_shrunk() {
    // Arm for the whole thread so every shrink replay sees the same
    // faulty table; the guard disarms on exit so other tests in this
    // binary are unaffected.
    testhooks::arm_skip_counter_reset(u32::MAX);
    let result = fuzz_one(TableKind::Single, MixProfile::DeleteHeavy, 0x5EED, 5_000);
    testhooks::disarm();

    let report = result.expect_err("the injected fault must be detected");
    // The fault needs one effective insert and one delete; the shrinker
    // must get close to that minimal pair.
    assert!(
        report.min_len <= 6,
        "expected a near-minimal sequence, got {} ops: {}",
        report.min_len,
        report.min_ops
    );
    let text = report.to_string();
    assert!(
        text.contains("replay:"),
        "report must carry a replay line: {text}"
    );
    assert!(
        text.contains("seed 0x5eed"),
        "report must name the seed: {text}"
    );

    // Replayability: the same case fails again while the fault is armed
    // and passes once it is disarmed.
    testhooks::arm_skip_counter_reset(u32::MAX);
    let again = fuzz_one(TableKind::Single, MixProfile::DeleteHeavy, 0x5EED, 5_000);
    testhooks::disarm();
    let again = again.expect_err("armed replay must fail again");
    assert_eq!(
        again.min_ops, report.min_ops,
        "shrinking must be deterministic"
    );

    fuzz_one(TableKind::Single, MixProfile::DeleteHeavy, 0x5EED, 5_000)
        .expect("disarmed run must be clean");
}

// Under `paranoid` the corrupting remove() panics immediately (which is
// the feature working as intended); the direct-validator flow below
// assumes the mutation completes, so it only runs without it.
#[cfg(not(feature = "paranoid"))]
#[test]
fn bounded_fault_hits_exactly_n_deletions() {
    // A single armed deletion corrupts one bucket; a direct validator
    // call sees it without the differential machinery.
    use mccuckoo_core::{DeletionMode, McConfig, McCuckoo};
    let mut t: McCuckoo<u64, u64> =
        McCuckoo::new(McConfig::paper(64, 9).with_deletion(DeletionMode::Reset));
    for k in 0..20u64 {
        t.insert_new(k, k).unwrap();
    }
    t.check_invariants().unwrap();
    testhooks::arm_skip_counter_reset(1);
    t.remove(&7);
    testhooks::disarm();
    let err = t
        .check_invariants()
        .expect_err("corruption must be visible");
    assert!(!err.is_empty());
}

#[test]
fn planned_engine_insert_dying_mid_kick_is_a_physical_noop() {
    // For the plan-first policies (BFS, bubbling) the injected panic
    // fires after the plan succeeds but before the first mutation, so a
    // sequential insert that dies there must leave the table *bit-for-
    // bit* untouched: same length, every stored key intact, and the
    // offered key absent.
    use std::panic::{catch_unwind, AssertUnwindSafe};

    use mccuckoo_core::{KickPolicyKind, McConfig, McCuckoo, StashPolicy};

    for kind in [KickPolicyKind::Bfs, KickPolicyKind::Bubble] {
        let mut t: McCuckoo<u64, u64> = McCuckoo::new(
            McConfig::paper(24, 41)
                .with_stash(StashPolicy::None)
                .with_kick_policy(kind),
        );
        let mut stored: Vec<u64> = Vec::new();
        testhooks::arm_panic_in_kick(u32::MAX);
        let mut died_at = None;
        for k in 0..10_000u64 {
            let len_before = t.len();
            match catch_unwind(AssertUnwindSafe(|| t.insert(k, k ^ 0xF00D).is_ok())) {
                Ok(true) => stored.push(k),
                Ok(false) => {} // overflow without a kick plan; keep going
                Err(_) => {
                    died_at = Some((k, len_before));
                    break;
                }
            }
        }
        testhooks::disarm();
        let (k, len_before) = died_at.unwrap_or_else(|| {
            panic!("{kind:?}: filling a 72-bucket table must reach a kick plan")
        });
        assert_eq!(t.len(), len_before, "{kind:?}: dying insert changed len");
        assert_eq!(t.get(&k), None, "{kind:?}: dying insert left its key");
        for &s in &stored {
            assert_eq!(t.get(&s), Some(&(s ^ 0xF00D)), "{kind:?}: key {s} damaged");
        }
        t.check_invariants().unwrap();
    }
}

#[test]
fn random_walk_engine_dying_mid_kick_stays_structurally_valid() {
    // The paper's mutate-as-you-walk random walk cannot promise a
    // physical no-op (relocations already made stay, and the carried
    // item is lost with the dying thread) — but the table must remain
    // structurally valid: counters consistent, every surviving key
    // findable.
    use std::panic::{catch_unwind, AssertUnwindSafe};

    use mccuckoo_core::{McConfig, McCuckoo, StashPolicy};

    let mut t: McCuckoo<u64, u64> =
        McCuckoo::new(McConfig::paper(24, 42).with_stash(StashPolicy::None));
    testhooks::arm_panic_in_kick(u32::MAX);
    let mut died = false;
    for k in 0..10_000u64 {
        if catch_unwind(AssertUnwindSafe(|| t.insert(k, k).is_ok())).is_err() {
            died = true;
            break;
        }
    }
    testhooks::disarm();
    assert!(died, "filling a 72-bucket table must reach a kick walk");
    t.check_invariants().unwrap();
}

#[test]
fn writer_panic_mid_kick_releases_stripes_and_preserves_the_table() {
    // A writer dies *while holding kick-walk stripe locks* (injected
    // panic fires after the path is planned and locked, before any
    // bucket mutation). The RAII stripe guards must release every lock
    // on unwind, and — the locks being unpoisonable — the table must
    // stay fully readable, writable and structurally valid for every
    // other thread.
    use std::sync::Arc;

    use mccuckoo_core::{ConcurrentMcCuckoo, McConfig};

    let t = Arc::new(ConcurrentMcCuckoo::<u64, u64>::new(McConfig::paper(64, 3)));
    let dead = {
        let t = Arc::clone(&t);
        std::thread::spawn(move || {
            // Thread-local: only this writer is sabotaged.
            testhooks::arm_panic_in_kick(u32::MAX);
            for k in 0..100_000u64 {
                let _ = t.insert(k, k);
            }
        })
    };
    let err = dead
        .join()
        .expect_err("filling a 192-bucket table must reach a kick walk");
    let msg = err
        .downcast_ref::<&str>()
        .copied()
        .map(str::to_owned)
        .or_else(|| err.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(
        msg.contains("injected panic mid-kick-walk"),
        "writer died of the wrong cause: {msg:?}"
    );

    // Unwinding dropped the stripe guards: nothing is left locked.
    assert!(
        t.stripes_quiescent(),
        "a dead writer left stripe locks held"
    );
    // The panic fired before any bucket mutation, so the table is intact.
    t.check_invariants().unwrap();

    // And it is still fully operational from an unarmed thread.
    let survivor = (0..100_000u64)
        .find(|k| t.get(k).is_some())
        .expect("keys inserted before the panic must survive");
    assert_eq!(t.insert(survivor, 424_242), Ok(true));
    assert_eq!(t.get(&survivor), Some(424_242));
    assert_eq!(t.remove(&survivor), Some(424_242));
    assert_eq!(t.get(&survivor), None);
    t.check_invariants().unwrap();
}
