//! Crash the shard migrator mid-split *under fire* and prove the
//! forwarding map keeps the table consistent.
//!
//! Requires `--features faults` (forwards `mccuckoo-core/testhooks`).
//! The injected fault kills the migration cursor partway through a
//! drain, on the migrator's own thread, while writers keep upserting
//! and readers keep probing. Because the table is preloaded and the
//! writers never delete, every reader probe must HIT — any `None` is a
//! key lost in the half-migrated window, the exact failure the
//! forwarding entry exists to prevent. A later `begin_split` must then
//! resume the dead migrator's drain and retire the forwarding entry.

#![cfg(feature = "faults")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};

use hash_kit::SplitMix64;
use mccuckoo_core::{testhooks, McConfig, ShardedMcCuckoo};

/// Preloaded key domain; never shrinks, so availability is decidable.
const DOMAIN: u64 = 384;
/// Writers rewrite each key's value as `(key << 8) | generation`.
const MAX_GEN: u64 = 5;

fn check_value(k: u64, v: u64, who: &str) {
    assert_eq!(v >> 8, k, "{who}: foreign value {v:#x} under key {k}");
    assert!((v & 0xFF) <= MAX_GEN, "{who}: phantom generation in {v:#x}");
}

#[test]
fn crashed_migrator_under_fire_stays_consistent_and_resumes() {
    let t = ShardedMcCuckoo::<u64, u64>::new(2, McConfig::paper(256, 0xFA17_5EED));
    for k in 0..DOMAIN {
        t.insert(k, k << 8).expect("preload fits");
    }

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Writers: pure upserts, generation-tagged so readers can tell a
        // legitimate rewrite from a torn or foreign value.
        let mut workers = Vec::new();
        for tid in 0..2u64 {
            let t = &t;
            workers.push(scope.spawn(move || {
                for gen in 1..=MAX_GEN {
                    for k in (tid * DOMAIN / 2)..((tid + 1) * DOMAIN / 2) {
                        t.insert(k, (k << 8) | gen).expect("upsert fits");
                    }
                }
            }));
        }
        // Readers: every probe must hit — a miss is a key dropped in the
        // crash window. One point reader, one batched reader.
        for rid in 0..2u64 {
            let t = &t;
            let stop = &stop;
            workers.push(scope.spawn(move || {
                let mut rng = SplitMix64::new(0xBEEF ^ rid);
                let mut batch = [0u64; 16];
                while !stop.load(Ordering::Acquire) {
                    if rid == 0 {
                        let k = rng.next_below(DOMAIN);
                        let v = t.get(&k).unwrap_or_else(|| {
                            panic!("reader lost key {k} during the crashed split")
                        });
                        check_value(k, v, "reader");
                    } else {
                        for slot in batch.iter_mut() {
                            *slot = rng.next_below(DOMAIN);
                        }
                        for (k, hit) in batch.iter().zip(t.lookup_batch(&batch)) {
                            let v = hit.unwrap_or_else(|| {
                                panic!("batch reader lost key {k} during the crashed split")
                            });
                            check_value(*k, v, "batch reader");
                        }
                    }
                }
            }));
        }

        // The migrator: dies mid-drain, then comes back and resumes.
        let migrator = scope.spawn(|| {
            // Thread-local: only the migrator is sabotaged. The split
            // has ~DOMAIN/2 keys to visit, so the 40th visit is well
            // inside the drain.
            testhooks::arm_panic_in_migration(40);
            let crash = catch_unwind(AssertUnwindSafe(|| t.begin_split(0)));
            testhooks::disarm();
            let err = crash.expect_err("the armed drain must die");
            let msg = err
                .downcast_ref::<&str>()
                .copied()
                .map(str::to_owned)
                .or_else(|| err.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            assert!(
                msg.contains("injected panic mid-migration"),
                "migrator died of the wrong cause: {msg:?}"
            );
            // The child shard was already published; the forwarding
            // entry is what keeps its keys reachable right now.
            assert_eq!(t.shard_count(), 3, "crash must not unpublish the child");

            // Resume: the second call picks the dead drain back up and
            // retires the forwarding entry.
            let report = t.begin_split(0).expect("resume must succeed");
            assert!(report.resumed, "second split call must resume, not restart");
            assert_eq!(report.failed, 0, "resume left keys behind");
            assert!(report.forwarding_cleared, "forwarding must retire");

            // And a fresh split of the recovered table still works.
            let report = t.begin_split(1).expect("later split must succeed");
            assert!(!report.resumed);
            assert_eq!(t.shard_count(), 4);
        });

        for h in workers.drain(..2) {
            h.join().expect("writer died");
        }
        migrator
            .join()
            .unwrap_or_else(|e| std::panic::resume_unwind(e));
        stop.store(true, Ordering::Release);
        for h in workers {
            h.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        }
    });

    // Settled state: every key present at its final generation range,
    // structure valid, stats coherent.
    t.check_invariants().expect("post-crash invariants");
    for k in 0..DOMAIN {
        let v = t
            .get(&k)
            .unwrap_or_else(|| panic!("key {k} lost after recovery"));
        check_value(k, v, "final sweep");
    }
    let stats = t.stats();
    // Three begin_split calls: crash (started, not completed), resume
    // (started + completed) and the fresh split (started + completed).
    assert_eq!(stats.migration.splits_started, 3);
    assert_eq!(stats.migration.splits_completed, 2);
    assert!(stats.migration.forwarding_hits > 0 || stats.migration.keys_moved > 0);
}
