//! Differential test for [`ConcurrentMcCuckoo`] under real parallelism.
//!
//! The table is single-writer/many-readers, so the strongest decidable
//! checks are:
//!
//! 1. **Writer differential** — a seeded op sequence applied by the
//!    writer thread while readers hammer the table must leave exactly
//!    the state the sequential oracle predicts (readers are pure).
//! 2. **Single-key linearizability** — for a key whose history is a
//!    monotone sequence of updates, every reader must observe a
//!    non-decreasing sequence of values: observing `v` then `v' < v`
//!    would order the writes backwards, which no linearization allows.
//! 3. **Absence is sticky** — after the writer removes a key and stops,
//!    no reader may resurrect it.
//!
//! Seeded schedules: the *op sequences* are deterministic per seed; the
//! thread interleaving varies, which is the point — assertions hold for
//! every interleaving.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use hash_kit::SplitMix64;
use mccuckoo_core::{ConcurrentMcCuckoo, McConfig};

#[derive(Clone, Copy, Debug)]
enum WOp {
    Insert(u64, u64),
    Remove(u64),
}

/// Seeded writer schedule over a churn key set, plus periodic monotone
/// bumps of a designated key.
fn schedule(seed: u64, n: usize, churn_domain: u64) -> Vec<WOp> {
    let mut rng = SplitMix64::new(seed ^ 0x11EA_11CE_5EED_0001);
    let mut ops = Vec::with_capacity(n);
    for i in 0..n {
        // Churn keys live above the monotone key (key 0).
        let k = 1 + rng.next_below(churn_domain);
        if rng.next_below(100) < 60 {
            ops.push(WOp::Insert(k, i as u64));
        } else {
            ops.push(WOp::Remove(k));
        }
    }
    ops
}

#[test]
fn writer_differential_with_reader_storm() {
    const MONOTONE_KEY: u64 = 0;
    for seed in [3u64, 21] {
        let t = Arc::new(ConcurrentMcCuckoo::<u64, u64>::new(McConfig::paper(
            512, seed,
        )));
        let ops = schedule(seed, 30_000, 600);
        let stop = Arc::new(AtomicBool::new(false));

        let violations = std::thread::scope(|scope| {
            let mut readers = Vec::new();
            for r in 0..3 {
                let t = Arc::clone(&t);
                let stop = Arc::clone(&stop);
                readers.push(scope.spawn(move || {
                    // Check 2: monotone reads of the designated key.
                    let mut last_seen = 0u64;
                    let mut violations = 0usize;
                    let mut spin = r as u64;
                    while !stop.load(Ordering::Acquire) {
                        if let Some(v) = t.get(&MONOTONE_KEY) {
                            if v < last_seen {
                                violations += 1;
                            }
                            last_seen = v;
                        }
                        // Touch churn keys too, to keep the seqlock
                        // retry paths busy (result is unchecked: any
                        // value is legal mid-churn).
                        let _ = t.get(&(1 + spin % 600));
                        spin = spin.wrapping_add(1);
                    }
                    violations
                }));
            }

            // Writer: monotone bumps interleaved with seeded churn.
            let mut bump = 0u64;
            for (i, op) in ops.iter().enumerate() {
                if i % 64 == 0 {
                    bump += 1;
                    t.insert(MONOTONE_KEY, bump).unwrap();
                }
                match *op {
                    WOp::Insert(k, v) => {
                        let _ = t.insert(k, v);
                    }
                    WOp::Remove(k) => {
                        let _ = t.remove(&k);
                    }
                }
            }
            stop.store(true, Ordering::Release);
            readers
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<usize>()
        });
        assert_eq!(violations, 0, "seed {seed}: non-monotone single-key reads");

        // Check 1: final state equals the sequential oracle. Failed
        // inserts mutate nothing, so mirror them by probing the table.
        let mut oracle: HashMap<u64, u64> = HashMap::new();
        let mut bump = 0u64;
        for (i, op) in ops.iter().enumerate() {
            if i % 64 == 0 {
                bump += 1;
                oracle.insert(MONOTONE_KEY, bump);
            }
            match *op {
                WOp::Insert(k, v) => {
                    // At ~40% net load the table never rejects; a reject
                    // would surface as an oracle divergence below.
                    oracle.insert(k, v);
                }
                WOp::Remove(k) => {
                    oracle.remove(&k);
                }
            }
        }
        t.check_invariants()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(t.len(), oracle.len(), "seed {seed}: distinct count");
        for (&k, &v) in &oracle {
            assert_eq!(t.get(&k), Some(v), "seed {seed}: key {k}");
        }

        // Check 3: removed keys stay gone once the writer is quiescent.
        for k in 1..=600u64 {
            if !oracle.contains_key(&k) {
                assert_eq!(t.get(&k), None, "seed {seed}: key {k} resurrected");
            }
        }
    }
}

#[test]
fn writer_differential_with_batched_reader_storm() {
    // The same three decidable checks as `writer_differential_with_
    // reader_storm`, but every reader goes through the *batched* read
    // path (`get_batch`): the batch machinery (shared hashing pass,
    // batch-local stat tally, prefetch hints) must not weaken seqlock
    // reads. The monotone key is planted at several positions of each
    // batch; positions are resolved in order, so the observed sequence
    // across positions and batches must still be non-decreasing.
    use mccuckoo_core::McTable;

    const MONOTONE_KEY: u64 = 0;
    for seed in [9u64, 27] {
        let t = Arc::new(ConcurrentMcCuckoo::<u64, u64>::new(McConfig::paper(
            512, seed,
        )));
        let ops = schedule(seed, 30_000, 600);
        let stop = Arc::new(AtomicBool::new(false));

        let violations = std::thread::scope(|scope| {
            let mut readers = Vec::new();
            for r in 0..3 {
                let t = Arc::clone(&t);
                let stop = Arc::clone(&stop);
                readers.push(scope.spawn(move || {
                    let mut last_seen = 0u64;
                    let mut violations = 0usize;
                    let mut spin = r as u64;
                    let mut batch = [0u64; 32];
                    while !stop.load(Ordering::Acquire) {
                        // Monotone key at positions 0, 10, 20, 30;
                        // churn keys everywhere else (unchecked).
                        for (j, slot) in batch.iter_mut().enumerate() {
                            *slot = if j % 10 == 0 {
                                MONOTONE_KEY
                            } else {
                                1 + (spin + j as u64) % 600
                            };
                        }
                        spin = spin.wrapping_add(31);
                        let got = t.get_batch(&batch);
                        for (j, v) in got.iter().enumerate() {
                            if j % 10 != 0 {
                                continue;
                            }
                            if let Some(v) = v {
                                if *v < last_seen {
                                    violations += 1;
                                }
                                last_seen = *v;
                            }
                        }
                    }
                    violations
                }));
            }

            let mut bump = 0u64;
            for (i, op) in ops.iter().enumerate() {
                if i % 64 == 0 {
                    bump += 1;
                    t.insert(MONOTONE_KEY, bump).unwrap();
                }
                match *op {
                    WOp::Insert(k, v) => {
                        let _ = t.insert(k, v);
                    }
                    WOp::Remove(k) => {
                        let _ = t.remove(&k);
                    }
                }
            }
            stop.store(true, Ordering::Release);
            readers
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<usize>()
        });
        assert_eq!(
            violations, 0,
            "seed {seed}: non-monotone batched reads of the designated key"
        );

        // Final state equals the sequential oracle — swept through the
        // batched path this time.
        let mut oracle: HashMap<u64, u64> = HashMap::new();
        let mut bump = 0u64;
        for (i, op) in ops.iter().enumerate() {
            if i % 64 == 0 {
                bump += 1;
                oracle.insert(MONOTONE_KEY, bump);
            }
            match *op {
                WOp::Insert(k, v) => {
                    oracle.insert(k, v);
                }
                WOp::Remove(k) => {
                    oracle.remove(&k);
                }
            }
        }
        t.check_invariants()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(t.len(), oracle.len(), "seed {seed}: distinct count");
        let keys: Vec<u64> = (0..=600u64).collect();
        for (k, got) in keys.iter().zip(McTable::lookup_batch(&*t, &keys)) {
            assert_eq!(
                got,
                oracle.get(k).copied(),
                "seed {seed}: key {k} diverged through the batched sweep"
            );
        }
    }
}

#[test]
fn concurrent_matches_oracle_single_threaded_histories() {
    // Pure sequential differential at higher load, including update
    // histories per key — the linearizable single-key case degenerate
    // to one thread, where every observation is decidable.
    let t = ConcurrentMcCuckoo::<u64, u64>::new(McConfig::paper(256, 5));
    let mut oracle: HashMap<u64, u64> = HashMap::new();
    let mut rng = SplitMix64::new(0xD1FF);
    for i in 0..40_000u64 {
        let k = rng.next_below(700);
        match rng.next_below(10) {
            0..=5 => {
                if t.insert(k, i).is_ok() {
                    oracle.insert(k, i);
                } else {
                    assert!(
                        !oracle.contains_key(&k),
                        "upsert of live key {k} must not fail"
                    );
                }
            }
            6..=7 => {
                assert_eq!(t.get(&k), oracle.get(&k).copied(), "get {k} at step {i}");
            }
            _ => {
                assert_eq!(t.remove(&k), oracle.remove(&k), "remove {k} at step {i}");
            }
        }
        if i % 1_024 == 0 {
            t.check_invariants().unwrap();
            assert_eq!(t.len(), oracle.len());
        }
    }
    t.check_invariants().unwrap();
    for (&k, &v) in &oracle {
        assert_eq!(t.get(&k), Some(v));
    }
}

#[test]
fn sharded_multi_writer_differential() {
    // Four writer threads over a 4-shard table, each owning a disjoint
    // key slice (keys of its residue class mod 4). Ownership makes the
    // final state decidable — each key's history is written by exactly
    // one thread — while the shard router spreads every thread's keys
    // across all shards, so the per-shard writer locks really are
    // contended by multiple threads. Writers use the batched entry
    // points; a reader storm uses lookup_batch (unchecked mid-churn).
    use mccuckoo_core::ShardedMcCuckoo;

    const WRITERS: u64 = 4;
    const DOMAIN: u64 = 2_400;
    for seed in [7u64, 35] {
        let t = Arc::new(ShardedMcCuckoo::<u64, u64>::new(
            4,
            McConfig::paper(256, seed),
        ));
        let stop = Arc::new(AtomicBool::new(false));

        let oracles: Vec<HashMap<u64, u64>> = std::thread::scope(|scope| {
            let reader = {
                let t = Arc::clone(&t);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let keys: Vec<u64> = (0..64).collect();
                    while !stop.load(Ordering::Acquire) {
                        let _ = t.lookup_batch(&keys);
                    }
                })
            };
            let writers: Vec<_> = (0..WRITERS)
                .map(|tid| {
                    let t = Arc::clone(&t);
                    scope.spawn(move || {
                        let mut oracle: HashMap<u64, u64> = HashMap::new();
                        let mut rng = SplitMix64::new(seed ^ (tid << 32) ^ 0x5AA2);
                        for round in 0..150u64 {
                            // Keys of this thread's residue class only.
                            let batch: Vec<(u64, u64)> = (0..32)
                                .map(|j| {
                                    let k = rng.next_below(DOMAIN / WRITERS) * WRITERS + tid;
                                    (k, round * 1_000 + j)
                                })
                                .collect();
                            for (r, &(k, v)) in t.insert_batch(&batch).iter().zip(&batch) {
                                if r.is_ok() {
                                    oracle.insert(k, v);
                                }
                            }
                            let dels: Vec<u64> = (0..8)
                                .map(|_| rng.next_below(DOMAIN / WRITERS) * WRITERS + tid)
                                .collect();
                            for (r, &k) in t.remove_batch(&dels).iter().zip(&dels) {
                                assert_eq!(
                                    r.is_some(),
                                    oracle.remove(&k).is_some(),
                                    "seed {seed} writer {tid}: remove {k} diverged"
                                );
                            }
                        }
                        oracle
                    })
                })
                .collect();
            let oracles = writers.into_iter().map(|h| h.join().unwrap()).collect();
            stop.store(true, Ordering::Release);
            reader.join().unwrap();
            oracles
        });

        t.check_invariants()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let merged: HashMap<u64, u64> = oracles.into_iter().flatten().collect();
        assert_eq!(t.len(), merged.len(), "seed {seed}: distinct count");
        let keys: Vec<u64> = (0..DOMAIN).collect();
        for (k, got) in keys.iter().zip(t.lookup_batch(&keys)) {
            assert_eq!(
                got,
                merged.get(k).copied(),
                "seed {seed}: key {k} diverged from the merged oracle"
            );
        }
    }
}

#[test]
fn contended_stripes_multi_writer_differential_reconciles_obs() {
    // Three writer threads hammer ONE ConcurrentMcCuckoo, with every op
    // stream drawn from the testkit's ContendedStripes profile and its
    // abstract keys mapped onto *mined* keys whose candidate buckets all
    // fall inside the same four lock stripes — so the striped writers
    // fight for the same locks on essentially every op. Each writer owns
    // a disjoint key slice (decidable per-op oracle); afterwards the obs
    // deltas are reconciled against the merged tally: under real
    // interleaving the per-op counters must still add up exactly.
    use mccuckoo_testkit::{gen_ops, MixProfile, TableOp};

    const WRITERS: usize = 3;
    #[cfg(not(feature = "paranoid"))]
    const N_OPS: usize = 4_000;
    #[cfg(feature = "paranoid")]
    const N_OPS: usize = 600;
    // Keys are mined so all candidate buckets land in these stripes.
    const ALLOWED: u64 = 0b1111;

    #[derive(Default, Clone, Copy)]
    struct Tally {
        attempts: u64,
        lookups: u64,
        hits: u64,
        removes: u64,
        remove_misses: u64,
    }

    for seed in [11u64, 47] {
        let t = ConcurrentMcCuckoo::<u64, u64>::new(McConfig::paper(512, seed));
        let domain = MixProfile::ContendedStripes.key_domain(t.capacity());
        let want = domain as usize * WRITERS;
        let mut mined: Vec<u64> = Vec::with_capacity(want);
        let mut cand = 0u64;
        while mined.len() < want {
            if t.stripe_mask_of(&cand) & !ALLOWED == 0 {
                mined.push(cand);
            }
            cand += 1;
            assert!(cand < 50_000_000, "seed {seed}: key mining ran dry");
        }
        let union = mined.iter().fold(0u64, |m, k| m | t.stripe_mask_of(k));
        assert_eq!(union & !ALLOWED, 0, "mined keys leak outside the stripes");
        assert!(
            t.stripe_count() >= 4 * ALLOWED.count_ones() as usize,
            "table too small for the mix to be contended"
        );

        let (merged, tally) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..WRITERS)
                .map(|tid| {
                    let t = &t;
                    let mined = &mined;
                    scope.spawn(move || {
                        let ops = gen_ops(
                            seed.wrapping_add((tid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                            MixProfile::ContendedStripes,
                            N_OPS,
                            domain,
                        );
                        let mut oracle: HashMap<u64, u64> = HashMap::new();
                        let mut tl = Tally::default();
                        for op in ops {
                            match op {
                                TableOp::Insert(gk, v) => {
                                    let k = mined[gk as usize * WRITERS + tid];
                                    tl.attempts += 1;
                                    if t.insert(k, v).is_ok() {
                                        oracle.insert(k, v);
                                    }
                                }
                                TableOp::InsertNew(gk, v) => {
                                    let k = mined[gk as usize * WRITERS + tid];
                                    if let Entry::Vacant(slot) = oracle.entry(k) {
                                        tl.attempts += 1;
                                        if t.insert_new(k, v).is_ok() {
                                            slot.insert(v);
                                        }
                                    }
                                }
                                TableOp::Get(gk) => {
                                    let k = mined[gk as usize * WRITERS + tid];
                                    tl.lookups += 1;
                                    let got = t.get(&k);
                                    assert_eq!(
                                        got,
                                        oracle.get(&k).copied(),
                                        "seed {seed} writer {tid}: get {k} diverged"
                                    );
                                    tl.hits += got.is_some() as u64;
                                }
                                TableOp::Contains(gk) => {
                                    let k = mined[gk as usize * WRITERS + tid];
                                    tl.lookups += 1;
                                    let c = t.contains(&k);
                                    assert_eq!(
                                        c,
                                        oracle.contains_key(&k),
                                        "seed {seed} writer {tid}: contains {k} diverged"
                                    );
                                    tl.hits += c as u64;
                                }
                                TableOp::Remove(gk) => {
                                    let k = mined[gk as usize * WRITERS + tid];
                                    let r = t.remove(&k);
                                    assert_eq!(
                                        r,
                                        oracle.remove(&k),
                                        "seed {seed} writer {tid}: remove {k} diverged"
                                    );
                                    if r.is_some() {
                                        tl.removes += 1;
                                    } else {
                                        tl.remove_misses += 1;
                                    }
                                }
                                TableOp::Clear | TableOp::RefreshStash => {
                                    unreachable!("ContendedStripes never emits these")
                                }
                            }
                        }
                        (oracle, tl)
                    })
                })
                .collect();
            let mut merged: HashMap<u64, u64> = HashMap::new();
            let mut sum = Tally::default();
            for h in handles {
                let (oracle, tl) = h.join().unwrap();
                merged.extend(oracle);
                sum.attempts += tl.attempts;
                sum.lookups += tl.lookups;
                sum.hits += tl.hits;
                sum.removes += tl.removes;
                sum.remove_misses += tl.remove_misses;
            }
            (merged, sum)
        });

        // Final contents match the merged per-writer oracles.
        t.check_invariants()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(t.len(), merged.len(), "seed {seed}: distinct count");
        for (&k, &v) in &merged {
            assert_eq!(t.get(&k), Some(v), "seed {seed}: key {k}");
        }

        // Obs reconciliation: with every op issued by exactly one tallied
        // writer, the table's counters must add up under interleaving.
        let snap = t.stats();
        let fin = snap.ops.inserts + snap.ops.updates + snap.ops.failed_inserts;
        assert_eq!(fin, tally.attempts, "seed {seed}: insert attempts");
        assert_eq!(
            snap.ops.lookup_hits + snap.ops.lookup_misses,
            tally.lookups + merged.len() as u64, // the final sweep above
            "seed {seed}: lookups"
        );
        assert_eq!(
            snap.ops.lookup_hits,
            tally.hits + merged.len() as u64,
            "seed {seed}: hits"
        );
        assert_eq!(snap.ops.removes, tally.removes, "seed {seed}: removes");
        assert_eq!(
            snap.ops.remove_misses, tally.remove_misses,
            "seed {seed}: remove misses"
        );
        assert_eq!(
            snap.probe_hist.count,
            tally.lookups + merged.len() as u64,
            "seed {seed}: probe histogram count"
        );
        assert_eq!(
            snap.kick_hist.count,
            snap.ops.inserts + snap.ops.failed_inserts,
            "seed {seed}: kick histogram counts fresh attempts only"
        );
    }
}
