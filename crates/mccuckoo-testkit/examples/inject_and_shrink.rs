//! End-to-end demonstration of the fault-injection workflow:
//! arm a bookkeeping fault, let the differential fuzzer catch it,
//! and print the shrunk, replayable failure report.
//!
//! ```sh
//! cargo run -p mccuckoo-testkit --features faults --example inject_and_shrink
//! ```

use mccuckoo_core::testhooks;
use mccuckoo_testkit::{fuzz_one, MixProfile, TableKind};

fn main() {
    // The injected bug: every deletion "forgets" to reset the counter
    // of its first copy location — a silent corruption invisible to
    // ordinary lookups until the stale counter misroutes something.
    testhooks::arm_skip_counter_reset(u32::MAX);
    let result = fuzz_one(TableKind::Single, MixProfile::DeleteHeavy, 0x5EED, 5_000);
    testhooks::disarm();

    match result {
        Ok(()) => {
            eprintln!("unexpected: the injected fault went undetected");
            std::process::exit(1);
        }
        Err(report) => {
            println!("{report}");
            println!();
            println!(
                "(shrunk from 5000 generated ops to {}; re-run the replay \
                 line above with the fault armed to reproduce)",
                report.min_len
            );
        }
    }
}
