//! Differential fuzzing for [`MultisetIndex`].
//!
//! The multiset has its own op vocabulary (duplicate keys are the whole
//! point), so it gets its own generator and runner; the shadow oracle is
//! a `HashMap<u64, Vec<u64>>` of per-key value stacks (most recent
//! last). Shrinking reuses the generic [`mod@crate::shrink`] machinery.

use std::collections::HashMap;
use std::fmt;

use hash_kit::SplitMix64;
use mccuckoo_core::{DeletionMode, McConfig, MultisetIndex};

/// One operation against the multiset index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsOp {
    /// Add one occurrence of `key`.
    Push(u64, u64),
    /// Compare the full value chain of `key` (order-sensitive).
    GetAll(u64),
    /// Compare the occurrence count of `key`.
    Count(u64),
    /// Pop the most recent occurrence; compare it.
    PopOne(u64),
    /// Remove every occurrence; compare them.
    RemoveAll(u64),
    /// Drop everything.
    Clear,
}

impl fmt::Display for MsOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsOp::Push(k, v) => write!(f, "push {k}={v}"),
            MsOp::GetAll(k) => write!(f, "all {k}"),
            MsOp::Count(k) => write!(f, "cnt {k}"),
            MsOp::PopOne(k) => write!(f, "pop {k}"),
            MsOp::RemoveAll(k) => write!(f, "delall {k}"),
            MsOp::Clear => write!(f, "clear"),
        }
    }
}

/// Generate `n` multiset ops, push-biased so chains grow several deep.
pub fn gen_ms_ops(seed: u64, n: usize, key_domain: u64) -> Vec<MsOp> {
    assert!(key_domain > 0, "key domain must be non-empty");
    let mut rng = SplitMix64::new(seed ^ 0x3415_7E57_4B17_0001);
    let mut ops = Vec::with_capacity(n);
    for i in 0..n {
        let k = rng.next_below(key_domain);
        let v = i as u64 + 1;
        // Weights: push 45, get_all 15, count 10, pop 20, remove_all 9,
        // clear 1.
        let op = match rng.next_below(100) {
            0..=44 => MsOp::Push(k, v),
            45..=59 => MsOp::GetAll(k),
            60..=69 => MsOp::Count(k),
            70..=89 => MsOp::PopOne(k),
            90..=98 => MsOp::RemoveAll(k),
            _ => MsOp::Clear,
        };
        ops.push(op);
    }
    ops
}

/// Build the multiset under test for a fuzz case.
pub fn build_multiset(buckets: usize, seed: u64) -> MultisetIndex<u64, u64> {
    MultisetIndex::new(McConfig::paper(buckets, seed).with_deletion(DeletionMode::Reset))
}

/// Drive `ops` against the multiset and its oracle; validate invariants
/// every `batch` mutations.
pub fn run_ms_ops(
    m: &mut MultisetIndex<u64, u64>,
    ops: &[MsOp],
    batch: usize,
) -> Result<(), String> {
    let mut oracle: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut since_check = 0usize;
    for (i, &op) in ops.iter().enumerate() {
        let fail = |what: String| Err(format!("step {i} ({op}): {what}"));
        match op {
            MsOp::Push(k, v) => {
                if m.push(k, v).is_err() {
                    return fail("push rejected (stash-backed index must not fill)".into());
                }
                oracle.entry(k).or_default().push(v);
                since_check += 1;
            }
            MsOp::GetAll(k) => {
                let got: Vec<u64> = m.get_all(&k).copied().collect();
                let mut want = oracle.get(&k).cloned().unwrap_or_default();
                want.reverse(); // table yields most recent first
                if got != want {
                    return fail(format!("get_all returned {got:?}, oracle says {want:?}"));
                }
            }
            MsOp::Count(k) => {
                let got = m.count(&k);
                let want = oracle.get(&k).map_or(0, Vec::len);
                if got != want {
                    return fail(format!("count returned {got}, oracle says {want}"));
                }
            }
            MsOp::PopOne(k) => {
                let got = m.pop_one(&k);
                let want = oracle.get_mut(&k).and_then(Vec::pop);
                if oracle.get(&k).is_some_and(Vec::is_empty) {
                    oracle.remove(&k);
                }
                if got != want {
                    return fail(format!("pop_one returned {got:?}, oracle says {want:?}"));
                }
                since_check += 1;
            }
            MsOp::RemoveAll(k) => {
                let got = m.remove_all(&k);
                let mut want = oracle.remove(&k).unwrap_or_default();
                want.reverse();
                if got != want {
                    return fail(format!("remove_all returned {got:?}, oracle says {want:?}"));
                }
                since_check += 1;
            }
            MsOp::Clear => {
                m.clear();
                oracle.clear();
                since_check += 1;
            }
        }
        if since_check >= batch {
            since_check = 0;
            check_ms_state(m, &oracle).map_err(|e| format!("after step {i} ({op}): {e}"))?;
        }
    }
    check_ms_state(m, &oracle).map_err(|e| format!("at end of sequence: {e}"))
}

fn check_ms_state(
    m: &MultisetIndex<u64, u64>,
    oracle: &HashMap<u64, Vec<u64>>,
) -> Result<(), String> {
    m.check_invariants()
        .map_err(|e| format!("invariant violated: {e}"))?;
    let want_values: usize = oracle.values().map(Vec::len).sum();
    if m.len() != want_values {
        return Err(format!("len {} but oracle holds {want_values}", m.len()));
    }
    if m.distinct_keys() != oracle.len() {
        return Err(format!(
            "distinct_keys {} but oracle holds {} keys",
            m.distinct_keys(),
            oracle.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_multiset_passes_a_soup() {
        let mut m = build_multiset(128, 5);
        let ops = gen_ms_ops(5, 4_000, 48);
        run_ms_ops(&mut m, &ops, 64).unwrap();
    }

    #[test]
    fn generator_is_deterministic() {
        assert_eq!(gen_ms_ops(1, 1_000, 32), gen_ms_ops(1, 1_000, 32));
        assert_ne!(gen_ms_ops(1, 1_000, 32), gen_ms_ops(2, 1_000, 32));
    }
}
