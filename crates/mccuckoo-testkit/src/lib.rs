//! # mccuckoo-testkit — deterministic differential fuzzing
//!
//! A seeded, replayable fuzzing harness for every table in the
//! workspace:
//!
//! * [`ops`] — op-sequence generation with adversarial mix profiles
//!   (duplicate-heavy, delete-heavy, near-full);
//! * [`target`] — one blanket adapter lifting any
//!   [`mccuckoo_core::McTable`] implementor (single, blocked in several
//!   slot/deletion configurations, concurrent) into the runner's
//!   [`DiffTarget`] vocabulary;
//! * [`diff`] — the shadow-oracle runner: every observable result is
//!   compared against a model `HashMap`, and the table's exhaustive
//!   invariant validator runs after every mutation batch;
//! * [`multiset`] — the same treatment for
//!   [`mccuckoo_core::MultisetIndex`] with its own op vocabulary;
//! * [`mod@shrink`] — a greedy shrinker that reduces any failing
//!   sequence.
//!
//! Everything is deterministic per seed. A failure panics (or returns a
//! [`FailureReport`]) carrying a replay line and the minimal op list:
//!
//! ```text
//! differential failure on single (profile DeleteHeavy, seed 0x2a)
//! replay: fuzz_one(TableKind::Single, MixProfile::DeleteHeavy, 0x2a, ...)
//! minimal ops (2 of 10000): [new 3=17, del 3]
//! failure: step 1 (del 3): invariant violated: ...
//! ```
//!
//! The `fuzz_smoke` binary sweeps seeds under a wall-clock budget for
//! CI; the `faults` feature (forwarding `mccuckoo-core/testhooks`) lets
//! tests inject bookkeeping faults to prove the harness catches them.

pub mod diff;
pub mod multiset;
pub mod ops;
pub mod shrink;
pub mod target;

use std::fmt;

pub use diff::{run_ops, RunnerConfig};
pub use ops::{format_ops, gen_ops, MixProfile, TableOp};
pub use shrink::{run_catching, shrink};
pub use target::{DiffTarget, TableKind};

/// Buckets per sub-table used by the fuzz drivers: small enough that
/// near-full mixes reach saturation quickly, large enough for real
/// kick-out chains.
pub const FUZZ_BUCKETS: usize = 128;

/// A shrunk differential failure, ready to print or re-run.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// Table that diverged.
    pub table: &'static str,
    /// Mix profile of the failing run.
    pub profile: MixProfile,
    /// Seed of the failing run.
    pub seed: u64,
    /// Length of the originally generated sequence.
    pub orig_len: usize,
    /// The shrunk sequence, rendered with [`format_ops`].
    pub min_ops: String,
    /// Number of ops surviving the shrink.
    pub min_len: usize,
    /// The failure message of the minimal sequence.
    pub message: String,
}

impl fmt::Display for FailureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "differential failure on {} (profile {:?}, seed {:#x})",
            self.table, self.profile, self.seed
        )?;
        writeln!(
            f,
            "replay: fuzz_one with seed={:#x} profile={:?} table={}",
            self.seed, self.profile, self.table
        )?;
        writeln!(
            f,
            "minimal ops ({} of {}): {}",
            self.min_len, self.orig_len, self.min_ops
        )?;
        write!(f, "failure: {}", self.message)
    }
}

/// Run one seeded differential fuzz case: generate `n_ops`, drive the
/// table against the oracle, and on failure shrink and report.
///
/// Deterministic per `(kind, profile, seed, n_ops)`; a reported failure
/// re-fails when re-run with the same arguments.
pub fn fuzz_one(
    kind: TableKind,
    profile: MixProfile,
    seed: u64,
    n_ops: usize,
) -> Result<(), FailureReport> {
    let capacity = kind.capacity(FUZZ_BUCKETS);
    let key_domain = profile.key_domain(capacity);
    let all_ops = gen_ops(seed, profile, n_ops, key_domain);
    let run = |ops: &[TableOp]| {
        run_catching(|| {
            let mut t = kind.build(FUZZ_BUCKETS, seed);
            run_ops(t.as_mut(), ops, RunnerConfig::default())
        })
    };
    let Err(msg) = run(&all_ops) else {
        return Ok(());
    };
    let (min, min_msg) = shrink(&all_ops, msg, |c| run(c).err());
    Err(FailureReport {
        table: kind.name(),
        profile,
        seed,
        orig_len: all_ops.len(),
        min_ops: format_ops(&min),
        min_len: min.len(),
        message: min_msg,
    })
}

/// [`fuzz_one`], panicking with the full report on failure — the form
/// tests use so the replay line lands in the test output.
pub fn fuzz_one_or_panic(kind: TableKind, profile: MixProfile, seed: u64, n_ops: usize) {
    if let Err(report) = fuzz_one(kind, profile, seed, n_ops) {
        panic!("{report}");
    }
}

/// Seeded multiset fuzz case, mirroring [`fuzz_one`].
pub fn fuzz_multiset(seed: u64, n_ops: usize) -> Result<(), FailureReport> {
    let key_domain = 48;
    let all_ops = multiset::gen_ms_ops(seed, n_ops, key_domain);
    let run = |ops: &[multiset::MsOp]| {
        run_catching(|| {
            let mut m = multiset::build_multiset(FUZZ_BUCKETS, seed);
            multiset::run_ms_ops(&mut m, ops, 64)
        })
    };
    let Err(msg) = run(&all_ops) else {
        return Ok(());
    };
    let (min, min_msg) = shrink(&all_ops, msg, |c| run(c).err());
    let items: Vec<String> = min.iter().map(|o| o.to_string()).collect();
    Err(FailureReport {
        table: "multiset",
        profile: MixProfile::Balanced,
        seed,
        orig_len: all_ops.len(),
        min_ops: format!("[{}]", items.join(", ")),
        min_len: min.len(),
        message: min_msg,
    })
}

/// [`fuzz_multiset`], panicking with the report.
pub fn fuzz_multiset_or_panic(seed: u64, n_ops: usize) {
    if let Err(report) = fuzz_multiset(seed, n_ops) {
        panic!("{report}");
    }
}
