//! Seeded table-operation sequences.
//!
//! A sequence is a plain `Vec<TableOp>`: fully materialised, so it can
//! be replayed, subset by the shrinker, and printed in a failure report.
//! Generation is deterministic per `(seed, profile, n)` — the generator
//! derives everything from a [`SplitMix64`] stream and never consults
//! ambient state.
//!
//! Keys are drawn from a small integer domain chosen by the profile:
//! narrow domains force duplicate hits (upserts, re-deletes), wide
//! domains near the table capacity force stash traffic and kick-out
//! storms. Values are the op's position in the sequence, so a stale
//! value read after an update is immediately visible in a report.

use std::fmt;

use hash_kit::SplitMix64;

/// One operation against a key-value table under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableOp {
    /// Upsert `key → value`.
    Insert(u64, u64),
    /// Insert a key the oracle believes absent (the runner downgrades
    /// this to a no-op when the key turns out live, so subsequences
    /// produced by the shrinker stay valid).
    InsertNew(u64, u64),
    /// Point lookup; result compared against the oracle.
    Get(u64),
    /// Membership probe; result compared against the oracle.
    Contains(u64),
    /// Delete; returned value compared against the oracle.
    Remove(u64),
    /// Drop everything.
    Clear,
    /// Re-synchronise the stash flags (no observable result; the
    /// post-batch sweep verifies nothing was lost).
    RefreshStash,
}

impl fmt::Display for TableOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableOp::Insert(k, v) => write!(f, "ins {k}={v}"),
            TableOp::InsertNew(k, v) => write!(f, "new {k}={v}"),
            TableOp::Get(k) => write!(f, "get {k}"),
            TableOp::Contains(k) => write!(f, "has {k}"),
            TableOp::Remove(k) => write!(f, "del {k}"),
            TableOp::Clear => write!(f, "clear"),
            TableOp::RefreshStash => write!(f, "refresh"),
        }
    }
}

/// Adversarial mix selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixProfile {
    /// All op kinds at moderate weights over a mid-sized key domain.
    Balanced,
    /// Narrow key domain: most inserts hit live keys (upsert path) and
    /// most deletes re-delete already-dead keys.
    DuplicateHeavy,
    /// Deletion-dominated churn: exercises counter resets, tombstones
    /// and the re-insertion of scarred buckets.
    DeleteHeavy,
    /// Insert-dominated at a key domain close to table capacity: the
    /// table operates at very high load, stashing and kicking out.
    NearFull,
    /// Almost pure upserts over a tiny key domain: the same keys are
    /// re-inserted over and over with fresh values, with only occasional
    /// lookups to observe them and almost no deletions. Targets the
    /// update-in-place path (a destructive remove-then-insert upsert
    /// shows up immediately as churn, lost keys or stale values).
    UpsertHammer,
    /// Insert/remove churn over a tiny key domain, meant for the
    /// striped-lock concurrent table: concurrent harnesses map the
    /// abstract keys onto mined keys whose candidate buckets all fall in
    /// a handful of lock stripes, so every writer thread fights for the
    /// same stripes on every op. No `Clear`/`RefreshStash` — those need
    /// whole-table coordination and would make multi-writer oracle
    /// reconciliation undecidable.
    ContendedStripes,
    /// Write-skewed churn over a mid-sized key domain, meant to run
    /// *while a shard split drains the table*: heavy upserts keep the
    /// forwarding redo path hot, steady removes race the migration
    /// cursor's insert-then-remove window, and frequent lookups observe
    /// every intermediate state. No `Clear`/`RefreshStash` (whole-table
    /// coordination; `Clear` additionally serialises against the split
    /// lock, which would turn the mix into a migration barrier).
    GrowUnderFire,
}

impl MixProfile {
    /// All profiles, for sweep drivers.
    pub const ALL: [MixProfile; 7] = [
        MixProfile::Balanced,
        MixProfile::DuplicateHeavy,
        MixProfile::DeleteHeavy,
        MixProfile::NearFull,
        MixProfile::UpsertHammer,
        MixProfile::ContendedStripes,
        MixProfile::GrowUnderFire,
    ];

    /// Op-kind weights: insert, insert_new, get, contains, remove,
    /// clear, refresh_stash.
    fn weights(self) -> [u32; 7] {
        match self {
            MixProfile::Balanced => [25, 10, 25, 10, 20, 1, 4],
            MixProfile::DuplicateHeavy => [40, 15, 20, 5, 15, 1, 4],
            MixProfile::DeleteHeavy => [25, 5, 15, 5, 40, 2, 8],
            MixProfile::NearFull => [60, 10, 10, 3, 12, 0, 5],
            MixProfile::UpsertHammer => [80, 2, 12, 3, 2, 0, 1],
            MixProfile::ContendedStripes => [55, 5, 15, 5, 20, 0, 0],
            MixProfile::GrowUnderFire => [45, 10, 25, 5, 15, 0, 0],
        }
    }

    /// Key-domain size for a table of `capacity` total buckets.
    pub fn key_domain(self, capacity: usize) -> u64 {
        match self {
            MixProfile::Balanced => (capacity as u64 / 2).max(8),
            MixProfile::DuplicateHeavy => 24,
            MixProfile::DeleteHeavy => (capacity as u64 / 4).max(8),
            // ~95% of capacity: the stash works for a living.
            MixProfile::NearFull => (capacity as u64 * 95 / 100).max(8),
            // Tiny domain: nearly every insert hits a live key.
            MixProfile::UpsertHammer => 12,
            // Tiny domain: once mapped onto mined same-stripe keys, the
            // whole op stream lands on a handful of lock stripes.
            MixProfile::ContendedStripes => 10,
            // Roomy enough that splits have real key volume to drain,
            // small enough that writers keep revisiting migrating keys.
            MixProfile::GrowUnderFire => (capacity as u64 / 3).max(16),
        }
    }
}

/// Generate `n` operations for `(seed, profile)` over `key_domain` keys.
///
/// Deterministic: equal arguments give an identical sequence. `InsertNew`
/// ops are biased toward keys the generator believes dead, but the
/// differential runner re-checks against its oracle, so any subsequence
/// of the output is also a valid sequence.
pub fn gen_ops(seed: u64, profile: MixProfile, n: usize, key_domain: u64) -> Vec<TableOp> {
    assert!(key_domain > 0, "key domain must be non-empty");
    let mut rng = SplitMix64::new(seed ^ SEED_SALT);
    let weights = profile.weights();
    let total: u32 = weights.iter().sum();
    // Track (approximate) liveness to aim InsertNew at dead keys.
    let mut live = vec![false; key_domain as usize];
    let mut ops = Vec::with_capacity(n);
    for i in 0..n {
        let v = i as u64 + 1;
        let mut roll = rng.next_below(total as u64) as u32;
        let mut kind = 0usize;
        for (j, &w) in weights.iter().enumerate() {
            if roll < w {
                kind = j;
                break;
            }
            roll -= w;
        }
        let k = rng.next_below(key_domain);
        let op = match kind {
            0 => {
                live[k as usize] = true;
                TableOp::Insert(k, v)
            }
            1 => {
                // Retry a few times for a dead key; fall back to k.
                let mut kn = k;
                for _ in 0..4 {
                    if !live[kn as usize] {
                        break;
                    }
                    kn = rng.next_below(key_domain);
                }
                live[kn as usize] = true;
                TableOp::InsertNew(kn, v)
            }
            2 => TableOp::Get(k),
            3 => TableOp::Contains(k),
            4 => {
                live[k as usize] = false;
                TableOp::Remove(k)
            }
            5 => {
                live.fill(false);
                TableOp::Clear
            }
            _ => TableOp::RefreshStash,
        };
        ops.push(op);
    }
    ops
}

/// Decorrelates testkit streams from the tables' own hash seeds.
const SEED_SALT: u64 = 0x7E57_4B17_5EED_5A17;

/// Render a sequence compactly for failure reports.
pub fn format_ops(ops: &[TableOp]) -> String {
    let items: Vec<String> = ops.iter().map(|o| o.to_string()).collect();
    format!("[{}]", items.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = gen_ops(42, MixProfile::Balanced, 5_000, 128);
        let b = gen_ops(42, MixProfile::Balanced, 5_000, 128);
        assert_eq!(a, b);
        let c = gen_ops(43, MixProfile::Balanced, 5_000, 128);
        assert_ne!(a, c);
    }

    #[test]
    fn profiles_have_distinct_shapes() {
        let count = |p: MixProfile, f: fn(&TableOp) -> bool| {
            gen_ops(7, p, 10_000, 64).iter().filter(|o| f(o)).count()
        };
        let removes = |o: &TableOp| matches!(o, TableOp::Remove(_));
        let inserts = |o: &TableOp| matches!(o, TableOp::Insert(..) | TableOp::InsertNew(..));
        assert!(count(MixProfile::DeleteHeavy, removes) > count(MixProfile::Balanced, removes));
        assert!(count(MixProfile::NearFull, inserts) > count(MixProfile::Balanced, inserts));
    }

    #[test]
    fn keys_stay_in_domain() {
        for op in gen_ops(9, MixProfile::DuplicateHeavy, 2_000, 24) {
            let k = match op {
                TableOp::Insert(k, _)
                | TableOp::InsertNew(k, _)
                | TableOp::Get(k)
                | TableOp::Contains(k)
                | TableOp::Remove(k) => k,
                TableOp::Clear | TableOp::RefreshStash => continue,
            };
            assert!(k < 24);
        }
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(TableOp::Insert(3, 4).to_string(), "ins 3=4");
        assert_eq!(
            format_ops(&[TableOp::Clear, TableOp::Get(1)]),
            "[clear, get 1]"
        );
    }
}
