//! Greedy op-sequence shrinking.
//!
//! Given a failing sequence and a predicate that re-runs a candidate
//! from scratch, the shrinker first removes chunks of halving size
//! (ddmin-style), then single ops, until no single removal preserves the
//! failure or the attempt budget runs out. Because the differential
//! runner accepts *any* subsequence (see [`crate::ops::TableOp`]), no
//! candidate is ever invalid — the predicate simply reports whether it
//! still fails.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Cap on predicate evaluations per shrink, so a pathological case
/// cannot hang a test run.
const SHRINK_BUDGET: usize = 4_000;

/// Run `f`, converting a panic into a failure message. The global panic
/// hook is silenced for the duration so probe runs do not spam stderr.
pub fn run_catching<T>(f: impl FnOnce() -> Result<T, String>) -> Result<T, String> {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = catch_unwind(AssertUnwindSafe(f));
    std::panic::set_hook(hook);
    match out {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "panic with non-string payload".to_string());
            Err(format!("panicked: {msg}"))
        }
    }
}

/// Greedily shrink `ops`, keeping any subsequence for which `fails`
/// returns `Some(message)`. Returns the minimal sequence found and the
/// message it produced. `initial_msg` is the failure of the full
/// sequence (so a zero-budget shrink still reports something).
pub fn shrink<O: Clone>(
    ops: &[O],
    initial_msg: String,
    mut fails: impl FnMut(&[O]) -> Option<String>,
) -> (Vec<O>, String) {
    let mut cur: Vec<O> = ops.to_vec();
    let mut msg = initial_msg;
    let mut budget = SHRINK_BUDGET;

    // Phase 1: remove chunks, halving the chunk size.
    let mut chunk = (cur.len() / 2).max(1);
    while chunk >= 1 && budget > 0 {
        let mut start = 0;
        let mut removed_any = false;
        while start < cur.len() && budget > 0 {
            let end = (start + chunk).min(cur.len());
            let mut candidate = Vec::with_capacity(cur.len() - (end - start));
            candidate.extend_from_slice(&cur[..start]);
            candidate.extend_from_slice(&cur[end..]);
            budget -= 1;
            if let Some(m) = fails(&candidate) {
                cur = candidate;
                msg = m;
                removed_any = true;
                // Do not advance: the next chunk slid into `start`.
            } else {
                start += chunk;
            }
        }
        if chunk == 1 && !removed_any {
            break;
        }
        if chunk > 1 {
            chunk /= 2;
        } else if !removed_any {
            break;
        }
    }
    (cur, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_culprit_pair() {
        // Fails iff the sequence contains a 7 followed (not necessarily
        // adjacently) by a 9.
        let ops: Vec<u32> = (0..100).collect();
        let fails = |c: &[u32]| {
            let i7 = c.iter().position(|&x| x == 7)?;
            c[i7..].iter().position(|&x| x == 9)?;
            Some("7 then 9".to_string())
        };
        let (min, msg) = shrink(&ops, "7 then 9".into(), fails);
        assert_eq!(min, vec![7, 9]);
        assert_eq!(msg, "7 then 9");
    }

    #[test]
    fn run_catching_converts_panics() {
        let err = run_catching::<()>(|| panic!("boom {}", 42)).unwrap_err();
        assert!(err.contains("boom 42"), "got: {err}");
        let ok = run_catching(|| Ok(5));
        assert_eq!(ok.unwrap(), 5);
    }
}
