//! Uniform adapters over the tables under test.
//!
//! The differential runner drives everything through [`DiffTarget`]; the
//! adapters translate the shared op vocabulary into each table's API and
//! paper over the genuine API differences:
//!
//! * the concurrent table has no `insert_new`, `clear` or
//!   `refresh_stash` — `insert_new` maps to `insert`, `clear` rebuilds
//!   the table from its config, `refresh_stash` is a no-op;
//! * the blocked table has no `clear` either and also rebuilds;
//! * the concurrent table may *reject* an insert when full (no stash),
//!   which the runner treats as an allowed outcome for fresh keys.

use mccuckoo_core::invariant::Validate;
use mccuckoo_core::{
    BlockedConfig, BlockedMcCuckoo, ConcurrentMcCuckoo, DeletionMode, McConfig, McCuckoo,
};

/// Which table implementation a fuzz case drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableKind {
    /// [`McCuckoo`] with counter-reset deletion.
    Single,
    /// [`McCuckoo`] with tombstone deletion.
    SingleTombstone,
    /// [`BlockedMcCuckoo`] (2 slots per bucket) with reset deletion.
    Blocked,
    /// [`ConcurrentMcCuckoo`] driven from one thread.
    Concurrent,
}

impl TableKind {
    /// All kinds, for sweep drivers.
    pub const ALL: [TableKind; 4] = [
        TableKind::Single,
        TableKind::SingleTombstone,
        TableKind::Blocked,
        TableKind::Concurrent,
    ];

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            TableKind::Single => "single",
            TableKind::SingleTombstone => "single-tombstone",
            TableKind::Blocked => "blocked",
            TableKind::Concurrent => "concurrent",
        }
    }

    /// Build a fresh table of this kind.
    pub fn build(self, buckets: usize, seed: u64) -> Box<dyn DiffTarget> {
        match self {
            TableKind::Single => Box::new(SingleTarget::new(
                McConfig::paper(buckets, seed).with_deletion(DeletionMode::Reset),
            )),
            TableKind::SingleTombstone => Box::new(SingleTarget::new(
                McConfig::paper(buckets, seed).with_deletion(DeletionMode::Tombstone),
            )),
            TableKind::Blocked => Box::new(BlockedTarget::new(BlockedConfig {
                base: McConfig::paper(buckets, seed).with_deletion(DeletionMode::Reset),
                slots: 2,
                aggressive_lookup: true,
            })),
            TableKind::Concurrent => {
                Box::new(ConcurrentTarget::new(McConfig::paper(buckets, seed)))
            }
        }
    }

    /// Total bucket capacity a table built with `buckets` will have
    /// (used to size the near-full key domain).
    pub fn capacity(self, buckets: usize) -> usize {
        match self {
            TableKind::Blocked => 3 * buckets * 2,
            _ => 3 * buckets,
        }
    }
}

/// The uniform mutable-table surface the differential runner drives.
#[allow(clippy::len_without_is_empty)] // the runner never asks for emptiness
pub trait DiffTarget {
    /// Table name for reports.
    fn name(&self) -> &'static str;
    /// Upsert; `true` if the pair is now stored.
    fn insert(&mut self, k: u64, v: u64) -> bool;
    /// Insert a key known absent; `true` if stored.
    fn insert_new(&mut self, k: u64, v: u64) -> bool;
    /// Point lookup.
    fn get(&self, k: u64) -> Option<u64>;
    /// Membership probe.
    fn contains(&self, k: u64) -> bool;
    /// Delete, returning the stored value.
    fn remove(&mut self, k: u64) -> Option<u64>;
    /// Drop everything (rebuilds where the API lacks `clear`).
    fn clear(&mut self);
    /// Stash flag refresh; 0 where there is no stash.
    fn refresh_stash(&mut self) -> usize;
    /// Exhaustive invariant validation.
    fn validate(&self) -> Result<(), String>;
    /// Distinct stored keys.
    fn len(&self) -> usize;
}

struct SingleTarget {
    t: McCuckoo<u64, u64>,
    tombstone: bool,
}

impl SingleTarget {
    fn new(config: McConfig) -> Self {
        let tombstone = config.deletion == DeletionMode::Tombstone;
        Self {
            t: McCuckoo::new(config),
            tombstone,
        }
    }
}

impl DiffTarget for SingleTarget {
    fn name(&self) -> &'static str {
        if self.tombstone {
            "single-tombstone"
        } else {
            "single"
        }
    }
    fn insert(&mut self, k: u64, v: u64) -> bool {
        self.t.insert(k, v).map(|r| r.stored()).unwrap_or(false)
    }
    fn insert_new(&mut self, k: u64, v: u64) -> bool {
        self.t.insert_new(k, v).map(|r| r.stored()).unwrap_or(false)
    }
    fn get(&self, k: u64) -> Option<u64> {
        self.t.get(&k).copied()
    }
    fn contains(&self, k: u64) -> bool {
        self.t.contains(&k)
    }
    fn remove(&mut self, k: u64) -> Option<u64> {
        self.t.remove(&k)
    }
    fn clear(&mut self) {
        self.t.clear();
    }
    fn refresh_stash(&mut self) -> usize {
        self.t.refresh_stash()
    }
    fn validate(&self) -> Result<(), String> {
        Validate::validate(&self.t)
    }
    fn len(&self) -> usize {
        self.t.len()
    }
}

struct BlockedTarget {
    t: BlockedMcCuckoo<u64, u64>,
    config: BlockedConfig,
}

impl BlockedTarget {
    fn new(config: BlockedConfig) -> Self {
        Self {
            t: BlockedMcCuckoo::new(config.clone()),
            config,
        }
    }
}

impl DiffTarget for BlockedTarget {
    fn name(&self) -> &'static str {
        "blocked"
    }
    fn insert(&mut self, k: u64, v: u64) -> bool {
        self.t.insert(k, v).map(|r| r.stored()).unwrap_or(false)
    }
    fn insert_new(&mut self, k: u64, v: u64) -> bool {
        self.t.insert_new(k, v).map(|r| r.stored()).unwrap_or(false)
    }
    fn get(&self, k: u64) -> Option<u64> {
        self.t.get(&k).copied()
    }
    fn contains(&self, k: u64) -> bool {
        self.t.contains(&k)
    }
    fn remove(&mut self, k: u64) -> Option<u64> {
        self.t.remove(&k)
    }
    fn clear(&mut self) {
        self.t = BlockedMcCuckoo::new(self.config.clone());
    }
    fn refresh_stash(&mut self) -> usize {
        self.t.refresh_stash()
    }
    fn validate(&self) -> Result<(), String> {
        Validate::validate(&self.t)
    }
    fn len(&self) -> usize {
        self.t.len()
    }
}

struct ConcurrentTarget {
    t: ConcurrentMcCuckoo<u64, u64>,
    config: McConfig,
}

impl ConcurrentTarget {
    fn new(config: McConfig) -> Self {
        Self {
            t: ConcurrentMcCuckoo::new(config.clone()),
            config,
        }
    }
}

impl DiffTarget for ConcurrentTarget {
    fn name(&self) -> &'static str {
        "concurrent"
    }
    fn insert(&mut self, k: u64, v: u64) -> bool {
        self.t.insert(k, v).is_ok()
    }
    fn insert_new(&mut self, k: u64, v: u64) -> bool {
        // No separate fresh-key path in the concurrent API.
        self.t.insert(k, v).is_ok()
    }
    fn get(&self, k: u64) -> Option<u64> {
        self.t.get(&k)
    }
    fn contains(&self, k: u64) -> bool {
        self.t.contains(&k)
    }
    fn remove(&mut self, k: u64) -> Option<u64> {
        self.t.remove(&k)
    }
    fn clear(&mut self) {
        self.t = ConcurrentMcCuckoo::new(self.config.clone());
    }
    fn refresh_stash(&mut self) -> usize {
        0
    }
    fn validate(&self) -> Result<(), String> {
        Validate::validate(&self.t)
    }
    fn len(&self) -> usize {
        self.t.len()
    }
}
