//! Uniform adapters over the tables under test.
//!
//! The differential runner drives everything through [`DiffTarget`], a
//! thin object-safe façade over [`mccuckoo_core::McTable`] plus the
//! exhaustive invariant validator. Every table in the workspace
//! implements `McTable` directly — including real `clear`, `insert_new`
//! and stash refresh on every variant — so one blanket adapter covers
//! all of them; there are no per-table adapters or rebuild-from-config
//! workarounds here.
//!
//! The one genuine behavioural difference the runner tolerates: the
//! concurrent table has no stash, so a fresh-key insert may be
//! *rejected* when the table is full, which the runner treats as an
//! allowed outcome.

use mccuckoo_core::invariant::Validate;
use mccuckoo_core::{
    BlockedConfig, BlockedMcCuckoo, ConcurrentMcCuckoo, DeletionMode, KickPolicyKind, McConfig,
    McCuckoo, McTable, ShardedMcCuckoo, TableStats,
};

/// Which table implementation a fuzz case drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableKind {
    /// [`McCuckoo`] with counter-reset deletion.
    Single,
    /// [`McCuckoo`] with tombstone deletion.
    SingleTombstone,
    /// [`BlockedMcCuckoo`] (2 slots per bucket) with reset deletion.
    Blocked,
    /// [`BlockedMcCuckoo`] (2 slots per bucket) with tombstone deletion.
    BlockedTombstone,
    /// [`BlockedMcCuckoo`] with the paper's 3 slots per bucket.
    Blocked3,
    /// [`ConcurrentMcCuckoo`] driven from one thread.
    Concurrent,
    /// [`ShardedMcCuckoo`] (4 shards) driven from one thread.
    Sharded,
    /// [`McCuckoo`] with the BFS kick policy, reset deletion.
    SingleBfs,
    /// [`McCuckoo`] with the bubbling kick policy, reset deletion.
    SingleBubble,
    /// [`ConcurrentMcCuckoo`] with the BFS kick policy, one thread.
    ConcurrentBfs,
    /// [`ConcurrentMcCuckoo`] with the bubbling kick policy, one thread.
    ConcurrentBubble,
}

impl TableKind {
    /// All kinds, for sweep drivers.
    pub const ALL: [TableKind; 11] = [
        TableKind::Single,
        TableKind::SingleTombstone,
        TableKind::Blocked,
        TableKind::BlockedTombstone,
        TableKind::Blocked3,
        TableKind::Concurrent,
        TableKind::Sharded,
        TableKind::SingleBfs,
        TableKind::SingleBubble,
        TableKind::ConcurrentBfs,
        TableKind::ConcurrentBubble,
    ];

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            TableKind::Single => "single",
            TableKind::SingleTombstone => "single-tombstone",
            TableKind::Blocked => "blocked",
            TableKind::BlockedTombstone => "blocked-tombstone",
            TableKind::Blocked3 => "blocked-3slot",
            TableKind::Concurrent => "concurrent",
            TableKind::Sharded => "sharded-4",
            TableKind::SingleBfs => "single-bfs",
            TableKind::SingleBubble => "single-bubble",
            TableKind::ConcurrentBfs => "concurrent-bfs",
            TableKind::ConcurrentBubble => "concurrent-bubble",
        }
    }

    /// Build a fresh table of this kind.
    pub fn build(self, buckets: usize, seed: u64) -> Box<dyn DiffTarget> {
        let blocked =
            |deletion: DeletionMode, slots: usize, aggressive_lookup: bool| BlockedConfig {
                base: McConfig::paper(buckets, seed).with_deletion(deletion),
                slots,
                aggressive_lookup,
            };
        match self {
            TableKind::Single => Box::new(Shim::new(
                self.name(),
                McCuckoo::new(McConfig::paper(buckets, seed).with_deletion(DeletionMode::Reset)),
            )),
            TableKind::SingleTombstone => Box::new(Shim::new(
                self.name(),
                McCuckoo::new(
                    McConfig::paper(buckets, seed).with_deletion(DeletionMode::Tombstone),
                ),
            )),
            TableKind::Blocked => Box::new(Shim::new(
                self.name(),
                BlockedMcCuckoo::new(blocked(DeletionMode::Reset, 2, true)),
            )),
            TableKind::BlockedTombstone => Box::new(Shim::new(
                self.name(),
                BlockedMcCuckoo::new(blocked(DeletionMode::Tombstone, 2, false)),
            )),
            TableKind::Blocked3 => Box::new(Shim::new(
                self.name(),
                BlockedMcCuckoo::new(blocked(DeletionMode::Reset, 3, true)),
            )),
            TableKind::Concurrent => Box::new(Shim::new(
                self.name(),
                ConcurrentMcCuckoo::new(McConfig::paper(buckets, seed)),
            )),
            TableKind::Sharded => Box::new(Shim::new(
                self.name(),
                ShardedMcCuckoo::new(SHARDS, McConfig::paper((buckets / SHARDS).max(1), seed)),
            )),
            TableKind::SingleBfs => Box::new(Shim::new(
                self.name(),
                McCuckoo::new(
                    McConfig::paper(buckets, seed)
                        .with_deletion(DeletionMode::Reset)
                        .with_kick_policy(KickPolicyKind::Bfs),
                ),
            )),
            TableKind::SingleBubble => Box::new(Shim::new(
                self.name(),
                McCuckoo::new(
                    McConfig::paper(buckets, seed)
                        .with_deletion(DeletionMode::Reset)
                        .with_kick_policy(KickPolicyKind::Bubble),
                ),
            )),
            TableKind::ConcurrentBfs => Box::new(Shim::new(
                self.name(),
                ConcurrentMcCuckoo::new(
                    McConfig::paper(buckets, seed).with_kick_policy(KickPolicyKind::Bfs),
                ),
            )),
            TableKind::ConcurrentBubble => Box::new(Shim::new(
                self.name(),
                ConcurrentMcCuckoo::new(
                    McConfig::paper(buckets, seed).with_kick_policy(KickPolicyKind::Bubble),
                ),
            )),
        }
    }

    /// Total slot capacity a table built with `buckets` will have
    /// (used to size the near-full key domain).
    pub fn capacity(self, buckets: usize) -> usize {
        match self {
            TableKind::Blocked | TableKind::BlockedTombstone => 3 * buckets * 2,
            TableKind::Blocked3 => 3 * buckets * 3,
            TableKind::Sharded => 3 * (buckets / SHARDS).max(1) * SHARDS,
            _ => 3 * buckets,
        }
    }
}

/// Shard count of the [`TableKind::Sharded`] target.
const SHARDS: usize = 4;

/// The uniform mutable-table surface the differential runner drives.
#[allow(clippy::len_without_is_empty)] // the runner never asks for emptiness
pub trait DiffTarget {
    /// Table name for reports.
    fn name(&self) -> &'static str;
    /// Upsert; `true` if the pair is now stored.
    fn insert(&mut self, k: u64, v: u64) -> bool;
    /// Insert a key known absent; `true` if stored.
    fn insert_new(&mut self, k: u64, v: u64) -> bool;
    /// Point lookup.
    fn get(&self, k: u64) -> Option<u64>;
    /// Membership probe.
    fn contains(&self, k: u64) -> bool;
    /// Delete, returning the stored value.
    fn remove(&mut self, k: u64) -> Option<u64>;
    /// Drop everything.
    fn clear(&mut self);
    /// Stash flag refresh; 0 where there is no stash.
    fn refresh_stash(&mut self) -> usize;
    /// Exhaustive invariant validation.
    fn validate(&self) -> Result<(), String>;
    /// Distinct stored keys.
    fn len(&self) -> usize;
    /// Observability snapshot ([`McTable::stats`]); the runner
    /// reconciles its monotonic counters against the oracle's op tally.
    fn stats(&self) -> TableStats {
        TableStats::default()
    }
}

/// The one adapter: any `McTable + Validate` is a [`DiffTarget`].
struct Shim<T> {
    name: &'static str,
    t: T,
}

impl<T> Shim<T> {
    fn new(name: &'static str, t: T) -> Self {
        Self { name, t }
    }
}

impl<T: McTable<u64, u64> + Validate> DiffTarget for Shim<T> {
    fn name(&self) -> &'static str {
        self.name
    }
    fn insert(&mut self, k: u64, v: u64) -> bool {
        self.t.insert(k, v).stored()
    }
    fn insert_new(&mut self, k: u64, v: u64) -> bool {
        self.t.insert_new(k, v).stored()
    }
    fn get(&self, k: u64) -> Option<u64> {
        self.t.lookup(&k)
    }
    fn contains(&self, k: u64) -> bool {
        self.t.contains(&k)
    }
    fn remove(&mut self, k: u64) -> Option<u64> {
        self.t.remove(&k)
    }
    fn clear(&mut self) {
        self.t.clear();
    }
    fn refresh_stash(&mut self) -> usize {
        self.t.refresh_stash()
    }
    fn validate(&self) -> Result<(), String> {
        Validate::validate(&self.t)
    }
    fn len(&self) -> usize {
        self.t.len()
    }
    fn stats(&self) -> TableStats {
        self.t.stats()
    }
}
