//! Time-budgeted fuzz sweep for CI.
//!
//! Cycles seeds through every `(table, profile)` pair plus the multiset
//! until the wall-clock budget runs out. On a failure it prints the
//! shrunk report, optionally writes it to an artifact file (uploaded by
//! CI on failure), and exits non-zero.
//!
//! ```text
//! fuzz_smoke [--budget-ms N] [--ops N] [--seed0 N] [--artifact PATH]
//! ```

use std::time::{Duration, Instant};

use mccuckoo_testkit::{fuzz_multiset, fuzz_one, FailureReport, MixProfile, TableKind};

struct Args {
    budget: Duration,
    ops: usize,
    seed0: u64,
    artifact: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        budget: Duration::from_millis(15_000),
        ops: 3_000,
        seed0: 1,
        artifact: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--budget-ms" => {
                args.budget = Duration::from_millis(
                    value("--budget-ms")
                        .parse()
                        .expect("--budget-ms: not a number"),
                )
            }
            "--ops" => args.ops = value("--ops").parse().expect("--ops: not a number"),
            "--seed0" => args.seed0 = value("--seed0").parse().expect("--seed0: not a number"),
            "--artifact" => args.artifact = Some(value("--artifact")),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn fail(report: &FailureReport, artifact: Option<&str>) -> ! {
    eprintln!("{report}");
    if let Some(path) = artifact {
        if let Err(e) = std::fs::write(path, format!("{report}\n")) {
            eprintln!("(could not write artifact {path}: {e})");
        } else {
            eprintln!("(shrunk sequence written to {path})");
        }
    }
    std::process::exit(1);
}

fn main() {
    let args = parse_args();
    let start = Instant::now();
    let mut seed = args.seed0;
    let mut cases = 0u64;
    'outer: loop {
        for kind in TableKind::ALL {
            for profile in MixProfile::ALL {
                if start.elapsed() >= args.budget {
                    break 'outer;
                }
                if let Err(report) = fuzz_one(kind, profile, seed, args.ops) {
                    fail(&report, args.artifact.as_deref());
                }
                cases += 1;
            }
        }
        if start.elapsed() >= args.budget {
            break;
        }
        if let Err(report) = fuzz_multiset(seed, args.ops) {
            fail(&report, args.artifact.as_deref());
        }
        cases += 1;
        seed += 1;
    }
    println!(
        "fuzz_smoke: {cases} cases clean ({} seeds, {} ops each, {:?})",
        seed - args.seed0 + 1,
        args.ops,
        start.elapsed()
    );
}
