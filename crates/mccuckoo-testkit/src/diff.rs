//! The shadow-oracle differential runner.
//!
//! Applies a [`TableOp`] sequence simultaneously to a table under test
//! and to a trivially-correct in-memory model, comparing every
//! observable result. After every `batch` mutations it additionally runs
//! the table's exhaustive invariant validator, compares the distinct-key
//! count, and sweeps the whole key domain checking membership — so a
//! corruption is localised to within one batch of the op that caused it.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use mccuckoo_core::TableStats;

use crate::ops::TableOp;
use crate::target::DiffTarget;

/// Runner tuning.
#[derive(Debug, Clone, Copy)]
pub struct RunnerConfig {
    /// Mutations between invariant validations and oracle sweeps.
    pub batch: usize,
    /// Whether to sweep the full key domain after each batch (strongest
    /// check; costs one lookup per domain key per batch).
    pub sweep: bool,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self {
            batch: 64,
            sweep: true,
        }
    }
}

/// Drive `ops` against `target` and a shadow oracle.
///
/// Returns the first divergence, invariant violation or count mismatch
/// as a message naming the op index. The caller owns panics: wrap in
/// `catch_unwind` if the table may assert (the shrinker does).
pub fn run_ops(
    target: &mut dyn DiffTarget,
    ops: &[TableOp],
    config: RunnerConfig,
) -> Result<(), String> {
    let mut oracle: HashMap<u64, u64> = HashMap::new();
    let mut since_check = 0usize;
    // Obs counters are monotonic across clears, so a baseline snapshot
    // plus an op tally reconciles exactly even mid-table-lifetime.
    let obs_base = target.stats();
    let mut tally = ObsTally::default();
    for (i, &op) in ops.iter().enumerate() {
        let fail = |what: String| Err(format!("step {i} ({op}): {what}"));
        match op {
            TableOp::Insert(k, v) => {
                let was_live = oracle.contains_key(&k);
                let stored = target.insert(k, v);
                tally.insert_attempts += 1;
                if !was_live {
                    tally.fresh_attempts += 1;
                }
                if stored {
                    oracle.insert(k, v);
                } else if was_live {
                    return fail("upsert of a live key reported failure".into());
                }
                since_check += 1;
            }
            TableOp::InsertNew(k, v) => {
                // A shrunk subsequence may have lost the Remove that made
                // this key fresh; skipping keeps every subsequence valid.
                if let Entry::Vacant(slot) = oracle.entry(k) {
                    let stored = target.insert_new(k, v);
                    tally.insert_attempts += 1;
                    tally.fresh_attempts += 1;
                    if stored {
                        slot.insert(v);
                    }
                    since_check += 1;
                }
            }
            TableOp::Get(k) => {
                let got = target.get(k);
                tally.record_lookup(got.is_some());
                let want = oracle.get(&k).copied();
                if got != want {
                    return fail(format!("get returned {got:?}, oracle says {want:?}"));
                }
            }
            TableOp::Contains(k) => {
                let got = target.contains(k);
                tally.record_lookup(got);
                let want = oracle.contains_key(&k);
                if got != want {
                    return fail(format!("contains returned {got}, oracle says {want}"));
                }
            }
            TableOp::Remove(k) => {
                let got = target.remove(k);
                if got.is_some() {
                    tally.removes += 1;
                } else {
                    tally.remove_misses += 1;
                }
                let want = oracle.remove(&k);
                if got != want {
                    return fail(format!("remove returned {got:?}, oracle says {want:?}"));
                }
                since_check += 1;
            }
            TableOp::Clear => {
                target.clear();
                oracle.clear();
                since_check += 1;
            }
            TableOp::RefreshStash => {
                target.refresh_stash();
                since_check += 1;
            }
        }
        if since_check >= config.batch {
            since_check = 0;
            check_state(target, &oracle, config.sweep)
                .map_err(|e| format!("after step {i} ({op}): {e}"))?;
            if config.sweep {
                // The sweep looked up every oracle key, and found it.
                tally.lookup_hits += oracle.len() as u64;
            }
        }
    }
    check_state(target, &oracle, config.sweep).map_err(|e| format!("at end of sequence: {e}"))?;
    if config.sweep {
        tally.lookup_hits += oracle.len() as u64;
    }
    reconcile_obs(target, &obs_base, &tally)
}

/// Oracle-side tally of the recorded operations the runner issued.
#[derive(Debug, Default)]
struct ObsTally {
    /// Calls that must land in `inserts + updates + failed_inserts`.
    insert_attempts: u64,
    /// The subset offering a key the oracle did not hold (these — and
    /// only these — take a kick walk, so they must equal the kick
    /// histogram's sample count).
    fresh_attempts: u64,
    lookup_hits: u64,
    lookup_misses: u64,
    removes: u64,
    remove_misses: u64,
}

impl ObsTally {
    fn record_lookup(&mut self, hit: bool) {
        if hit {
            self.lookup_hits += 1;
        } else {
            self.lookup_misses += 1;
        }
    }
}

/// Cross-check the table's own obs counters against the oracle tally:
/// every public op the runner issued must be visible in the stats delta,
/// and nothing else (internal re-insert paths must stay unrecorded).
fn reconcile_obs(
    target: &dyn DiffTarget,
    base: &TableStats,
    tally: &ObsTally,
) -> Result<(), String> {
    let end = target.stats();
    let checks: [(&str, u64, u64); 7] = [
        (
            "insert attempts",
            end.ops.insert_attempts() - base.ops.insert_attempts(),
            tally.insert_attempts,
        ),
        (
            "lookup hits",
            end.ops.lookup_hits - base.ops.lookup_hits,
            tally.lookup_hits,
        ),
        (
            "lookup misses",
            end.ops.lookup_misses - base.ops.lookup_misses,
            tally.lookup_misses,
        ),
        ("removes", end.ops.removes - base.ops.removes, tally.removes),
        (
            "remove misses",
            end.ops.remove_misses - base.ops.remove_misses,
            tally.remove_misses,
        ),
        (
            "probe histogram samples",
            end.probe_hist.count - base.probe_hist.count,
            tally.lookup_hits + tally.lookup_misses,
        ),
        (
            "kick histogram samples",
            end.kick_hist.count - base.kick_hist.count,
            tally.fresh_attempts,
        ),
    ];
    for (what, got, want) in checks {
        if got != want {
            return Err(format!(
                "obs reconciliation: {what} delta is {got}, oracle tallied {want}"
            ));
        }
    }
    Ok(())
}

/// Invariant validation + count check + (optional) full membership sweep.
fn check_state(
    target: &dyn DiffTarget,
    oracle: &HashMap<u64, u64>,
    sweep: bool,
) -> Result<(), String> {
    target
        .validate()
        .map_err(|e| format!("invariant violated: {e}"))?;
    if target.len() != oracle.len() {
        return Err(format!(
            "len {} but oracle holds {} keys",
            target.len(),
            oracle.len()
        ));
    }
    if sweep {
        for (&k, &v) in oracle {
            match target.get(k) {
                Some(got) if got == v => {}
                Some(got) => {
                    return Err(format!("sweep: key {k} holds {got}, oracle says {v}"));
                }
                None => return Err(format!("sweep: key {k} lost (oracle value {v})")),
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{gen_ops, MixProfile};
    use crate::target::TableKind;

    #[test]
    fn clean_tables_pass_a_short_soup() {
        for kind in TableKind::ALL {
            let mut t = kind.build(64, 11);
            let ops = gen_ops(11, MixProfile::Balanced, 1_500, 96);
            run_ops(t.as_mut(), &ops, RunnerConfig::default())
                .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        }
    }

    #[test]
    fn runner_reports_a_divergence() {
        // A target that forgets one key: the sweep must notice.
        struct Amnesiac {
            inner: Box<dyn crate::target::DiffTarget>,
        }
        impl crate::target::DiffTarget for Amnesiac {
            fn name(&self) -> &'static str {
                "amnesiac"
            }
            fn insert(&mut self, k: u64, v: u64) -> bool {
                if k == 3 {
                    return true; // claim stored, store nothing
                }
                self.inner.insert(k, v)
            }
            fn insert_new(&mut self, k: u64, v: u64) -> bool {
                self.insert(k, v)
            }
            fn get(&self, k: u64) -> Option<u64> {
                self.inner.get(k)
            }
            fn contains(&self, k: u64) -> bool {
                self.inner.contains(k)
            }
            fn remove(&mut self, k: u64) -> Option<u64> {
                self.inner.remove(k)
            }
            fn clear(&mut self) {
                self.inner.clear()
            }
            fn refresh_stash(&mut self) -> usize {
                self.inner.refresh_stash()
            }
            fn validate(&self) -> Result<(), String> {
                self.inner.validate()
            }
            fn len(&self) -> usize {
                self.inner.len()
            }
        }
        let mut t = Amnesiac {
            inner: TableKind::Single.build(64, 1),
        };
        let ops = [TableOp::Insert(3, 30), TableOp::Get(3)];
        let err = run_ops(&mut t, &ops, RunnerConfig::default()).unwrap_err();
        assert!(err.contains("step 1"), "unexpected message: {err}");
    }
}
