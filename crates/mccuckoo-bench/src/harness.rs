//! Shared measurement machinery: fill sweeps, lookup/deletion sampling,
//! first-collision / first-failure detection.

use mem_model::{InsertOutcome, MemStats};
use workloads::DocWordsLike;

use crate::schemes::{AnyTable, Scheme};

/// Experiment-wide knobs, read from the environment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Total table capacity in slots.
    pub cap: usize,
    /// Repetitions averaged per point.
    pub runs: u64,
    /// Lookups sampled per measurement.
    pub lookups: usize,
    /// Relocation budget.
    pub maxloop: u32,
}

impl Config {
    /// Read `MCB_CAP`, `MCB_RUNS`, `MCB_LOOKUPS` from the environment.
    pub fn from_env() -> Self {
        fn env<T: std::str::FromStr>(name: &str, default: T) -> T {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        }
        Self {
            cap: env("MCB_CAP", 393_216),
            runs: env("MCB_RUNS", 5),
            lookups: env("MCB_LOOKUPS", 100_000),
            maxloop: env("MCB_MAXLOOP", 500),
        }
    }

    /// The load bands of the fill sweeps (5%…95% in 5% steps, clipped by
    /// the scheme's failure-free peak).
    pub fn bands(&self, scheme: Scheme) -> Vec<f64> {
        (1..=19)
            .map(|i| i as f64 * 0.05)
            .filter(|&b| b <= scheme.max_sweep_load() + 1e-9)
            .collect()
    }
}

/// Per-band measurements of one fill run.
#[derive(Debug, Clone, Copy)]
pub struct BandStats {
    /// Load ratio at the end of the band segment.
    pub load: f64,
    /// Mean kick-outs per insertion within the segment.
    pub kickouts_per_insert: f64,
    /// Mean off-chip reads per insertion within the segment.
    pub reads_per_insert: f64,
    /// Mean off-chip writes per insertion within the segment.
    pub writes_per_insert: f64,
    /// Raw meter delta of the segment.
    pub delta: MemStats,
    /// Insertions in the segment.
    pub inserts: u64,
    /// Items that went to the stash (or failed) in the segment.
    pub failures: u64,
}

/// Fill `table` band by band with DocWords-like keys, measuring each
/// segment. `on_band` fires after each band with the filled table
/// available for extra per-band sampling (lookups, deletions on the
/// side).
pub fn fill_sweep(
    table: &mut AnyTable,
    bands: &[f64],
    seed: u64,
    mut on_band: impl FnMut(&mut AnyTable, &BandStats),
) -> Vec<BandStats> {
    let mut gen = DocWordsLike::nytimes_like(seed);
    let cap = table.capacity();
    let mut inserted = 0u64;
    let mut out = Vec::with_capacity(bands.len());
    for &band in bands {
        let target = (band * cap as f64).round() as u64;
        let before = table.snapshot();
        let mut kicks = 0u64;
        let mut fails = 0u64;
        let segment = target.saturating_sub(inserted);
        for _ in 0..segment {
            let k = gen.next_key();
            let r = table.insert_new(k, k);
            kicks += r.kickouts as u64;
            if matches!(r.outcome, InsertOutcome::Stashed | InsertOutcome::Failed) {
                fails += 1;
            }
        }
        inserted = target;
        let delta = table.snapshot() - before;
        let stats = BandStats {
            load: band,
            kickouts_per_insert: kicks as f64 / segment.max(1) as f64,
            reads_per_insert: delta.offchip_reads as f64 / segment.max(1) as f64,
            writes_per_insert: delta.offchip_writes as f64 / segment.max(1) as f64,
            delta,
            inserts: segment,
            failures: fails,
        };
        on_band(table, &stats);
        out.push(stats);
    }
    out
}

/// Off-chip reads per lookup over `samples` *present* keys drawn from the
/// first `inserted` keys of the generator stream.
pub fn measure_lookup_hits(table: &AnyTable, seed: u64, inserted: u64, samples: usize) -> f64 {
    let mut gen = DocWordsLike::nytimes_like(seed);
    // Re-derive the inserted key stream, then sample it evenly.
    let step = (inserted as usize / samples.max(1)).max(1);
    let keys: Vec<u64> = (0..inserted).map(|_| gen.next_key()).collect();
    let before = table.snapshot();
    let mut n = 0u64;
    for k in keys.iter().step_by(step) {
        let got = table.get(k);
        assert_eq!(got, Some(*k), "present key must be found");
        n += 1;
    }
    let delta = table.snapshot() - before;
    delta.offchip_reads as f64 / n as f64
}

/// Full access-stats variant of [`measure_lookup_hits`]: returns the
/// meter delta and the number of lookups performed (for the latency
/// model, which also needs on-chip counts).
pub fn measure_lookup_hits_stats(
    table: &AnyTable,
    seed: u64,
    inserted: u64,
    samples: usize,
) -> (MemStats, u64) {
    let mut gen = DocWordsLike::nytimes_like(seed);
    let step = (inserted as usize / samples.max(1)).max(1);
    let keys: Vec<u64> = (0..inserted).map(|_| gen.next_key()).collect();
    let before = table.snapshot();
    let mut n = 0u64;
    for k in keys.iter().step_by(step) {
        assert_eq!(table.get(k), Some(*k));
        n += 1;
    }
    (table.snapshot() - before, n)
}

/// Off-chip reads per lookup over `samples` *absent* keys.
pub fn measure_lookup_misses(table: &AnyTable, seed: u64, samples: usize) -> (f64, MemStats) {
    let gen = DocWordsLike::nytimes_like(seed);
    let before = table.snapshot();
    for j in 0..samples as u64 {
        let got = table.get(&gen.absent_key(j));
        assert_eq!(got, None, "absent key must miss");
    }
    let delta = table.snapshot() - before;
    (delta.offchip_reads as f64 / samples as f64, delta)
}

/// Batch size for the batched lookup-throughput pass: large enough to
/// amortise dispatch and fill the prefetch pipeline, small enough that a
/// batch's candidate lines fit in L1/L2 together.
pub const LOOKUP_BATCH: usize = 256;

/// Wall-clock lookup throughput over `samples` present keys, in Mops:
/// `(single_key, batched)`. Both passes resolve the identical key
/// vector — the single-key pass loops [`AnyTable::get`], the batched
/// pass feeds [`LOOKUP_BATCH`]-sized chunks to [`AnyTable::get_batch`]
/// (the prefetch-interleaved state machine on the multi-copy schemes).
/// Each pass is repeated `runs` times and the fastest run wins, so a
/// stray scheduler hiccup does not masquerade as a throughput ratio.
pub fn measure_lookup_throughput(
    table: &AnyTable,
    seed: u64,
    inserted: u64,
    samples: usize,
    runs: u64,
) -> (f64, f64) {
    let mut gen = DocWordsLike::nytimes_like(seed);
    let step = (inserted as usize / samples.max(1)).max(1);
    let all: Vec<u64> = (0..inserted).map(|_| gen.next_key()).collect();
    let keys: Vec<u64> = all.iter().step_by(step).copied().collect();
    let mut single_best = f64::INFINITY;
    let mut batch_best = f64::INFINITY;
    for _ in 0..runs.max(1) {
        let t0 = std::time::Instant::now();
        let mut hits = 0usize;
        for k in &keys {
            hits += usize::from(std::hint::black_box(table.get(k)).is_some());
        }
        single_best = single_best.min(t0.elapsed().as_secs_f64());
        assert_eq!(hits, keys.len(), "present keys must all hit");
        let t0 = std::time::Instant::now();
        let mut hits = 0usize;
        for chunk in keys.chunks(LOOKUP_BATCH) {
            let got = std::hint::black_box(table.get_batch(chunk));
            hits += got.iter().filter(|g| g.is_some()).count();
        }
        batch_best = batch_best.min(t0.elapsed().as_secs_f64());
        assert_eq!(hits, keys.len(), "batched pass must see the same hits");
    }
    let n = keys.len() as f64;
    (n / single_best / 1e6, n / batch_best / 1e6)
}

/// Reads and writes per deletion over `samples` present keys (destructive
/// — run on a sacrificial fill).
pub fn measure_deletions(
    table: &mut AnyTable,
    seed: u64,
    inserted: u64,
    samples: usize,
) -> (f64, f64) {
    let mut gen = DocWordsLike::nytimes_like(seed);
    let step = (inserted as usize / samples.max(1)).max(1);
    let keys: Vec<u64> = (0..inserted).map(|_| gen.next_key()).collect();
    let before = table.snapshot();
    let mut n = 0u64;
    for k in keys.iter().step_by(step) {
        let got = table.remove(k);
        assert_eq!(got, Some(*k), "present key must be deletable");
        n += 1;
    }
    let delta = table.snapshot() - before;
    (
        delta.offchip_reads as f64 / n as f64,
        delta.offchip_writes as f64 / n as f64,
    )
}

/// Fill until the first real collision; returns the load ratio at which
/// it occurred (Table I).
pub fn first_collision_load(table: &mut AnyTable, seed: u64) -> f64 {
    let mut gen = DocWordsLike::nytimes_like(seed);
    let cap = table.capacity();
    for i in 0..cap as u64 * 2 {
        let k = gen.next_key();
        let r = table.insert_new(k, k);
        if r.collision {
            return i as f64 / cap as f64;
        }
    }
    panic!("no collision up to 200% load — table misconfigured");
}

/// Fill until the first insertion failure (stash/fail); returns the load
/// ratio at which it occurred (Fig. 11).
pub fn first_failure_load(table: &mut AnyTable, seed: u64) -> f64 {
    let mut gen = DocWordsLike::nytimes_like(seed);
    let cap = table.capacity();
    for i in 0..cap as u64 * 2 {
        let k = gen.next_key();
        let r = table.insert_new(k, k);
        if matches!(r.outcome, InsertOutcome::Stashed | InsertOutcome::Failed) {
            return i as f64 / cap as f64;
        }
    }
    panic!("no failure up to 200% load — table misconfigured");
}

/// Mean of an iterator of f64s.
pub fn mean(vals: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0u64;
    for v in vals {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> Config {
        Config {
            cap: 9_000,
            runs: 1,
            lookups: 2_000,
            maxloop: 500,
        }
    }

    #[test]
    fn bands_are_clipped_per_scheme() {
        let cfg = small_cfg();
        let cuckoo = cfg.bands(Scheme::Cuckoo);
        let bmc = cfg.bands(Scheme::BMcCuckoo);
        assert!(cuckoo.last().unwrap() <= &0.88);
        assert!(bmc.last().unwrap() >= &0.95);
        assert!((cuckoo[0] - 0.05).abs() < 1e-12);
    }

    #[test]
    fn fill_sweep_reaches_each_band() {
        let cfg = small_cfg();
        let mut t = AnyTable::build(Scheme::McCuckoo, cfg.cap, 7, cfg.maxloop, false);
        let bands = [0.1, 0.3, 0.5];
        let stats = fill_sweep(&mut t, &bands, 7, |tab, s| {
            assert!((tab.load_ratio() - s.load).abs() < 0.01);
        });
        assert_eq!(stats.len(), 3);
        assert!((t.load_ratio() - 0.5).abs() < 0.01);
        // Multi-copy writes ~3 copies per insert at low load.
        assert!(stats[0].writes_per_insert > 2.0);
    }

    #[test]
    fn lookup_measurements_are_consistent() {
        let cfg = small_cfg();
        let mut t = AnyTable::build(Scheme::Cuckoo, cfg.cap, 9, cfg.maxloop, false);
        fill_sweep(&mut t, &[0.5], 9, |_, _| {});
        let inserted = (0.5 * cfg.cap as f64).round() as u64;
        let hits = measure_lookup_hits(&t, 9, inserted, 500);
        assert!((1.0..=3.0).contains(&hits), "hit reads {hits}");
        let (misses, _) = measure_lookup_misses(&t, 9, 500);
        assert!((misses - 3.0).abs() < 1e-9, "cuckoo miss must probe all 3");
    }

    #[test]
    fn mccuckoo_misses_cost_less_than_baseline() {
        let cfg = small_cfg();
        let mut base = AnyTable::build(Scheme::Cuckoo, cfg.cap, 11, cfg.maxloop, false);
        let mut mc = AnyTable::build(Scheme::McCuckoo, cfg.cap, 11, cfg.maxloop, false);
        fill_sweep(&mut base, &[0.5], 11, |_, _| {});
        fill_sweep(&mut mc, &[0.5], 11, |_, _| {});
        let (b, _) = measure_lookup_misses(&base, 11, 1_000);
        let (m, _) = measure_lookup_misses(&mc, 11, 1_000);
        assert!(m < b, "McCuckoo miss reads {m} ≥ baseline {b}");
    }

    #[test]
    fn first_collision_ordering_matches_table1() {
        let cfg = small_cfg();
        let mut loads = Vec::new();
        for scheme in Scheme::ALL {
            let l = mean((0..3).map(|r| {
                let mut t = AnyTable::build(scheme, cfg.cap, 100 + r, cfg.maxloop, false);
                first_collision_load(&mut t, 200 + r)
            }));
            loads.push(l);
        }
        // Table I order: Cuckoo < McCuckoo < BCHT < B-McCuckoo.
        assert!(
            loads[0] < loads[1],
            "Cuckoo {} < McCuckoo {}",
            loads[0],
            loads[1]
        );
        assert!(
            loads[1] < loads[2],
            "McCuckoo {} < BCHT {}",
            loads[1],
            loads[2]
        );
        assert!(
            loads[2] < loads[3],
            "BCHT {} < B-McCuckoo {}",
            loads[2],
            loads[3]
        );
    }

    #[test]
    fn deletion_measurement_runs() {
        let cfg = small_cfg();
        let mut t = AnyTable::build(Scheme::McCuckoo, cfg.cap, 13, cfg.maxloop, true);
        fill_sweep(&mut t, &[0.4], 13, |_, _| {});
        let inserted = (0.4 * cfg.cap as f64).round() as u64;
        let (reads, writes) = measure_deletions(&mut t, 13, inserted, 300);
        assert!(reads >= 1.0);
        assert_eq!(writes, 0.0, "multi-copy deletion never writes off-chip");
    }
}
