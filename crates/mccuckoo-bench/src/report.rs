//! Result presentation: aligned console tables + CSV files under
//! `results/`.

use std::fmt::Write as _;
use std::path::PathBuf;

/// A simple column-aligned table with a header row.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// CSV serialisation (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Path of the CSV for experiment `name` (creates `results/`).
pub fn csv_path(name: &str) -> PathBuf {
    let dir = std::env::var("MCB_RESULTS").unwrap_or_else(|_| "results".into());
    let dir = PathBuf::from(dir);
    let _ = std::fs::create_dir_all(&dir);
    dir.join(format!("{name}.csv"))
}

/// Write the table's CSV next to the printed output; reports the path.
pub fn write_csv(name: &str, table: &Table) {
    let path = csv_path(name);
    match std::fs::write(&path, table.to_csv()) {
        Ok(()) => println!("[csv] {}", path.display()),
        Err(e) => eprintln!("[csv] failed to write {}: {e}", path.display()),
    }
}

/// Format a float with 4 decimals.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a percentage with 4 decimals (Tables II–III style).
pub fn pct4(x: f64) -> String {
    format!("{:.4}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["scheme", "value"]);
        t.row(vec!["Cuckoo".into(), "1.0".into()]);
        t.row(vec!["B-McCuckoo".into(), "22.5".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("B-McCuckoo"));
        // Both value cells right-aligned to the same column end.
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1,5".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,5\",plain"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f4(1.23456), "1.2346");
        assert_eq!(f2(1.2), "1.20");
        assert_eq!(pct4(0.001234), "0.1234%");
    }
}
