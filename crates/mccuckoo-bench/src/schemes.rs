//! Uniform driver over the four evaluated schemes.
//!
//! The paper compares ternary Cuckoo, McCuckoo, 3×3 BCHT and
//! B-McCuckoo (§IV.A.3). [`AnyTable`] holds any of them as a boxed
//! [`McTable`] so the experiment binaries sweep all four with one code
//! path — the per-scheme `match` exists only at construction. All tables
//! are sized by **total slot capacity** so load ratios are comparable.

use cuckoo_baselines::{Bcht, BchtConfig, CuckooConfig, DaryCuckoo};
use mccuckoo_core::{
    BlockedConfig, BlockedMcCuckoo, KickPolicyKind, McConfig, McCuckoo, McTable, ShardedMcCuckoo,
};
use mem_model::{InsertOutcome, InsertReport, MemStats};

/// The four schemes of the paper's evaluation, plus the sharded
/// multi-writer serving layer built on the concurrent table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Standard ternary Cuckoo hashing (single copy, 1 slot).
    Cuckoo,
    /// Multi-copy Cuckoo, single slot.
    McCuckoo,
    /// Blocked Cuckoo hash table, 3 hashes × 3 slots.
    Bcht,
    /// Blocked multi-copy Cuckoo, 3 hashes × 3 slots.
    BMcCuckoo,
    /// 4-way sharded concurrent McCuckoo (not in the paper's figures;
    /// swept by the smoke and concurrency harnesses).
    Sharded,
}

impl Scheme {
    /// The paper's four schemes, in its presentation order.
    pub const ALL: [Scheme; 4] = [
        Scheme::Cuckoo,
        Scheme::McCuckoo,
        Scheme::Bcht,
        Scheme::BMcCuckoo,
    ];

    /// The paper's four plus the sharded serving layer, for harnesses
    /// (smoke tests) that cover everything buildable.
    pub const WITH_SHARDED: [Scheme; 5] = [
        Scheme::Cuckoo,
        Scheme::McCuckoo,
        Scheme::Bcht,
        Scheme::BMcCuckoo,
        Scheme::Sharded,
    ];

    /// The two single-slot schemes.
    pub const SINGLE_SLOT: [Scheme; 2] = [Scheme::Cuckoo, Scheme::McCuckoo];

    /// Display label matching the paper.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::Cuckoo => "Cuckoo",
            Scheme::McCuckoo => "McCuckoo",
            Scheme::Bcht => "BCHT",
            Scheme::BMcCuckoo => "B-McCuckoo",
            Scheme::Sharded => "Sharded-4",
        }
    }

    /// Whether this is a multi-copy scheme.
    pub fn multi_copy(&self) -> bool {
        matches!(self, Scheme::McCuckoo | Scheme::BMcCuckoo | Scheme::Sharded)
    }

    /// Whether this is a blocked (multi-slot) scheme, whose off-chip
    /// bucket holds 3 records per access.
    pub fn blocked(&self) -> bool {
        matches!(self, Scheme::Bcht | Scheme::BMcCuckoo)
    }

    /// A realistic failure-free peak load for fill sweeps (bands above
    /// this are skipped for the scheme).
    pub fn max_sweep_load(&self) -> f64 {
        match self {
            Scheme::Cuckoo => 0.88,
            Scheme::McCuckoo => 0.90,
            Scheme::Bcht => 0.97,
            Scheme::BMcCuckoo => 0.98,
            // Stash-less concurrent shards, each smaller than one
            // monolithic table of the same total capacity: stalls first.
            Scheme::Sharded => 0.85,
        }
    }
}

/// A table of any scheme, keyed `u64 → u64`, sized by total slots.
///
/// All operations go through the shared [`McTable`] interface; the
/// scheme tag rides along for labelling only.
pub struct AnyTable {
    scheme: Scheme,
    t: Box<dyn McTable<u64, u64>>,
}

impl AnyTable {
    /// Build `scheme` with ~`cap_slots` total capacity. `deletion`
    /// enables Reset-mode deletion on the multi-copy schemes (baselines
    /// always support removal). Uses the paper's random-walk kick policy;
    /// [`Self::build_with_policy`] selects another.
    pub fn build(
        scheme: Scheme,
        cap_slots: usize,
        seed: u64,
        maxloop: u32,
        deletion: bool,
    ) -> Self {
        Self::build_with_policy(
            scheme,
            cap_slots,
            seed,
            maxloop,
            deletion,
            KickPolicyKind::RandomWalk,
        )
    }

    /// [`Self::build`] with an explicit kick policy for the multi-copy
    /// schemes (McCuckoo, B-McCuckoo, Sharded). The baselines have no
    /// policy layer and ignore `kick` — their walk is the scheme.
    pub fn build_with_policy(
        scheme: Scheme,
        cap_slots: usize,
        seed: u64,
        maxloop: u32,
        deletion: bool,
        kick: KickPolicyKind,
    ) -> Self {
        let t: Box<dyn McTable<u64, u64>> = match scheme {
            Scheme::Cuckoo => {
                let mut cfg = CuckooConfig::paper(cap_slots / 3, seed);
                cfg.maxloop = maxloop;
                Box::new(DaryCuckoo::new(cfg))
            }
            Scheme::McCuckoo => {
                let mut cfg = if deletion {
                    McConfig::paper_with_deletion(cap_slots / 3, seed)
                } else {
                    McConfig::paper(cap_slots / 3, seed)
                };
                cfg.maxloop = maxloop;
                cfg.kick = kick;
                Box::new(McCuckoo::new(cfg))
            }
            Scheme::Bcht => {
                let mut cfg = BchtConfig::paper(cap_slots / 9, seed);
                cfg.maxloop = maxloop;
                Box::new(Bcht::new(cfg))
            }
            Scheme::BMcCuckoo => {
                let base = if deletion {
                    McConfig::paper_with_deletion(cap_slots / 9, seed)
                } else {
                    McConfig::paper(cap_slots / 9, seed)
                };
                let mut cfg = BlockedConfig {
                    base,
                    slots: 3,
                    aggressive_lookup: false,
                };
                cfg.base.maxloop = maxloop;
                cfg.base.kick = kick;
                Box::new(BlockedMcCuckoo::new(cfg))
            }
            Scheme::Sharded => {
                // 4 shards of single-slot concurrent McCuckoo; deletion
                // is always available (counter-only removes).
                const SHARDS: usize = 4;
                let mut cfg = McConfig::paper((cap_slots / 3 / SHARDS).max(1), seed);
                cfg.maxloop = maxloop;
                cfg.kick = kick;
                Box::new(ShardedMcCuckoo::new(SHARDS, cfg))
            }
        };
        Self { scheme, t }
    }

    /// Which scheme this is.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Insert a fresh key. Hard failures (no stash, or stash full) are
    /// reported as `Failed`; the evicted victim is re-offered nowhere
    /// (the sweeps stop at the first failure anyway).
    pub fn insert_new(&mut self, k: u64, v: u64) -> InsertReport {
        self.t.insert_new(k, v)
    }

    /// Look up a key.
    pub fn get(&self, k: &u64) -> Option<u64> {
        self.t.lookup(k)
    }

    /// Look up a batch of keys through the scheme's batched read path
    /// ([`McTable::lookup_batch`]): the multi-copy tables run the
    /// prefetch-interleaved state machine, the baselines fall back to
    /// the default per-key loop.
    pub fn get_batch(&self, keys: &[u64]) -> Vec<Option<u64>> {
        self.t.lookup_batch(keys)
    }

    /// Remove a key (multi-copy tables must be built with `deletion`).
    pub fn remove(&mut self, k: &u64) -> Option<u64> {
        self.t.remove(k)
    }

    /// Meter snapshot.
    pub fn snapshot(&self) -> MemStats {
        self.t.mem_stats()
    }

    /// Observability snapshot ([`McTable::stats`]).
    pub fn stats(&self) -> mccuckoo_core::TableStats {
        self.t.stats()
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        self.t.capacity()
    }

    /// Stored distinct items.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// True if no items stored.
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// Stash occupancy (0 for the baselines, which have no off-chip
    /// stash in the paper's setup).
    pub fn stash_len(&self) -> usize {
        self.t.stash_len()
    }

    /// Load ratio.
    pub fn load_ratio(&self) -> f64 {
        self.t.load()
    }
}

/// Outcome helper: did the insert land anywhere usable?
pub fn insert_succeeded(r: &InsertReport) -> bool {
    matches!(r.outcome, InsertOutcome::Placed | InsertOutcome::Updated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::UniqueKeys;

    #[test]
    fn all_schemes_build_fill_and_serve() {
        for scheme in Scheme::WITH_SHARDED {
            let mut t = AnyTable::build(scheme, 9_000, 1, 500, false);
            assert_eq!(t.scheme(), scheme);
            let mut keys = UniqueKeys::new(2);
            let target = (t.capacity() as f64 * 0.5) as usize;
            for _ in 0..target {
                let k = keys.next_key();
                let r = t.insert_new(k, k);
                assert!(r.stored(), "{scheme:?} lost an item at 50% load");
            }
            for k in UniqueKeys::new(2).take_vec(target) {
                assert_eq!(t.get(&k), Some(k), "{}", scheme.label());
            }
            assert!((t.load_ratio() - 0.5).abs() < 0.01);
        }
    }

    #[test]
    fn deletion_capable_builds_remove() {
        for scheme in Scheme::WITH_SHARDED {
            let mut t = AnyTable::build(scheme, 9_000, 3, 500, true);
            let mut keys = UniqueKeys::new(4);
            let ks = keys.take_vec(1000);
            for &k in &ks {
                t.insert_new(k, k);
            }
            for &k in &ks {
                assert_eq!(t.remove(&k), Some(k), "{}", scheme.label());
            }
            assert!(t.is_empty(), "{}", scheme.label());
        }
    }

    #[test]
    fn capacity_is_comparable_across_schemes() {
        for scheme in Scheme::WITH_SHARDED {
            let t = AnyTable::build(scheme, 90_000, 5, 500, false);
            assert_eq!(t.capacity(), 90_000, "{}", scheme.label());
        }
    }
}
