//! Uniform driver over the four evaluated schemes.
//!
//! The paper compares ternary Cuckoo, McCuckoo, 3×3 BCHT and
//! B-McCuckoo (§IV.A.3). [`AnyTable`] normalises their APIs so the
//! experiment binaries can sweep all four with one code path. All tables
//! are sized by **total slot capacity** so load ratios are comparable.

use cuckoo_baselines::{Bcht, BchtConfig, CuckooConfig, DaryCuckoo};
use mccuckoo_core::{BlockedConfig, BlockedMcCuckoo, McConfig, McCuckoo};
use mem_model::{InsertOutcome, InsertReport, MemStats};

/// The four schemes of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Standard ternary Cuckoo hashing (single copy, 1 slot).
    Cuckoo,
    /// Multi-copy Cuckoo, single slot.
    McCuckoo,
    /// Blocked Cuckoo hash table, 3 hashes × 3 slots.
    Bcht,
    /// Blocked multi-copy Cuckoo, 3 hashes × 3 slots.
    BMcCuckoo,
}

impl Scheme {
    /// All four, in the paper's presentation order.
    pub const ALL: [Scheme; 4] = [
        Scheme::Cuckoo,
        Scheme::McCuckoo,
        Scheme::Bcht,
        Scheme::BMcCuckoo,
    ];

    /// The two single-slot schemes.
    pub const SINGLE_SLOT: [Scheme; 2] = [Scheme::Cuckoo, Scheme::McCuckoo];

    /// Display label matching the paper.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::Cuckoo => "Cuckoo",
            Scheme::McCuckoo => "McCuckoo",
            Scheme::Bcht => "BCHT",
            Scheme::BMcCuckoo => "B-McCuckoo",
        }
    }

    /// Whether this is a multi-copy scheme.
    pub fn multi_copy(&self) -> bool {
        matches!(self, Scheme::McCuckoo | Scheme::BMcCuckoo)
    }

    /// Whether this is a blocked (multi-slot) scheme, whose off-chip
    /// bucket holds 3 records per access.
    pub fn blocked(&self) -> bool {
        matches!(self, Scheme::Bcht | Scheme::BMcCuckoo)
    }

    /// A realistic failure-free peak load for fill sweeps (bands above
    /// this are skipped for the scheme).
    pub fn max_sweep_load(&self) -> f64 {
        match self {
            Scheme::Cuckoo => 0.88,
            Scheme::McCuckoo => 0.90,
            Scheme::Bcht => 0.97,
            Scheme::BMcCuckoo => 0.98,
        }
    }
}

/// A table of any scheme, keyed `u64 → u64`, sized by total slots.
pub enum AnyTable {
    /// Standard d-ary Cuckoo.
    Cuckoo(DaryCuckoo<u64, u64>),
    /// Single-slot McCuckoo.
    Mc(McCuckoo<u64, u64>),
    /// Blocked cuckoo baseline.
    Bcht(Bcht<u64, u64>),
    /// Blocked McCuckoo.
    BMc(BlockedMcCuckoo<u64, u64>),
}

impl AnyTable {
    /// Build `scheme` with ~`cap_slots` total capacity. `deletion`
    /// enables Reset-mode deletion on the multi-copy schemes (baselines
    /// always support removal).
    pub fn build(
        scheme: Scheme,
        cap_slots: usize,
        seed: u64,
        maxloop: u32,
        deletion: bool,
    ) -> Self {
        match scheme {
            Scheme::Cuckoo => {
                let mut cfg = CuckooConfig::paper(cap_slots / 3, seed);
                cfg.maxloop = maxloop;
                AnyTable::Cuckoo(DaryCuckoo::new(cfg))
            }
            Scheme::McCuckoo => {
                let mut cfg = if deletion {
                    McConfig::paper_with_deletion(cap_slots / 3, seed)
                } else {
                    McConfig::paper(cap_slots / 3, seed)
                };
                cfg.maxloop = maxloop;
                AnyTable::Mc(McCuckoo::new(cfg))
            }
            Scheme::Bcht => {
                let mut cfg = BchtConfig::paper(cap_slots / 9, seed);
                cfg.maxloop = maxloop;
                AnyTable::Bcht(Bcht::new(cfg))
            }
            Scheme::BMcCuckoo => {
                let base = if deletion {
                    McConfig::paper_with_deletion(cap_slots / 9, seed)
                } else {
                    McConfig::paper(cap_slots / 9, seed)
                };
                let mut cfg = BlockedConfig {
                    base,
                    slots: 3,
                    aggressive_lookup: false,
                };
                cfg.base.maxloop = maxloop;
                AnyTable::BMc(BlockedMcCuckoo::new(cfg))
            }
        }
    }

    /// Which scheme this is.
    pub fn scheme(&self) -> Scheme {
        match self {
            AnyTable::Cuckoo(_) => Scheme::Cuckoo,
            AnyTable::Mc(_) => Scheme::McCuckoo,
            AnyTable::Bcht(_) => Scheme::Bcht,
            AnyTable::BMc(_) => Scheme::BMcCuckoo,
        }
    }

    /// Insert a fresh key. Baseline hard failures (no stash) are folded
    /// into a `Failed` report; the evicted victim is re-offered nowhere
    /// (the sweeps stop at the first failure anyway).
    pub fn insert_new(&mut self, k: u64, v: u64) -> InsertReport {
        match self {
            AnyTable::Cuckoo(t) => t.insert(k, v).unwrap_or_else(|full| full.report),
            AnyTable::Mc(t) => t.insert_new(k, v).unwrap_or_else(|full| full.report),
            AnyTable::Bcht(t) => t.insert(k, v).unwrap_or_else(|full| full.report),
            AnyTable::BMc(t) => t.insert_new(k, v).unwrap_or_else(|full| full.report),
        }
    }

    /// Look up a key.
    pub fn get(&self, k: &u64) -> Option<u64> {
        match self {
            AnyTable::Cuckoo(t) => t.get(k).copied(),
            AnyTable::Mc(t) => t.get(k).copied(),
            AnyTable::Bcht(t) => t.get(k).copied(),
            AnyTable::BMc(t) => t.get(k).copied(),
        }
    }

    /// Remove a key (multi-copy tables must be built with `deletion`).
    pub fn remove(&mut self, k: &u64) -> Option<u64> {
        match self {
            AnyTable::Cuckoo(t) => t.remove(k),
            AnyTable::Mc(t) => t.remove(k),
            AnyTable::Bcht(t) => t.remove(k),
            AnyTable::BMc(t) => t.remove(k),
        }
    }

    /// Meter snapshot.
    pub fn snapshot(&self) -> MemStats {
        match self {
            AnyTable::Cuckoo(t) => t.meter().snapshot(),
            AnyTable::Mc(t) => t.meter().snapshot(),
            AnyTable::Bcht(t) => t.meter().snapshot(),
            AnyTable::BMc(t) => t.meter().snapshot(),
        }
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        match self {
            AnyTable::Cuckoo(t) => t.capacity(),
            AnyTable::Mc(t) => t.capacity(),
            AnyTable::Bcht(t) => t.capacity(),
            AnyTable::BMc(t) => t.capacity(),
        }
    }

    /// Stored distinct items.
    pub fn len(&self) -> usize {
        match self {
            AnyTable::Cuckoo(t) => t.len(),
            AnyTable::Mc(t) => t.len(),
            AnyTable::Bcht(t) => t.len(),
            AnyTable::BMc(t) => t.len(),
        }
    }

    /// True if no items stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stash occupancy (0 for the baselines, which have no off-chip
    /// stash in the paper's setup).
    pub fn stash_len(&self) -> usize {
        match self {
            AnyTable::Cuckoo(t) => t.stash_len(),
            AnyTable::Mc(t) => t.stash_len(),
            AnyTable::Bcht(_) => 0,
            AnyTable::BMc(t) => t.stash_len(),
        }
    }

    /// Load ratio.
    pub fn load_ratio(&self) -> f64 {
        self.len() as f64 / self.capacity() as f64
    }
}

/// Outcome helper: did the insert land anywhere usable?
pub fn insert_succeeded(r: &InsertReport) -> bool {
    matches!(r.outcome, InsertOutcome::Placed | InsertOutcome::Updated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::UniqueKeys;

    #[test]
    fn all_schemes_build_fill_and_serve() {
        for scheme in Scheme::ALL {
            let mut t = AnyTable::build(scheme, 9_000, 1, 500, false);
            assert_eq!(t.scheme(), scheme);
            let mut keys = UniqueKeys::new(2);
            let target = (t.capacity() as f64 * 0.5) as usize;
            for _ in 0..target {
                let k = keys.next_key();
                let r = t.insert_new(k, k);
                assert!(r.stored(), "{scheme:?} lost an item at 50% load");
            }
            for k in UniqueKeys::new(2).take_vec(target) {
                assert_eq!(t.get(&k), Some(k), "{}", scheme.label());
            }
            assert!((t.load_ratio() - 0.5).abs() < 0.01);
        }
    }

    #[test]
    fn deletion_capable_builds_remove() {
        for scheme in Scheme::ALL {
            let mut t = AnyTable::build(scheme, 9_000, 3, 500, true);
            let mut keys = UniqueKeys::new(4);
            let ks = keys.take_vec(1000);
            for &k in &ks {
                t.insert_new(k, k);
            }
            for &k in &ks {
                assert_eq!(t.remove(&k), Some(k), "{}", scheme.label());
            }
            assert!(t.is_empty(), "{}", scheme.label());
        }
    }

    #[test]
    fn capacity_is_comparable_across_schemes() {
        for scheme in Scheme::ALL {
            let t = AnyTable::build(scheme, 90_000, 5, 500, false);
            assert_eq!(t.capacity(), 90_000, "{}", scheme.label());
        }
    }
}
