//! # mccuckoo-bench — regenerating every table and figure of the paper
//!
//! One binary per experiment (see `DESIGN.md` §5 for the full index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1_first_collision` | Table I |
//! | `fig9_kickouts` | Fig. 9 |
//! | `fig10_insert_access` | Fig. 10a/b |
//! | `fig11_first_failure` | Fig. 11 |
//! | `fig12_lookup_hit` | Fig. 12 |
//! | `fig13_lookup_miss` | Fig. 13 |
//! | `fig14_delete` | Fig. 14 |
//! | `table2_stash_single` | Table II |
//! | `table3_stash_blocked` | Table III |
//! | `fig15_insert_latency` | Fig. 15 |
//! | `fig16_lookup_latency` | Fig. 16 |
//! | `ablation_*` | design-choice ablations (DESIGN.md §5) |
//!
//! Each binary prints the paper's rows/series to stdout and writes a CSV
//! under `results/`. Scale and repetitions are environment-tunable:
//!
//! * `MCB_CAP` — total table capacity in slots (default 393216 ≈ 3·2¹⁷);
//! * `MCB_RUNS` — repetitions averaged per data point (default 5; the
//!   paper uses 10);
//! * `MCB_LOOKUPS` — lookups sampled per measurement (default 100000).

pub mod affinity;
pub mod harness;
pub mod report;
pub mod schemes;
pub mod smoke;

pub use harness::{BandStats, Config};
pub use report::{csv_path, write_csv, Table};
pub use schemes::{AnyTable, Scheme};
pub use smoke::{gate_regressions, SchemeSmoke, SmokeReport, GATE_TOLERANCE};
