//! Best-effort thread→CPU pinning for benchmark runs.
//!
//! Scaling sweeps are noisy when the scheduler migrates writer threads
//! mid-measurement; pinning each writer to a fixed core removes that
//! noise on multi-core hosts. Pinning is strictly best-effort: on
//! non-Linux targets, in containers that reject the syscall, or on a
//! single-core box it degrades to a no-op and the benchmark still runs —
//! callers must not depend on it succeeding.

#[cfg(target_os = "linux")]
mod imp {
    /// Mirrors glibc's `cpu_set_t`: 1024 bits of CPU mask.
    #[repr(C)]
    struct CpuSet {
        bits: [u64; 16],
    }

    extern "C" {
        /// `pid == 0` targets the calling thread.
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const CpuSet) -> i32;
    }

    /// Pin the calling thread to `cpu`. Returns whether the kernel
    /// accepted the mask.
    pub fn pin_to_cpu(cpu: usize) -> bool {
        if cpu >= 1024 {
            return false;
        }
        let mut set = CpuSet { bits: [0; 16] };
        set.bits[cpu / 64] = 1u64 << (cpu % 64);
        // SAFETY: the mask outlives the call and has the size we claim.
        unsafe { sched_setaffinity(0, std::mem::size_of::<CpuSet>(), &set) == 0 }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    /// No pinning support on this target; always reports failure.
    pub fn pin_to_cpu(_cpu: usize) -> bool {
        false
    }
}

pub use imp::pin_to_cpu;

/// Pin the calling thread to worker slot `slot`, spreading slots
/// round-robin over the available cores. Best-effort.
pub fn pin_worker(slot: usize) -> bool {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    pin_to_cpu(slot % cores)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinning_is_best_effort_and_never_panics() {
        // Whatever the host allows, the call must return (a CI sandbox
        // may refuse the syscall; a laptop will accept it).
        let _ = pin_worker(0);
        let _ = pin_worker(7);
        assert!(!pin_to_cpu(usize::MAX), "absurd CPU index must fail");
    }
}
