//! The cross-scheme smoke report format plus the regression gate that
//! compares a fresh run against the committed baseline.
//!
//! `bench_smoke` writes a [`SmokeReport`] to `results/bench_smoke.json`;
//! `bench_gate` re-reads it, loads `results/bench_smoke_baseline.json`
//! and fails CI when a scheme regressed. Two kinds of metric are gated
//! differently:
//!
//! * **Access counts** (off-chip reads/writes per op) are deterministic
//!   for a given seed and scale, so any growth beyond the tolerance is a
//!   genuine algorithmic regression.
//! * **Wall-clock throughput** is machine-dependent, so it is gated on
//!   the ratio to the run's own reference scheme (standard Cuckoo):
//!   the machine's speed cancels out and only relative slowdowns trip.

use jsonlite::impl_json_struct;
use mccuckoo_core::TableStats;

/// Relative slack before a metric counts as regressed.
pub const GATE_TOLERANCE: f64 = 0.30;

/// One scheme's smoke measurements.
#[derive(Debug, Clone)]
pub struct SchemeSmoke {
    /// Scheme label ([`crate::Scheme::label`]).
    pub scheme: String,
    /// Total slot capacity of the table built.
    pub capacity: u64,
    /// Load ratio reached by the fill.
    pub load: f64,
    /// Wall time of the fill, milliseconds.
    pub fill_ms: u64,
    /// Million fresh inserts per second during the fill.
    pub insert_mops: f64,
    /// Off-chip reads per insert during the fill.
    pub offchip_reads_per_insert: f64,
    /// Off-chip writes per insert during the fill.
    pub offchip_writes_per_insert: f64,
    /// Off-chip reads per present-key lookup.
    pub lookup_hit_reads: f64,
    /// Off-chip reads per absent-key lookup.
    pub lookup_miss_reads: f64,
    /// Million single-key present lookups per second.
    pub lookup_mops: f64,
    /// Million present lookups per second through the batched
    /// (prefetch-interleaved) read path, same key set as `lookup_mops`.
    pub lookup_batch_mops: f64,
    /// Stash occupancy after the fill.
    pub stash_len: u64,
    /// The table's own observability counters after the run.
    pub stats: TableStats,
}

/// The whole smoke run.
#[derive(Debug, Clone)]
pub struct SmokeReport {
    /// `MCB_CAP` the run used.
    pub cap_slots: u64,
    /// Fill target load.
    pub target_load: f64,
    /// `MCB_LOOKUPS` the run used.
    pub lookups: u64,
    /// Per-scheme measurements, reference scheme first.
    pub schemes: Vec<SchemeSmoke>,
}

impl_json_struct!(SchemeSmoke {
    scheme,
    capacity,
    load,
    fill_ms,
    insert_mops,
    offchip_reads_per_insert,
    offchip_writes_per_insert,
    lookup_hit_reads,
    lookup_miss_reads,
    lookup_mops,
    lookup_batch_mops,
    stash_len,
    stats
});
impl_json_struct!(SmokeReport {
    cap_slots,
    target_load,
    lookups,
    schemes
});

impl SmokeReport {
    /// The scheme every throughput figure is normalised against: the
    /// first entry of the run (standard Cuckoo in the stock sweep).
    fn reference_mops(&self) -> Option<f64> {
        self.schemes
            .first()
            .map(|s| s.insert_mops)
            .filter(|&m| m > 0.0)
    }
}

/// Compare `fresh` against `baseline`; one message per regression (empty
/// means the gate passes).
pub fn gate_regressions(baseline: &SmokeReport, fresh: &SmokeReport) -> Vec<String> {
    let mut fails = Vec::new();
    if baseline.cap_slots != fresh.cap_slots || baseline.lookups != fresh.lookups {
        fails.push(format!(
            "scale mismatch: baseline ran cap={} lookups={}, fresh ran cap={} lookups={} \
             (regenerate the baseline at the gated scale)",
            baseline.cap_slots, baseline.lookups, fresh.cap_slots, fresh.lookups
        ));
        return fails;
    }
    let (base_ref, fresh_ref) = match (baseline.reference_mops(), fresh.reference_mops()) {
        (Some(b), Some(f)) => (b, f),
        _ => {
            fails.push("reference scheme has zero throughput; cannot normalise".into());
            return fails;
        }
    };
    for s in &fresh.schemes {
        let Some(b) = baseline.schemes.iter().find(|b| b.scheme == s.scheme) else {
            fails.push(format!(
                "{}: not in the baseline (regenerate results/bench_smoke_baseline.json)",
                s.scheme
            ));
            continue;
        };
        // Deterministic access counts: more off-chip traffic per op is a
        // regression regardless of the machine. The +0.01 absolute slack
        // keeps near-zero metrics (e.g. multi-copy delete writes) from
        // tripping on rounding.
        let access = [
            (
                "reads/insert",
                b.offchip_reads_per_insert,
                s.offchip_reads_per_insert,
            ),
            (
                "writes/insert",
                b.offchip_writes_per_insert,
                s.offchip_writes_per_insert,
            ),
            ("reads/hit-lookup", b.lookup_hit_reads, s.lookup_hit_reads),
            (
                "reads/miss-lookup",
                b.lookup_miss_reads,
                s.lookup_miss_reads,
            ),
        ];
        for (what, base, now) in access {
            if now > base * (1.0 + GATE_TOLERANCE) + 0.01 {
                fails.push(format!(
                    "{}: {what} regressed {base:.3} -> {now:.3} (>{:.0}% over baseline)",
                    s.scheme,
                    GATE_TOLERANCE * 100.0
                ));
            }
        }
        // Relative throughput: scheme speed vs the reference scheme of
        // the same run, compared across runs.
        let base_rel = b.insert_mops / base_ref;
        let fresh_rel = s.insert_mops / fresh_ref;
        if fresh_rel < base_rel * (1.0 - GATE_TOLERANCE) {
            fails.push(format!(
                "{}: relative insert throughput regressed {base_rel:.3}x -> {fresh_rel:.3}x \
                 of the reference scheme (>{:.0}% drop)",
                s.scheme,
                GATE_TOLERANCE * 100.0
            ));
        }
        // The embedded stats are part of the report contract: a scheme
        // whose counters stayed at zero has a broken obs hook-up.
        if s.stats.ops.inserts == 0 || s.stats.probe_hist.count == 0 {
            fails.push(format!(
                "{}: embedded stats are empty (inserts={}, probe samples={})",
                s.scheme, s.stats.ops.inserts, s.stats.probe_hist.count
            ));
        }
    }
    fails
}

/// Gate the batched read path: for the single-writer multi-copy schemes,
/// batched lookups must reach `min_ratio ×` the single-key rate of the
/// *same run* (both passes resolve the same keys on the same machine, so
/// the ratio is machine-independent — the same normalisation trick as the
/// relative-throughput gate). Baselines (which fall back to the default
/// per-key loop) and the sharded table (whose batch path pays an extra
/// routing hash plus scatter/gather per key, so its ratio tracks shard
/// count and core count, not the probe engine) are exempt: their ratios
/// are reported informationally by `bench_gate`, not gated.
pub fn gate_lookup_batch(fresh: &SmokeReport, min_ratio: f64) -> Vec<String> {
    let mut fails = Vec::new();
    for s in &fresh.schemes {
        let gated = matches!(s.scheme.as_str(), "McCuckoo" | "B-McCuckoo");
        if !gated {
            continue;
        }
        if s.lookup_mops <= 0.0 || s.lookup_batch_mops <= 0.0 {
            fails.push(format!(
                "{}: lookup throughput columns missing (single={}, batched={}) — \
                 regenerate results/bench_smoke.json with the current bench_smoke",
                s.scheme, s.lookup_mops, s.lookup_batch_mops
            ));
            continue;
        }
        let ratio = s.lookup_batch_mops / s.lookup_mops;
        if ratio < min_ratio {
            fails.push(format!(
                "{}: batched lookups only {:.2}x single-key ({:.2} vs {:.2} Mops; \
                 gate requires ≥{min_ratio:.2}x)",
                s.scheme, ratio, s.lookup_batch_mops, s.lookup_mops
            ));
        }
    }
    fails
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme(name: &str, mops: f64, hit_reads: f64) -> SchemeSmoke {
        let mut stats = TableStats::default();
        stats.ops.inserts = 100;
        stats.probe_hist.count = 1;
        stats.probe_hist.sum = 1;
        SchemeSmoke {
            scheme: name.to_string(),
            capacity: 9_000,
            load: 0.5,
            fill_ms: 10,
            insert_mops: mops,
            offchip_reads_per_insert: 3.0,
            offchip_writes_per_insert: 1.0,
            lookup_hit_reads: hit_reads,
            lookup_miss_reads: 3.0,
            lookup_mops: 10.0,
            lookup_batch_mops: 14.0,
            stash_len: 0,
            stats,
        }
    }

    fn report(schemes: Vec<SchemeSmoke>) -> SmokeReport {
        SmokeReport {
            cap_slots: 9_000,
            target_load: 0.5,
            lookups: 1_000,
            schemes,
        }
    }

    #[test]
    fn identical_runs_pass() {
        let base = report(vec![
            scheme("Cuckoo", 10.0, 1.5),
            scheme("McCuckoo", 8.0, 1.2),
        ]);
        assert!(gate_regressions(&base, &base.clone()).is_empty());
    }

    #[test]
    fn uniform_machine_slowdown_passes() {
        let base = report(vec![
            scheme("Cuckoo", 10.0, 1.5),
            scheme("McCuckoo", 8.0, 1.2),
        ]);
        // Half-speed machine: every scheme 2x slower, ratios unchanged.
        let fresh = report(vec![
            scheme("Cuckoo", 5.0, 1.5),
            scheme("McCuckoo", 4.0, 1.2),
        ]);
        assert!(gate_regressions(&base, &fresh).is_empty());
    }

    #[test]
    fn access_count_regression_fails() {
        let base = report(vec![
            scheme("Cuckoo", 10.0, 1.5),
            scheme("McCuckoo", 8.0, 1.2),
        ]);
        let fresh = report(vec![
            scheme("Cuckoo", 10.0, 1.5),
            scheme("McCuckoo", 8.0, 2.0),
        ]);
        let fails = gate_regressions(&base, &fresh);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("reads/hit-lookup"), "{}", fails[0]);
    }

    #[test]
    fn relative_throughput_regression_fails() {
        let base = report(vec![
            scheme("Cuckoo", 10.0, 1.5),
            scheme("McCuckoo", 8.0, 1.2),
        ]);
        // Reference unchanged but McCuckoo alone halved: a real slowdown.
        let fresh = report(vec![
            scheme("Cuckoo", 10.0, 1.5),
            scheme("McCuckoo", 4.0, 1.2),
        ]);
        let fails = gate_regressions(&base, &fresh);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(
            fails[0].contains("relative insert throughput"),
            "{}",
            fails[0]
        );
    }

    #[test]
    fn empty_stats_fail_the_gate() {
        let base = report(vec![scheme("Cuckoo", 10.0, 1.5)]);
        let mut fresh = base.clone();
        fresh.schemes[0].stats = TableStats::default();
        let fails = gate_regressions(&base, &fresh);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("stats are empty"), "{}", fails[0]);
    }

    #[test]
    fn scale_mismatch_is_reported_once() {
        let base = report(vec![scheme("Cuckoo", 10.0, 1.5)]);
        let mut fresh = base.clone();
        fresh.cap_slots = 90_000;
        let fails = gate_regressions(&base, &fresh);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("scale mismatch"), "{}", fails[0]);
    }

    #[test]
    fn lookup_gate_passes_at_the_stock_ratio() {
        let fresh = report(vec![
            scheme("Cuckoo", 10.0, 1.5),
            scheme("McCuckoo", 8.0, 1.2),
        ]);
        // Helper reports 14.0 batched vs 10.0 single: a 1.4x ratio.
        assert!(gate_lookup_batch(&fresh, 1.2).is_empty());
    }

    #[test]
    fn lookup_gate_fails_when_batching_does_not_pay() {
        let mut fresh = report(vec![scheme("McCuckoo", 8.0, 1.2)]);
        fresh.schemes[0].lookup_batch_mops = 10.5; // 1.05x < 1.2x
        let fails = gate_lookup_batch(&fresh, 1.2);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("batched lookups only"), "{}", fails[0]);
    }

    #[test]
    fn lookup_gate_ignores_baselines_and_flags_missing_columns() {
        let mut fresh = report(vec![
            scheme("Cuckoo", 10.0, 1.5),
            scheme("McCuckoo", 8.0, 1.2),
        ]);
        // Baseline scheme with a sub-ratio batched rate: not gated.
        fresh.schemes[0].lookup_batch_mops = 1.0;
        assert!(gate_lookup_batch(&fresh, 1.2).is_empty());
        // Missing columns (old report format) are a hard failure.
        fresh.schemes[1].lookup_mops = 0.0;
        let fails = gate_lookup_batch(&fresh, 1.2);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("columns missing"), "{}", fails[0]);
    }

    #[test]
    fn report_round_trips_through_json() {
        let base = report(vec![
            scheme("Cuckoo", 10.0, 1.5),
            scheme("McCuckoo", 8.0, 1.2),
        ]);
        let s = jsonlite::to_string(&base);
        let back: SmokeReport = jsonlite::from_str(&s).expect("parse back");
        assert!(gate_regressions(&base, &back).is_empty());
        assert_eq!(back.schemes[1].stats.ops.inserts, 100);
    }
}
