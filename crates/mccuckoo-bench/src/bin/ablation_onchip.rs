//! Ablation: on-chip memory cost of the helper structure — contribution
//! 2 of the paper ("a new compact on-chip helping structure ... with
//! less on-chip memory cost than current solutions").
//!
//! McCuckoo's helper is 2 bits per bucket, fixed. The DEHT/EMOMA-style
//! alternative — per-sub-table counting Bloom filters steering lookups —
//! is implemented in `cuckoo_baselines::bloom_guided`; its screening
//! quality is a function of how many on-chip bits it is given. This
//! ablation sweeps the filter budget and reports off-chip reads per
//! lookup (hits and misses) at 50% and 85% load, next to McCuckoo's
//! fixed-cost counters.

use cuckoo_baselines::{BloomGuidedCuckoo, CuckooConfig};
use mccuckoo_bench::harness::Config;
use mccuckoo_bench::report::{f4, write_csv, Table};
use mccuckoo_core::{McConfig, McCuckoo};
use workloads::DocWordsLike;

struct Point {
    label: String,
    onchip_bits_per_slot: f64,
    hit_reads: f64,
    miss_reads: f64,
}

fn measure_mc(cfg: &Config, band: f64) -> Point {
    let mut t: McCuckoo<u64, u64> = McCuckoo::new(McConfig::paper(cfg.cap / 3, 800));
    let mut gen = DocWordsLike::nytimes_like(801);
    let target = (band * t.capacity() as f64) as usize;
    let keys: Vec<u64> = (0..target).map(|_| gen.next_key()).collect();
    for &k in &keys {
        let _ = t.insert_new(k, k);
    }
    let step = (keys.len() / cfg.lookups.max(1)).max(1);
    let before = t.meter().snapshot();
    let mut n = 0u64;
    for k in keys.iter().step_by(step) {
        assert!(t.get(k).is_some());
        n += 1;
    }
    let hit = (t.meter().snapshot() - before).offchip_reads as f64 / n as f64;
    let before = t.meter().snapshot();
    for j in 0..cfg.lookups as u64 {
        assert_eq!(t.get(&gen.absent_key(j)), None);
    }
    let miss = (t.meter().snapshot() - before).offchip_reads as f64 / cfg.lookups as f64;
    Point {
        label: "McCuckoo counters".into(),
        onchip_bits_per_slot: 2.0,
        hit_reads: hit,
        miss_reads: miss,
    }
}

fn measure_bloom(cfg: &Config, band: f64, bits: usize, k: usize) -> Point {
    let mut t: BloomGuidedCuckoo<u64, u64> =
        BloomGuidedCuckoo::new(CuckooConfig::paper(cfg.cap / 3, 802), bits, k);
    let mut gen = DocWordsLike::nytimes_like(803);
    let target = (band * t.capacity() as f64) as usize;
    let keys: Vec<u64> = (0..target).map(|_| gen.next_key()).collect();
    for &k in &keys {
        t.insert(k, k).expect("below failure point");
    }
    let step = (keys.len() / cfg.lookups.max(1)).max(1);
    let before = t.meter().snapshot();
    let mut n = 0u64;
    for key in keys.iter().step_by(step) {
        assert!(t.get(key).is_some());
        n += 1;
    }
    let hit = (t.meter().snapshot() - before).offchip_reads as f64 / n as f64;
    let before = t.meter().snapshot();
    for j in 0..cfg.lookups as u64 {
        assert_eq!(t.get(&gen.absent_key(j)), None);
    }
    let miss = (t.meter().snapshot() - before).offchip_reads as f64 / cfg.lookups as f64;
    Point {
        label: format!("Bloom-guided {bits}b/k{k}"),
        onchip_bits_per_slot: t.onchip_bits() as f64 / t.capacity() as f64,
        hit_reads: hit,
        miss_reads: miss,
    }
}

fn main() {
    let cfg = Config::from_env();
    for band in [0.5f64, 0.85] {
        let mut table = Table::new(
            &format!(
                "Ablation: on-chip helper cost vs lookup reads at {:.0}% load",
                band * 100.0
            ),
            &["helper", "on-chip bits/slot", "hit reads", "miss reads"],
        );
        let mut points = vec![measure_mc(&cfg, band)];
        for (bits, k) in [(4usize, 2usize), (8, 3), (16, 4), (32, 4)] {
            points.push(measure_bloom(&cfg, band, bits, k));
        }
        for p in &points {
            table.row(vec![
                p.label.clone(),
                format!("{:.1}", p.onchip_bits_per_slot),
                f4(p.hit_reads),
                f4(p.miss_reads),
            ]);
        }
        table.print();
        println!();
        write_csv(&format!("ablation_onchip_{:.0}", band * 100.0), &table);
    }
    println!(
        "contribution 2 check: the 2-bit counters should match or beat the\n\
         Bloom helpers that spend several times more on-chip bits, except on\n\
         hit lookups at low miss budgets where a well-fed filter can reach\n\
         ~1 read (EMOMA's goal) at a steep on-chip price."
    );
}
