//! `trace_eval` — replay an operation trace against any scheme.
//!
//! A small adoption tool: feed it a text trace (one op per line) and a
//! scheme name, get the table's access profile for *your* workload
//! instead of the paper's.
//!
//! ```text
//! usage: trace_eval <scheme> <trace-file> [cap_slots]
//!        trace_eval --generate <ops> <out-file> [seed]
//!
//! scheme: cuckoo | mccuckoo | bcht | bmccuckoo
//! trace line format:  I <key> | G <key> | D <key>     (decimal u64 keys)
//! ```
//!
//! `--generate` writes a demonstration trace (read-heavy mix) so the
//! tool is self-contained.

use std::io::{BufRead, BufWriter, Write};

use mccuckoo_bench::report::{f4, Table};
use mccuckoo_bench::{AnyTable, Scheme};
use mem_model::PlatformModel;
use workloads::{Op, OpMix, OpStream};

fn usage() -> ! {
    eprintln!(
        "usage: trace_eval <cuckoo|mccuckoo|bcht|bmccuckoo> <trace-file> [cap_slots]\n\
         \x20      trace_eval --generate <ops> <out-file> [seed]"
    );
    std::process::exit(2);
}

fn generate(ops: usize, path: &str, seed: u64) {
    let mut stream = OpStream::new(OpMix::read_heavy(), seed);
    let file = std::fs::File::create(path).unwrap_or_else(|e| {
        eprintln!("cannot create {path}: {e}");
        std::process::exit(1);
    });
    let mut w = BufWriter::new(file);
    for k in stream.preload(ops / 10 + 1) {
        writeln!(w, "I {k}").unwrap();
    }
    for _ in 0..ops {
        match stream.next_op() {
            Op::Insert(k) => writeln!(w, "I {k}").unwrap(),
            Op::Update(k) | Op::LookupHit(k) | Op::LookupMiss(k) => writeln!(w, "G {k}").unwrap(),
            Op::Delete(k) => writeln!(w, "D {k}").unwrap(),
        }
    }
    println!("wrote trace with preload to {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--generate") {
        let ops: usize = args
            .get(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| usage());
        let path = args.get(2).unwrap_or_else(|| usage());
        let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1);
        generate(ops, path, seed);
        return;
    }
    let [scheme_name, path, rest @ ..] = args.as_slice() else {
        usage()
    };
    let scheme = match scheme_name.as_str() {
        "cuckoo" => Scheme::Cuckoo,
        "mccuckoo" => Scheme::McCuckoo,
        "bcht" => Scheme::Bcht,
        "bmccuckoo" => Scheme::BMcCuckoo,
        other => {
            eprintln!("unknown scheme {other}");
            usage()
        }
    };
    let cap: usize = rest.first().and_then(|s| s.parse().ok()).unwrap_or(393_216);
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        std::process::exit(1);
    });

    let mut t = AnyTable::build(scheme, cap, 0xCAFE, 500, true);
    let (mut inserts, mut gets, mut hits, mut dels, mut fails, mut kicks) =
        (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
    let mut skipped = 0u64;
    for (lineno, line) in std::io::BufReader::new(file).lines().enumerate() {
        let line = line.unwrap_or_default();
        let mut parts = line.split_whitespace();
        let (op, key) = (
            parts.next(),
            parts.next().and_then(|k| k.parse::<u64>().ok()),
        );
        match (op, key) {
            (Some("I"), Some(k)) => {
                let r = t.insert_new(k, k);
                kicks += r.kickouts as u64;
                if !r.stored() {
                    fails += 1;
                }
                inserts += 1;
            }
            (Some("G"), Some(k)) => {
                gets += 1;
                if t.get(&k).is_some() {
                    hits += 1;
                }
            }
            (Some("D"), Some(k)) => {
                dels += 1;
                let _ = t.remove(&k);
            }
            (None, _) => {} // blank line
            _ => {
                skipped += 1;
                if skipped <= 3 {
                    eprintln!("skipping malformed line {}: {line:?}", lineno + 1);
                }
            }
        }
    }

    let stats = t.snapshot();
    let total_ops = inserts + gets + dels;
    let mut table = Table::new(
        &format!("trace replay: {} over {total_ops} ops", scheme.label()),
        &["metric", "value"],
    );
    let mut row = |m: &str, v: String| table.row(vec![m.into(), v]);
    row("inserts", inserts.to_string());
    row(
        "  kick-outs/insert",
        f4(kicks as f64 / inserts.max(1) as f64),
    );
    row("  failed/stashed", fails.to_string());
    row("lookups", gets.to_string());
    row("  hit rate", f4(hits as f64 / gets.max(1) as f64));
    row("deletes", dels.to_string());
    row("final load", f4(t.load_ratio()));
    row("stash items", t.stash_len().to_string());
    row(
        "off-chip reads/op",
        f4(stats.offchip_reads as f64 / total_ops.max(1) as f64),
    );
    row(
        "off-chip writes/op",
        f4(stats.offchip_writes as f64 / total_ops.max(1) as f64),
    );
    let lat = PlatformModel::stratix_v().cost(stats, 8, total_ops);
    row("modelled ns/op (8 B)", f4(lat.ns_per_op()));
    row("modelled Mops (8 B)", f4(lat.mops()));
    table.print();
}
