//! Fig. 9 — number of kick-outs per insertion vs load ratio.
//!
//! Expected shape: near zero for everyone at low load; at high load the
//! multi-copy schemes kick far less (paper: −59.3% for ternary Cuckoo at
//! 85%, −77.9% for 3-way BCHT at 95%).

use mccuckoo_bench::harness::{fill_sweep, Config};
use mccuckoo_bench::report::{f4, write_csv, Table};
use mccuckoo_bench::{AnyTable, Scheme};

fn main() {
    let cfg = Config::from_env();
    let mut table = Table::new(
        "Fig. 9: kick-outs per insertion vs load ratio",
        &["load", "Cuckoo", "McCuckoo", "BCHT", "B-McCuckoo"],
    );
    // Collect per-scheme series over the sweep bands.
    let mut series: Vec<Vec<(f64, f64)>> = Vec::new();
    for scheme in Scheme::ALL {
        let bands = cfg.bands(scheme);
        let mut sums = vec![0.0; bands.len()];
        for run in 0..cfg.runs {
            let mut t = AnyTable::build(scheme, cfg.cap, 10 + run, cfg.maxloop, false);
            let stats = fill_sweep(&mut t, &bands, 20 + run, |_, _| {});
            for (i, s) in stats.iter().enumerate() {
                sums[i] += s.kickouts_per_insert;
            }
        }
        series.push(
            bands
                .iter()
                .zip(sums)
                .map(|(&b, s)| (b, s / cfg.runs as f64))
                .collect(),
        );
    }
    let all_bands = cfg.bands(Scheme::BMcCuckoo);
    for (i, &band) in all_bands.iter().enumerate() {
        let cell = |s: &Vec<(f64, f64)>| {
            s.get(i)
                .map(|&(_, v)| f4(v))
                .unwrap_or_else(|| "-".to_string())
        };
        table.row(vec![
            format!("{:.0}%", band * 100.0),
            cell(&series[0]),
            cell(&series[1]),
            cell(&series[2]),
            cell(&series[3]),
        ]);
    }
    table.print();
    write_csv("fig9_kickouts", &table);

    // Headline reductions the paper quotes.
    let at = |s: &Vec<(f64, f64)>, load: f64| {
        s.iter()
            .min_by(|a, b| (a.0 - load).abs().partial_cmp(&(b.0 - load).abs()).unwrap())
            .map(|&(_, v)| v)
            .unwrap_or(f64::NAN)
    };
    let c85 = at(&series[0], 0.85);
    let m85 = at(&series[1], 0.85);
    let b95 = at(&series[2], 0.95);
    let bm95 = at(&series[3], 0.95);
    println!(
        "kick-out reduction at 85% (Cuckoo→McCuckoo): {:.1}% (paper: 59.3%)",
        (1.0 - m85 / c85) * 100.0
    );
    println!(
        "kick-out reduction at 95% (BCHT→B-McCuckoo): {:.1}% (paper: 77.9%)",
        (1.0 - bm95 / b95) * 100.0
    );
}
