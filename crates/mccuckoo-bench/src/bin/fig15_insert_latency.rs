//! Fig. 15 — insertion latency vs load ratio, and insertion throughput
//! vs record size at 50% load, under the Stratix-V platform model
//! (DESIGN.md §3 explains the FPGA substitution).
//!
//! Expected shape: multi-copy insertion is *cheap in latency* because
//! writes are posted (1 CLK) while reads stall the pipeline (18 CLK) —
//! McCuckoo trades stalling reads for posted writes. B-McCuckoo's
//! latency runs slightly above BCHT at moderate load (the counter
//! checking is not paid back while kick-outs are rare), matching the
//! paper's observation.

use mccuckoo_bench::harness::{fill_sweep, Config};
use mccuckoo_bench::report::{f2, write_csv, Table};
use mccuckoo_bench::{AnyTable, Scheme};
use mem_model::{MemStats, PlatformModel};

fn main() {
    let cfg = Config::from_env();
    let platform = PlatformModel::stratix_v();
    let record = 8u64; // paper's base record size

    // (a) insertion latency vs load.
    let mut lat_tbl = Table::new(
        "Fig. 15a: insertion latency (ns) vs load, 8 B records",
        &["load", "Cuckoo", "McCuckoo", "BCHT", "B-McCuckoo"],
    );
    let mut series: Vec<Vec<(f64, f64)>> = Vec::new();
    // Also capture each scheme's 45–50% band stats for part (b).
    let mut half_load_delta: Vec<(MemStats, u64)> = Vec::new();
    for scheme in Scheme::ALL {
        let bands = cfg.bands(scheme);
        // Blocked schemes fetch whole buckets: 3 records per access.
        let bucket_bytes = record * if scheme.blocked() { 3 } else { 1 };
        let mut t = AnyTable::build(scheme, cfg.cap, 170, cfg.maxloop, false);
        let stats = fill_sweep(&mut t, &bands, 180, |_, _| {});
        let mut points = Vec::new();
        for s in &stats {
            let lat = platform.cost(s.delta, bucket_bytes, s.inserts).ns_per_op();
            points.push((s.load, lat));
            if (s.load - 0.5).abs() < 1e-9 {
                half_load_delta.push((s.delta, s.inserts));
            }
        }
        series.push(points);
    }
    let all_bands = cfg.bands(Scheme::BMcCuckoo);
    for (i, &band) in all_bands.iter().enumerate() {
        let cell = |s: &Vec<(f64, f64)>| {
            s.get(i)
                .map(|&(_, v)| f2(v))
                .unwrap_or_else(|| "-".to_string())
        };
        lat_tbl.row(vec![
            format!("{:.0}%", band * 100.0),
            cell(&series[0]),
            cell(&series[1]),
            cell(&series[2]),
            cell(&series[3]),
        ]);
    }
    lat_tbl.print();
    write_csv("fig15a_insert_latency", &lat_tbl);
    println!();

    // (b) insertion throughput (Mops) vs record size at 50% load.
    let mut thr_tbl = Table::new(
        "Fig. 15b: insertion throughput (Mops) vs record size at 50% load",
        &["record B", "Cuckoo", "McCuckoo", "BCHT", "B-McCuckoo"],
    );
    for size in [8u64, 16, 32, 64, 128] {
        let mut cells = vec![size.to_string()];
        for (i, (delta, ops)) in half_load_delta.iter().enumerate() {
            // Blocked schemes fetch whole buckets: 3 records per access.
            let bucket_bytes = size * if i >= 2 { 3 } else { 1 };
            cells.push(f2(platform.cost(*delta, bucket_bytes, *ops).mops()));
        }
        thr_tbl.row(cells);
    }
    thr_tbl.print();
    write_csv("fig15b_insert_throughput", &thr_tbl);
}
