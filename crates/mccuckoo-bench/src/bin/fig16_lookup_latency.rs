//! Fig. 16 — lookup latency (a, b) and throughput (c, d) for existing
//! and non-existing items as record size grows, at 50% load, under the
//! Stratix-V platform model.
//!
//! Expected shape: checking fewer buckets pays off more as records grow
//! (each skipped bucket saves more transfer time), so the multi-copy
//! schemes' throughput advantage widens with record size — most
//! dramatically for non-existing items, which McCuckoo's counters
//! mostly reject without any off-chip access. The counter-checking
//! overhead shows up as a small constant latency adder, the paper's
//! "added lookup time ... due to the checking on the counters".

use mccuckoo_bench::harness::{
    fill_sweep, measure_lookup_hits_stats, measure_lookup_misses, Config,
};
use mccuckoo_bench::report::{f2, write_csv, Table};
use mccuckoo_bench::{AnyTable, Scheme};
use mem_model::{MemStats, PlatformModel};

fn main() {
    let cfg = Config::from_env();
    let platform = PlatformModel::stratix_v();
    let band = 0.5f64;
    // Gather per-scheme lookup traces once; cost them per record size.
    let mut hit_traces: Vec<(MemStats, u64)> = Vec::new();
    let mut miss_traces: Vec<(MemStats, u64)> = Vec::new();
    for scheme in Scheme::ALL {
        let mut t = AnyTable::build(scheme, cfg.cap, 190, cfg.maxloop, false);
        fill_sweep(&mut t, &[band], 200, |_, _| {});
        let inserted = (band * t.capacity() as f64).round() as u64;
        hit_traces.push(measure_lookup_hits_stats(&t, 200, inserted, cfg.lookups));
        let before = t.snapshot();
        let (_, _delta) = measure_lookup_misses(&t, 200, cfg.lookups);
        miss_traces.push((t.snapshot() - before, cfg.lookups as u64));
    }

    let sizes = [8u64, 16, 32, 64, 128];
    let emit = |title: &str, csv: &str, traces: &[(MemStats, u64)], latency: bool| {
        let mut tbl = Table::new(
            title,
            &["record B", "Cuckoo", "McCuckoo", "BCHT", "B-McCuckoo"],
        );
        for &size in &sizes {
            let mut cells = vec![size.to_string()];
            for (i, (delta, ops)) in traces.iter().enumerate() {
                // Blocked schemes (indices 2, 3) fetch 3-record buckets.
                let bucket_bytes = size * if i >= 2 { 3 } else { 1 };
                let b = platform.cost(*delta, bucket_bytes, *ops);
                cells.push(f2(if latency { b.ns_per_op() } else { b.mops() }));
            }
            tbl.row(cells);
        }
        tbl.print();
        println!();
        write_csv(csv, &tbl);
    };

    emit(
        "Fig. 16a: lookup latency (ns), existing items, 50% load",
        "fig16a_lookup_latency_hit",
        &hit_traces,
        true,
    );
    emit(
        "Fig. 16b: lookup latency (ns), non-existing items, 50% load",
        "fig16b_lookup_latency_miss",
        &miss_traces,
        true,
    );
    emit(
        "Fig. 16c: lookup throughput (Mops), existing items, 50% load",
        "fig16c_lookup_throughput_hit",
        &hit_traces,
        false,
    );
    emit(
        "Fig. 16d: lookup throughput (Mops), non-existing items, 50% load",
        "fig16d_lookup_throughput_miss",
        &miss_traces,
        false,
    );
}
