//! Ablation: CHS's small on-chip stash vs McCuckoo's screened off-chip
//! stash (§II.B vs §III.E).
//!
//! CHS (Kirsch–Mitzenmacher–Wieder, ref \[22\]) keeps a tiny stash (size
//! 4) on-chip, checked on **every** failed lookup. McCuckoo's stash is
//! off-chip and effectively unbounded, but counter + flag pre-screening
//! keeps visits rare. This ablation overloads both and reports: how many
//! overflow items each can absorb before hard failure, and the stash
//! traffic absorbed by absent-key queries.

use cuckoo_baselines::{CuckooConfig, DaryCuckoo};
use mccuckoo_bench::harness::Config;
use mccuckoo_bench::report::{pct4, write_csv, Table};
use mccuckoo_core::{McConfig, McCuckoo};
use workloads::DocWordsLike;

fn main() {
    let cfg = Config::from_env();
    let maxloop = 100;
    let mut table = Table::new(
        "Ablation: CHS on-chip stash (cap 4) vs McCuckoo off-chip stash",
        &[
            "scheme",
            "overflow absorbed",
            "hard failures",
            "final load",
            "stash visit rate (misses)",
        ],
    );

    // Drive both ~2% past the single-slot failure point.
    let target = |cap: usize| cap * 92 / 100;

    // CHS: stash caps at 4; further failures are hard.
    let mut chs: DaryCuckoo<u64, u64> = DaryCuckoo::new(CuckooConfig {
        maxloop,
        ..CuckooConfig::chs(cfg.cap / 3, 700)
    });
    let mut gen = DocWordsLike::nytimes_like(701);
    let mut hard = 0u64;
    for _ in 0..target(chs.capacity()) {
        let k = gen.next_key();
        if chs.insert(k, k).is_err() {
            hard += 1;
        }
    }
    let before = chs.meter().snapshot();
    for j in 0..cfg.lookups as u64 {
        let _ = chs.get(&gen.absent_key(j));
    }
    let visits = (chs.meter().snapshot() - before).stash_reads as f64 / cfg.lookups as f64;
    table.row(vec![
        "CHS (on-chip, cap 4)".into(),
        chs.stash_len().to_string(),
        hard.to_string(),
        pct4(chs.load_ratio()),
        pct4(visits),
    ]);

    // McCuckoo: unbounded off-chip stash, screened.
    let mut mc: McCuckoo<u64, u64> =
        McCuckoo::new(McConfig::paper(cfg.cap / 3, 702).with_maxloop(maxloop));
    let mut gen = DocWordsLike::nytimes_like(703);
    for _ in 0..target(mc.capacity()) {
        let k = gen.next_key();
        mc.insert_new(k, k).unwrap();
    }
    let before = mc.meter().snapshot();
    for j in 0..cfg.lookups as u64 {
        assert_eq!(mc.get(&gen.absent_key(j)), None);
    }
    let delta = mc.meter().snapshot() - before;
    table.row(vec![
        "McCuckoo (off-chip, screened)".into(),
        mc.stash_len().to_string(),
        "0".into(),
        pct4(mc.load_ratio()),
        pct4(delta.stash_visits as f64 / cfg.lookups as f64),
    ]);

    table.print();
    write_csv("ablation_chs", &table);
    println!(
        "CHS must either stay tiny (and fail hard past its margin) or pay a\n\
         stash check on every miss; the screened off-chip stash absorbs the\n\
         whole surge while absent-key queries almost never reach it (§III.E)."
    );
}
