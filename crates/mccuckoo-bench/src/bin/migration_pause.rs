//! Migration-pause sweep: what do readers *feel* while shard splits
//! drain the table, and does op-log recovery reproduce it exactly?
//!
//! Two measured phases over the same table shape, then a recovery
//! check, all written to `results/migration_pause.csv` (header
//! `phase,splits,keys_moved,reader_ops,lookup_errors,max_pause_us,mean_pause_us,recovery_identical`):
//!
//! * **baseline** — 2 readers loop over a stable key set (every probe
//!   must hit) and 1 writer churns disjoint keys, with no migration.
//!   Per-op latency is timed around each `get`; the max is the worst
//!   pause a reader ever saw.
//! * **split** — identical traffic, but the main thread runs the table
//!   from 2 to 8 shards with back-to-back `begin_split` calls while the
//!   readers measure. Readers never take a lock on this path (seqlock
//!   retries only), so `lookup_errors` must stay 0 and the max pause
//!   must stay bounded — that bound is CI-gated by
//!   `bench_gate --migration-only` (`MCB_PAUSE_MAX_US`, default 250ms,
//!   catches reader-blocking regressions without flaking on shared
//!   runners).
//! * **recovery** — every mutation of the run was recorded through an
//!   [`mccuckoo_core::oplog::OpLog`]; replaying the log over the empty
//!   baseline snapshot must rebuild a logically identical table (same
//!   shard layout, same length, same sorted item set) as the one that
//!   served the traffic. `recovery_identical` is 1 on success and is
//!   also CI-gated.
//!
//! Wall-clock latency, so run with `--release`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mccuckoo_bench::report::{f2, write_csv, Table};
use mccuckoo_core::oplog::{parse_log, OpLog, OpRecord, VecSink};
use mccuckoo_core::{McConfig, ShardedMcCuckoo};

/// Buckets per table per shard of the 2-shard starting layout.
const BUCKETS: usize = 1 << 15;
/// Stable keys preloaded before the runs; every reader probe must hit.
const STABLE: u64 = 40_000;
/// Churn keys live in a disjoint range so they never shadow stable keys.
const CHURN_BASE: u64 = 1 << 32;
/// Writer's sliding window of live churn keys.
const CHURN_WINDOW: usize = 15_000;
/// Splits performed in the split phase: 2 → 8 shards.
const SPLITS: usize = 6;
/// Baseline phase duration (the split phase runs as long as the splits
/// take).
const BASELINE_MS: u64 = 400;

/// Per-reader latency tally, in nanoseconds.
#[derive(Default, Clone, Copy)]
struct ReaderStats {
    ops: u64,
    errors: u64,
    max_ns: u64,
    total_ns: u64,
}

impl ReaderStats {
    fn merge(&mut self, o: ReaderStats) {
        self.ops += o.ops;
        self.errors += o.errors;
        self.max_ns = self.max_ns.max(o.max_ns);
        self.total_ns += o.total_ns;
    }
}

/// Run readers + churn writer around `migrate`, which executes on the
/// main thread while the measurement is live and returns keys moved.
fn run_phase<F>(
    table: &Arc<ShardedMcCuckoo<u64, u64>>,
    log: &OpLog<VecSink>,
    churn_base: u64,
    migrate: F,
) -> (ReaderStats, u64)
where
    F: FnOnce() -> u64,
{
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for rid in 0..2u64 {
            let table = Arc::clone(table);
            let stop = &stop;
            readers.push(scope.spawn(move || {
                let mut st = ReaderStats::default();
                let mut k = rid * 31;
                while !stop.load(Ordering::Relaxed) {
                    let key = k % STABLE;
                    let t0 = Instant::now();
                    let hit = table.get(&key);
                    let ns = t0.elapsed().as_nanos() as u64;
                    st.ops += 1;
                    if hit != Some(key ^ 0xF00D) {
                        st.errors += 1;
                    }
                    st.max_ns = st.max_ns.max(ns);
                    st.total_ns += ns;
                    k += 13;
                }
                st
            }));
        }
        let writer = {
            let table = Arc::clone(table);
            let stop = &stop;
            scope.spawn(move || {
                // Each phase churns its own key range; leftovers from a
                // previous phase simply stay live (and logged), adding
                // to the volume the splits must drain.
                let mut next = churn_base;
                let mut window: Vec<u64> = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let k = next;
                    next += 1;
                    if table.insert(k, k).is_ok() {
                        log.record(&OpRecord::Insert { key: k, value: k });
                        window.push(k);
                    }
                    if window.len() > CHURN_WINDOW {
                        let victim = window.swap_remove(0);
                        table.remove(&victim);
                        log.record(&OpRecord::<u64, u64>::Remove { key: victim });
                    }
                }
            })
        };
        let moved = migrate();
        stop.store(true, Ordering::Relaxed);
        writer.join().expect("churn writer died");
        let mut sum = ReaderStats::default();
        for r in readers {
            sum.merge(r.join().expect("reader died"));
        }
        (sum, moved)
    })
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

fn main() {
    let table: Arc<ShardedMcCuckoo<u64, u64>> = Arc::new(ShardedMcCuckoo::new(
        2,
        McConfig::paper(BUCKETS, 0x517E_D0C5),
    ));
    // The log starts over an empty-table snapshot; every later mutation
    // is recorded, so snapshot + log is the full recovery input.
    let snapshot = table.to_snapshot();
    let sink = VecSink::new();
    let log = OpLog::new(sink.clone());
    for k in 0..STABLE {
        table.insert(k, k ^ 0xF00D).expect("preload fits");
        log.record(&OpRecord::Insert {
            key: k,
            value: k ^ 0xF00D,
        });
    }

    let mut out = Table::new(
        "Migration pause: per-op reader latency under live shard splits",
        &[
            "phase",
            "splits",
            "keys_moved",
            "reader_ops",
            "lookup_errors",
            "max_pause_us",
            "mean_pause_us",
            "recovery_identical",
        ],
    );

    let (base, _) = run_phase(&table, &log, CHURN_BASE, || {
        std::thread::sleep(Duration::from_millis(BASELINE_MS));
        0
    });

    let split_t0 = Instant::now();
    let (split, moved) = run_phase(&table, &log, CHURN_BASE + (1 << 24), || {
        let mut moved = 0u64;
        for shard in 0..SPLITS {
            let report = table.begin_split(shard).expect("split must succeed");
            assert!(report.forwarding_cleared, "split {shard} left forwarding");
            moved += report.moved;
            log.record(&OpRecord::<u64, u64>::Split { shard });
        }
        moved
    });
    let split_secs = split_t0.elapsed().as_secs_f64();

    // Recovery: replay the whole log over the empty baseline snapshot
    // and demand logical identity with the table that served traffic.
    let ops = parse_log::<u64, u64>(&sink.lines()).expect("log parses");
    let recovered = ShardedMcCuckoo::recover(snapshot, &ops).expect("recovery succeeds");
    let mut live_items = table.to_snapshot().items;
    let mut rec_items = recovered.to_snapshot().items;
    live_items.sort_unstable();
    rec_items.sort_unstable();
    let identical = recovered.shard_count() == table.shard_count()
        && recovered.len() == table.len()
        && live_items == rec_items;

    let mean = |s: &ReaderStats| us(s.total_ns / s.ops.max(1));
    out.row(vec![
        "baseline".into(),
        "0".into(),
        "0".into(),
        base.ops.to_string(),
        base.errors.to_string(),
        f2(us(base.max_ns)),
        f2(mean(&base)),
        "1".into(),
    ]);
    out.row(vec![
        "split".into(),
        SPLITS.to_string(),
        moved.to_string(),
        split.ops.to_string(),
        split.errors.to_string(),
        f2(us(split.max_ns)),
        f2(mean(&split)),
        (identical as u32).to_string(),
    ]);
    out.print();
    write_csv("migration_pause", &out);
    println!(
        "(2 -> {} shards in {:.2}s, {} keys moved, {} log records; readers saw \
         {} error(s), worst pause {} us during migration vs {} us baseline)",
        table.shard_count(),
        split_secs,
        moved,
        sink.len(),
        split.errors,
        f2(us(split.max_ns)),
        f2(us(base.max_ns)),
    );
    assert_eq!(table.shard_count(), 2 + SPLITS);
}
