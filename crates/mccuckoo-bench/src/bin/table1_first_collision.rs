//! Table I — load ratio when the first collision occurs.
//!
//! Paper's numbers (70M DocWords keys): Cuckoo 9.27%, McCuckoo 23.20%,
//! BCHT 46.03%, B-McCuckoo 61.42%. The reproduction checks the ordering
//! and rough magnitudes; absolute values drift a little with table size
//! because the first collision is an extreme-value statistic.

use mccuckoo_bench::harness::{first_collision_load, mean, Config};
use mccuckoo_bench::report::{pct4, write_csv, Table};
use mccuckoo_bench::{AnyTable, Scheme};

fn main() {
    let cfg = Config::from_env();
    let mut table = Table::new(
        "Table I: load ratio when first collision occurs",
        &["scheme", "first-collision load", "paper"],
    );
    let paper = ["9.27%", "23.20%", "46.03%", "61.42%"];
    for (scheme, paper_val) in Scheme::ALL.into_iter().zip(paper) {
        let load = mean((0..cfg.runs).map(|r| {
            let mut t = AnyTable::build(scheme, cfg.cap, 1000 + r, cfg.maxloop, false);
            first_collision_load(&mut t, 2000 + r)
        }));
        table.row(vec![
            scheme.label().to_string(),
            pct4(load),
            paper_val.to_string(),
        ]);
    }
    table.print();
    write_csv("table1_first_collision", &table);
}
