//! Fig. 12 — off-chip memory accesses per lookup for *existing* items vs
//! load ratio.
//!
//! Expected shape: the multi-copy schemes probe fewer buckets because
//! the counters exclude impossible candidates and redundant copies are
//! hit sooner; the advantage narrows as the table saturates with
//! single-copy items.

use mccuckoo_bench::harness::{fill_sweep, measure_lookup_hits, Config};
use mccuckoo_bench::report::{f4, write_csv, Table};
use mccuckoo_bench::{AnyTable, Scheme};

fn main() {
    let cfg = Config::from_env();
    let mut table = Table::new(
        "Fig. 12: off-chip reads per lookup (existing items)",
        &["load", "Cuckoo", "McCuckoo", "BCHT", "B-McCuckoo"],
    );
    let mut series: Vec<Vec<(f64, f64)>> = Vec::new();
    for scheme in Scheme::ALL {
        let bands = cfg.bands(scheme);
        let mut sums = vec![0.0; bands.len()];
        for run in 0..cfg.runs {
            let mut t = AnyTable::build(scheme, cfg.cap, 70 + run, cfg.maxloop, false);
            let mut i = 0usize;
            let lookups = cfg.lookups;
            let seed = 80 + run;
            fill_sweep(&mut t, &bands, seed, |tab, stats| {
                let inserted = (stats.load * tab.capacity() as f64).round() as u64;
                sums[i] += measure_lookup_hits(tab, seed, inserted, lookups);
                i += 1;
            });
        }
        series.push(
            bands
                .iter()
                .zip(sums)
                .map(|(&b, s)| (b, s / cfg.runs as f64))
                .collect(),
        );
    }
    let all_bands = cfg.bands(Scheme::BMcCuckoo);
    for (i, &band) in all_bands.iter().enumerate() {
        let cell = |s: &Vec<(f64, f64)>| {
            s.get(i)
                .map(|&(_, v)| f4(v))
                .unwrap_or_else(|| "-".to_string())
        };
        table.row(vec![
            format!("{:.0}%", band * 100.0),
            cell(&series[0]),
            cell(&series[1]),
            cell(&series[2]),
            cell(&series[3]),
        ]);
    }
    table.print();
    write_csv("fig12_lookup_hit", &table);
}
