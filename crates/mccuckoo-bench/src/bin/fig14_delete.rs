//! Fig. 14 — off-chip memory accesses per deletion vs load ratio.
//!
//! Expected shape: the multi-copy schemes read *more* per deletion
//! (every copy must be confirmed) but write **zero** — deletion is pure
//! counter bookkeeping — while the single-copy schemes always pay one
//! write. The paper shows exactly this trade.

use mccuckoo_bench::harness::{fill_sweep, measure_deletions, Config};
use mccuckoo_bench::report::{f4, write_csv, Table};
use mccuckoo_bench::{AnyTable, Scheme};

fn main() {
    let cfg = Config::from_env();
    let mut reads_tbl = Table::new(
        "Fig. 14: off-chip reads per deletion",
        &["load", "Cuckoo", "McCuckoo", "BCHT", "B-McCuckoo"],
    );
    let mut writes_tbl = Table::new(
        "Fig. 14 (companion): off-chip writes per deletion",
        &["load", "Cuckoo", "McCuckoo", "BCHT", "B-McCuckoo"],
    );
    let all_bands = cfg.bands(Scheme::BMcCuckoo);
    // Deletions are destructive, so each (scheme, band, run) gets a
    // fresh fill.
    let mut reads: Vec<Vec<Option<f64>>> = vec![vec![None; all_bands.len()]; 4];
    let mut writes: Vec<Vec<Option<f64>>> = vec![vec![None; all_bands.len()]; 4];
    for (si, scheme) in Scheme::ALL.into_iter().enumerate() {
        for (bi, &band) in all_bands.iter().enumerate() {
            if band > scheme.max_sweep_load() {
                continue;
            }
            let mut rsum = 0.0;
            let mut wsum = 0.0;
            for run in 0..cfg.runs {
                let mut t = AnyTable::build(scheme, cfg.cap, 110 + run, cfg.maxloop, true);
                let seed = 120 + run;
                fill_sweep(&mut t, &[band], seed, |_, _| {});
                // The table's real capacity can differ from cfg.cap by a
                // rounding remainder (cap/9*9); derive from the table.
                let inserted = (band * t.capacity() as f64).round() as u64;
                let (r, w) = measure_deletions(&mut t, seed, inserted, cfg.lookups.min(20_000));
                rsum += r;
                wsum += w;
            }
            reads[si][bi] = Some(rsum / cfg.runs as f64);
            writes[si][bi] = Some(wsum / cfg.runs as f64);
        }
    }
    for (bi, &band) in all_bands.iter().enumerate() {
        let cell = |v: Option<f64>| v.map(f4).unwrap_or_else(|| "-".to_string());
        reads_tbl.row(vec![
            format!("{:.0}%", band * 100.0),
            cell(reads[0][bi]),
            cell(reads[1][bi]),
            cell(reads[2][bi]),
            cell(reads[3][bi]),
        ]);
        writes_tbl.row(vec![
            format!("{:.0}%", band * 100.0),
            cell(writes[0][bi]),
            cell(writes[1][bi]),
            cell(writes[2][bi]),
            cell(writes[3][bi]),
        ]);
    }
    reads_tbl.print();
    println!();
    writes_tbl.print();
    write_csv("fig14_delete_reads", &reads_tbl);
    write_csv("fig14_delete_writes", &writes_tbl);
}
