//! Ablation: stash pre-screening effectiveness (§III.E).
//!
//! At overload, stashed items exist and every failed main-table lookup
//! would have to consult the stash if there were no screening (what an
//! on-chip-stash design like CHS does). We report, per load level: how
//! many items are stashed, what fraction of absent-key lookups the
//! counter + flag screen lets through to the stash, and the implied
//! stash traffic with screening vs without (= one visit per miss).

use mccuckoo_bench::harness::{fill_sweep, measure_lookup_misses, Config};
use mccuckoo_bench::report::{pct4, write_csv, Table};
use mccuckoo_bench::{AnyTable, Scheme};

fn main() {
    let cfg = Config::from_env();
    let mut table = Table::new(
        "Ablation: stash screening (absent-key lookups)",
        &[
            "load",
            "stash items",
            "screened visit rate",
            "unscreened visit rate",
            "traffic reduction",
        ],
    );
    for load_pct in [90u32, 92, 94, 96, 98, 100] {
        let band = load_pct as f64 / 100.0;
        let mut t = AnyTable::build(Scheme::McCuckoo, cfg.cap, 260, 100, false);
        fill_sweep(&mut t, &[band], 270, |_, _| {});
        let (_, delta) = measure_lookup_misses(&t, 270, cfg.lookups);
        let screened = delta.stash_visits as f64 / cfg.lookups as f64;
        let unscreened = 1.0; // every miss would check an unscreened stash
        table.row(vec![
            format!("{load_pct}%"),
            t.stash_len().to_string(),
            pct4(screened),
            pct4(unscreened),
            if screened == 0.0 {
                "inf".to_string()
            } else {
                format!("{:.2}x", unscreened / screened)
            },
        ]);
    }
    table.print();
    write_csv("ablation_stash_screen", &table);
}
