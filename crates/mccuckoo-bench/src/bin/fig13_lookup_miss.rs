//! Fig. 13 — off-chip memory accesses per lookup for *non-existing*
//! items vs load ratio.
//!
//! Expected shape: the single-copy schemes always pay d (resp. d bucket)
//! reads to prove absence; McCuckoo's counters act as a Bloom filter and
//! reject most absent keys with **zero** off-chip reads at low load,
//! climbing slowly as empties disappear. B-McCuckoo benefits only from
//! the bucket-sum-zero skip (Algorithm 2), so its curve rises fast at
//! high load — exactly the paper's remark that at very high load the
//! blocked variant may as well "do the lookup the old way".

use mccuckoo_bench::harness::{fill_sweep, measure_lookup_misses, Config};
use mccuckoo_bench::report::{f4, write_csv, Table};
use mccuckoo_bench::{AnyTable, Scheme};

fn main() {
    let cfg = Config::from_env();
    let mut table = Table::new(
        "Fig. 13: off-chip reads per lookup (non-existing items)",
        &["load", "Cuckoo", "McCuckoo", "BCHT", "B-McCuckoo"],
    );
    let mut series: Vec<Vec<(f64, f64)>> = Vec::new();
    for scheme in Scheme::ALL {
        let bands = cfg.bands(scheme);
        let mut sums = vec![0.0; bands.len()];
        for run in 0..cfg.runs {
            let mut t = AnyTable::build(scheme, cfg.cap, 90 + run, cfg.maxloop, false);
            let mut i = 0usize;
            let lookups = cfg.lookups;
            let seed = 100 + run;
            fill_sweep(&mut t, &bands, seed, |tab, _| {
                let (reads, _) = measure_lookup_misses(tab, seed, lookups);
                sums[i] += reads;
                i += 1;
            });
        }
        series.push(
            bands
                .iter()
                .zip(sums)
                .map(|(&b, s)| (b, s / cfg.runs as f64))
                .collect(),
        );
    }
    let all_bands = cfg.bands(Scheme::BMcCuckoo);
    for (i, &band) in all_bands.iter().enumerate() {
        let cell = |s: &Vec<(f64, f64)>| {
            s.get(i)
                .map(|&(_, v)| f4(v))
                .unwrap_or_else(|| "-".to_string())
        };
        table.row(vec![
            format!("{:.0}%", band * 100.0),
            cell(&series[0]),
            cell(&series[1]),
            cell(&series[2]),
            cell(&series[3]),
        ]);
    }
    table.print();
    write_csv("fig13_lookup_miss", &table);
}
