//! CI smoke benchmark: one quick pass over every scheme (the paper's
//! four plus the sharded serving layer) through the shared
//! [`mccuckoo_core::McTable`] interface, emitting a machine-readable
//! JSON summary to `results/bench_smoke.json`.
//!
//! Unlike the figure/table binaries (which reproduce specific paper
//! artefacts), this run exists to catch performance-shape regressions
//! cheaply on every push: per-scheme insert/lookup access counts, wall
//! times and the table's own observability counters at a moderate load,
//! small enough to finish in seconds. Scale is controlled by the usual
//! `MCB_*` environment knobs; `bench_gate` compares the output against
//! the committed baseline.

use std::time::Instant;

use mccuckoo_bench::harness::{
    fill_sweep, measure_lookup_hits, measure_lookup_misses, measure_lookup_throughput, Config,
};
use mccuckoo_bench::report::csv_path;
use mccuckoo_bench::smoke::{SchemeSmoke, SmokeReport};
use mccuckoo_bench::{AnyTable, Scheme};

fn main() {
    let cfg = Config::from_env();
    let target_load = 0.5;
    let mut schemes = Vec::new();
    for scheme in Scheme::WITH_SHARDED {
        let fill_seed = 0xF111;
        let mut t = AnyTable::build(scheme, cfg.cap, 0x57A7, cfg.maxloop, false);
        let start = Instant::now();
        let before = t.snapshot();
        fill_sweep(&mut t, &[target_load], fill_seed, |_, _| {});
        let fill_us = start.elapsed().as_micros().max(1) as u64;
        let fill_delta = t.snapshot() - before;
        let inserted = t.len() as f64;
        let insert_mops = inserted / fill_us as f64;

        let hit_reads = measure_lookup_hits(&t, fill_seed, t.len() as u64, cfg.lookups);
        let (miss_reads, _) = measure_lookup_misses(&t, 0xD00D, cfg.lookups);
        let (lookup_mops, lookup_batch_mops) =
            measure_lookup_throughput(&t, fill_seed, t.len() as u64, cfg.lookups, cfg.runs);

        schemes.push(SchemeSmoke {
            scheme: scheme.label().to_string(),
            capacity: t.capacity() as u64,
            load: t.load_ratio(),
            fill_ms: fill_us / 1_000,
            insert_mops,
            offchip_reads_per_insert: fill_delta.offchip_reads as f64 / inserted,
            offchip_writes_per_insert: fill_delta.offchip_writes as f64 / inserted,
            lookup_hit_reads: hit_reads,
            lookup_miss_reads: miss_reads,
            lookup_mops,
            lookup_batch_mops,
            stash_len: t.stash_len() as u64,
            stats: t.stats(),
        });
        let s = schemes.last().expect("just pushed");
        println!(
            "[smoke] {:<10} load {:.2} fill {} ms ({:.2} Mops), {:.2} r/ins {:.2} w/ins, \
             hit {:.2} miss {:.2} reads, lookup {:.2}/{:.2} Mops (single/batch), {} kicks",
            scheme.label(),
            t.load_ratio(),
            s.fill_ms,
            insert_mops,
            s.offchip_reads_per_insert,
            s.offchip_writes_per_insert,
            hit_reads,
            miss_reads,
            lookup_mops,
            lookup_batch_mops,
            s.stats.ops.kicks,
        );
    }
    let report = SmokeReport {
        cap_slots: cfg.cap as u64,
        target_load,
        lookups: cfg.lookups as u64,
        schemes,
    };
    // csv_path creates results/; reuse the directory for the JSON file.
    let path = csv_path("bench_smoke").with_extension("json");
    match std::fs::write(&path, jsonlite::to_string(&report)) {
        Ok(()) => println!("[json] {}", path.display()),
        Err(e) => {
            eprintln!("[json] failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
