//! Maintenance-under-fire sweep: does the background loop repair a
//! degraded split and compact the op-log while readers and a churn
//! writer hammer the table — without a single reader error, and with
//! recovery across the automated compaction boundary staying exact?
//!
//! Requires `--features maint-faults` (forwards
//! `mccuckoo-core/testhooks`): the degraded split is manufactured by
//! forcing every child placement of one `begin_split` drain to fail, so
//! the whole slice starts the run served through live forwarding
//! entries — the state [`Maintainer::tick`] exists to retire.
//!
//! One measured phase, written to `results/maintenance_pause.csv`
//! (header `phase,ticks,reader_ops,lookup_errors,retirements,
//! compactions,records_truncated,forwarding_live_end,recovery_identical`):
//!
//! * **maint** — 2 readers loop over a stable key set (every probe must
//!   hit with its exact preload value) and 1 writer churns disjoint
//!   logged keys, while the main thread drives a [`Maintainer`] until
//!   the forwarding count returns to 0 and at least one watermark
//!   compaction has run. `lookup_errors` must stay 0 and
//!   `forwarding_live_end` must be 0 — both CI-gated by
//!   `bench_gate --maint-only`, alongside `recovery_identical`: the
//!   loop's newest managed snapshot plus the retained log tail must
//!   rebuild a logically identical table.
//!
//! Wall-clock pacing, so run with `--release`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mccuckoo_bench::report::{write_csv, Table};
use mccuckoo_core::maint::{MaintConfig, Maintainer};
use mccuckoo_core::oplog::{parse_log, LogSink, OpLog, OpRecord, VecSink};
use mccuckoo_core::{testhooks, McConfig, ShardedMcCuckoo};

/// Buckets per table per shard of the 2-shard starting layout.
const BUCKETS: usize = 1 << 14;
/// Stable keys preloaded before the run; every reader probe must hit.
const STABLE: u64 = 20_000;
/// Churn keys live in a disjoint range so they never shadow stable keys.
const CHURN_BASE: u64 = 1 << 32;
/// Writer's sliding window of live churn keys.
const CHURN_WINDOW: usize = 8_000;
/// Retained-record watermark that trips the automated compaction (the
/// preload alone crosses it, so the first tick always compacts).
const WATERMARK: usize = 10_000;
/// Minimum time the loop keeps ticking under traffic.
const RUN_MS: u64 = 300;
/// Hard cap against a retirement that never converges.
const DEADLINE_SECS: u64 = 30;

fn main() {
    let table: Arc<ShardedMcCuckoo<u64, u64>> = Arc::new(ShardedMcCuckoo::new(
        2,
        McConfig::paper(BUCKETS, 0x3A17_7A3B),
    ));
    let sink = VecSink::new();
    let log = OpLog::new(sink.clone());
    for k in 0..STABLE {
        table.insert(k, k ^ 0xF00D).expect("preload fits");
        log.record(&OpRecord::Insert {
            key: k,
            value: k ^ 0xF00D,
        });
    }

    // Manufacture the degraded state the loop exists to repair: every
    // child placement of this split fails, so the whole slice stays in
    // the parent behind live forwarding entries.
    testhooks::arm_fail_child_placement(u32::MAX);
    let degraded = table.begin_split(0).expect("split publishes");
    testhooks::disarm();
    log.record(&OpRecord::<u64, u64>::Split { shard: 0 });
    assert!(
        degraded.failed > 0 && !degraded.forwarding_cleared,
        "degraded split must leave forwarding up"
    );
    let forwarding_start = table.forwarding_live();

    let mut maint = Maintainer::new(
        table.clone(),
        sink.clone(),
        MaintConfig {
            compact_watermark: WATERMARK,
            ..MaintConfig::default()
        },
    );

    let stop = AtomicBool::new(false);
    let (reader_ops, lookup_errors, ticks) = std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for rid in 0..2u64 {
            let table = Arc::clone(&table);
            let stop = &stop;
            readers.push(scope.spawn(move || {
                let (mut ops, mut errors) = (0u64, 0u64);
                let mut k = rid * 31;
                while !stop.load(Ordering::Relaxed) {
                    let key = k % STABLE;
                    if table.get(&key) != Some(key ^ 0xF00D) {
                        errors += 1;
                    }
                    ops += 1;
                    k += 13;
                }
                (ops, errors)
            }));
        }
        let writer = {
            let table = Arc::clone(&table);
            let log = &log;
            let stop = &stop;
            scope.spawn(move || {
                let mut next = CHURN_BASE;
                let mut window: Vec<u64> = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let k = next;
                    next += 1;
                    if table.insert(k, k).is_ok() {
                        log.record(&OpRecord::Insert { key: k, value: k });
                        window.push(k);
                    }
                    if window.len() > CHURN_WINDOW {
                        let victim = window.swap_remove(0);
                        table.remove(&victim);
                        log.record(&OpRecord::<u64, u64>::Remove { key: victim });
                    }
                }
            })
        };

        // The maintenance loop runs on the main thread, under fire:
        // keep ticking until the traffic window has passed AND the
        // directory is clean AND at least one compaction has run.
        let mut ticks = 0u64;
        let window_end = Instant::now() + Duration::from_millis(RUN_MS);
        let deadline = Instant::now() + Duration::from_secs(DEADLINE_SECS);
        loop {
            maint.tick();
            ticks += 1;
            let settled = Instant::now() >= window_end
                && table.forwarding_live() == 0
                && table.stats().maint.compactions >= 1;
            if settled || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().expect("churn writer died");
        let (mut ops, mut errors) = (0u64, 0u64);
        for r in readers {
            let (o, e) = r.join().expect("reader died");
            ops += o;
            errors += e;
        }
        (ops, errors, ticks)
    });

    // Recovery across the automated compaction boundary: the newest
    // managed snapshot plus the sink's retained tail must rebuild the
    // table that served the traffic, exactly.
    let ms = maint
        .latest_snapshot()
        .expect("the watermark compaction must have captured a snapshot");
    let offset = ms
        .tail_offset(sink.first_record_index())
        .expect("tail truncated past the capture");
    let lines = sink.lines();
    let tail = parse_log::<u64, u64>(&lines[offset..]).expect("log parses");
    let recovered =
        ShardedMcCuckoo::recover(ms.snapshot.clone(), &tail).expect("recovery succeeds");
    let mut live_items = table.to_snapshot().items;
    let mut rec_items = recovered.to_snapshot().items;
    live_items.sort_unstable();
    rec_items.sort_unstable();
    let identical = recovered.shard_count() == table.shard_count()
        && recovered.len() == table.len()
        && live_items == rec_items;

    let s = table.stats();
    let mut out = Table::new(
        "Maintenance under fire: retirement + automated compaction with live traffic",
        &[
            "phase",
            "ticks",
            "reader_ops",
            "lookup_errors",
            "retirements",
            "compactions",
            "records_truncated",
            "forwarding_live_end",
            "recovery_identical",
        ],
    );
    out.row(vec![
        "maint".into(),
        ticks.to_string(),
        reader_ops.to_string(),
        lookup_errors.to_string(),
        s.maint.retirements_attempted.to_string(),
        s.maint.compactions.to_string(),
        s.maint.records_truncated.to_string(),
        table.forwarding_live().to_string(),
        (identical as u32).to_string(),
    ]);
    out.print();
    write_csv("maintenance_pause", &out);
    println!(
        "(degraded split started with {} forwarding entr{} live, loop retired them in \
         {} tick(s) with {} retirement pass(es); {} compaction(s) truncated {} record(s), \
         {} retained; readers saw {} error(s) over {} ops)",
        forwarding_start,
        if forwarding_start == 1 { "y" } else { "ies" },
        ticks,
        s.maint.retirements_attempted,
        s.maint.compactions,
        s.maint.records_truncated,
        sink.record_count(),
        lookup_errors,
        reader_ops,
    );
    assert_eq!(table.forwarding_live(), 0, "maintenance left forwarding up");
}
