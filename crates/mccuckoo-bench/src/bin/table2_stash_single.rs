//! Table II — stash performance of 3-hash 1-slot McCuckoo near its
//! maximum load (88%–93%, maxloop 200 and 500).
//!
//! Columns follow the paper: stashed items, their share of all inserted
//! items, and the fraction of non-existing-item queries that actually
//! visit the stash (the pre-screening's whole point: that column should
//! stay ≈ 0.00xx% even when thousands of items are stashed).

use mccuckoo_bench::harness::{fill_sweep, mean, measure_lookup_misses, Config};
use mccuckoo_bench::report::{pct4, write_csv, Table};
use mccuckoo_bench::{AnyTable, Scheme};

fn main() {
    let cfg = Config::from_env();
    let mut table = Table::new(
        "Table II: stash performance, 3-hash 1-slot McCuckoo",
        &[
            "load",
            "maxloop",
            "stash items",
            "% in all items",
            "% visits in lookups",
        ],
    );
    for load_pct in [88u32, 89, 90, 91, 92, 93] {
        for maxloop in [200u32, 500] {
            let mut stash_items = Vec::new();
            let mut stash_share = Vec::new();
            let mut visit_rate = Vec::new();
            for run in 0..cfg.runs {
                let mut t = AnyTable::build(Scheme::McCuckoo, cfg.cap, 130 + run, maxloop, false);
                let band = load_pct as f64 / 100.0;
                let seed = 140 + run;
                fill_sweep(&mut t, &[band], seed, |_, _| {});
                let total = (band * t.capacity() as f64).round();
                stash_items.push(t.stash_len() as f64);
                stash_share.push(t.stash_len() as f64 / total);
                let (_, delta) = measure_lookup_misses(&t, seed, cfg.lookups);
                visit_rate.push(delta.stash_visits as f64 / cfg.lookups as f64);
            }
            table.row(vec![
                format!("{load_pct}%"),
                maxloop.to_string(),
                format!("{:.1}", mean(stash_items.iter().copied())),
                pct4(mean(stash_share.iter().copied())),
                pct4(mean(visit_rate.iter().copied())),
            ]);
        }
    }
    table.print();
    write_csv("table2_stash_single", &table);
}
