//! Bench-smoke regression gate.
//!
//! Reads the fresh `results/bench_smoke.json` (written by `bench_smoke`
//! in the same CI job) and the committed
//! `results/bench_smoke_baseline.json`, and exits non-zero when any
//! scheme regressed beyond [`mccuckoo_bench::GATE_TOLERANCE`] — on
//! deterministic access counts, on insert throughput relative to the
//! run's reference scheme, or by shipping empty observability stats.
//!
//! `MCB_BASELINE` overrides the baseline path. After an intentional
//! performance change, regenerate the baseline at the gated scale
//! (`MCB_SMOKE=1 ./run_all_benches.sh`), copy `bench_smoke.json` over
//! `bench_smoke_baseline.json` and commit it.
//!
//! With `--scaling-only` the smoke gate is skipped and only the
//! multi-writer scaling gate runs: it reads the fresh
//! `results/sharded_write_scaling.csv` (written by
//! `concurrency_scaling [--quick]` in the same job) and fails when the
//! best 8-shard/4-writer insert throughput is less than
//! `MCB_SCALING_MIN` × the 1-shard/1-writer/per-op baseline. The
//! default minimum is core-aware — 0.625 per core up to 4 cores,
//! floored at 1.0 — so a 4-core runner must show the full 2.5× the
//! striped-lock design is built for, while a 1-core sandbox (where
//! thread-level scaling is physically impossible and only batching
//! amortization survives) must still never fall below parity.
//!
//! With `--lookup-only` only the batched-read gate runs: it reads the
//! fresh `results/bench_smoke.json` and fails when a multi-copy
//! scheme's batched lookup throughput (`lookup_batch_mops`) is below
//! `MCB_LOOKUP_MIN` × its own single-key rate (`lookup_mops`). Like the
//! scaling gate the check is a same-run ratio, so machine speed cancels
//! out; the default minimum is 1.2× — the prefetch-interleaved state
//! machine must beat the per-key loop by a real margin, on any host
//! with a functioning cache hierarchy (batching amortises dispatch even
//! where the prefetch shim is a no-op).
//!
//! With `--migration-only` only the grow-under-fire gate runs: it reads
//! the fresh `results/migration_pause.csv` (written by `migration_pause`
//! in the same job; header `phase,splits,keys_moved,reader_ops,
//! lookup_errors,max_pause_us,mean_pause_us,recovery_identical`) and
//! fails when (a) any reader observed a lookup error — a stable key
//! going missing while a split drained the table, the exact availability
//! hole the forwarding entries exist to close; (b) the worst per-op
//! reader pause during the split phase exceeds `MCB_PAUSE_MAX_US`
//! (default 250000 — generous against scheduler noise on shared
//! runners, but far below the seconds-long stall a reader-blocking
//! migration would show); or (c) op-log replay did not rebuild a
//! logically identical table (`recovery_identical != 1`).
//!
//! With `--maint-only` only the background-maintenance gate runs: it
//! reads the fresh `results/maintenance_pause.csv` (written by
//! `maintenance_pause --features maint-faults` in the same job; header
//! `phase,ticks,reader_ops,lookup_errors,retirements,compactions,
//! records_truncated,forwarding_live_end,recovery_identical`) and fails
//! when (a) any reader observed a lookup error while the maintenance
//! loop retired a degraded split's forwarding entries under live
//! traffic; (b) `forwarding_live_end != 0` — the loop never drove the
//! forwarding count back to zero; (c) fewer than one retirement pass or
//! one watermark compaction actually ran, meaning the harness did not
//! exercise the loop at all; or (d) the loop's newest managed snapshot
//! plus the retained log tail did not rebuild a logically identical
//! table (`recovery_identical != 1`).
//!
//! With `--first-failure-only` only the kick-policy gate runs: it reads
//! the fresh `results/fig11_kick_policies.csv` (written by
//! `fig11_first_failure` in the same job; header
//! `maxloop,scheme,policy,load`) and fails when the best plan-first
//! policy (bfs or bubble) of any scheme, averaged over the swept
//! maxloop budgets, reaches less than `MCB_FF_MIN` × the random-walk
//! first-failure load. The default minimum is 1.0 — searching the
//! eviction *tree* must never average worse than sampling one path.
//! Averaging over budgets is deliberate: at the largest budgets every
//! policy compresses into the saturation plateau where differences are
//! noise-level, while the planned policies' real edge shows across the
//! whole curve. The sweep is seed-deterministic, so the gate is stable
//! for a given `MCB_CAP`/`MCB_RUNS`.

use std::path::PathBuf;
use std::process::exit;

use mccuckoo_bench::report::csv_path;
use mccuckoo_bench::smoke::{gate_lookup_batch, gate_regressions, SmokeReport};

/// Best (shards == 8, writers >= 4) Mops divided by the
/// (1, 1, 1) baseline Mops, from the CSV text written by
/// `concurrency_scaling` (header `shards,writers,batch,Mops`).
fn scaling_ratio(csv: &str) -> Result<f64, String> {
    let mut baseline = None;
    let mut best_multi: Option<f64> = None;
    for (lineno, line) in csv.lines().enumerate().skip(1) {
        let f: Vec<&str> = line.trim().split(',').collect();
        if f.len() != 4 {
            return Err(format!(
                "line {}: expected 4 fields, got {line:?}",
                lineno + 1
            ));
        }
        let parse = |s: &str| {
            s.parse::<f64>()
                .map_err(|e| format!("line {}: {e} in {line:?}", lineno + 1))
        };
        let (shards, writers, mops) = (parse(f[0])?, parse(f[1])?, parse(f[3])?);
        if shards == 1.0 && writers == 1.0 && parse(f[2])? == 1.0 {
            baseline = Some(mops);
        }
        if shards == 8.0 && writers >= 4.0 {
            best_multi = Some(best_multi.map_or(mops, |b: f64| b.max(mops)));
        }
    }
    let baseline = baseline.ok_or("no (1,1,1) baseline row")?;
    let best = best_multi.ok_or("no (8, >=4, *) row")?;
    if baseline <= 0.0 {
        return Err(format!("non-positive baseline {baseline}"));
    }
    Ok(best / baseline)
}

/// `MCB_SCALING_MIN`, or the core-aware default described in the
/// module docs.
fn scaling_min() -> f64 {
    if let Ok(v) = std::env::var("MCB_SCALING_MIN") {
        if let Ok(min) = v.parse::<f64>() {
            return min;
        }
        eprintln!("[gate] ignoring unparseable MCB_SCALING_MIN={v:?}");
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    (0.625 * cores.min(4) as f64).max(1.0)
}

fn gate_scaling() {
    let path = csv_path("sharded_write_scaling");
    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("[gate] cannot read {}: {e}", path.display());
        eprintln!("[gate] run `concurrency_scaling --quick` first");
        exit(2);
    });
    let ratio = scaling_ratio(&raw).unwrap_or_else(|e| {
        eprintln!("[gate] cannot interpret {}: {e}", path.display());
        exit(2);
    });
    let min = scaling_min();
    println!(
        "[gate] write scaling: best 8-shard multi-writer is {ratio:.2}x the \
         single-writer per-op baseline (minimum {min:.2}x)"
    );
    if ratio < min {
        eprintln!(
            "[gate] FAIL: scaling {ratio:.2}x < {min:.2}x — multi-writer \
             inserts no longer scale (see DESIGN.md \"Concurrency\")"
        );
        exit(1);
    }
}

/// `MCB_LOOKUP_MIN`, defaulting to the 1.2× margin of the acceptance
/// criteria. Ratio-based (batched vs single-key of the same run), so no
/// per-core scaling is needed: both passes run on one thread.
fn lookup_min() -> f64 {
    if let Ok(v) = std::env::var("MCB_LOOKUP_MIN") {
        if let Ok(min) = v.parse::<f64>() {
            return min;
        }
        eprintln!("[gate] ignoring unparseable MCB_LOOKUP_MIN={v:?}");
    }
    1.2
}

fn gate_lookup() {
    let fresh = load(&csv_path("bench_smoke").with_extension("json"));
    let min = lookup_min();
    for s in &fresh.schemes {
        let ratio = if s.lookup_mops > 0.0 {
            s.lookup_batch_mops / s.lookup_mops
        } else {
            0.0
        };
        println!(
            "[gate] {:<10} lookup {:.2} Mops single, {:.2} Mops batched ({ratio:.2}x)",
            s.scheme, s.lookup_mops, s.lookup_batch_mops
        );
    }
    let fails = gate_lookup_batch(&fresh, min);
    if fails.is_empty() {
        println!("[gate] pass: batched lookups clear the {min:.2}x margin");
        return;
    }
    for f in &fails {
        eprintln!("[gate] FAIL: {f}");
    }
    exit(1);
}

/// Per-scheme `best(bfs, bubble) / random-walk` first-failure ratios,
/// each policy's load first averaged over every swept maxloop budget,
/// from the CSV text written by `fig11_first_failure` (header
/// `maxloop,scheme,policy,load`).
fn first_failure_ratios(csv: &str) -> Result<Vec<(String, f64)>, String> {
    let mut rows: Vec<(String, String, f64)> = Vec::new();
    for (lineno, line) in csv.lines().enumerate().skip(1) {
        let f: Vec<&str> = line.trim().split(',').collect();
        if f.len() != 4 {
            return Err(format!(
                "line {}: expected 4 fields, got {line:?}",
                lineno + 1
            ));
        }
        f[0].parse::<u32>()
            .map_err(|e| format!("line {}: {e} in {line:?}", lineno + 1))?;
        let load = f[3]
            .parse::<f64>()
            .map_err(|e| format!("line {}: {e} in {line:?}", lineno + 1))?;
        rows.push((f[1].to_string(), f[2].to_string(), load));
    }
    if rows.is_empty() {
        return Err("no data rows".into());
    }
    let mut schemes: Vec<String> = Vec::new();
    for r in &rows {
        if !schemes.contains(&r.0) {
            schemes.push(r.0.clone());
        }
    }
    let mut out = Vec::new();
    for scheme in schemes {
        let mean = |policy: &str| {
            let loads: Vec<f64> = rows
                .iter()
                .filter(|r| r.0 == scheme && r.1 == policy)
                .map(|r| r.2)
                .collect();
            if loads.is_empty() {
                None
            } else {
                Some(loads.iter().sum::<f64>() / loads.len() as f64)
            }
        };
        let walk = mean("random-walk").ok_or(format!("no random-walk row for {scheme}"))?;
        let best = mean("bfs")
            .into_iter()
            .chain(mean("bubble"))
            .fold(None::<f64>, |b, v| Some(b.map_or(v, |b| b.max(v))))
            .ok_or(format!("no bfs/bubble row for {scheme}"))?;
        if walk <= 0.0 {
            return Err(format!("non-positive random-walk load {walk} for {scheme}"));
        }
        out.push((scheme, best / walk));
    }
    Ok(out)
}

/// `MCB_FF_MIN`, defaulting to parity: the plan-first policies must not
/// lose to the random walk at the operating budget.
fn first_failure_min() -> f64 {
    if let Ok(v) = std::env::var("MCB_FF_MIN") {
        if let Ok(min) = v.parse::<f64>() {
            return min;
        }
        eprintln!("[gate] ignoring unparseable MCB_FF_MIN={v:?}");
    }
    1.0
}

fn gate_first_failure() {
    let path = csv_path("fig11_kick_policies");
    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("[gate] cannot read {}: {e}", path.display());
        eprintln!("[gate] run `fig11_first_failure` first");
        exit(2);
    });
    let ratios = first_failure_ratios(&raw).unwrap_or_else(|e| {
        eprintln!("[gate] cannot interpret {}: {e}", path.display());
        exit(2);
    });
    let min = first_failure_min();
    let mut failed = false;
    for (scheme, ratio) in &ratios {
        println!(
            "[gate] {scheme:<10} first-failure: best planned policy is {ratio:.4}x \
             the random walk (minimum {min:.4}x)"
        );
        if *ratio < min {
            eprintln!(
                "[gate] FAIL: {scheme} planned kick {ratio:.4}x < {min:.4}x — BFS/bubbling \
                 no longer beat the random walk (see DESIGN.md \"Kick policies\")"
            );
            failed = true;
        }
    }
    if failed {
        exit(1);
    }
}

/// One parsed `migration_pause.csv` row.
#[derive(Debug)]
struct PauseRow {
    phase: String,
    lookup_errors: u64,
    max_pause_us: f64,
    recovery_identical: u64,
}

/// Parse the CSV text written by `migration_pause` (header
/// `phase,splits,keys_moved,reader_ops,lookup_errors,max_pause_us,mean_pause_us,recovery_identical`).
fn pause_rows(csv: &str) -> Result<Vec<PauseRow>, String> {
    let mut rows = Vec::new();
    for (lineno, line) in csv.lines().enumerate().skip(1) {
        let f: Vec<&str> = line.trim().split(',').collect();
        if f.len() != 8 {
            return Err(format!(
                "line {}: expected 8 fields, got {line:?}",
                lineno + 1
            ));
        }
        let err = |e| format!("line {}: {e} in {line:?}", lineno + 1);
        rows.push(PauseRow {
            phase: f[0].to_string(),
            lookup_errors: f[4].parse().map_err(|e| err(format!("{e}")))?,
            max_pause_us: f[5].parse().map_err(|e| err(format!("{e}")))?,
            recovery_identical: f[7].parse().map_err(|e| err(format!("{e}")))?,
        });
    }
    if !rows.iter().any(|r| r.phase == "split") {
        return Err("no split-phase row".into());
    }
    Ok(rows)
}

/// `MCB_PAUSE_MAX_US`, defaulting to 250ms: far above scheduler noise,
/// far below a reader actually blocking on a migration lock.
fn pause_max_us() -> f64 {
    if let Ok(v) = std::env::var("MCB_PAUSE_MAX_US") {
        if let Ok(max) = v.parse::<f64>() {
            return max;
        }
        eprintln!("[gate] ignoring unparseable MCB_PAUSE_MAX_US={v:?}");
    }
    250_000.0
}

fn gate_migration() {
    let path = csv_path("migration_pause");
    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("[gate] cannot read {}: {e}", path.display());
        eprintln!("[gate] run `migration_pause` first");
        exit(2);
    });
    let rows = pause_rows(&raw).unwrap_or_else(|e| {
        eprintln!("[gate] cannot interpret {}: {e}", path.display());
        exit(2);
    });
    let max = pause_max_us();
    let mut failed = false;
    for r in &rows {
        println!(
            "[gate] {:<8} lookup errors {}, worst pause {:.2} us, recovery {}",
            r.phase, r.lookup_errors, r.max_pause_us, r.recovery_identical
        );
        if r.lookup_errors > 0 {
            eprintln!(
                "[gate] FAIL: {} phase lost {} reader lookup(s) — a stable key went \
                 missing mid-migration (see DESIGN.md \"Growth & persistence\")",
                r.phase, r.lookup_errors
            );
            failed = true;
        }
        if r.phase == "split" {
            if r.max_pause_us > max {
                eprintln!(
                    "[gate] FAIL: worst reader pause {:.2} us > {max:.0} us during the \
                     split — readers are blocking on migration",
                    r.max_pause_us
                );
                failed = true;
            }
            if r.recovery_identical != 1 {
                eprintln!(
                    "[gate] FAIL: op-log replay did not rebuild an identical table \
                     (recovery_identical = {})",
                    r.recovery_identical
                );
                failed = true;
            }
        }
    }
    if failed {
        exit(1);
    }
    println!(
        "[gate] pass: readers never erred or blocked during the split, and log replay is exact"
    );
}

/// One parsed `maintenance_pause.csv` row.
#[derive(Debug)]
struct MaintRow {
    phase: String,
    lookup_errors: u64,
    retirements: u64,
    compactions: u64,
    forwarding_live_end: u64,
    recovery_identical: u64,
}

/// Parse the CSV text written by `maintenance_pause` (header
/// `phase,ticks,reader_ops,lookup_errors,retirements,compactions,records_truncated,forwarding_live_end,recovery_identical`).
fn maint_rows(csv: &str) -> Result<Vec<MaintRow>, String> {
    let mut rows = Vec::new();
    for (lineno, line) in csv.lines().enumerate().skip(1) {
        let f: Vec<&str> = line.trim().split(',').collect();
        if f.len() != 9 {
            return Err(format!(
                "line {}: expected 9 fields, got {line:?}",
                lineno + 1
            ));
        }
        let err = |e| format!("line {}: {e} in {line:?}", lineno + 1);
        rows.push(MaintRow {
            phase: f[0].to_string(),
            lookup_errors: f[3].parse().map_err(|e| err(format!("{e}")))?,
            retirements: f[4].parse().map_err(|e| err(format!("{e}")))?,
            compactions: f[5].parse().map_err(|e| err(format!("{e}")))?,
            forwarding_live_end: f[7].parse().map_err(|e| err(format!("{e}")))?,
            recovery_identical: f[8].parse().map_err(|e| err(format!("{e}")))?,
        });
    }
    if !rows.iter().any(|r| r.phase == "maint") {
        return Err("no maint-phase row".into());
    }
    Ok(rows)
}

fn gate_maintenance() {
    let path = csv_path("maintenance_pause");
    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("[gate] cannot read {}: {e}", path.display());
        eprintln!("[gate] run `maintenance_pause` (--features maint-faults) first");
        exit(2);
    });
    let rows = maint_rows(&raw).unwrap_or_else(|e| {
        eprintln!("[gate] cannot interpret {}: {e}", path.display());
        exit(2);
    });
    let mut failed = false;
    for r in &rows {
        println!(
            "[gate] {:<8} lookup errors {}, retirements {}, compactions {}, \
             forwarding live at end {}, recovery {}",
            r.phase,
            r.lookup_errors,
            r.retirements,
            r.compactions,
            r.forwarding_live_end,
            r.recovery_identical
        );
        if r.lookup_errors > 0 {
            eprintln!(
                "[gate] FAIL: readers lost {} lookup(s) while the maintenance loop \
                 ran — retirement dropped a live key (see DESIGN.md \"Background \
                 maintenance\")",
                r.lookup_errors
            );
            failed = true;
        }
        if r.phase == "maint" {
            if r.forwarding_live_end != 0 {
                eprintln!(
                    "[gate] FAIL: {} forwarding entr{} still live after the loop \
                     settled — retirement never converged",
                    r.forwarding_live_end,
                    if r.forwarding_live_end == 1 {
                        "y is"
                    } else {
                        "ies are"
                    }
                );
                failed = true;
            }
            if r.retirements < 1 || r.compactions < 1 {
                eprintln!(
                    "[gate] FAIL: loop ran {} retirement(s) and {} compaction(s) — \
                     the harness did not exercise background maintenance",
                    r.retirements, r.compactions
                );
                failed = true;
            }
            if r.recovery_identical != 1 {
                eprintln!(
                    "[gate] FAIL: managed snapshot + retained tail did not rebuild \
                     an identical table (recovery_identical = {})",
                    r.recovery_identical
                );
                failed = true;
            }
        }
    }
    if failed {
        exit(1);
    }
    println!(
        "[gate] pass: the maintenance loop retired forwarding and compacted the log \
         under fire, with zero reader errors and exact recovery"
    );
}

fn load(path: &PathBuf) -> SmokeReport {
    let raw = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("[gate] cannot read {}: {e}", path.display());
        exit(2);
    });
    jsonlite::from_str(&raw).unwrap_or_else(|e| {
        eprintln!("[gate] cannot parse {}: {e}", path.display());
        exit(2);
    })
}

fn main() {
    if std::env::args().any(|a| a == "--scaling-only") {
        gate_scaling();
        return;
    }
    if std::env::args().any(|a| a == "--lookup-only") {
        gate_lookup();
        return;
    }
    if std::env::args().any(|a| a == "--first-failure-only") {
        gate_first_failure();
        return;
    }
    if std::env::args().any(|a| a == "--migration-only") {
        gate_migration();
        return;
    }
    if std::env::args().any(|a| a == "--maint-only") {
        gate_maintenance();
        return;
    }
    let fresh_path = csv_path("bench_smoke").with_extension("json");
    let base_path = PathBuf::from(
        std::env::var("MCB_BASELINE")
            .unwrap_or_else(|_| "results/bench_smoke_baseline.json".into()),
    );
    let fresh = load(&fresh_path);
    let baseline = load(&base_path);
    for s in &fresh.schemes {
        let b = baseline.schemes.iter().find(|b| b.scheme == s.scheme);
        println!(
            "[gate] {:<10} mops {:.3} (baseline {}), r/ins {:.2} (baseline {}), inserts {} kicks {}",
            s.scheme,
            s.insert_mops,
            b.map_or("-".into(), |b| format!("{:.3}", b.insert_mops)),
            s.offchip_reads_per_insert,
            b.map_or("-".into(), |b| format!("{:.2}", b.offchip_reads_per_insert)),
            s.stats.ops.inserts,
            s.stats.ops.kicks,
        );
    }
    let fails = gate_regressions(&baseline, &fresh);
    if fails.is_empty() {
        println!(
            "[gate] pass: {} scheme(s) within tolerance of {}",
            fresh.schemes.len(),
            base_path.display()
        );
        return;
    }
    for f in &fails {
        eprintln!("[gate] FAIL: {f}");
    }
    eprintln!(
        "[gate] {} regression(s); if intentional, regenerate {} (see bin docs)",
        fails.len(),
        base_path.display()
    );
    exit(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_ratio_takes_best_eight_shard_multi_writer_row() {
        let csv = "shards,writers,batch,Mops\n\
                   1,1,1,2.00\n\
                   8,2,256,9.00\n\
                   8,4,1,3.00\n\
                   8,4,256,5.00\n";
        // The 8-shard/2-writer row is ignored: the gate measures the
        // 4-writer configuration the acceptance curve is defined on.
        assert_eq!(scaling_ratio(csv).unwrap(), 2.5);
    }

    #[test]
    fn scaling_ratio_rejects_incomplete_curves() {
        assert!(scaling_ratio("shards,writers,batch,Mops\n1,1,1,2.0\n")
            .unwrap_err()
            .contains("no (8, >=4, *) row"));
        assert!(scaling_ratio("shards,writers,batch,Mops\n8,4,1,2.0\n")
            .unwrap_err()
            .contains("no (1,1,1) baseline row"));
        assert!(scaling_ratio("shards,writers,batch,Mops\nnot,a,row\n").is_err());
    }

    #[test]
    fn default_minimum_is_core_aware_with_a_parity_floor() {
        // Can't fake core count here, but the committed formula must
        // hold at both ends: 1 core floors at parity, >=4 cores demand
        // the full 2.5x.
        assert_eq!((0.625f64 * 1.0).max(1.0), 1.0);
        assert_eq!((0.625f64 * 4.0).max(1.0), 2.5);
        let min = scaling_min();
        assert!((1.0..=2.5).contains(&min), "default min {min} out of range");
    }

    #[test]
    fn first_failure_ratios_average_over_budgets_and_take_the_best_policy() {
        let csv = "maxloop,scheme,policy,load\n\
                   50,McCuckoo,random-walk,0.8000\n\
                   50,McCuckoo,bfs,0.7000\n\
                   50,McCuckoo,bubble,0.8200\n\
                   500,McCuckoo,random-walk,0.9000\n\
                   500,McCuckoo,bfs,0.9090\n\
                   500,McCuckoo,bubble,0.9000\n\
                   500,B-McCuckoo,random-walk,0.9900\n\
                   500,B-McCuckoo,bfs,0.9920\n\
                   500,B-McCuckoo,bubble,0.9940\n";
        // Each policy is averaged across its budget rows, then the best
        // of bfs/bubble is compared to the walk: bubble's mean 0.8600
        // beats bfs's 0.8045 and the walk's 0.8500 for McCuckoo.
        let ratios = first_failure_ratios(csv).unwrap();
        assert_eq!(ratios.len(), 2);
        assert_eq!(ratios[0].0, "McCuckoo");
        assert!((ratios[0].1 - 0.8600 / 0.8500).abs() < 1e-12);
        assert_eq!(ratios[1].0, "B-McCuckoo");
        assert!((ratios[1].1 - 0.9940 / 0.9900).abs() < 1e-12);
    }

    #[test]
    fn first_failure_ratios_reject_incomplete_sweeps() {
        assert!(first_failure_ratios("maxloop,scheme,policy,load\n")
            .unwrap_err()
            .contains("no data rows"));
        assert!(
            first_failure_ratios("maxloop,scheme,policy,load\n500,McCuckoo,bfs,0.9\n")
                .unwrap_err()
                .contains("no random-walk row")
        );
        assert!(
            first_failure_ratios("maxloop,scheme,policy,load\n500,McCuckoo,random-walk,0.9\n")
                .unwrap_err()
                .contains("no bfs/bubble row")
        );
        assert!(first_failure_ratios("maxloop,scheme,policy,load\nnot,a,row\n").is_err());
    }

    #[test]
    fn first_failure_minimum_defaults_to_parity() {
        // Env-independent check of the committed default (the CI job
        // does not set MCB_FF_MIN).
        if std::env::var("MCB_FF_MIN").is_err() {
            assert_eq!(first_failure_min(), 1.0);
        }
    }

    #[test]
    fn pause_rows_parse_both_phases() {
        let csv = "phase,splits,keys_moved,reader_ops,lookup_errors,max_pause_us,mean_pause_us,recovery_identical\n\
                   baseline,0,0,100000,0,120.50,0.60,1\n\
                   split,6,57000,90000,0,340.25,0.80,1\n";
        let rows = pause_rows(csv).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].phase, "split");
        assert_eq!(rows[1].lookup_errors, 0);
        assert_eq!(rows[1].max_pause_us, 340.25);
        assert_eq!(rows[1].recovery_identical, 1);
    }

    #[test]
    fn pause_rows_reject_incomplete_sweeps() {
        let header = "phase,splits,keys_moved,reader_ops,lookup_errors,max_pause_us,mean_pause_us,recovery_identical\n";
        assert!(pause_rows(header)
            .unwrap_err()
            .contains("no split-phase row"));
        let no_split = format!("{header}baseline,0,0,1,0,1.0,0.5,1\n");
        assert!(pause_rows(&no_split)
            .unwrap_err()
            .contains("no split-phase row"));
        assert!(pause_rows("phase,x\nsplit,broken\n").is_err());
    }

    #[test]
    fn maint_rows_parse_the_maint_phase() {
        let csv = "phase,ticks,reader_ops,lookup_errors,retirements,compactions,records_truncated,forwarding_live_end,recovery_identical\n\
                   maint,310,480000,0,3,2,41000,0,1\n";
        let rows = maint_rows(csv).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].phase, "maint");
        assert_eq!(rows[0].lookup_errors, 0);
        assert_eq!(rows[0].retirements, 3);
        assert_eq!(rows[0].compactions, 2);
        assert_eq!(rows[0].forwarding_live_end, 0);
        assert_eq!(rows[0].recovery_identical, 1);
    }

    #[test]
    fn maint_rows_reject_incomplete_sweeps() {
        let header = "phase,ticks,reader_ops,lookup_errors,retirements,compactions,records_truncated,forwarding_live_end,recovery_identical\n";
        assert!(maint_rows(header)
            .unwrap_err()
            .contains("no maint-phase row"));
        let wrong_phase = format!("{header}baseline,1,1,0,0,0,0,0,1\n");
        assert!(maint_rows(&wrong_phase)
            .unwrap_err()
            .contains("no maint-phase row"));
        assert!(maint_rows("phase,x\nmaint,broken\n").is_err());
        let bad_field = format!("{header}maint,1,1,zero,0,0,0,0,1\n");
        assert!(maint_rows(&bad_field).is_err());
    }

    #[test]
    fn pause_maximum_defaults_to_a_quarter_second() {
        // Env-independent check of the committed default (the CI job
        // does not set MCB_PAUSE_MAX_US).
        if std::env::var("MCB_PAUSE_MAX_US").is_err() {
            assert_eq!(pause_max_us(), 250_000.0);
        }
    }

    #[test]
    fn lookup_minimum_defaults_to_the_acceptance_margin() {
        // Env-independent check of the committed default (the CI job
        // does not set MCB_LOOKUP_MIN).
        if std::env::var("MCB_LOOKUP_MIN").is_err() {
            assert_eq!(lookup_min(), 1.2);
        }
    }
}
