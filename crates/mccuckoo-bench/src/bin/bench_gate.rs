//! Bench-smoke regression gate.
//!
//! Reads the fresh `results/bench_smoke.json` (written by `bench_smoke`
//! in the same CI job) and the committed
//! `results/bench_smoke_baseline.json`, and exits non-zero when any
//! scheme regressed beyond [`mccuckoo_bench::GATE_TOLERANCE`] — on
//! deterministic access counts, on insert throughput relative to the
//! run's reference scheme, or by shipping empty observability stats.
//!
//! `MCB_BASELINE` overrides the baseline path. After an intentional
//! performance change, regenerate the baseline at the gated scale
//! (`MCB_SMOKE=1 ./run_all_benches.sh`), copy `bench_smoke.json` over
//! `bench_smoke_baseline.json` and commit it.

use std::path::PathBuf;
use std::process::exit;

use mccuckoo_bench::report::csv_path;
use mccuckoo_bench::smoke::{gate_regressions, SmokeReport};

fn load(path: &PathBuf) -> SmokeReport {
    let raw = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("[gate] cannot read {}: {e}", path.display());
        exit(2);
    });
    jsonlite::from_str(&raw).unwrap_or_else(|e| {
        eprintln!("[gate] cannot parse {}: {e}", path.display());
        exit(2);
    })
}

fn main() {
    let fresh_path = csv_path("bench_smoke").with_extension("json");
    let base_path = PathBuf::from(
        std::env::var("MCB_BASELINE")
            .unwrap_or_else(|_| "results/bench_smoke_baseline.json".into()),
    );
    let fresh = load(&fresh_path);
    let baseline = load(&base_path);
    for s in &fresh.schemes {
        let b = baseline.schemes.iter().find(|b| b.scheme == s.scheme);
        println!(
            "[gate] {:<10} mops {:.3} (baseline {}), r/ins {:.2} (baseline {}), inserts {} kicks {}",
            s.scheme,
            s.insert_mops,
            b.map_or("-".into(), |b| format!("{:.3}", b.insert_mops)),
            s.offchip_reads_per_insert,
            b.map_or("-".into(), |b| format!("{:.2}", b.offchip_reads_per_insert)),
            s.stats.ops.inserts,
            s.stats.ops.kicks,
        );
    }
    let fails = gate_regressions(&baseline, &fresh);
    if fails.is_empty() {
        println!(
            "[gate] pass: {} scheme(s) within tolerance of {}",
            fresh.schemes.len(),
            base_path.display()
        );
        return;
    }
    for f in &fails {
        eprintln!("[gate] FAIL: {f}");
    }
    eprintln!(
        "[gate] {} regression(s); if intentional, regenerate {} (see bin docs)",
        fails.len(),
        base_path.display()
    );
    exit(1);
}
