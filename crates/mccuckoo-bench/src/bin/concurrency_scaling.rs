//! Concurrency scaling (§III.H): aggregate read throughput of the
//! one-writer-many-readers table as reader count grows, with and
//! without a concurrent writer churning the table — plus the write-side
//! sweep of the sharded serving layer: insert throughput across shard
//! count × writer threads, batched and per-op, against the
//! single-writer per-op baseline (shards = 1, writers = 1, batch = 1).
//!
//! Every read validates the availability guarantee (stable keys are
//! always found); throughput is wall-clock, so run with `--release`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use mccuckoo_bench::report::{f2, write_csv, Table};
use mccuckoo_core::{ConcurrentMcCuckoo, McConfig, ShardedMcCuckoo};
use workloads::UniqueKeys;

const TABLE_N: usize = 1 << 16;
const STABLE: usize = 120_000;
const RUN_MILLIS: u64 = 800;
/// Total buckets across all shards of a write-sweep table.
const WRITE_BUCKETS: usize = 1 << 16;
/// Fresh keys inserted per write-sweep run (~41% of total capacity, so
/// no insert is ever rejected and every run does identical work).
const WRITE_OPS: usize = 80_000;

fn run(readers: usize, with_writer: bool) -> f64 {
    let table: Arc<ConcurrentMcCuckoo<u64, u64>> =
        Arc::new(ConcurrentMcCuckoo::new(McConfig::paper(TABLE_N, 31)));
    let mut keys = UniqueKeys::new(32);
    let stable: Arc<Vec<u64>> = Arc::new(keys.take_vec(STABLE));
    for &k in stable.iter() {
        table.insert(k, k ^ 0xF00D).expect("warmup");
    }
    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for r in 0..readers {
            let table = table.clone();
            let stable = stable.clone();
            let stop = stop.clone();
            let reads = reads.clone();
            scope.spawn(move || {
                let mut i = r;
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let k = stable[i % stable.len()];
                    assert_eq!(table.get(&k), Some(k ^ 0xF00D), "availability violated");
                    local += 1;
                    i += 13;
                }
                reads.fetch_add(local, Ordering::Relaxed);
            });
        }
        if with_writer {
            let table = table.clone();
            let stop = stop.clone();
            scope.spawn(move || {
                let mut churn = UniqueKeys::new(33);
                let mut window: Vec<u64> = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let k = churn.next_key();
                    if table.insert(k, k).is_ok() {
                        window.push(k);
                    }
                    if window.len() > 20_000 {
                        let victim = window.swap_remove(0);
                        table.remove(&victim);
                    }
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(RUN_MILLIS));
        stop.store(true, Ordering::Relaxed);
    });
    reads.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64() / 1e6
}

/// Insert `WRITE_OPS` fresh keys into a `shards`-way sharded table from
/// `writers` threads, `batch` keys per batched call (`batch == 1` uses
/// the per-op path), returning Mops. Keys are pre-partitioned round-robin
/// across writers, so every run inserts the same key set.
fn run_write(shards: usize, writers: usize, batch: usize) -> f64 {
    let table: Arc<ShardedMcCuckoo<u64, u64>> = Arc::new(ShardedMcCuckoo::new(
        shards,
        McConfig::paper(WRITE_BUCKETS / shards, 41),
    ));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..writers {
            let table = table.clone();
            scope.spawn(move || {
                let keys: Vec<(u64, u64)> = (w..WRITE_OPS)
                    .step_by(writers)
                    .map(|i| (i as u64, i as u64 ^ 0xF00D))
                    .collect();
                if batch == 1 {
                    for &(k, v) in &keys {
                        table.insert(k, v).expect("40% load never rejects");
                    }
                } else {
                    for chunk in keys.chunks(batch) {
                        for r in table.insert_batch(chunk) {
                            r.expect("40% load never rejects");
                        }
                    }
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(table.len(), WRITE_OPS, "every key must land exactly once");
    WRITE_OPS as f64 / secs / 1e6
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut table = Table::new(
        "Concurrency scaling: validated read throughput (Mops)",
        &["readers", "read-only", "with writer churn"],
    );
    let mut counts = vec![1usize, 2, 4];
    if cores > 5 {
        counts.push(cores - 1);
    }
    for readers in counts {
        table.row(vec![
            readers.to_string(),
            f2(run(readers, false)),
            f2(run(readers, true)),
        ]);
    }
    table.print();
    write_csv("concurrency_scaling", &table);

    // Write-side sweep: shard count × writer threads, batched (64 keys
    // per lock acquisition) and per-op. Row one is the single-writer
    // per-op baseline the sharded layer must beat.
    let mut wtable = Table::new(
        "Sharded write scaling: insert throughput (Mops)",
        &["shards", "writers", "batch", "Mops"],
    );
    let baseline = run_write(1, 1, 1);
    wtable.row(vec!["1".into(), "1".into(), "1".into(), f2(baseline)]);
    let mut best_multi = 0.0f64;
    for &shards in &[2usize, 4, 8] {
        for &writers in &[1usize, 2, 4] {
            for &batch in &[1usize, 64] {
                let mops = run_write(shards, writers, batch);
                if writers >= 4 {
                    best_multi = best_multi.max(mops);
                }
                wtable.row(vec![
                    shards.to_string(),
                    writers.to_string(),
                    batch.to_string(),
                    f2(mops),
                ]);
            }
        }
    }
    wtable.print();
    write_csv("sharded_write_scaling", &wtable);
    println!(
        "(single-writer per-op baseline {} Mops; best sharded multi-writer {} Mops)",
        f2(baseline),
        f2(best_multi),
    );
    println!(
        "({cores} logical cores available; every read asserts the §III.H availability guarantee)"
    );
}
