//! Concurrency scaling (§III.H): aggregate read throughput of the
//! one-writer-many-readers table as reader count grows, with and
//! without a concurrent writer churning the table.
//!
//! Every read validates the availability guarantee (stable keys are
//! always found); throughput is wall-clock, so run with `--release`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use mccuckoo_bench::report::{f2, write_csv, Table};
use mccuckoo_core::{ConcurrentMcCuckoo, McConfig};
use workloads::UniqueKeys;

const TABLE_N: usize = 1 << 16;
const STABLE: usize = 120_000;
const RUN_MILLIS: u64 = 800;

fn run(readers: usize, with_writer: bool) -> f64 {
    let table: Arc<ConcurrentMcCuckoo<u64, u64>> =
        Arc::new(ConcurrentMcCuckoo::new(McConfig::paper(TABLE_N, 31)));
    let mut keys = UniqueKeys::new(32);
    let stable: Arc<Vec<u64>> = Arc::new(keys.take_vec(STABLE));
    for &k in stable.iter() {
        table.insert(k, k ^ 0xF00D).expect("warmup");
    }
    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for r in 0..readers {
            let table = table.clone();
            let stable = stable.clone();
            let stop = stop.clone();
            let reads = reads.clone();
            scope.spawn(move || {
                let mut i = r;
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let k = stable[i % stable.len()];
                    assert_eq!(table.get(&k), Some(k ^ 0xF00D), "availability violated");
                    local += 1;
                    i += 13;
                }
                reads.fetch_add(local, Ordering::Relaxed);
            });
        }
        if with_writer {
            let table = table.clone();
            let stop = stop.clone();
            scope.spawn(move || {
                let mut churn = UniqueKeys::new(33);
                let mut window: Vec<u64> = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let k = churn.next_key();
                    if table.insert(k, k).is_ok() {
                        window.push(k);
                    }
                    if window.len() > 20_000 {
                        let victim = window.swap_remove(0);
                        table.remove(&victim);
                    }
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(RUN_MILLIS));
        stop.store(true, Ordering::Relaxed);
    });
    reads.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64() / 1e6
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut table = Table::new(
        "Concurrency scaling: validated read throughput (Mops)",
        &["readers", "read-only", "with writer churn"],
    );
    let mut counts = vec![1usize, 2, 4];
    if cores > 5 {
        counts.push(cores - 1);
    }
    for readers in counts {
        table.row(vec![
            readers.to_string(),
            f2(run(readers, false)),
            f2(run(readers, true)),
        ]);
    }
    table.print();
    write_csv("concurrency_scaling", &table);
    println!(
        "({cores} logical cores available; every read asserts the §III.H availability guarantee)"
    );
}
