//! Concurrency scaling (§III.H): aggregate read throughput of the
//! one-writer-many-readers table as reader count grows, with and
//! without a concurrent writer churning the table — plus the write-side
//! sweep of the sharded serving layer: insert throughput across shard
//! count × writer threads, batched and per-op, against the
//! single-writer per-op baseline (shards = 1, writers = 1, batch = 1).
//!
//! Every read validates the availability guarantee (stable keys are
//! always found); throughput is wall-clock, so run with `--release`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use mccuckoo_bench::affinity::pin_worker;
use mccuckoo_bench::report::{f2, write_csv, Table};
use mccuckoo_core::{ConcurrentMcCuckoo, McConfig, ShardedMcCuckoo};
use workloads::UniqueKeys;

const TABLE_N: usize = 1 << 16;
const STABLE: usize = 120_000;
const RUN_MILLIS: u64 = 800;
/// Total buckets across all shards of a write-sweep table.
const WRITE_BUCKETS: usize = 1 << 16;
/// Fresh keys inserted per write-sweep run (~41% of total capacity, so
/// no insert is ever rejected and every run does identical work).
const WRITE_OPS: usize = 80_000;
/// Per-run insert count in `--quick` (CI) mode.
const WRITE_OPS_QUICK: usize = 30_000;

fn run(readers: usize, with_writer: bool) -> f64 {
    let table: Arc<ConcurrentMcCuckoo<u64, u64>> =
        Arc::new(ConcurrentMcCuckoo::new(McConfig::paper(TABLE_N, 31)));
    let mut keys = UniqueKeys::new(32);
    let stable: Arc<Vec<u64>> = Arc::new(keys.take_vec(STABLE));
    for &k in stable.iter() {
        table.insert(k, k ^ 0xF00D).expect("warmup");
    }
    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for r in 0..readers {
            let table = table.clone();
            let stable = stable.clone();
            let stop = stop.clone();
            let reads = reads.clone();
            scope.spawn(move || {
                let mut i = r;
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let k = stable[i % stable.len()];
                    assert_eq!(table.get(&k), Some(k ^ 0xF00D), "availability violated");
                    local += 1;
                    i += 13;
                }
                reads.fetch_add(local, Ordering::Relaxed);
            });
        }
        if with_writer {
            let table = table.clone();
            let stop = stop.clone();
            scope.spawn(move || {
                let mut churn = UniqueKeys::new(33);
                let mut window: Vec<u64> = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let k = churn.next_key();
                    if table.insert(k, k).is_ok() {
                        window.push(k);
                    }
                    if window.len() > 20_000 {
                        let victim = window.swap_remove(0);
                        table.remove(&victim);
                    }
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(RUN_MILLIS));
        stop.store(true, Ordering::Relaxed);
    });
    reads.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64() / 1e6
}

/// Best-of-N wrapper over [`run_write_once`]: wall-clock throughput on
/// a shared/frequency-scaled host is noisy in one direction only
/// (interference and cold clocks slow a run, nothing speeds it up), so
/// the max over `MCB_SCALING_RUNS` repetitions (default 3) is the
/// stable estimate of what the configuration can actually do.
fn run_write(shards: usize, writers: usize, batch: usize, ops: usize) -> f64 {
    let runs: usize = std::env::var("MCB_SCALING_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3);
    (0..runs)
        .map(|_| run_write_once(shards, writers, batch, ops))
        .fold(0.0, f64::max)
}

/// Insert `ops` fresh keys into a `shards`-way sharded table from
/// `writers` threads, `batch` keys per batched call (`batch == 1` uses
/// the per-op path), returning Mops. Keys are pre-partitioned round-robin
/// across writers, so every run inserts the same key set.
///
/// Every writer builds its key vector and pins itself (best-effort)
/// *before* a shared barrier; the timer starts only once the barrier
/// releases, so the measurement covers table work from genuinely
/// concurrent threads — not thread spawn or key generation.
fn run_write_once(shards: usize, writers: usize, batch: usize, ops: usize) -> f64 {
    let table: Arc<ShardedMcCuckoo<u64, u64>> = Arc::new(ShardedMcCuckoo::new(
        shards,
        McConfig::paper(WRITE_BUCKETS / shards, 41),
    ));
    let ready = Arc::new(Barrier::new(writers + 1));
    let elapsed = std::thread::scope(|scope| {
        for w in 0..writers {
            let table = table.clone();
            let ready = ready.clone();
            scope.spawn(move || {
                let keys: Vec<(u64, u64)> = (w..ops)
                    .step_by(writers)
                    .map(|i| (i as u64, i as u64 ^ 0xF00D))
                    .collect();
                pin_worker(w);
                ready.wait();
                if batch == 1 {
                    for &(k, v) in &keys {
                        table.insert(k, v).expect("40% load never rejects");
                    }
                } else {
                    for chunk in keys.chunks(batch) {
                        for r in table.insert_batch(chunk) {
                            r.expect("40% load never rejects");
                        }
                    }
                }
            });
        }
        ready.wait();
        // The scope joins every writer before returning, so the elapsed
        // window is barrier-release → last writer done.
        Instant::now()
    })
    .elapsed()
    .as_secs_f64();
    assert_eq!(table.len(), ops, "every key must land exactly once");
    ops as f64 / elapsed / 1e6
}

fn main() {
    // `--quick`: CI mode — skip the read sweep, run only the baseline
    // and the 8-shard rows with fewer ops, so the gate finishes in
    // seconds while still producing `results/sharded_write_scaling.csv`.
    let quick = std::env::args().any(|a| a == "--quick");
    let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
    if !quick {
        let mut table = Table::new(
            "Concurrency scaling: validated read throughput (Mops)",
            &["readers", "read-only", "with writer churn"],
        );
        let mut counts = vec![1usize, 2, 4];
        if cores > 5 {
            counts.push(cores - 1);
        }
        for readers in counts {
            table.row(vec![
                readers.to_string(),
                f2(run(readers, false)),
                f2(run(readers, true)),
            ]);
        }
        table.print();
        write_csv("concurrency_scaling", &table);
    }

    // Write-side sweep: shard count × writer threads, batched (64 keys
    // per stripe sweep) and per-op. Row one is the single-writer
    // per-op baseline the sharded layer must beat.
    let ops = if quick { WRITE_OPS_QUICK } else { WRITE_OPS };
    let sweep: &[(usize, usize)] = if quick {
        &[(8, 1), (8, 2), (8, 4)]
    } else {
        &[
            (2, 1),
            (2, 2),
            (2, 4),
            (4, 1),
            (4, 2),
            (4, 4),
            (8, 1),
            (8, 2),
            (8, 4),
        ]
    };
    let mut wtable = Table::new(
        "Sharded write scaling: insert throughput (Mops)",
        &["shards", "writers", "batch", "Mops"],
    );
    // Ramp the frequency governor until repeated probe runs stop
    // speeding up — on a cold clock the rows measured first would be
    // penalized by whole integer factors, garbling the curve.
    let mut last = run_write_once(1, 1, 1, ops);
    let warm_start = Instant::now();
    while warm_start.elapsed().as_secs_f64() < 8.0 {
        let probe = run_write_once(1, 1, 1, ops);
        if probe < last * 1.02 {
            break;
        }
        last = probe;
    }
    let baseline = run_write(1, 1, 1, ops);
    wtable.row(vec!["1".into(), "1".into(), "1".into(), f2(baseline)]);
    let mut best_multi = 0.0f64;
    for &(shards, writers) in sweep {
        for &batch in &[1usize, 64, 256] {
            let mops = run_write(shards, writers, batch, ops);
            if shards == 8 && writers >= 4 {
                best_multi = best_multi.max(mops);
            }
            wtable.row(vec![
                shards.to_string(),
                writers.to_string(),
                batch.to_string(),
                f2(mops),
            ]);
        }
    }
    wtable.print();
    write_csv("sharded_write_scaling", &wtable);
    println!(
        "(single-writer per-op baseline {} Mops; best 8-shard multi-writer {} Mops; \
         scaling {}x)",
        f2(baseline),
        f2(best_multi),
        f2(best_multi / baseline.max(1e-12)),
    );
    println!(
        "({cores} logical cores available; every read asserts the §III.H availability guarantee)"
    );
}
