//! Ablation: what do the counters buy during collision resolution?
//!
//! Compares kick-outs and off-chip reads per insertion at high load for:
//! standard Cuckoo with random-walk, standard Cuckoo with BFS,
//! McCuckoo with random-walk (the paper's setup), and McCuckoo with
//! MinCounter victim selection (paper ref \[17\], supported as a policy).

use cuckoo_baselines::{CuckooConfig, DaryCuckoo, KickPolicy};
use mccuckoo_bench::harness::Config;
use mccuckoo_bench::report::{f4, write_csv, Table};
use mccuckoo_core::{McConfig, McCuckoo, ResolutionPolicy};
use mem_model::MemStats;
use workloads::DocWordsLike;

/// (load, kick-outs/insert, reads/insert) series over the bands.
type Series = Vec<(f64, f64, f64)>;

fn run_baseline(policy: KickPolicy) -> impl Fn(&Config, u64, &[f64]) -> Series {
    move |cfg, seed, bands| {
        let mut t: DaryCuckoo<u64, u64> = DaryCuckoo::new(CuckooConfig {
            policy,
            maxloop: cfg.maxloop,
            ..CuckooConfig::paper(cfg.cap / 3, seed)
        });
        sweep(bands, cfg.cap, seed, |k| {
            let before = t.meter().snapshot();
            let kicks = t.insert(k, k).map(|r| r.kickouts).unwrap_or(cfg.maxloop);
            (kicks as u64, t.meter().snapshot() - before)
        })
    }
}

fn run_mc(policy: ResolutionPolicy) -> impl Fn(&Config, u64, &[f64]) -> Series {
    move |cfg, seed, bands| {
        let mut t: McCuckoo<u64, u64> =
            McCuckoo::new(McConfig::paper(cfg.cap / 3, seed).with_resolution(policy));
        sweep(bands, cfg.cap, seed, |k| {
            let before = t.meter().snapshot();
            let kicks = t
                .insert_new(k, k)
                .map(|r| r.kickouts)
                .unwrap_or(cfg.maxloop);
            (kicks as u64, t.meter().snapshot() - before)
        })
    }
}

/// Drive the insert closure over the bands, aggregating per segment.
fn sweep(
    bands: &[f64],
    cap: usize,
    seed: u64,
    mut insert: impl FnMut(u64) -> (u64, MemStats),
) -> Series {
    let mut gen = DocWordsLike::nytimes_like(seed);
    let mut inserted = 0u64;
    let mut out = Vec::new();
    for &band in bands {
        let target = (band * cap as f64).round() as u64;
        let mut kicks = 0u64;
        let mut stats = MemStats::default();
        let segment = target - inserted;
        for _ in 0..segment {
            let (k, d) = insert(gen.next_key());
            kicks += k;
            stats += d;
        }
        inserted = target;
        out.push((
            band,
            kicks as f64 / segment as f64,
            stats.offchip_reads as f64 / segment as f64,
        ));
    }
    out
}

fn main() {
    let cfg = Config::from_env();
    let bands: Vec<f64> = [0.5f64, 0.6, 0.7, 0.8, 0.85, 0.88].to_vec();
    let runs: Vec<(&str, Series)> = vec![
        (
            "Cuckoo/random-walk",
            run_baseline(KickPolicy::RandomWalk)(&cfg, 210, &bands),
        ),
        (
            "Cuckoo/BFS",
            run_baseline(KickPolicy::Bfs)(&cfg, 210, &bands),
        ),
        (
            "McCuckoo/random-walk",
            run_mc(ResolutionPolicy::RandomWalk)(&cfg, 210, &bands),
        ),
        (
            "McCuckoo/MinCounter",
            run_mc(ResolutionPolicy::MinCounter)(&cfg, 210, &bands),
        ),
    ];
    let mut kicks_tbl = Table::new(
        "Ablation: kick-outs per insertion by resolution strategy",
        &["load", runs[0].0, runs[1].0, runs[2].0, runs[3].0],
    );
    let mut reads_tbl = Table::new(
        "Ablation: off-chip reads per insertion by resolution strategy",
        &["load", runs[0].0, runs[1].0, runs[2].0, runs[3].0],
    );
    for i in 0..bands.len() {
        kicks_tbl.row(
            std::iter::once(format!("{:.0}%", bands[i] * 100.0))
                .chain(runs.iter().map(|(_, v)| f4(v[i].1)))
                .collect(),
        );
        reads_tbl.row(
            std::iter::once(format!("{:.0}%", bands[i] * 100.0))
                .chain(runs.iter().map(|(_, v)| f4(v[i].2)))
                .collect(),
        );
    }
    kicks_tbl.print();
    println!();
    reads_tbl.print();
    write_csv("ablation_counters_kickouts", &kicks_tbl);
    write_csv("ablation_counters_reads", &reads_tbl);
}
