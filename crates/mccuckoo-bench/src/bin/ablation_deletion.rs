//! Ablation: the two deletion modes of §III.B.3.
//!
//! `Reset` loses lookup rule 1 forever (any zero may be a deletion
//! scar); `Tombstone` keeps rule 1 sound but its Bloom-filter power
//! decays as tombstones accumulate ("non-zero buckets will never return
//! back to zero"). This ablation measures absent-key lookup reads after
//! increasing amounts of delete/insert churn in both modes.

use mccuckoo_bench::harness::Config;
use mccuckoo_bench::report::{f4, write_csv, Table};
use mccuckoo_core::{DeletionMode, McConfig, McCuckoo};
use workloads::DocWordsLike;

fn run(mode: DeletionMode, cfg: &Config, churn_rounds: usize) -> f64 {
    let mut t: McCuckoo<u64, u64> =
        McCuckoo::new(McConfig::paper(cfg.cap / 3, 240).with_deletion(mode));
    let mut gen = DocWordsLike::nytimes_like(250);
    let n = cfg.cap / 2; // 50% load
    let mut live: Vec<u64> = Vec::new();
    for _ in 0..n {
        let k = gen.next_key();
        let _ = t.insert_new(k, k);
        live.push(k);
    }
    // Churn: delete and replace 20% of the table per round.
    for _ in 0..churn_rounds {
        let chunk = n / 5;
        for k in live.drain(..chunk) {
            t.remove(&k);
        }
        for _ in 0..chunk {
            let k = gen.next_key();
            let _ = t.insert_new(k, k);
            live.push(k);
        }
    }
    let before = t.meter().snapshot();
    for j in 0..cfg.lookups as u64 {
        assert_eq!(t.get(&gen.absent_key(j)), None);
    }
    (t.meter().snapshot() - before).offchip_reads as f64 / cfg.lookups as f64
}

fn main() {
    let cfg = Config::from_env();
    let mut table = Table::new(
        "Ablation: absent-key reads per lookup after churn, by deletion mode",
        &["churn rounds", "Reset", "Tombstone"],
    );
    for rounds in [0usize, 1, 2, 5, 10] {
        table.row(vec![
            rounds.to_string(),
            f4(run(DeletionMode::Reset, &cfg, rounds)),
            f4(run(DeletionMode::Tombstone, &cfg, rounds)),
        ]);
    }
    table.print();
    write_csv("ablation_deletion", &table);
    println!(
        "note: Reset disables rule 1 outright; Tombstone keeps it but decays — \
         the gap should narrow as churn accumulates tombstones."
    );
}
