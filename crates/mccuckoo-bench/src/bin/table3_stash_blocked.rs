//! Table III — stash performance of 3-hash 3-slot McCuckoo at extreme
//! load (97.5%–100%, maxloop 200 and 500).
//!
//! The blocked variant only needs the stash in the very last percent of
//! load; visits by non-existing-item queries should remain ≈ 0%.

use mccuckoo_bench::harness::{fill_sweep, mean, measure_lookup_misses, Config};
use mccuckoo_bench::report::{pct4, write_csv, Table};
use mccuckoo_bench::{AnyTable, Scheme};

fn main() {
    let cfg = Config::from_env();
    let mut table = Table::new(
        "Table III: stash performance, 3-hash 3-slot McCuckoo",
        &[
            "load",
            "maxloop",
            "stash items",
            "% in all items",
            "% visits in lookups",
        ],
    );
    for load_tenths in [975u32, 980, 985, 990, 995, 1000] {
        for maxloop in [200u32, 500] {
            let mut stash_items = Vec::new();
            let mut stash_share = Vec::new();
            let mut visit_rate = Vec::new();
            for run in 0..cfg.runs {
                let mut t = AnyTable::build(Scheme::BMcCuckoo, cfg.cap, 150 + run, maxloop, false);
                let band = load_tenths as f64 / 1000.0;
                let seed = 160 + run;
                fill_sweep(&mut t, &[band], seed, |_, _| {});
                let total = (band * t.capacity() as f64).round();
                stash_items.push(t.stash_len() as f64);
                stash_share.push(t.stash_len() as f64 / total);
                let (_, delta) = measure_lookup_misses(&t, seed, cfg.lookups);
                visit_rate.push(delta.stash_visits as f64 / cfg.lookups as f64);
            }
            table.row(vec![
                format!("{:.1}%", load_tenths as f64 / 10.0),
                maxloop.to_string(),
                format!("{:.1}", mean(stash_items.iter().copied())),
                pct4(mean(stash_share.iter().copied())),
                pct4(mean(visit_rate.iter().copied())),
            ]);
        }
    }
    table.print();
    write_csv("table3_stash_blocked", &table);
}
