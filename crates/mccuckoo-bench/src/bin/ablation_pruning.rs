//! Ablation: lookup partition pruning on/off (single-slot McCuckoo).
//!
//! `get` applies lookup rules 2–3 (partition by counter value, probe at
//! most S−V+1); `get_unpruned` probes every non-empty candidate like a
//! single-copy table. Both keep rule 1 (the Bloom shortcut), isolating
//! the pruning contribution of Theorem 3.

use mccuckoo_bench::harness::Config;
use mccuckoo_bench::report::{f4, write_csv, Table};
use mccuckoo_core::{McConfig, McCuckoo};
use workloads::DocWordsLike;

fn main() {
    let cfg = Config::from_env();
    let bands = [0.2f64, 0.4, 0.6, 0.8, 0.9];
    let mut table = Table::new(
        "Ablation: reads per hit lookup, pruned vs unpruned",
        &["load", "pruned (rules 2-3)", "unpruned", "saving"],
    );
    let mut t: McCuckoo<u64, u64> = McCuckoo::new(McConfig::paper(cfg.cap / 3, 220));
    let mut gen = DocWordsLike::nytimes_like(230);
    let mut keys: Vec<u64> = Vec::new();
    let mut inserted = 0usize;
    for &band in &bands {
        let target = (band * cfg.cap as f64).round() as usize;
        while inserted < target {
            let k = gen.next_key();
            let _ = t.insert_new(k, k);
            keys.push(k);
            inserted += 1;
        }
        let sample: Vec<u64> = keys
            .iter()
            .step_by((keys.len() / cfg.lookups.min(keys.len())).max(1))
            .copied()
            .collect();
        let before = t.meter().snapshot();
        for k in &sample {
            assert!(t.get(k).is_some());
        }
        let pruned = (t.meter().snapshot() - before).offchip_reads as f64 / sample.len() as f64;
        let before = t.meter().snapshot();
        for k in &sample {
            assert!(t.get_unpruned(k).is_some());
        }
        let unpruned = (t.meter().snapshot() - before).offchip_reads as f64 / sample.len() as f64;
        table.row(vec![
            format!("{:.0}%", band * 100.0),
            f4(pruned),
            f4(unpruned),
            format!("{:.1}%", (1.0 - pruned / unpruned) * 100.0),
        ]);
    }
    table.print();
    write_csv("ablation_pruning", &table);
}
