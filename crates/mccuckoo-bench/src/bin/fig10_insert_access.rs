//! Fig. 10 — memory accesses per insertion vs load ratio:
//! (a) off-chip reads, (b) off-chip writes.
//!
//! Expected shape: multi-copy reads ≈ 0 at low load (the counters reveal
//! empty buckets without probing) and stay below single-copy at high
//! load; multi-copy writes start higher (redundant copies) and cross
//! below single-copy near half load as kick-out writes take over.

use mccuckoo_bench::harness::{fill_sweep, Config};
use mccuckoo_bench::report::{f4, write_csv, Table};
use mccuckoo_bench::{AnyTable, Scheme};

fn main() {
    let cfg = Config::from_env();
    let mut reads_tbl = Table::new(
        "Fig. 10a: off-chip reads per insertion",
        &["load", "Cuckoo", "McCuckoo", "BCHT", "B-McCuckoo"],
    );
    let mut writes_tbl = Table::new(
        "Fig. 10b: off-chip writes per insertion",
        &["load", "Cuckoo", "McCuckoo", "BCHT", "B-McCuckoo"],
    );
    let mut reads: Vec<Vec<(f64, f64)>> = Vec::new();
    let mut writes: Vec<Vec<(f64, f64)>> = Vec::new();
    for scheme in Scheme::ALL {
        let bands = cfg.bands(scheme);
        let mut rs = vec![0.0; bands.len()];
        let mut ws = vec![0.0; bands.len()];
        for run in 0..cfg.runs {
            let mut t = AnyTable::build(scheme, cfg.cap, 30 + run, cfg.maxloop, false);
            let stats = fill_sweep(&mut t, &bands, 40 + run, |_, _| {});
            for (i, s) in stats.iter().enumerate() {
                rs[i] += s.reads_per_insert;
                ws[i] += s.writes_per_insert;
            }
        }
        reads.push(
            bands
                .iter()
                .zip(rs)
                .map(|(&b, v)| (b, v / cfg.runs as f64))
                .collect(),
        );
        writes.push(
            bands
                .iter()
                .zip(ws)
                .map(|(&b, v)| (b, v / cfg.runs as f64))
                .collect(),
        );
    }
    let all_bands = cfg.bands(Scheme::BMcCuckoo);
    for (i, &band) in all_bands.iter().enumerate() {
        let cell = |s: &Vec<(f64, f64)>| {
            s.get(i)
                .map(|&(_, v)| f4(v))
                .unwrap_or_else(|| "-".to_string())
        };
        reads_tbl.row(vec![
            format!("{:.0}%", band * 100.0),
            cell(&reads[0]),
            cell(&reads[1]),
            cell(&reads[2]),
            cell(&reads[3]),
        ]);
        writes_tbl.row(vec![
            format!("{:.0}%", band * 100.0),
            cell(&writes[0]),
            cell(&writes[1]),
            cell(&writes[2]),
            cell(&writes[3]),
        ]);
    }
    reads_tbl.print();
    println!();
    writes_tbl.print();
    write_csv("fig10a_insert_reads", &reads_tbl);
    write_csv("fig10b_insert_writes", &writes_tbl);

    // Report the write crossover the paper describes ("at about half
    // load for single-slot schemes").
    for (pair, label) in [
        ((0usize, 1usize), "Cuckoo/McCuckoo"),
        ((2, 3), "BCHT/B-McCuckoo"),
    ] {
        let cross = writes[pair.0]
            .iter()
            .zip(&writes[pair.1])
            .find(|((_, single), (_, multi))| multi <= single)
            .map(|((b, _), _)| *b);
        match cross {
            Some(b) => println!("write crossover for {label}: ~{:.0}% load", b * 100.0),
            None => println!("write crossover for {label}: not reached in sweep"),
        }
    }
}
