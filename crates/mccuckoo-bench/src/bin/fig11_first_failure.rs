//! Fig. 11 — load ratio at the first insertion failure, as a function of
//! maxloop ∈ {50, 100, 200, 300, 400, 500}.
//!
//! Expected shape: all schemes reach higher failure-free load with a
//! larger budget; the multi-copy schemes reach any given load with a
//! smaller maxloop than their single-copy counterparts, and the blocked
//! schemes sit far above the single-slot ones.

use mccuckoo_bench::harness::{first_failure_load, mean, Config};
use mccuckoo_bench::report::{pct4, write_csv, Table};
use mccuckoo_bench::{AnyTable, Scheme};

fn main() {
    let cfg = Config::from_env();
    let maxloops = [50u32, 100, 200, 300, 400, 500];
    let mut table = Table::new(
        "Fig. 11: load ratio at first insertion failure vs maxloop",
        &["maxloop", "Cuckoo", "McCuckoo", "BCHT", "B-McCuckoo"],
    );
    for &ml in &maxloops {
        let mut cells = vec![ml.to_string()];
        for scheme in Scheme::ALL {
            let load = mean((0..cfg.runs).map(|r| {
                let mut t = AnyTable::build(scheme, cfg.cap, 50 + r, ml, false);
                first_failure_load(&mut t, 60 + r)
            }));
            cells.push(pct4(load));
        }
        table.row(cells);
    }
    table.print();
    write_csv("fig11_first_failure", &table);
}
