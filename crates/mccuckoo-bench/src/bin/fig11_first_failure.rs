//! Fig. 11 — load ratio at the first insertion failure, as a function of
//! maxloop ∈ {50, 100, 200, 300, 400, 500}.
//!
//! Expected shape: all schemes reach higher failure-free load with a
//! larger budget; the multi-copy schemes reach any given load with a
//! smaller maxloop than their single-copy counterparts, and the blocked
//! schemes sit far above the single-slot ones.
//!
//! A second sweep varies the kick policy (random-walk | bfs | bubble) on
//! the multi-copy schemes at the same budgets, emitting
//! `results/fig11_kick_policies.csv` in long form
//! (`maxloop,scheme,policy,load`). Expected shape: the plan-first
//! policies (BFS especially) push the first failure to a strictly higher
//! load than the random walk at equal budget, because they search the
//! eviction *tree* where the walk samples one path.

use mccuckoo_bench::harness::{first_failure_load, mean, Config};
use mccuckoo_bench::report::{f4, pct4, write_csv, Table};
use mccuckoo_bench::{AnyTable, Scheme};
use mccuckoo_core::KickPolicyKind;

fn main() {
    let cfg = Config::from_env();
    let maxloops = [50u32, 100, 200, 300, 400, 500];
    let mut table = Table::new(
        "Fig. 11: load ratio at first insertion failure vs maxloop",
        &["maxloop", "Cuckoo", "McCuckoo", "BCHT", "B-McCuckoo"],
    );
    for &ml in &maxloops {
        let mut cells = vec![ml.to_string()];
        for scheme in Scheme::ALL {
            let load = mean((0..cfg.runs).map(|r| {
                let mut t = AnyTable::build(scheme, cfg.cap, 50 + r, ml, false);
                first_failure_load(&mut t, 60 + r)
            }));
            cells.push(pct4(load));
        }
        table.row(cells);
    }
    table.print();
    write_csv("fig11_first_failure", &table);

    // Kick-policy sweep on the multi-copy schemes, long form so the
    // bench gate (and plotting scripts) can filter rows directly.
    let mut policies = Table::new(
        "Fig. 11 (kick policies): first-failure load per policy",
        &["maxloop", "scheme", "policy", "load"],
    );
    for &ml in &maxloops {
        for scheme in [Scheme::McCuckoo, Scheme::BMcCuckoo] {
            for kick in KickPolicyKind::ALL {
                let load = mean((0..cfg.runs).map(|r| {
                    let mut t =
                        AnyTable::build_with_policy(scheme, cfg.cap, 50 + r, ml, false, kick);
                    first_failure_load(&mut t, 60 + r)
                }));
                policies.row(vec![
                    ml.to_string(),
                    scheme.label().to_string(),
                    kick.label().to_string(),
                    f4(load),
                ]);
            }
        }
    }
    policies.print();
    write_csv("fig11_kick_policies", &policies);
}
