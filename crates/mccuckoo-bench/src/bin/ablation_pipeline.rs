//! Ablation: memory-level parallelism — what the paper's FPGA left on
//! the table.
//!
//! The paper's implementation was explicitly unpipelined ("Due to the
//! time limit, no parallelism or pipeline is implemented"), making read
//! latency dominate Figs. 15–16. This ablation re-costs the same access
//! traces with 1/2/4/8 outstanding off-chip reads to show how much of
//! McCuckoo's latency advantage survives once a real implementation
//! overlaps reads: the *access-count* advantage persists, the
//! latency-hiding advantage shrinks toward the bandwidth floor.

use mccuckoo_bench::harness::{fill_sweep, measure_lookup_misses, Config};
use mccuckoo_bench::report::{f2, write_csv, Table};
use mccuckoo_bench::{AnyTable, Scheme};
use mem_model::PlatformModel;

fn main() {
    let cfg = Config::from_env();
    let platform = PlatformModel::stratix_v();
    let band = 0.85f64;
    let record = 32u64;

    let mut table = Table::new(
        "Ablation: miss-lookup latency (ns) vs pipeline depth at 85% load, 32 B records",
        &["depth", "Cuckoo", "McCuckoo", "speedup"],
    );
    let mut traces = Vec::new();
    for scheme in Scheme::SINGLE_SLOT {
        let mut t = AnyTable::build(scheme, cfg.cap, 710, cfg.maxloop, false);
        fill_sweep(&mut t, &[band], 711, |_, _| {});
        let before = t.snapshot();
        let (_, _) = measure_lookup_misses(&t, 711, cfg.lookups);
        traces.push(t.snapshot() - before);
    }
    for depth in [1u64, 2, 4, 8] {
        let c = platform
            .cost_pipelined(traces[0], record, cfg.lookups as u64, depth)
            .ns_per_op();
        let m = platform
            .cost_pipelined(traces[1], record, cfg.lookups as u64, depth)
            .ns_per_op();
        table.row(vec![
            depth.to_string(),
            f2(c),
            f2(m),
            format!("{:.2}x", c / m),
        ]);
    }
    table.print();
    write_csv("ablation_pipeline", &table);
    println!(
        "the speedup column shows McCuckoo's advantage on absent-key lookups\n\
         narrowing as latency hiding deepens — fewer accesses still win, but\n\
         by the bandwidth ratio rather than the latency ratio."
    );
}
