//! Ablation: hash family construction (paper §II.B / ref \[21\]).
//!
//! The paper's software evaluation uses fully independent BOB-hash
//! functions; it cites double hashing (Mitzenmacher–Panagiotou–Walzer)
//! as a cheaper alternative and uses a modulo/bit-ops hash on the FPGA.
//! This ablation measures what the construction costs McCuckoo in
//! achievable load and in lookup screening power.

use hash_kit::FamilyKind;
use mccuckoo_bench::harness::{mean, Config};
use mccuckoo_bench::report::{f4, pct4, write_csv, Table};
use mccuckoo_core::{McConfig, McCuckoo};
use mem_model::InsertOutcome;
use workloads::DocWordsLike;

fn first_failure(kind: FamilyKind, cfg: &Config, seed: u64) -> f64 {
    let mut t: McCuckoo<u64, u64> =
        McCuckoo::new(McConfig::paper(cfg.cap / 3, seed).with_family(kind));
    let mut gen = DocWordsLike::nytimes_like(seed ^ 0xF00D);
    let cap = t.capacity();
    for i in 0..cap as u64 * 2 {
        let k = gen.next_key();
        let r = t
            .insert_new(k, k)
            .map(|r| r.outcome)
            .unwrap_or(InsertOutcome::Failed);
        if matches!(r, InsertOutcome::Stashed | InsertOutcome::Failed) {
            return i as f64 / cap as f64;
        }
    }
    1.0
}

fn miss_reads(kind: FamilyKind, cfg: &Config, seed: u64, band: f64) -> f64 {
    let mut t: McCuckoo<u64, u64> =
        McCuckoo::new(McConfig::paper(cfg.cap / 3, seed).with_family(kind));
    let mut gen = DocWordsLike::nytimes_like(seed ^ 0xBEEF);
    let target = (band * t.capacity() as f64) as usize;
    for _ in 0..target {
        let k = gen.next_key();
        let _ = t.insert_new(k, k);
    }
    let before = t.meter().snapshot();
    let samples = cfg.lookups as u64;
    for j in 0..samples {
        assert_eq!(t.get(&gen.absent_key(j)), None);
    }
    (t.meter().snapshot() - before).offchip_reads as f64 / samples as f64
}

fn main() {
    let cfg = Config::from_env();
    let kinds = [
        ("Independent", FamilyKind::Independent),
        ("DoubleHashing", FamilyKind::DoubleHashing),
        ("FpgaModulo", FamilyKind::FpgaModulo),
    ];
    let mut table = Table::new(
        "Ablation: hash family construction (McCuckoo, d=3)",
        &[
            "family",
            "first-failure load",
            "miss reads @50%",
            "miss reads @85%",
        ],
    );
    for (label, kind) in kinds {
        let fail = mean((0..cfg.runs).map(|r| first_failure(kind, &cfg, 600 + r)));
        let m50 = mean((0..cfg.runs.min(2)).map(|r| miss_reads(kind, &cfg, 610 + r, 0.5)));
        let m85 = mean((0..cfg.runs.min(2)).map(|r| miss_reads(kind, &cfg, 620 + r, 0.85)));
        table.row(vec![label.to_string(), pct4(fail), f4(m50), f4(m85)]);
    }
    table.print();
    write_csv("ablation_hash_family", &table);
    println!(
        "double hashing trades a little achievable load for two digests per\n\
         key instead of three; the FPGA-style hash shows what the paper's\n\
         hardware implementation gave up."
    );
}
