//! `lookup_batch` ≡ per-key `lookup`, proven over every implementor.
//!
//! The trait contract (see [`McTable::lookup_batch`]) promises the
//! batched read path is *semantically invisible*: same results in
//! order, same hit/miss tallies, same probe histogram and the same
//! metered access counts as issuing the keys one at a time. The batch
//! machinery (tag SWAR compares, probe plans, software prefetch,
//! batch-local tallying) may only change *when* work happens, never
//! *what* is counted.
//!
//! Covered implementors — all eight tables that implement [`McTable`]:
//!
//! | table                | batch path                     |
//! |----------------------|--------------------------------|
//! | `McCuckoo`           | engine override (plan/replay)  |
//! | `BlockedMcCuckoo`    | engine override (plan/replay)  |
//! | `ConcurrentMcCuckoo` | seqlock `get_batch` override   |
//! | `ShardedMcCuckoo`    | shard-grouped override         |
//! | `McMap`              | default per-key method         |
//! | `DaryCuckoo`         | default per-key method         |
//! | `Bcht`               | default per-key method         |
//! | `BloomGuidedCuckoo`  | default per-key method         |
//!
//! Each case runs the same query set twice against one table — once
//! through the per-key loop, once batched — and diffs the observable
//! counters around each pass. A final test pins the *default method*
//! itself on a foreign implementor that never touches the core crates'
//! overrides.

use cuckoo_baselines::{Bcht, BchtConfig, BloomGuidedCuckoo, CuckooConfig, DaryCuckoo};
use hash_kit::SplitMix64;
use mccuckoo_core::{
    BlockedConfig, BlockedMcCuckoo, ConcurrentMcCuckoo, McConfig, McCuckoo, McMap, McTable,
    ShardedMcCuckoo, TableStats,
};
use mem_model::MemStats;

/// Observable counters that must not distinguish the two read paths.
#[derive(Debug, PartialEq)]
struct ReadFootprint {
    hits: u64,
    misses: u64,
    probe_count: u64,
    probe_sum: u64,
    probe_buckets: Vec<u64>,
    offchip_reads: u64,
    onchip_reads: u64,
    stash_reads: u64,
    // Reads must not mutate anything either.
    offchip_writes: u64,
    onchip_writes: u64,
    stash_writes: u64,
}

fn footprint_delta(
    s0: &TableStats,
    m0: &MemStats,
    s1: &TableStats,
    m1: &MemStats,
) -> ReadFootprint {
    let buckets = s1
        .probe_hist
        .buckets
        .iter()
        .zip(s0.probe_hist.buckets.iter().chain(std::iter::repeat(&0)))
        .map(|(a, b)| a - b)
        .collect();
    ReadFootprint {
        hits: s1.ops.lookup_hits - s0.ops.lookup_hits,
        misses: s1.ops.lookup_misses - s0.ops.lookup_misses,
        probe_count: s1.probe_hist.count - s0.probe_hist.count,
        probe_sum: s1.probe_hist.sum - s0.probe_hist.sum,
        probe_buckets: buckets,
        offchip_reads: m1.offchip_reads - m0.offchip_reads,
        onchip_reads: m1.onchip_reads - m0.onchip_reads,
        stash_reads: m1.stash_reads - m0.stash_reads,
        offchip_writes: m1.offchip_writes - m0.offchip_writes,
        onchip_writes: m1.onchip_writes - m0.onchip_writes,
        stash_writes: m1.stash_writes - m0.stash_writes,
    }
}

/// Run `queries` through both read paths of one live table and assert
/// every observable is identical. `expect_batch_hist` marks the tables
/// whose overridden batch path must also record the batch length
/// (the default method has no observability hook to call).
fn assert_batch_equiv(
    label: &str,
    t: &dyn McTable<u64, u64>,
    queries: &[u64],
    expect_batch_hist: bool,
) {
    // Per-key pass.
    let (s0, m0) = (t.stats(), t.mem_stats());
    let per_key: Vec<Option<u64>> = queries.iter().map(|k| t.lookup(k)).collect();
    let (s1, m1) = (t.stats(), t.mem_stats());
    let single = footprint_delta(&s0, &m0, &s1, &m1);

    // Batched pass, same keys, same table state.
    let batched = t.lookup_batch(queries);
    let (s2, m2) = (t.stats(), t.mem_stats());
    let batch = footprint_delta(&s1, &m1, &s2, &m2);

    assert_eq!(batched, per_key, "{label}: batched results diverge");
    assert_eq!(batch, single, "{label}: read footprints diverge");
    let batch_hist_delta = s2.batch_hist.count - s1.batch_hist.count;
    if expect_batch_hist {
        assert!(
            batch_hist_delta >= 1,
            "{label}: overridden batch path must record batch_hist"
        );
        assert!(
            s2.batch_hist.sum - s1.batch_hist.sum >= queries.len() as u64,
            "{label}: batch_hist sum must cover the submitted keys"
        );
    }
}

/// Seeded fill + query-set builder: inserts `n` keys, returns a query
/// mix of present keys, absent keys and duplicates in shuffled order.
fn fill_and_queries(t: &mut dyn McTable<u64, u64>, seed: u64, n: usize) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    let mut present = Vec::with_capacity(n);
    while present.len() < n {
        // Even keys are insertable, odd keys stay absent forever.
        let k = (rng.next_u64() | 1) ^ 1;
        if t.insert_new(k, k ^ 0xABCD).stored() {
            present.push(k);
        }
    }
    let mut queries = Vec::with_capacity(2 * n);
    for i in 0..2 * n {
        let q = match i % 4 {
            0 | 1 => present[rng.next_below(present.len() as u64) as usize],
            2 => rng.next_u64() | 1, // absent: odd keys are never inserted
            _ => present[i % present.len()], // deterministic duplicate
        };
        queries.push(q);
    }
    queries
}

const FILL: usize = 700;

#[test]
fn engine_single_layout_batch_is_equivalent() {
    for (seed, deletion) in [(11u64, false), (12, true)] {
        let cfg = if deletion {
            McConfig::paper_with_deletion(1024, seed)
        } else {
            McConfig::paper(1024, seed)
        };
        let mut t = McCuckoo::<u64, u64>::new(cfg);
        let q = fill_and_queries(&mut t, seed ^ 0xF00, FILL);
        assert_batch_equiv("McCuckoo", &t, &q, true);
    }
}

#[test]
fn engine_blocked_layout_batch_is_equivalent() {
    // Both lookup modes: aggressive (counter-sum rule-1) and standard.
    for (seed, deletion, aggressive) in [(21u64, false, true), (22, true, false)] {
        let base = if deletion {
            McConfig::paper_with_deletion(512, seed)
        } else {
            McConfig::paper(512, seed)
        };
        let mut t = BlockedMcCuckoo::<u64, u64>::new(BlockedConfig {
            base,
            slots: 3,
            aggressive_lookup: aggressive,
        });
        let q = fill_and_queries(&mut t, seed ^ 0xF00, FILL);
        assert_batch_equiv("BlockedMcCuckoo", &t, &q, true);
    }
}

#[test]
fn concurrent_table_batch_is_equivalent() {
    let mut t = ConcurrentMcCuckoo::<u64, u64>::new(McConfig::paper(1024, 31));
    let q = fill_and_queries(&mut t, 0x31F0, FILL);
    assert_batch_equiv("ConcurrentMcCuckoo", &t, &q, true);
}

#[test]
fn sharded_table_batch_is_equivalent() {
    let mut t = ShardedMcCuckoo::<u64, u64>::new(4, McConfig::paper(256, 41));
    let q = fill_and_queries(&mut t, 0x41F0, FILL);
    assert_batch_equiv("ShardedMcCuckoo", &t, &q, true);
}

#[test]
fn default_method_implementors_batch_is_equivalent() {
    let mut map = McMap::<u64, u64>::new();
    let q = fill_and_queries(&mut map, 0x51F0, FILL);
    assert_batch_equiv("McMap", &map, &q, false);

    let mut dary = DaryCuckoo::<u64, u64>::new(CuckooConfig::paper(1024, 61));
    let q = fill_and_queries(&mut dary, 0x61F0, FILL);
    assert_batch_equiv("DaryCuckoo", &dary, &q, false);

    let mut bcht = Bcht::<u64, u64>::new(BchtConfig::paper(256, 71));
    let q = fill_and_queries(&mut bcht, 0x71F0, FILL);
    assert_batch_equiv("Bcht", &bcht, &q, false);

    let mut bloom = BloomGuidedCuckoo::<u64, u64>::new(CuckooConfig::paper(1024, 81), 8, 3);
    let q = fill_and_queries(&mut bloom, 0x81F0, FILL);
    assert_batch_equiv("BloomGuidedCuckoo", &bloom, &q, false);
}

/// Seeded property sweep: random loads, random query mixes, every
/// overriding implementor. Checks the equivalence isn't an artifact of
/// one lucky fill — rule-1 misses, stash hits and empty-table batches
/// all appear across the seeds.
#[test]
fn batch_equivalence_holds_across_seeded_workloads() {
    for seed in 0..8u64 {
        let n = 100 + (seed as usize) * 150; // 100..=1150 items
        let mut single = McCuckoo::<u64, u64>::new(McConfig::paper_with_deletion(1024, seed));
        let q = fill_and_queries(&mut single, seed.wrapping_mul(0x9E37), n.min(800));
        // Delete a slice of the fill so tombstoned counters are probed.
        for k in q.iter().take(n / 8).copied().collect::<Vec<_>>() {
            let _ = single.remove(&k);
        }
        assert_batch_equiv("McCuckoo(prop)", &single, &q, true);

        let mut sharded = ShardedMcCuckoo::<u64, u64>::new(2, McConfig::paper(512, seed + 9));
        let q = fill_and_queries(&mut sharded, seed.wrapping_mul(0x85EB), n.min(600));
        assert_batch_equiv("Sharded(prop)", &sharded, &q, true);
    }
}

#[test]
fn empty_and_tiny_batches_are_equivalent() {
    let mut t = McCuckoo::<u64, u64>::new(McConfig::paper(128, 5));
    assert!(t.lookup_batch(&[]).is_empty());
    let _ = t.insert_new(7, 70);
    assert_batch_equiv("McCuckoo(tiny)", &t, &[7], true);
    assert_batch_equiv("McCuckoo(tiny-miss)", &t, &[9], true);
}

/// A foreign implementor that only supplies the required methods: pins
/// the *default* `lookup_batch` body itself (not any core override) to
/// the per-key contract.
#[test]
fn default_method_on_a_foreign_implementor() {
    struct VecTable(Vec<(u64, u64)>);
    impl McTable<u64, u64> for VecTable {
        fn insert(&mut self, key: u64, value: u64) -> mem_model::InsertReport {
            self.0.push((key, value));
            mem_model::InsertReport::clean(1)
        }
        fn insert_new(&mut self, key: u64, value: u64) -> mem_model::InsertReport {
            self.insert(key, value)
        }
        fn lookup(&self, key: &u64) -> Option<u64> {
            self.0.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
        }
        fn remove(&mut self, key: &u64) -> Option<u64> {
            let i = self.0.iter().position(|(k, _)| k == key)?;
            Some(self.0.swap_remove(i).1)
        }
        fn clear(&mut self) {
            self.0.clear();
        }
        fn len(&self) -> usize {
            self.0.len()
        }
        fn capacity(&self) -> usize {
            64
        }
    }

    let mut t = VecTable(Vec::new());
    for k in 0..20u64 {
        t.insert(k, k * 3);
    }
    let queries: Vec<u64> = (0..40u64).collect();
    let per_key: Vec<Option<u64>> = queries.iter().map(|k| t.lookup(k)).collect();
    assert_eq!(t.lookup_batch(&queries), per_key);
}
