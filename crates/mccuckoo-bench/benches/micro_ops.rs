//! Criterion micro-benchmarks: raw wall-clock cost of the three core
//! operations per scheme at a moderate 50% load, plus `std::HashMap` as
//! an orientation point. These complement the paper's access-count
//! figures with host-CPU timings.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mccuckoo_bench::{AnyTable, Scheme};
use std::hint::black_box;
use workloads::UniqueKeys;

const CAP: usize = 90_000;
const LOAD: f64 = 0.5;

fn filled(scheme: Scheme, seed: u64, deletion: bool) -> (AnyTable, Vec<u64>) {
    let mut t = AnyTable::build(scheme, CAP, seed, 500, deletion);
    let mut keys = UniqueKeys::new(seed);
    let n = (CAP as f64 * LOAD) as usize;
    let ks = keys.take_vec(n);
    for &k in &ks {
        t.insert_new(k, k);
    }
    (t, ks)
}

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("insert_at_50pct");
    for scheme in Scheme::ALL {
        g.bench_function(scheme.label(), |b| {
            b.iter_batched(
                || {
                    let (t, _) = filled(scheme, 1, false);
                    let mut keys = UniqueKeys::new(99);
                    keys.take_vec((CAP as f64 * LOAD) as usize); // skip used range
                    (t, keys)
                },
                |(mut t, mut keys)| {
                    for _ in 0..1000 {
                        let k = keys.next_key();
                        black_box(t.insert_new(k, k));
                    }
                    t
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

fn bench_lookup_hit(c: &mut Criterion) {
    let mut g = c.benchmark_group("lookup_hit_at_50pct");
    for scheme in Scheme::ALL {
        let (t, ks) = filled(scheme, 2, false);
        g.bench_function(scheme.label(), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % ks.len();
                black_box(t.get(&ks[i]))
            });
        });
    }
    // Orientation point: std HashMap.
    let mut map = std::collections::HashMap::new();
    let ks = UniqueKeys::new(2).take_vec((CAP as f64 * LOAD) as usize);
    for &k in &ks {
        map.insert(k, k);
    }
    g.bench_function("std::HashMap", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % ks.len();
            black_box(map.get(&ks[i]))
        });
    });
    g.finish();
}

fn bench_lookup_miss(c: &mut Criterion) {
    let mut g = c.benchmark_group("lookup_miss_at_50pct");
    for scheme in Scheme::ALL {
        let (t, _) = filled(scheme, 3, false);
        let gen = UniqueKeys::new(3);
        g.bench_function(scheme.label(), |b| {
            let mut j = 0u64;
            b.iter(|| {
                j += 1;
                black_box(t.get(&gen.absent_key(j)))
            });
        });
    }
    g.finish();
}

fn bench_remove(c: &mut Criterion) {
    let mut g = c.benchmark_group("remove_at_50pct");
    g.sample_size(10);
    for scheme in Scheme::ALL {
        g.bench_function(scheme.label(), |b| {
            b.iter_batched(
                || filled(scheme, 4, true),
                |(mut t, ks)| {
                    for k in ks.iter().take(1000) {
                        black_box(t.remove(k));
                    }
                    t
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_insert,
    bench_lookup_hit,
    bench_lookup_miss,
    bench_remove
);
criterion_main!(benches);
