//! Criterion comparison across load levels: insertion throughput while
//! filling into a given band, and lookup throughput at high load — the
//! wall-clock companion to Figs. 9/12.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use mccuckoo_bench::{AnyTable, Scheme};
use std::hint::black_box;
use workloads::UniqueKeys;

const CAP: usize = 90_000;

fn bench_fill_band(c: &mut Criterion) {
    let mut g = c.benchmark_group("fill_segment_1k");
    g.sample_size(10);
    for scheme in Scheme::ALL {
        for band in [0.3f64, 0.6, 0.85] {
            if band > scheme.max_sweep_load() {
                continue;
            }
            g.bench_with_input(
                BenchmarkId::new(scheme.label(), format!("{}%", (band * 100.0) as u32)),
                &band,
                |b, &band| {
                    b.iter_batched(
                        || {
                            let mut t = AnyTable::build(scheme, CAP, 7, 500, false);
                            let mut keys = UniqueKeys::new(7);
                            let n = (CAP as f64 * band) as usize;
                            for &k in &keys.take_vec(n) {
                                t.insert_new(k, k);
                            }
                            (t, keys)
                        },
                        |(mut t, mut keys)| {
                            for _ in 0..1000 {
                                let k = keys.next_key();
                                black_box(t.insert_new(k, k));
                            }
                            t
                        },
                        BatchSize::LargeInput,
                    );
                },
            );
        }
    }
    g.finish();
}

fn bench_lookup_at_high_load(c: &mut Criterion) {
    let mut g = c.benchmark_group("lookup_hit_at_85pct");
    for scheme in Scheme::ALL {
        let band = 0.85f64.min(scheme.max_sweep_load());
        let mut t = AnyTable::build(scheme, CAP, 8, 500, false);
        let mut keys = UniqueKeys::new(8);
        let ks = keys.take_vec((CAP as f64 * band) as usize);
        for &k in &ks {
            t.insert_new(k, k);
        }
        g.bench_function(scheme.label(), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % ks.len();
                black_box(t.get(&ks[i]))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fill_band, bench_lookup_at_high_load);
criterion_main!(benches);
