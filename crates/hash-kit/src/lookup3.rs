//! Bob Jenkins' 2006 `lookup3` — `hashlittle`/`hashlittle2`, implemented
//! from the published public-domain reference (`lookup3.c`).
//!
//! `hashlittle2` produces 64 bits per pass and is the default digest
//! behind [`crate::KeyHash`] for byte-string keys.

#[inline]
fn rot(x: u32, k: u32) -> u32 {
    x.rotate_left(k)
}

#[inline]
fn mix(a: &mut u32, b: &mut u32, c: &mut u32) {
    *a = a.wrapping_sub(*c);
    *a ^= rot(*c, 4);
    *c = c.wrapping_add(*b);
    *b = b.wrapping_sub(*a);
    *b ^= rot(*a, 6);
    *a = a.wrapping_add(*c);
    *c = c.wrapping_sub(*b);
    *c ^= rot(*b, 8);
    *b = b.wrapping_add(*a);
    *a = a.wrapping_sub(*c);
    *a ^= rot(*c, 16);
    *c = c.wrapping_add(*b);
    *b = b.wrapping_sub(*a);
    *b ^= rot(*a, 19);
    *a = a.wrapping_add(*c);
    *c = c.wrapping_sub(*b);
    *c ^= rot(*b, 4);
    *b = b.wrapping_add(*a);
}

#[inline]
fn final_mix(a: &mut u32, b: &mut u32, c: &mut u32) {
    *c ^= *b;
    *c = c.wrapping_sub(rot(*b, 14));
    *a ^= *c;
    *a = a.wrapping_sub(rot(*c, 11));
    *b ^= *a;
    *b = b.wrapping_sub(rot(*a, 25));
    *c ^= *b;
    *c = c.wrapping_sub(rot(*b, 16));
    *a ^= *c;
    *a = a.wrapping_sub(rot(*c, 4));
    *b ^= *a;
    *b = b.wrapping_sub(rot(*a, 14));
    *c ^= *b;
    *c = c.wrapping_sub(rot(*b, 24));
}

/// Read up to 4 bytes little-endian; missing bytes are zero.
#[inline]
fn le_partial(bytes: &[u8]) -> u32 {
    let mut v = 0u32;
    for (i, &byte) in bytes.iter().take(4).enumerate() {
        v |= (byte as u32) << (8 * i);
    }
    v
}

/// `hashlittle2`: hash a byte key into two 32-bit values.
///
/// `(pc, pb)` are the two seed words; the returned pair is `(c, b)` — the
/// primary and secondary hash. `hashlittle(key, s) == hashlittle2(key, s, 0).0`.
pub fn hashlittle2(key: &[u8], pc: u32, pb: u32) -> (u32, u32) {
    let len = key.len();
    let init = 0xDEAD_BEEFu32.wrapping_add(len as u32).wrapping_add(pc);
    let mut a = init;
    let mut b = init;
    let mut c = init.wrapping_add(pb);

    let mut rest = key;
    while rest.len() > 12 {
        a = a.wrapping_add(u32::from_le_bytes(rest[0..4].try_into().unwrap()));
        b = b.wrapping_add(u32::from_le_bytes(rest[4..8].try_into().unwrap()));
        c = c.wrapping_add(u32::from_le_bytes(rest[8..12].try_into().unwrap()));
        mix(&mut a, &mut b, &mut c);
        rest = &rest[12..];
    }

    // Final block: 0..=12 bytes. The reference returns (c, b) without the
    // final mix only for a zero-length key.
    if rest.is_empty() {
        return (c, b);
    }
    a = a.wrapping_add(le_partial(rest));
    if rest.len() > 4 {
        b = b.wrapping_add(le_partial(&rest[4..]));
    }
    if rest.len() > 8 {
        c = c.wrapping_add(le_partial(&rest[8..]));
    }
    final_mix(&mut a, &mut b, &mut c);
    (c, b)
}

/// `hashlittle`: the primary 32-bit hash.
///
/// ```
/// // Reference vectors from the published lookup3.c:
/// assert_eq!(hash_kit::lookup3::hashlittle(b"", 0), 0xDEADBEEF);
/// assert_eq!(
///     hash_kit::lookup3::hashlittle(b"Four score and seven years ago", 0),
///     0x17770551,
/// );
/// ```
pub fn hashlittle(key: &[u8], initval: u32) -> u32 {
    hashlittle2(key, initval, 0).0
}

/// Hash a byte key to 64 bits in one pass (`(c as high, b as low)` of
/// `hashlittle2`, seeded from the 64-bit seed's two halves).
pub fn hash_bytes_u64(key: &[u8], seed: u64) -> u64 {
    let (c, b) = hashlittle2(key, seed as u32, (seed >> 32) as u32);
    ((c as u64) << 32) | b as u64
}

/// Hash a `u64` key (little-endian bytes) to 64 bits.
pub fn hash_u64(key: u64, seed: u64) -> u64 {
    hash_bytes_u64(&key.to_le_bytes(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors published in the lookup3.c source comments:
    /// hashlittle("", 0) = 0xdeadbeef, hashlittle("", 0xdeadbeef) =
    /// 0xbd5b7dde, and the "Four score and seven years ago" vectors.
    #[test]
    fn reference_vectors() {
        assert_eq!(hashlittle(b"", 0), 0xDEAD_BEEF);
        assert_eq!(hashlittle(b"", 0xDEAD_BEEF), 0xBD5B_7DDE);
        assert_eq!(
            hashlittle2(b"", 0xDEAD_BEEF, 0xDEAD_BEEF),
            (0x9C09_3CCD, 0xBD5B_7DDE)
        );
        assert_eq!(
            hashlittle(b"Four score and seven years ago", 0),
            0x1777_0551
        );
        assert_eq!(
            hashlittle(b"Four score and seven years ago", 1),
            0xCD62_8161
        );
    }

    #[test]
    fn incremental_lengths_all_distinct() {
        let data = [0x5Au8; 40];
        let mut seen = std::collections::HashSet::new();
        for len in 0..=40 {
            assert!(
                seen.insert(hashlittle(&data[..len], 0)),
                "collision at len {len}"
            );
        }
    }

    #[test]
    fn seed_sensitivity() {
        let k = b"mccuckoo";
        let mut seen = std::collections::HashSet::new();
        for seed in 0..64u64 {
            assert!(seen.insert(hash_bytes_u64(k, seed)));
        }
    }

    #[test]
    fn u64_key_path_matches_byte_path() {
        for k in [0u64, 1, 42, u64::MAX, 0x0123_4567_89AB_CDEF] {
            assert_eq!(hash_u64(k, 9), hash_bytes_u64(&k.to_le_bytes(), 9));
        }
    }

    #[test]
    fn distribution_over_buckets_is_roughly_uniform() {
        let n = 65_536u64;
        let mut counts = [0u32; 256];
        for i in 0..n {
            counts[(hash_u64(i, 0) & 0xFF) as usize] += 1;
        }
        let mean = (n / 256) as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - mean).abs() < mean * 0.3,
                "bucket {i} count {c} far from mean {mean}"
            );
        }
    }
}
