//! Simple tabulation hashing (Zobrist / Patrascu–Thorup).
//!
//! A 64-bit key is split into 8 bytes; each byte indexes a table of random
//! 64-bit words and the results are XORed. 3-independent and remarkably
//! well-behaved for cuckoo hashing in theory; included both as an
//! alternative family and to let the benchmarks ablate the hash function
//! choice.

use crate::splitmix::SplitMix64;

/// Tabulation hash over 64-bit keys: 8 tables × 256 entries of `u64`.
#[derive(Debug, Clone)]
pub struct Tabulation {
    tables: Box<[[u64; 256]; 8]>,
}

impl Tabulation {
    /// Fill the tables deterministically from `seed`.
    pub fn new(seed: u64) -> Self {
        let mut s = SplitMix64::new(seed);
        let mut tables = Box::new([[0u64; 256]; 8]);
        for table in tables.iter_mut() {
            for slot in table.iter_mut() {
                *slot = s.next_u64();
            }
        }
        Self { tables }
    }

    /// Hash a 64-bit key.
    #[inline]
    pub fn hash(&self, x: u64) -> u64 {
        let b = x.to_le_bytes();
        let mut h = 0u64;
        for (i, &byte) in b.iter().enumerate() {
            h ^= self.tables[i][byte as usize];
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = Tabulation::new(1);
        let b = Tabulation::new(1);
        let c = Tabulation::new(2);
        for x in [0u64, 7, u64::MAX, 1 << 40] {
            assert_eq!(a.hash(x), b.hash(x));
        }
        assert!((0..64u64).any(|x| a.hash(x) != c.hash(x)));
    }

    #[test]
    fn single_byte_change_changes_hash() {
        let t = Tabulation::new(3);
        let x = 0x0102_0304_0506_0708u64;
        for byte_pos in 0..8 {
            let y = x ^ (0xFFu64 << (8 * byte_pos));
            assert_ne!(t.hash(x), t.hash(y), "byte {byte_pos}");
        }
    }

    #[test]
    fn xor_structure_holds() {
        // Tabulation is linear over per-byte lookups: h(x) ^ h(y) depends
        // only on the bytes where x and y differ. Verify via the identity
        // h(x) ^ h(x ^ delta_byte) == T[i][a] ^ T[i][b].
        let t = Tabulation::new(9);
        let x = 0xAABB_CCDD_EEFF_0011u64;
        let i = 2usize;
        let a = x.to_le_bytes()[i];
        let new_byte = 0x5Au8;
        let mut yb = x.to_le_bytes();
        yb[i] = new_byte;
        let y = u64::from_le_bytes(yb);
        assert_eq!(
            t.hash(x) ^ t.hash(y),
            t.tables[i][a as usize] ^ t.tables[i][new_byte as usize]
        );
    }

    #[test]
    fn distribution_over_buckets_is_roughly_uniform() {
        let t = Tabulation::new(4);
        let mut counts = [0u32; 128];
        for x in 0..65_536u64 {
            counts[(t.hash(x) % 128) as usize] += 1;
        }
        let mean = 512.0;
        for &c in &counts {
            assert!((c as f64 - mean).abs() < mean * 0.3, "count {c}");
        }
    }
}
