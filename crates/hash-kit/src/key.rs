//! The [`KeyHash`] trait: how table keys are digested to 64 bits.
//!
//! Cuckoo tables need `d` *independent* hash functions of the same key.
//! Rather than forcing every key through `std::hash::Hash` (whose output
//! is not seedable in a portable way), keys implement `KeyHash`, which
//! takes an explicit 64-bit seed. Integer keys use the SplitMix64
//! finalizer over `key ⊕ f(seed)` (bijective per seed, extremely fast);
//! variable-length keys use Jenkins' lookup3 (the paper's "BOB hash"
//! lineage).

use crate::lookup3;
use crate::splitmix::mix64;

/// A key that can be hashed to 64 bits under a seed.
///
/// Implementations must be deterministic pure functions of `(self, seed)`.
/// Different seeds must yield (statistically) independent digests; all the
/// provided implementations achieve this by mixing the seed through
/// SplitMix64 or feeding it as the lookup3 init values.
pub trait KeyHash {
    /// 64-bit digest of `self` under `seed`.
    fn hash_seeded(&self, seed: u64) -> u64;
}

#[inline]
fn int_hash(x: u64, seed: u64) -> u64 {
    // mix64 is a bijection, so for a fixed seed distinct keys never collide
    // at this stage; independence across seeds comes from the outer mixing.
    mix64(x ^ mix64(seed ^ 0x517C_C1B7_2722_0A95))
}

impl KeyHash for u64 {
    #[inline]
    fn hash_seeded(&self, seed: u64) -> u64 {
        int_hash(*self, seed)
    }
}

impl KeyHash for u32 {
    #[inline]
    fn hash_seeded(&self, seed: u64) -> u64 {
        int_hash(*self as u64, seed)
    }
}

impl KeyHash for u16 {
    #[inline]
    fn hash_seeded(&self, seed: u64) -> u64 {
        int_hash(*self as u64, seed)
    }
}

impl KeyHash for i64 {
    #[inline]
    fn hash_seeded(&self, seed: u64) -> u64 {
        int_hash(*self as u64, seed)
    }
}

impl KeyHash for i32 {
    #[inline]
    fn hash_seeded(&self, seed: u64) -> u64 {
        int_hash(*self as u32 as u64, seed)
    }
}

impl KeyHash for usize {
    #[inline]
    fn hash_seeded(&self, seed: u64) -> u64 {
        int_hash(*self as u64, seed)
    }
}

/// The DocWords workload combines DocID and WordID into one key
/// (paper §IV.A.2); a `(u32, u32)` pair is the natural shape for it.
impl KeyHash for (u32, u32) {
    #[inline]
    fn hash_seeded(&self, seed: u64) -> u64 {
        int_hash(((self.0 as u64) << 32) | self.1 as u64, seed)
    }
}

impl KeyHash for (u64, u64) {
    #[inline]
    fn hash_seeded(&self, seed: u64) -> u64 {
        int_hash(self.0 ^ mix64(self.1), seed)
    }
}

impl KeyHash for [u8; 16] {
    #[inline]
    fn hash_seeded(&self, seed: u64) -> u64 {
        lookup3::hash_bytes_u64(self, seed)
    }
}

impl KeyHash for Vec<u8> {
    #[inline]
    fn hash_seeded(&self, seed: u64) -> u64 {
        lookup3::hash_bytes_u64(self, seed)
    }
}

impl KeyHash for String {
    #[inline]
    fn hash_seeded(&self, seed: u64) -> u64 {
        lookup3::hash_bytes_u64(self.as_bytes(), seed)
    }
}

impl KeyHash for &str {
    #[inline]
    fn hash_seeded(&self, seed: u64) -> u64 {
        lookup3::hash_bytes_u64(self.as_bytes(), seed)
    }
}

impl KeyHash for &[u8] {
    #[inline]
    fn hash_seeded(&self, seed: u64) -> u64 {
        lookup3::hash_bytes_u64(self, seed)
    }
}

impl<T: KeyHash + ?Sized> KeyHash for &T {
    #[inline]
    fn hash_seeded(&self, seed: u64) -> u64 {
        (**self).hash_seeded(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_keys_never_collide_under_fixed_seed() {
        // int_hash is bijective for a fixed seed.
        let mut seen = std::collections::HashSet::new();
        for k in 0u64..50_000 {
            assert!(seen.insert(k.hash_seeded(42)));
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let k = 123_456u64;
        let mut seen = std::collections::HashSet::new();
        for seed in 0..256u64 {
            assert!(seen.insert(k.hash_seeded(seed)));
        }
    }

    #[test]
    fn string_and_str_agree() {
        let s = String::from("flow-0425");
        assert_eq!(s.hash_seeded(7), "flow-0425".hash_seeded(7));
        let bytes: &[u8] = s.as_bytes();
        assert_eq!(s.hash_seeded(7), KeyHash::hash_seeded(&bytes, 7));
    }

    #[test]
    fn reference_forwarding_agrees() {
        let k = 99u64;
        let r: &u64 = &k;
        assert_eq!(KeyHash::hash_seeded(&r, 3), k.hash_seeded(3));
    }

    #[test]
    fn pair_key_matches_packed_u64() {
        let pair = (7u32, 9u32);
        let packed = ((7u64) << 32) | 9u64;
        assert_eq!(pair.hash_seeded(5), packed.hash_seeded(5));
    }
}
