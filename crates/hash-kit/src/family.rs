//! Bucket-index families: the `d` hash functions of a cuckoo table.
//!
//! A [`BucketFamily`] maps a key to one bucket index per sub-table,
//! `h_i : K → [0, n)`, i = 0..d. Three constructions are provided:
//!
//! * [`FamilyKind::Independent`] — `d` independently seeded digests
//!   (the paper's BOB-hash setup);
//! * [`FamilyKind::DoubleHashing`] — `h_i = h1 + i·h2 mod n`, the
//!   cheaper scheme of Mitzenmacher, Panagiotou & Walzer (paper ref \[21\]),
//!   which the paper cites as a way to alleviate hash computation;
//! * [`FamilyKind::FpgaModulo`] — the "much simpler hash that only
//!   involves modulo and bit operations" used for the paper's FPGA
//!   implementation (§IV.A.2): per-function bit rotation + odd-constant
//!   multiply, reduced mod n.
//!
//! Bucket reduction uses the multiply-high ("fastrange") method so that
//! non-power-of-two table lengths stay uniform.

use jsonlite::impl_json_enum;

use crate::key::KeyHash;
use crate::splitmix::{mix64, SplitMix64};

/// Which construction a [`BucketFamily`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FamilyKind {
    /// `d` independently seeded full digests (default; matches the paper's
    /// software evaluation).
    #[default]
    Independent,
    /// Two digests combined as `h1 + i·h2` (paper ref \[21\]).
    DoubleHashing,
    /// Rotate-multiply-modulo, mimicking the paper's FPGA hash.
    FpgaModulo,
}

impl_json_enum!(FamilyKind {
    Independent,
    DoubleHashing,
    FpgaModulo
});

/// `d` bucket-index functions over a table of `n` buckets per sub-table.
#[derive(Debug, Clone)]
pub struct BucketFamily {
    kind: FamilyKind,
    seeds: Vec<u64>,
    n: u64,
}

impl BucketFamily {
    /// Build a family of `d` functions onto `[0, n)`, deterministically
    /// derived from `master_seed`.
    ///
    /// # Panics
    /// Panics if `d == 0` or `n == 0`.
    pub fn new(kind: FamilyKind, d: usize, n: usize, master_seed: u64) -> Self {
        assert!(d > 0, "need at least one hash function");
        assert!(n > 0, "table length must be positive");
        let mut s = SplitMix64::new(master_seed ^ 0xC0FF_EE11_D00D_F00D);
        let seed_count = match kind {
            FamilyKind::Independent => d,
            FamilyKind::DoubleHashing => 2,
            FamilyKind::FpgaModulo => d,
        };
        let seeds = (0..seed_count).map(|_| s.next_u64()).collect();
        Self {
            kind,
            seeds,
            n: n as u64,
        }
    }

    /// Number of hash functions `d`.
    pub fn d(&self) -> usize {
        match self.kind {
            FamilyKind::DoubleHashing => usize::MAX, // any i is valid; callers bound it
            _ => self.seeds.len(),
        }
    }

    /// Sub-table length `n`.
    pub fn table_len(&self) -> usize {
        self.n as usize
    }

    /// The construction kind of this family.
    pub fn kind(&self) -> FamilyKind {
        self.kind
    }

    /// Reduce a 64-bit digest onto `[0, n)` (multiply-high).
    #[inline]
    fn reduce(&self, h: u64) -> usize {
        (((h as u128) * (self.n as u128)) >> 64) as usize
    }

    /// Bucket index of `key` under hash function `i`.
    #[inline]
    pub fn bucket<K: KeyHash + ?Sized>(&self, key: &K, i: usize) -> usize {
        match self.kind {
            FamilyKind::Independent => self.reduce(key.hash_seeded(self.seeds[i])),
            FamilyKind::DoubleHashing => {
                let h1 = key.hash_seeded(self.seeds[0]);
                // h2 must be made odd so i·h2 walks the whole ring.
                let h2 = key.hash_seeded(self.seeds[1]) | 1;
                self.reduce(h1.wrapping_add((i as u64).wrapping_mul(h2)))
            }
            FamilyKind::FpgaModulo => {
                let h = key.hash_seeded(self.seeds[i] & 0xFFFF); // narrow seed: "simple" hash
                let rotated = h.rotate_left((i as u32 * 13) % 61 + 1);
                let mixed = rotated.wrapping_mul(0x9E37_79B9_7F4A_7C15 | 1);
                (mixed % self.n) as usize
            }
        }
    }

    /// All `d` candidate buckets of `key`, in function order, written into
    /// `out` (avoids allocating in hot paths). `out.len()` determines how
    /// many functions are evaluated.
    #[inline]
    pub fn buckets_into<K: KeyHash + ?Sized>(&self, key: &K, out: &mut [usize]) {
        match self.kind {
            FamilyKind::DoubleHashing => {
                let h1 = key.hash_seeded(self.seeds[0]);
                let h2 = key.hash_seeded(self.seeds[1]) | 1;
                for (i, slot) in out.iter_mut().enumerate() {
                    *slot = self.reduce(h1.wrapping_add((i as u64).wrapping_mul(h2)));
                }
            }
            _ => {
                for (i, slot) in out.iter_mut().enumerate() {
                    *slot = self.bucket(key, i);
                }
            }
        }
    }

    /// Derive a fresh family with the same shape but a different seed
    /// (what a full rehash would use).
    pub fn reseeded(&self, new_master_seed: u64) -> Self {
        self.reseeded_with_len(new_master_seed, self.n as usize)
    }

    /// Reseed *and* change the sub-table length (what a resizing rehash
    /// uses). The construction kind and function count are preserved.
    pub fn reseeded_with_len(&self, new_master_seed: u64, new_len: usize) -> Self {
        let d = match self.kind {
            FamilyKind::DoubleHashing => 2,
            _ => self.seeds.len(),
        };
        Self::new(self.kind, d, new_len, mix64(new_master_seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_range(kind: FamilyKind) {
        let n = 1009; // prime, non-power-of-two
        let fam = BucketFamily::new(kind, 3, n, 7);
        let mut out = [0usize; 3];
        for k in 0u64..5_000 {
            fam.buckets_into(&k, &mut out);
            for &b in &out {
                assert!(b < n);
            }
        }
    }

    #[test]
    fn all_kinds_stay_in_range() {
        check_range(FamilyKind::Independent);
        check_range(FamilyKind::DoubleHashing);
        check_range(FamilyKind::FpgaModulo);
    }

    #[test]
    fn functions_are_distinct() {
        for kind in [
            FamilyKind::Independent,
            FamilyKind::DoubleHashing,
            FamilyKind::FpgaModulo,
        ] {
            let fam = BucketFamily::new(kind, 3, 4096, 11);
            let mut all_same = 0;
            for k in 0u64..1000 {
                let b0 = fam.bucket(&k, 0);
                let b1 = fam.bucket(&k, 1);
                let b2 = fam.bucket(&k, 2);
                if b0 == b1 && b1 == b2 {
                    all_same += 1;
                }
            }
            assert!(all_same < 5, "{kind:?}: {all_same} keys mapped identically");
        }
    }

    #[test]
    fn buckets_into_matches_bucket() {
        for kind in [
            FamilyKind::Independent,
            FamilyKind::DoubleHashing,
            FamilyKind::FpgaModulo,
        ] {
            let fam = BucketFamily::new(kind, 4, 777, 3);
            let mut out = [0usize; 4];
            for k in 0u64..200 {
                fam.buckets_into(&k, &mut out);
                for (i, &o) in out.iter().enumerate() {
                    assert_eq!(o, fam.bucket(&k, i), "{kind:?} fn {i}");
                }
            }
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let a = BucketFamily::new(FamilyKind::Independent, 3, 512, 99);
        let b = BucketFamily::new(FamilyKind::Independent, 3, 512, 99);
        for k in 0u64..100 {
            for i in 0..3 {
                assert_eq!(a.bucket(&k, i), b.bucket(&k, i));
            }
        }
    }

    #[test]
    fn reseeded_family_differs() {
        let a = BucketFamily::new(FamilyKind::Independent, 3, 512, 1);
        let b = a.reseeded(2);
        let diffs = (0u64..200)
            .filter(|k| (0..3).any(|i| a.bucket(k, i) != b.bucket(k, i)))
            .count();
        assert!(diffs > 150, "reseed changed only {diffs}/200 keys");
    }

    #[test]
    fn load_spread_is_uniform() {
        // Fill 3×1024 buckets with 30k keys; min/max occupancy per function
        // should be within a sane band of the mean (≈9.8).
        let n = 1024;
        let fam = BucketFamily::new(FamilyKind::Independent, 3, n, 5);
        for i in 0..3 {
            let mut counts = vec![0u32; n];
            for k in 0u64..10_000 {
                counts[fam.bucket(&k, i)] += 1;
            }
            let max = *counts.iter().max().unwrap();
            assert!(max < 30, "fn {i} max bucket occupancy {max}");
        }
    }

    #[test]
    #[should_panic(expected = "table length")]
    fn zero_length_table_panics() {
        let _ = BucketFamily::new(FamilyKind::Independent, 3, 0, 0);
    }

    #[test]
    fn string_keys_work() {
        let fam = BucketFamily::new(FamilyKind::Independent, 3, 256, 8);
        let b1 = fam.bucket(&"alpha", 0);
        let b2 = fam.bucket(&"alpha", 0);
        assert_eq!(b1, b2);
    }
}
