//! Universal multiply-shift hashing (Dietzfelbinger et al.).
//!
//! `h(x) = ((a * x + b) mod 2^128) >> 64` with odd `a` gives a fast,
//! provably universal hash for 64-bit keys. Used as the cheap integer-key
//! family in [`crate::family::BucketFamily`] and heavily exercised by the
//! benchmarks where hash cost must not dominate.

use crate::splitmix::SplitMix64;

/// One multiply-shift function: `x ↦ high64(a·x + b)` with odd `a`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiplyShift {
    a: u128,
    b: u128,
}

impl MultiplyShift {
    /// Draw a function from the family, deterministically from `seed`.
    pub fn from_seed(seed: u64) -> Self {
        let mut s = SplitMix64::new(seed);
        let a = ((s.next_u64() as u128) << 64 | s.next_u64() as u128) | 1; // odd
        let b = (s.next_u64() as u128) << 64 | s.next_u64() as u128;
        Self { a, b }
    }

    /// Hash a 64-bit key to 64 bits.
    #[inline]
    pub fn hash(&self, x: u64) -> u64 {
        (self.a.wrapping_mul(x as u128).wrapping_add(self.b) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let h1 = MultiplyShift::from_seed(5);
        let h2 = MultiplyShift::from_seed(5);
        let h3 = MultiplyShift::from_seed(6);
        for x in 0..100u64 {
            assert_eq!(h1.hash(x), h2.hash(x));
        }
        assert!((0..100u64).any(|x| h1.hash(x) != h3.hash(x)));
    }

    #[test]
    fn multiplier_is_odd() {
        for seed in 0..32u64 {
            assert_eq!(MultiplyShift::from_seed(seed).a & 1, 1);
        }
    }

    #[test]
    fn low_bit_keys_spread_over_high_bits() {
        // Sequential keys must not land in sequential buckets: top bits
        // should look uniform over a small bucket count.
        let h = MultiplyShift::from_seed(11);
        let mut counts = [0u32; 64];
        for x in 0..64_000u64 {
            counts[(h.hash(x) >> 58) as usize] += 1;
        }
        let mean = 1000.0;
        for &c in &counts {
            assert!((c as f64 - mean).abs() < mean * 0.35, "count {c}");
        }
    }

    #[test]
    fn pairwise_collision_rate_is_small() {
        // Empirical universality check: for random pairs the collision
        // probability on 16 output bits should be close to 2^-16.
        let mut s = SplitMix64::new(77);
        let h = MultiplyShift::from_seed(13);
        let mut collisions = 0u32;
        let trials = 200_000;
        for _ in 0..trials {
            let x = s.next_u64();
            let y = s.next_u64();
            if x != y && (h.hash(x) >> 48) == (h.hash(y) >> 48) {
                collisions += 1;
            }
        }
        // Expectation ≈ trials / 65536 ≈ 3. Allow generous slack.
        assert!(collisions < 30, "collisions {collisions}");
    }
}
