//! Bob Jenkins' 1996 `hash()` — the original "BOB hash" published at
//! `burtleburtle.net/bob/hash/evahash.html`, which is the function the
//! McCuckoo paper cites for its software evaluation.
//!
//! Implemented from the published algorithm (public domain): 96-bit
//! internal state, the 9-round subtract/xor/rotate `mix`, 12-byte blocks
//! consumed little-endian, length folded into `c` before the tail bytes.

/// The golden ratio constant used to initialise `a` and `b`.
const GOLDEN: u32 = 0x9E37_79B9;

#[inline]
fn mix(a: &mut u32, b: &mut u32, c: &mut u32) {
    *a = a.wrapping_sub(*b).wrapping_sub(*c) ^ (*c >> 13);
    *b = b.wrapping_sub(*c).wrapping_sub(*a) ^ (*a << 8);
    *c = c.wrapping_sub(*a).wrapping_sub(*b) ^ (*b >> 13);
    *a = a.wrapping_sub(*b).wrapping_sub(*c) ^ (*c >> 12);
    *b = b.wrapping_sub(*c).wrapping_sub(*a) ^ (*a << 16);
    *c = c.wrapping_sub(*a).wrapping_sub(*b) ^ (*b >> 5);
    *a = a.wrapping_sub(*b).wrapping_sub(*c) ^ (*c >> 3);
    *b = b.wrapping_sub(*c).wrapping_sub(*a) ^ (*a << 10);
    *c = c.wrapping_sub(*a).wrapping_sub(*b) ^ (*b >> 15);
}

/// Read up to 4 bytes little-endian, missing bytes are zero.
#[inline]
fn le_partial(bytes: &[u8]) -> u32 {
    let mut v = 0u32;
    for (i, &byte) in bytes.iter().take(4).enumerate() {
        v |= (byte as u32) << (8 * i);
    }
    v
}

/// Jenkins' 1996 `hash()`: hash `key` into a 32-bit value under `initval`.
pub fn hash(key: &[u8], initval: u32) -> u32 {
    let mut a = GOLDEN;
    let mut b = GOLDEN;
    let mut c = initval;
    let len = key.len();

    let mut chunks = key.chunks_exact(12);
    for block in &mut chunks {
        a = a.wrapping_add(u32::from_le_bytes(block[0..4].try_into().unwrap()));
        b = b.wrapping_add(u32::from_le_bytes(block[4..8].try_into().unwrap()));
        c = c.wrapping_add(u32::from_le_bytes(block[8..12].try_into().unwrap()));
        mix(&mut a, &mut b, &mut c);
    }

    let tail = chunks.remainder();
    // The length is folded into c; c's lowest byte is reserved for it, so
    // tail bytes 8..11 land in c shifted left by one byte.
    c = c.wrapping_add(len as u32);
    a = a.wrapping_add(le_partial(tail));
    if tail.len() > 4 {
        b = b.wrapping_add(le_partial(&tail[4..]));
    }
    if tail.len() > 8 {
        c = c.wrapping_add(le_partial(&tail[8..]) << 8);
    }
    mix(&mut a, &mut b, &mut c);
    c
}

/// Convenience: hash a `u64` key (little-endian bytes) to 64 bits by
/// running `hash()` twice with decorrelated init values.
pub fn hash_u64(key: u64, seed: u64) -> u64 {
    let bytes = key.to_le_bytes();
    let lo = hash(&bytes, seed as u32);
    let hi = hash(&bytes, (seed >> 32) as u32 ^ 0x5bd1_e995);
    ((hi as u64) << 32) | lo as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::splitmix::SplitMix64;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let k = b"multi-copy cuckoo";
        assert_eq!(hash(k, 7), hash(k, 7));
        assert_ne!(hash(k, 7), hash(k, 8));
    }

    #[test]
    fn length_is_significant() {
        // Trailing zero bytes must produce different hashes because the
        // length is folded into c.
        assert_ne!(hash(b"", 0), hash(&[0u8], 0));
        assert_ne!(hash(&[0u8], 0), hash(&[0u8, 0], 0));
    }

    #[test]
    fn all_tail_lengths_differ() {
        // Exercise every tail-length branch 0..=12 plus a multi-block key.
        let data = [0xABu8; 25];
        let mut seen = std::collections::HashSet::new();
        for len in 0..=25 {
            assert!(seen.insert(hash(&data[..len], 0)), "collision at len {len}");
        }
    }

    #[test]
    fn block_boundaries_consistent() {
        // Keys crossing the 12-byte block boundary hash consistently with
        // themselves and differ from perturbed copies.
        let mut rng = SplitMix64::new(3);
        for len in [11usize, 12, 13, 23, 24, 25, 36] {
            let mut key: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let h1 = hash(&key, 0);
            assert_eq!(h1, hash(&key, 0));
            key[len / 2] ^= 1;
            assert_ne!(h1, hash(&key, 0));
        }
    }

    #[test]
    fn distribution_over_buckets_is_roughly_uniform() {
        // Chi-square-ish sanity check: hash 64k sequential integers into
        // 256 buckets; every bucket should be within 30% of the mean.
        let n = 65_536u32;
        let mut counts = [0u32; 256];
        for i in 0..n {
            let h = hash(&i.to_le_bytes(), 0);
            counts[(h & 0xFF) as usize] += 1;
        }
        let mean = n / 256;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - mean as f64).abs() < mean as f64 * 0.3,
                "bucket {i} count {c} far from mean {mean}"
            );
        }
    }
}
