//! # hash-kit — hash functions for the McCuckoo reproduction
//!
//! The McCuckoo paper (ICDE 2019) uses "BOB Hash" — Bob Jenkins' public
//! domain hash functions — in its software evaluation, and a simple
//! modulo/bit-ops hash in its FPGA implementation. This crate implements
//! every hash primitive the reproduction needs from scratch:
//!
//! * [`lookup2`] — Jenkins' 1996 `hash()` ("evahash"/BOB hash),
//! * [`lookup3`] — Jenkins' 2006 `hashlittle`/`hashlittle2`,
//! * [`splitmix`] — SplitMix64 mixer/stream (used for seeding and as a
//!   fast integer finalizer),
//! * [`multiply_shift`] — classic universal multiply-shift hashing,
//! * [`tabulation`] — simple tabulation hashing (3-independent),
//! * [`family`] — [`family::BucketFamily`]: `d` independent
//!   bucket-index functions as required by a `d`-ary cuckoo table, plus a
//!   double-hashing variant (Mitzenmacher et al., SWAT 2018) and the
//!   FPGA-style modulo family.
//!
//! Keys are hashed through the [`KeyHash`] trait, which produces a 64-bit
//! digest under a caller-supplied seed. Implementations are provided for the
//! integer types, tuples used by the DocWords-like workload, strings and
//! byte slices.

pub mod family;
pub mod key;
pub mod lookup2;
pub mod lookup3;
pub mod multiply_shift;
pub mod splitmix;
pub mod tabulation;

pub use family::{BucketFamily, FamilyKind};
pub use key::KeyHash;
pub use splitmix::{mix64, SplitMix64};

#[cfg(test)]
mod avalanche_tests {
    use super::*;

    /// Count, over `samples` random inputs and all 64 input bit positions,
    /// the mean fraction of output bits flipped when one input bit flips.
    fn avalanche<F: Fn(u64) -> u64>(f: F, samples: u64) -> f64 {
        let mut rng = SplitMix64::new(0xA5A5_5A5A_DEAD_BEEF);
        let mut flipped = 0u64;
        let mut total = 0u64;
        for _ in 0..samples {
            let x = rng.next_u64();
            let hx = f(x);
            for bit in 0..64 {
                let hy = f(x ^ (1u64 << bit));
                flipped += (hx ^ hy).count_ones() as u64;
                total += 64;
            }
        }
        flipped as f64 / total as f64
    }

    #[test]
    fn splitmix_avalanche_is_near_half() {
        let frac = avalanche(mix64, 64);
        assert!(
            (frac - 0.5).abs() < 0.02,
            "avalanche fraction {frac} too far from 0.5"
        );
    }

    #[test]
    fn lookup3_avalanche_is_near_half() {
        let frac = avalanche(|x| lookup3::hash_u64(x, 0), 64);
        assert!(
            (frac - 0.5).abs() < 0.02,
            "avalanche fraction {frac} too far from 0.5"
        );
    }

    #[test]
    fn tabulation_avalanche_is_near_half() {
        let t = tabulation::Tabulation::new(42);
        let frac = avalanche(|x| t.hash(x), 64);
        assert!(
            (frac - 0.5).abs() < 0.02,
            "avalanche fraction {frac} too far from 0.5"
        );
    }
}
