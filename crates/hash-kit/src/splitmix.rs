//! SplitMix64 — Steele, Lea & Flood's `splitmix64` generator and its
//! finalizer, implemented from the published reference algorithm.
//!
//! Used throughout the workspace for deterministic seeding (every seed in
//! the reproduction derives from a master seed through a SplitMix stream)
//! and as a cheap, high-quality 64-bit integer mixer.

/// The golden-ratio increment used by SplitMix64.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 finalizer: a bijective mixing of a 64-bit word.
///
/// This is the output function of `splitmix64`; as a bijection it never
/// introduces collisions on 64-bit inputs, which makes it a convenient
/// building block for key scrambling in the workload generators.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Inverse of [`mix64`]. Exists so tests can prove bijectivity and so the
/// workload generators can invert scrambled keys when building adversarial
/// cases.
#[inline]
pub fn unmix64(mut z: u64) -> u64 {
    // Invert `z ^= z >> 31` (shift >= 32 would self-invert; 31 needs two steps).
    z = z ^ (z >> 31) ^ (z >> 62);
    // Invert multiplication by 0x94D049BB133111EB.
    z = z.wrapping_mul(0x319642B2_D24D8EC3);
    // Invert `z ^= z >> 27`.
    z = z ^ (z >> 27) ^ (z >> 54);
    // Invert multiplication by 0xBF58476D1CE4E5B9.
    z = z.wrapping_mul(0x96DE1B17_3F119089);
    // Invert `z ^= z >> 30`.
    z ^ (z >> 30) ^ (z >> 60)
}

/// A SplitMix64 pseudo-random stream.
///
/// Deterministic, tiny, and `Copy`-cheap; this is the seeding RNG for the
/// whole workspace (the `rand` crate is used only where distributions are
/// needed).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a stream whose first output is `mix64(seed + GOLDEN_GAMMA)`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }

    /// Next output reduced to `[0, n)` with the unbiased-enough
    /// multiply-high method (n is table-sized, so the modulo bias of a raw
    /// `%` would already be negligible; multiply-high is simply faster).
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    /// Fork an independent child stream (used to give each workload
    /// component its own stream from one master seed).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector: the first outputs of splitmix64 seeded with 0 are
    /// published with the xoshiro/xoroshiro test suites.
    #[test]
    fn reference_vector_seed_zero() {
        let mut s = SplitMix64::new(0);
        assert_eq!(s.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(s.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(s.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn mix64_is_bijective() {
        let mut s = SplitMix64::new(123);
        for _ in 0..10_000 {
            let x = s.next_u64();
            assert_eq!(unmix64(mix64(x)), x);
            assert_eq!(mix64(unmix64(x)), x);
        }
        // Edge values.
        for x in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 63] {
            assert_eq!(unmix64(mix64(x)), x);
        }
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut s = SplitMix64::new(7);
        let n = 97u64;
        let mut seen = vec![false; n as usize];
        for _ in 0..20_000 {
            let v = s.next_below(n);
            assert!(v < n);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "all residues should be hit");
    }

    #[test]
    fn forked_streams_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = a.fork();
        let mut c = a.fork();
        let xs: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
