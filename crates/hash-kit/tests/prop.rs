//! Property-based tests over the hash primitives.

use hash_kit::splitmix::{mix64, unmix64};
use hash_kit::{lookup2, lookup3, BucketFamily, FamilyKind, KeyHash};
use proptest::prelude::*;

proptest! {
    /// mix64/unmix64 are mutually inverse bijections on all of u64.
    #[test]
    fn mix64_bijection(x in any::<u64>()) {
        prop_assert_eq!(unmix64(mix64(x)), x);
        prop_assert_eq!(mix64(unmix64(x)), x);
    }

    /// lookup3 is a pure function of (bytes, seeds) — equal inputs give
    /// equal digests, and the two seed words are both significant.
    #[test]
    fn lookup3_determinism_and_seed_sensitivity(
        data in prop::collection::vec(any::<u8>(), 0..64),
        pc in any::<u32>(),
        pb in any::<u32>(),
    ) {
        prop_assert_eq!(
            lookup3::hashlittle2(&data, pc, pb),
            lookup3::hashlittle2(&data, pc, pb)
        );
        // Seed words matter (collisions possible but vanishingly rare;
        // use a fixed perturbation to keep the test deterministic).
        let other = lookup3::hashlittle2(&data, pc ^ 0xDEAD_BEEF, pb ^ 0x1234_5678);
        prop_assert_ne!(lookup3::hashlittle2(&data, pc, pb), other);
    }

    /// Appending a byte always changes the lookup3 digest (length is
    /// mixed in), and so does flipping any single byte.
    #[test]
    fn lookup3_input_sensitivity(
        mut data in prop::collection::vec(any::<u8>(), 1..48),
        pos in any::<prop::sample::Index>(),
    ) {
        let h = lookup3::hashlittle(&data, 7);
        let mut extended = data.clone();
        extended.push(0);
        prop_assert_ne!(h, lookup3::hashlittle(&extended, 7), "length must matter");
        let i = pos.index(data.len());
        data[i] ^= 0x01;
        prop_assert_ne!(h, lookup3::hashlittle(&data, 7), "content must matter");
    }

    /// lookup2 shares the same purity and sensitivity properties.
    #[test]
    fn lookup2_determinism(data in prop::collection::vec(any::<u8>(), 0..64), iv in any::<u32>()) {
        prop_assert_eq!(lookup2::hash(&data, iv), lookup2::hash(&data, iv));
    }

    /// Every family kind maps every key into range for arbitrary table
    /// lengths.
    #[test]
    fn families_stay_in_range(
        n in 1usize..100_000,
        seed in any::<u64>(),
        key in any::<u64>(),
    ) {
        for kind in [FamilyKind::Independent, FamilyKind::DoubleHashing, FamilyKind::FpgaModulo] {
            let fam = BucketFamily::new(kind, 3, n, seed);
            let mut out = [0usize; 3];
            fam.buckets_into(&key, &mut out);
            for (i, &b) in out.iter().enumerate() {
                prop_assert!(b < n, "{kind:?} fn {i}: {b} >= {n}");
                prop_assert_eq!(b, fam.bucket(&key, i));
            }
        }
    }

    /// KeyHash integer impls agree with their widened forms, so a table
    /// keyed by u32 behaves identically to one keyed by the same values
    /// as u64.
    #[test]
    fn keyhash_widening_agrees(k in any::<u32>(), seed in any::<u64>()) {
        prop_assert_eq!(k.hash_seeded(seed), (k as u64).hash_seeded(seed));
        prop_assert_eq!((k as u16 as u32).hash_seeded(seed), (k as u16 as u64).hash_seeded(seed));
    }

    /// String and byte-slice hashing agree (a table keyed by String can
    /// be probed with the equivalent bytes).
    #[test]
    fn string_bytes_agree(s in ".{0,40}", seed in any::<u64>()) {
        let as_bytes: &[u8] = s.as_bytes();
        prop_assert_eq!(s.hash_seeded(seed), KeyHash::hash_seeded(&as_bytes, seed));
    }

    /// Reseeding with the same seed is deterministic; with different
    /// seeds the family almost surely changes some mapping.
    #[test]
    fn reseeding_properties(seed in any::<u64>(), reseed in any::<u64>()) {
        let fam = BucketFamily::new(FamilyKind::Independent, 3, 4096, seed);
        let a = fam.reseeded(reseed);
        let b = fam.reseeded(reseed);
        for k in 0u64..16 {
            for i in 0..3 {
                prop_assert_eq!(a.bucket(&k, i), b.bucket(&k, i));
            }
        }
    }
}
