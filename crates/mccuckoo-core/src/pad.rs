//! Cacheline padding for hot shared state.
//!
//! Writers on different shards (and different lock stripes within a
//! shard) must not steal each other's cachelines: a counter that shares
//! a line with a neighbouring shard's counter turns independent writes
//! into coherence-protocol ping-pong. [`CachePadded`] aligns its
//! contents to 128 bytes — two 64-byte lines, because adjacent-line
//! prefetchers on x86 pull cachelines in pairs — so each padded value
//! owns its lines outright.

/// Pads and aligns a value to 128 bytes (an adjacent-line-prefetch
/// pair), so two `CachePadded` values never share a cacheline.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pad `value` out to its own cacheline pair.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Consume the padding, returning the value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_size() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert_eq!(std::mem::size_of::<CachePadded<u8>>(), 128);
        // A large value still gets its own line pair at both ends.
        assert_eq!(std::mem::size_of::<CachePadded<[u8; 130]>>(), 256);
    }

    #[test]
    fn deref_round_trip() {
        let mut p = CachePadded::new(41u64);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
        assert_eq!(*CachePadded::from(7u32), 7);
    }

    #[test]
    fn array_elements_never_share_lines() {
        let a = [CachePadded::new(0u8), CachePadded::new(1u8)];
        let p0 = &a[0] as *const _ as usize;
        let p1 = &a[1] as *const _ as usize;
        assert!(p1 - p0 >= 128);
    }
}
