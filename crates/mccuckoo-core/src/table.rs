//! One interface over every table variant.
//!
//! [`McTable`] is the object-safe trait implemented by
//! [`McCuckoo`](crate::McCuckoo), [`BlockedMcCuckoo`](crate::BlockedMcCuckoo),
//! [`ConcurrentMcCuckoo`](crate::ConcurrentMcCuckoo),
//! [`ShardedMcCuckoo`](crate::ShardedMcCuckoo) and the baseline tables
//! in `cuckoo-baselines`, so harnesses (the differential-fuzzing testkit),
//! benchmarks and examples drive every variant through a single surface
//! instead of per-table match arms.
//!
//! Design notes:
//!
//! * `insert`/`insert_new` return a plain [`InsertReport`]: a rejected
//!   insertion surfaces as [`InsertOutcome::Failed`] in the report rather
//!   than an `Err` carrying the evicted pair — callers that need the
//!   evicted item back use the inherent per-table APIs.
//! * `lookup` returns an owned `Option<V>` so that lock-free tables
//!   (whose reads cannot hand out references into seqlocked cells)
//!   implement the same signature as the sequential ones.
//! * Tables without a stash or an access meter inherit the defaulted
//!   `stash_len`/`refresh_stash`/`mem_stats` no-ops.
//! * The trait is object-safe: `Box<dyn McTable<u64, u64>>` is the shape
//!   the benchmark harness stores.

use mem_model::{InsertOutcome, InsertReport, MemStats};

use crate::engine::{BucketLayout, Engine};
use crate::obs::TableStats;

/// Uniform mutable-table interface over the multi-copy cuckoo variants
/// and the single-copy baselines.
pub trait McTable<K, V> {
    /// Insert or update (upsert). A rejected insertion reports
    /// [`InsertOutcome::Failed`]; the item is then not stored.
    fn insert(&mut self, key: K, value: V) -> InsertReport;

    /// Insert a key the caller guarantees is absent (skips the update
    /// scan). Same failure contract as [`McTable::insert`].
    fn insert_new(&mut self, key: K, value: V) -> InsertReport;

    /// Look up `key`, returning its value by clone/copy.
    fn lookup(&self, key: &K) -> Option<V>;

    /// Look up a whole batch of keys, returning one result per key in
    /// order. Semantically exactly `keys.iter().map(|k| lookup(k))` —
    /// same hits, same misses, same metered access counts — but
    /// implementors override it with an interleaved multi-key probe
    /// state machine (hash every key, pick target buckets from the
    /// on-chip counters, issue all software prefetches, then probe) that
    /// hides memory latency the way the paper's FPGA pipeline does.
    fn lookup_batch(&self, keys: &[K]) -> Vec<Option<V>> {
        keys.iter().map(|k| self.lookup(k)).collect()
    }

    /// Remove `key`, returning the stored value if it was present.
    fn remove(&mut self, key: &K) -> Option<V>;

    /// Remove every stored item, resetting the table to its freshly
    /// built state (same capacity, same hash functions).
    fn clear(&mut self);

    /// Distinct keys currently stored (main table and stash).
    fn len(&self) -> usize;

    /// Total slot count of the main table.
    fn capacity(&self) -> usize;

    /// Whether `key` is stored.
    fn contains(&self, key: &K) -> bool {
        self.lookup(key).is_some()
    }

    /// True if nothing is stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Load factor: `len / capacity`.
    fn load(&self) -> f64 {
        self.len() as f64 / self.capacity() as f64
    }

    /// Items currently in the stash (0 for stash-less tables).
    fn stash_len(&self) -> usize {
        0
    }

    /// Re-offer stashed items to the main table; returns how many moved
    /// back (0 for stash-less tables).
    fn refresh_stash(&mut self) -> usize {
        0
    }

    /// Snapshot of the table's memory-access counters (all-zero for
    /// unmetered tables).
    fn mem_stats(&self) -> MemStats {
        MemStats::default()
    }

    /// Snapshot of the table's observability counters (op counts,
    /// probe/kick/batch histograms, per-shard breakdown where
    /// applicable). Counters are monotonic for the table's lifetime —
    /// [`McTable::clear`] does not reset them.
    fn stats(&self) -> TableStats {
        TableStats::default()
    }
}

impl<K: hash_kit::KeyHash + Eq + Clone, V: Clone, L: BucketLayout> McTable<K, V>
    for Engine<K, V, L>
{
    fn insert(&mut self, key: K, value: V) -> InsertReport {
        Engine::insert(self, key, value).unwrap_or_else(|full| full.report)
    }

    fn insert_new(&mut self, key: K, value: V) -> InsertReport {
        Engine::insert_new(self, key, value).unwrap_or_else(|full| full.report)
    }

    fn lookup(&self, key: &K) -> Option<V> {
        self.get(key).cloned()
    }

    fn lookup_batch(&self, keys: &[K]) -> Vec<Option<V>> {
        Engine::lookup_batch(self, keys)
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        Engine::remove(self, key)
    }

    fn clear(&mut self) {
        Engine::clear(self);
    }

    fn len(&self) -> usize {
        Engine::len(self)
    }

    fn capacity(&self) -> usize {
        Engine::capacity(self)
    }

    fn contains(&self, key: &K) -> bool {
        Engine::contains(self, key)
    }

    fn load(&self) -> f64 {
        self.load_ratio()
    }

    fn stash_len(&self) -> usize {
        Engine::stash_len(self)
    }

    fn refresh_stash(&mut self) -> usize {
        Engine::refresh_stash(self)
    }

    fn mem_stats(&self) -> MemStats {
        self.meter().snapshot()
    }

    fn stats(&self) -> TableStats {
        Engine::stats(self)
    }
}

impl<K: hash_kit::KeyHash + Eq + Copy, V: Copy> McTable<K, V> for crate::ConcurrentMcCuckoo<K, V> {
    fn insert(&mut self, key: K, value: V) -> InsertReport {
        match crate::ConcurrentMcCuckoo::insert(self, key, value) {
            Ok(true) => InsertReport {
                outcome: InsertOutcome::Updated,
                kickouts: 0,
                collision: false,
                copies_written: 1,
            },
            Ok(false) => InsertReport::clean(1),
            Err(_) => InsertReport {
                outcome: InsertOutcome::Failed,
                kickouts: 0,
                collision: true,
                copies_written: 0,
            },
        }
    }

    fn insert_new(&mut self, key: K, value: V) -> InsertReport {
        match crate::ConcurrentMcCuckoo::insert_new(self, key, value) {
            Ok(()) => InsertReport::clean(1),
            Err(_) => InsertReport {
                outcome: InsertOutcome::Failed,
                kickouts: 0,
                collision: true,
                copies_written: 0,
            },
        }
    }

    fn lookup(&self, key: &K) -> Option<V> {
        self.get(key)
    }

    fn lookup_batch(&self, keys: &[K]) -> Vec<Option<V>> {
        self.get_batch(keys)
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        crate::ConcurrentMcCuckoo::remove(self, key)
    }

    fn clear(&mut self) {
        crate::ConcurrentMcCuckoo::clear(self);
    }

    fn len(&self) -> usize {
        crate::ConcurrentMcCuckoo::len(self)
    }

    fn capacity(&self) -> usize {
        crate::ConcurrentMcCuckoo::capacity(self)
    }

    fn contains(&self, key: &K) -> bool {
        crate::ConcurrentMcCuckoo::contains(self, key)
    }

    fn mem_stats(&self) -> MemStats {
        crate::ConcurrentMcCuckoo::mem_stats(self)
    }

    fn stats(&self) -> TableStats {
        crate::ConcurrentMcCuckoo::stats(self)
    }
}

impl<K: hash_kit::KeyHash + Eq + Copy, V: Copy> McTable<K, V> for crate::ShardedMcCuckoo<K, V> {
    fn insert(&mut self, key: K, value: V) -> InsertReport {
        match crate::ShardedMcCuckoo::insert(self, key, value) {
            Ok(true) => InsertReport {
                outcome: InsertOutcome::Updated,
                kickouts: 0,
                collision: false,
                copies_written: 1,
            },
            Ok(false) => InsertReport::clean(1),
            Err(_) => InsertReport {
                outcome: InsertOutcome::Failed,
                kickouts: 0,
                collision: true,
                copies_written: 0,
            },
        }
    }

    fn insert_new(&mut self, key: K, value: V) -> InsertReport {
        match crate::ShardedMcCuckoo::insert_new(self, key, value) {
            Ok(()) => InsertReport::clean(1),
            Err(_) => InsertReport {
                outcome: InsertOutcome::Failed,
                kickouts: 0,
                collision: true,
                copies_written: 0,
            },
        }
    }

    fn lookup(&self, key: &K) -> Option<V> {
        self.get(key)
    }

    fn lookup_batch(&self, keys: &[K]) -> Vec<Option<V>> {
        crate::ShardedMcCuckoo::lookup_batch(self, keys)
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        crate::ShardedMcCuckoo::remove(self, key)
    }

    fn clear(&mut self) {
        crate::ShardedMcCuckoo::clear(self);
    }

    fn len(&self) -> usize {
        crate::ShardedMcCuckoo::len(self)
    }

    fn capacity(&self) -> usize {
        crate::ShardedMcCuckoo::capacity(self)
    }

    fn contains(&self, key: &K) -> bool {
        crate::ShardedMcCuckoo::contains(self, key)
    }

    fn mem_stats(&self) -> MemStats {
        crate::ShardedMcCuckoo::mem_stats(self)
    }

    fn stats(&self) -> TableStats {
        crate::ShardedMcCuckoo::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocked::BlockedConfig;
    use crate::{BlockedMcCuckoo, ConcurrentMcCuckoo, McConfig, McCuckoo, ShardedMcCuckoo};

    /// The whole point of the trait: one generic driver for every table.
    fn exercise<T: McTable<u64, u64>>(t: &mut T) {
        assert!(t.is_empty());
        for k in 1..=50u64 {
            assert!(t.insert_new(k, k * 10).stored());
        }
        assert_eq!(t.len(), 50);
        assert_eq!(t.lookup(&7), Some(70));
        assert_eq!(t.lookup(&51), None);
        let r = t.insert(7, 71);
        assert_eq!(r.outcome, InsertOutcome::Updated);
        assert_eq!(t.lookup(&7), Some(71));
        assert_eq!(t.remove(&7), Some(71));
        assert!(!t.contains(&7));
        assert!(t.load() > 0.0);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.lookup(&8), None);
    }

    #[test]
    fn one_driver_fits_all_core_tables() {
        let mut single: McCuckoo<u64, u64> = McCuckoo::new(McConfig::paper_with_deletion(128, 1));
        exercise(&mut single);
        let mut blocked: BlockedMcCuckoo<u64, u64> = BlockedMcCuckoo::new(BlockedConfig {
            base: McConfig::paper_with_deletion(64, 2),
            slots: 2,
            aggressive_lookup: false,
        });
        exercise(&mut blocked);
    }

    #[test]
    fn trait_is_object_safe() {
        let mut boxed: Box<dyn McTable<u64, u64>> = Box::new(McCuckoo::<u64, u64>::new(
            McConfig::paper_with_deletion(128, 3),
        ));
        boxed.insert_new(5, 50);
        assert_eq!(boxed.lookup(&5), Some(50));
        assert_eq!(boxed.stash_len(), 0);
        assert!(boxed.mem_stats().offchip_writes > 0);
    }

    #[test]
    fn stats_expose_the_kick_policy_label() {
        use crate::KickPolicyKind;
        for kind in KickPolicyKind::ALL {
            let cfg = McConfig::paper(64, 6).with_kick_policy(kind);
            let single: Box<dyn McTable<u64, u64>> =
                Box::new(McCuckoo::<u64, u64>::new(cfg.clone()));
            assert_eq!(single.stats().kick_policy, kind.label());
            let conc: Box<dyn McTable<u64, u64>> =
                Box::new(ConcurrentMcCuckoo::<u64, u64>::new(cfg.clone()));
            assert_eq!(conc.stats().kick_policy, kind.label());
            let sharded: Box<dyn McTable<u64, u64>> =
                Box::new(ShardedMcCuckoo::<u64, u64>::new(2, cfg));
            assert_eq!(sharded.stats().kick_policy, kind.label());
        }
    }

    #[test]
    fn concurrent_table_conforms() {
        // The concurrent upsert distinguishes `Updated` from `Placed`
        // like every other implementor, so the shared driver applies.
        let mut t = ConcurrentMcCuckoo::<u64, u64>::new(McConfig::paper(128, 4));
        exercise(&mut t);
        let m = McTable::mem_stats(&t);
        assert!(m.offchip_writes > 0, "inserts must meter bucket writes");
        assert!(m.offchip_reads > 0, "lookups must meter bucket reads");
        assert!(m.onchip_reads > 0, "lookups must meter counter consults");
        assert!(m.onchip_writes > 0, "placements must meter counter writes");
    }

    #[test]
    fn sharded_table_conforms() {
        let mut t = ShardedMcCuckoo::<u64, u64>::new(4, McConfig::paper(64, 5));
        exercise(&mut t);
        let m = McTable::mem_stats(&t);
        assert!(m.offchip_writes > 0, "inserts must meter bucket writes");
        assert!(m.offchip_reads > 0, "lookups must meter bucket reads");
    }
}
