//! Pluggable kick-walk planning: the `KickPolicy` layer.
//!
//! A *real* collision (every candidate slot of the inserted key holds a
//! sole copy, `EvictionGraph::counter` 1 everywhere) is
//! resolved by displacing a chain of sole-copy items. This module owns
//! the *choice* of that chain; the tables own its *execution*:
//!
//! * [`crate::engine::Engine`] executes a plan with plain mutations
//!   (terminal settle → backward chain shift → front write), or runs
//!   the paper's original mutate-as-you-walk random walk when the
//!   configured policy is [`KickPolicyKind::RandomWalk`] — that walk's
//!   observable behaviour (RNG draw order, metering, MinCounter
//!   history, failure semantics) predates this layer and is preserved
//!   bit-for-bit, so it cannot be expressed as plan-then-execute;
//! * [`crate::ConcurrentMcCuckoo`] feeds every plan — random-walk
//!   included — through its policy-agnostic plan→lock→re-validate
//!   pipeline: the planned displacement path is exactly what the
//!   striped-lock planner needs to compute its stripe mask up front.
//!
//! A plan is a `Vec<usize>` of global slot indices: `path[0]` is a
//! candidate slot of the inserted key, each `path[i+1]` is a candidate
//! slot of the item occupying `path[i]`, every slot on the chain holds a
//! sole copy, and the *terminal* occupant is settleable by the ordinary
//! insertion principles (a counter-0 slot among its candidates, or —
//! when `empty_terminal_only` is false — a redundant copy with counter
//! ≥ 2 outside the bucket being vacated). Because planning only reads,
//! a failed plan is a strict no-op on the table.
//!
//! ## Budget semantics (`maxloop`)
//!
//! | policy        | `maxloop` counts            | chain shape            |
//! |---------------|-----------------------------|------------------------|
//! | `random-walk` | walk hops                   | one random simple path |
//! | `bfs`         | expanded (occupant-read) nodes | shortest chain found by breadth-first search |
//! | `bubble`      | visited (occupant-read) nodes | first chain found by backtracking depth-first eviction |
//!
//! BFS ("Efficient d-ary Cuckoo Hashing at High Load Factors by
//! Bubbling Up", arXiv 2501.02312, and the classic BFS insertion
//! literature) explores the eviction tree breadth-first, so the chain
//! it returns is a *shortest* one and insertions stay O(1) moves in
//! expectation even at very high load; bubbling explores the same tree
//! depth-first — a non-revisiting random walk that *backtracks* out of
//! dead subtrees instead of burning budget in them, so its reach per
//! visited node dominates the plain walk's.

use hash_kit::SplitMix64;

use crate::config::KickPolicyKind;
use crate::engine::MAX_D;

/// Read-only view of a table's eviction graph, implemented by both the
/// sequential engine and the concurrent table. All methods are reads;
/// implementors meter them (one off-chip read per
/// [`occupant`](EvictionGraph::occupant), on-chip reads via
/// [`meter_onchip`](EvictionGraph::meter_onchip) — raw
/// [`counter`](EvictionGraph::counter) peeks are unmetered so planners
/// control the modelled cost explicitly).
pub(crate) trait EvictionGraph {
    /// Stored key type.
    type Key: Clone;

    /// Number of hash functions (`d`).
    fn d(&self) -> usize;

    /// Slots per bucket (`l`; 1 for the concurrent table).
    fn l(&self) -> usize;

    /// Raw, unmetered peek at a slot's copy counter.
    fn counter(&self, slot: usize) -> u8;

    /// Global candidate-bucket indices of `key` (first `d` valid).
    fn cands(&self, key: &Self::Key) -> [usize; MAX_D];

    /// Global slot index of `(bucket, slot-in-bucket)`.
    fn slot_of(&self, bucket: usize, slot: usize) -> usize;

    /// The key occupying `slot`, metering one off-chip read. `None` when
    /// the slot raced empty under a concurrent remover — planners treat
    /// that as a failed plan and let the caller re-plan.
    fn occupant(&self, slot: usize) -> Option<Self::Key>;

    /// Meter `n` on-chip counter reads.
    fn meter_onchip(&self, n: u64);
}

/// Bucket that global slot index `slot` belongs to.
#[inline]
fn bucket_of<G: EvictionGraph>(g: &G, slot: usize) -> usize {
    slot / g.l()
}

/// Whether the item `key` occupying `from_slot` can settle by the
/// insertion principles: a counter-0 slot among its candidates, or —
/// unless `empty_terminal_only` — a redundant (counter ≥ 2) slot
/// outside the bucket it is vacating. Short-circuits like the counter
/// scans it models; the caller meters the scan.
#[inline]
fn settleable<G: EvictionGraph>(
    g: &G,
    cands: &[usize; MAX_D],
    from_slot: usize,
    empty_terminal_only: bool,
) -> bool {
    let from_bucket = bucket_of(g, from_slot);
    (0..g.d()).any(|i| {
        (0..g.l()).any(|s| {
            let c = g.counter(g.slot_of(cands[i], s));
            c == 0 || (!empty_terminal_only && c >= 2 && cands[i] != from_bucket)
        })
    })
}

/// Plan a displacement chain for `key` under `kind`. On success `path`
/// holds the chain's global slot indices and `true` is returned; on
/// failure `path`'s contents are unspecified and nothing in the table
/// was touched (planning only reads).
pub(crate) fn plan_kick<G: EvictionGraph>(
    g: &G,
    kind: KickPolicyKind,
    key: &G::Key,
    rng: &mut SplitMix64,
    empty_terminal_only: bool,
    maxloop: u32,
    path: &mut Vec<usize>,
) -> bool {
    match kind {
        KickPolicyKind::RandomWalk => {
            plan_random_walk(g, key, rng, empty_terminal_only, maxloop, path)
        }
        KickPolicyKind::Bfs => plan_bfs(g, key, empty_terminal_only, maxloop, path),
        KickPolicyKind::Bubble => plan_bubble(g, key, rng, empty_terminal_only, maxloop, path),
    }
}

/// Random-walk planner: one random simple path, never revisiting a
/// bucket already on the chain, up to `maxloop` hops.
///
/// For `l = 1` this reproduces the concurrent table's historical
/// `precompute_path` exactly — same RNG draw sequence (one
/// `next_below(m)` among the unvisited candidates per hop, no slot
/// draw), same metering (one off-chip occupant read and one on-chip
/// `d·l` counter scan per hop), same settleability test — so swapping
/// the striped-lock path onto this planner is behaviour-preserving.
pub(crate) fn plan_random_walk<G: EvictionGraph>(
    g: &G,
    key: &G::Key,
    rng: &mut SplitMix64,
    empty_terminal_only: bool,
    maxloop: u32,
    path: &mut Vec<usize>,
) -> bool {
    path.clear();
    let d = g.d();
    let l = g.l();
    let mut cur_key = key.clone();
    for _ in 0..maxloop {
        let cands = g.cands(&cur_key);
        let mut choices = [usize::MAX; MAX_D];
        let mut m = 0usize;
        for &b in cands.iter().take(d) {
            if !path.iter().any(|&s| bucket_of(g, s) == b) {
                choices[m] = b;
                m += 1;
            }
        }
        if m == 0 {
            return false;
        }
        let vb = choices[rng.next_below(m as u64) as usize];
        let vs = if l == 1 {
            0
        } else {
            rng.next_below(l as u64) as usize
        };
        let next = g.slot_of(vb, vs);
        path.push(next);
        let Some(occupant) = g.occupant(next) else {
            return false;
        };
        let ocands = g.cands(&occupant);
        g.meter_onchip((d * l) as u64);
        if settleable(g, &ocands, next, empty_terminal_only) {
            return true;
        }
        cur_key = occupant;
    }
    false
}

/// BFS planner: breadth-first search over the eviction tree, expanding
/// at most `maxloop` nodes, with a global visited-bucket set keeping
/// chains simple. Returns a *shortest* displacement chain, found before
/// anything moves — which is why a failed BFS insert needs no unwind
/// log, and why the striped-lock planner can lock the whole chain up
/// front.
pub(crate) fn plan_bfs<G: EvictionGraph>(
    g: &G,
    key: &G::Key,
    empty_terminal_only: bool,
    maxloop: u32,
    path: &mut Vec<usize>,
) -> bool {
    path.clear();
    let d = g.d();
    let l = g.l();
    // Arena of (slot, parent index into the arena; usize::MAX = root).
    let mut nodes: Vec<(usize, usize)> = Vec::new();
    let mut visited: Vec<usize> = Vec::with_capacity(d * 4);
    let cands = g.cands(key);
    for &b in cands.iter().take(d) {
        visited.push(b);
        for s in 0..l {
            let slot = g.slot_of(b, s);
            // Only sole copies are displaceable chain links; a raced
            // counter ≠ 1 root would fail re-validation anyway.
            if g.counter(slot) == 1 {
                nodes.push((slot, usize::MAX));
            }
        }
    }
    let mut head = 0usize;
    let mut expanded = 0u32;
    while head < nodes.len() && expanded < maxloop {
        let (slot, _) = nodes[head];
        expanded += 1;
        let Some(occupant) = g.occupant(slot) else {
            head += 1;
            continue;
        };
        let ocands = g.cands(&occupant);
        g.meter_onchip((d * l) as u64);
        if settleable(g, &ocands, slot, empty_terminal_only) {
            // Reconstruct root → goal through the parent pointers.
            let mut at = head;
            while at != usize::MAX {
                path.push(nodes[at].0);
                at = nodes[at].1;
            }
            path.reverse();
            return true;
        }
        for &b in ocands.iter().take(d) {
            if visited.contains(&b) {
                continue;
            }
            visited.push(b);
            for s in 0..l {
                let child = g.slot_of(b, s);
                if g.counter(child) == 1 {
                    nodes.push((child, head));
                }
            }
        }
        head += 1;
    }
    false
}

/// Bubbling planner (after arXiv 2501.02312): recursive eviction with
/// backtracking. Explores the eviction tree depth-first, visiting at
/// most `maxloop` nodes in total, with the candidate exploration order
/// rotated by the RNG so repeated insertions do not all hammer the same
/// subtree. Two deliberate choices make its reach dominate the random
/// walk's at equal budget: depth is bounded only by the visit budget
/// (near saturation the augmenting chains are *long*, and a
/// depth-capped search cannot reach them), and exclusion is
/// **chain-local** — a bucket is skipped only while it is on the
/// current chain, exactly the walk's rule, so a bucket abandoned in a
/// dead branch can still serve as a link elsewhere. The first branch
/// explored is therefore distributed like a random walk, and
/// backtracking out of dead ends is pure upside. Like BFS, the chain
/// is found before anything moves.
pub(crate) fn plan_bubble<G: EvictionGraph>(
    g: &G,
    key: &G::Key,
    rng: &mut SplitMix64,
    empty_terminal_only: bool,
    maxloop: u32,
    path: &mut Vec<usize>,
) -> bool {
    path.clear();
    let d = g.d();
    let l = g.l();
    let depth_limit = (maxloop as usize).max(2);
    let mut budget = maxloop;
    let cands = g.cands(key);
    let rot = rng.next_below(d as u64) as usize;
    for j in 0..d {
        let b = cands[(j + rot) % d];
        for s in 0..l {
            let slot = g.slot_of(b, s);
            if g.counter(slot) != 1 {
                continue;
            }
            path.push(slot);
            if bubble_dfs(
                g,
                slot,
                depth_limit - 1,
                empty_terminal_only,
                &mut budget,
                rng,
                path,
            ) {
                return true;
            }
            path.pop();
        }
    }
    false
}

/// One bubbling step: can the occupant of `slot` settle, and if not,
/// which of its candidates do we evict next? Returns `true` with the
/// chain completed in `path`.
fn bubble_dfs<G: EvictionGraph>(
    g: &G,
    slot: usize,
    depth_left: usize,
    empty_terminal_only: bool,
    budget: &mut u32,
    rng: &mut SplitMix64,
    path: &mut Vec<usize>,
) -> bool {
    if *budget == 0 {
        return false;
    }
    *budget -= 1;
    let d = g.d();
    let l = g.l();
    let Some(occupant) = g.occupant(slot) else {
        return false;
    };
    let ocands = g.cands(&occupant);
    g.meter_onchip((d * l) as u64);
    if settleable(g, &ocands, slot, empty_terminal_only) {
        return true;
    }
    if depth_left == 0 {
        return false;
    }
    let rot = rng.next_below(d as u64) as usize;
    for j in 0..d {
        let b = ocands[(j + rot) % d];
        if path.iter().any(|&p| bucket_of(g, p) == b) {
            continue;
        }
        for s in 0..l {
            let child = g.slot_of(b, s);
            if g.counter(child) != 1 {
                continue;
            }
            path.push(child);
            if bubble_dfs(
                g,
                child,
                depth_left - 1,
                empty_terminal_only,
                budget,
                rng,
                path,
            ) {
                return true;
            }
            path.pop();
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny in-memory eviction graph: `d` = 2, `l` configurable, keys
    /// are u64, candidate buckets are fixed per key by a lookup table.
    #[derive(Debug)]
    struct ToyGraph {
        d: usize,
        l: usize,
        counters: Vec<u8>,
        occupants: Vec<Option<u64>>,
        // key → candidate buckets
        cands: std::collections::HashMap<u64, [usize; MAX_D]>,
    }

    impl EvictionGraph for ToyGraph {
        type Key = u64;
        fn d(&self) -> usize {
            self.d
        }
        fn l(&self) -> usize {
            self.l
        }
        fn counter(&self, slot: usize) -> u8 {
            self.counters[slot]
        }
        fn cands(&self, key: &u64) -> [usize; MAX_D] {
            self.cands[key]
        }
        fn slot_of(&self, bucket: usize, slot: usize) -> usize {
            bucket * self.l + slot
        }
        fn occupant(&self, slot: usize) -> Option<u64> {
            self.occupants[slot]
        }
        fn meter_onchip(&self, _n: u64) {}
    }

    /// Buckets 0..4, l = 1. Key 100 hashes to {0, 1}, both full of sole
    /// copies; occupant of 0 (key 10) hashes to {0, 2}; occupant of 2
    /// (key 20) hashes to {2, 3}; bucket 3 is empty. The only chain is
    /// 0 → 2 (terminal occupant 20 settles into 3).
    fn chain_graph() -> ToyGraph {
        let mut cands = std::collections::HashMap::new();
        cands.insert(100u64, [0usize, 1, usize::MAX, usize::MAX]);
        cands.insert(10u64, [0usize, 2, usize::MAX, usize::MAX]);
        cands.insert(11u64, [1usize, 0, usize::MAX, usize::MAX]);
        cands.insert(20u64, [2usize, 3, usize::MAX, usize::MAX]);
        ToyGraph {
            d: 2,
            l: 1,
            counters: vec![1, 1, 1, 0],
            occupants: vec![Some(10), Some(11), Some(20), None],
            cands,
        }
    }

    #[test]
    fn bfs_finds_the_shortest_chain() {
        let g = chain_graph();
        let mut path = Vec::new();
        assert!(plan_bfs(&g, &100, true, 100, &mut path));
        // Shortest chain: evict 10 from slot 0; 10 settles… no — 10's
        // candidates are {0, 2}, both counter 1, so the chain must
        // continue to slot 2, whose occupant 20 settles into bucket 3.
        assert_eq!(path, vec![0, 2]);
    }

    #[test]
    fn bubble_finds_a_chain_within_depth() {
        let g = chain_graph();
        let mut rng = SplitMix64::new(7);
        let mut path = Vec::new();
        assert!(plan_bubble(&g, &100, &mut rng, true, 100, &mut path));
        assert_eq!(path, vec![0, 2], "only one viable chain exists");
    }

    #[test]
    fn random_walk_respects_the_hop_budget() {
        let g = chain_graph();
        let mut path = Vec::new();
        // One hop cannot complete the two-link chain: hop 1 lands on
        // bucket 0 or 1, neither of whose occupants can settle.
        let mut rng = SplitMix64::new(3);
        assert!(!plan_random_walk(&g, &100, &mut rng, true, 1, &mut path));
        // With budget, some seed finds a chain ending at slot 2 (whose
        // occupant is the only settleable item); depending on the first
        // draw the walk reaches it as [0, 2] or [1, 0, 2].
        let mut found = false;
        for seed in 0..16 {
            let mut rng = SplitMix64::new(seed);
            if plan_random_walk(&g, &100, &mut rng, true, 10, &mut path) {
                assert_eq!(path.last(), Some(&2));
                assert!(path == vec![0, 2] || path == vec![1, 0, 2]);
                found = true;
                break;
            }
        }
        assert!(found, "a short random walk must find the only chain");
    }

    #[test]
    fn failed_plans_report_false_without_panicking() {
        let mut g = chain_graph();
        g.counters[3] = 1; // close the only escape hatch
        g.occupants[3] = Some(21);
        g.cands.insert(21, [3usize, 2, usize::MAX, usize::MAX]);
        let mut path = Vec::new();
        let mut rng = SplitMix64::new(1);
        for kind in KickPolicyKind::ALL {
            assert!(
                !plan_kick(&g, kind, &100, &mut rng, true, 50, &mut path),
                "{kind:?} must fail on a saturated graph"
            );
        }
    }

    #[test]
    fn bfs_ignores_redundant_copies_when_empty_terminal_only() {
        let mut g = chain_graph();
        // Bucket 3 now holds a redundant copy (counter 2) instead of
        // being empty: with empty_terminal_only the chain is rejected,
        // without it the overwrite terminal is accepted.
        g.counters[3] = 2;
        g.occupants[3] = Some(21);
        g.cands.insert(21, [3usize, 1, usize::MAX, usize::MAX]);
        let mut path = Vec::new();
        assert!(!plan_bfs(&g, &100, true, 100, &mut path));
        assert!(plan_bfs(&g, &100, false, 100, &mut path));
        assert_eq!(path, vec![0, 2]);
    }
}
