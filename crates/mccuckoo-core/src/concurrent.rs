//! One-writer-many-readers concurrency (§III.H of the paper).
//!
//! The paper observes that McCuckoo composes naturally with MemC3-style
//! concurrency: the counters let the writer *precompute* a short cuckoo
//! path before touching the table, and the moves can then be executed
//! from the path's far end backwards so that **no item is ever absent**
//! — each item is written to its destination before its source is
//! overwritten. Multi-copy strengthens this further: overwriting a
//! redundant copy never makes its owner unavailable at all.
//!
//! Readers are lock-free. They probe **conservatively**: the only
//! counter-derived shortcut they use is skipping counter-zero buckets
//! (sound, because a counter only becomes non-zero *after* its content
//! is written). The single-slot partition pruning is deliberately not
//! used by concurrent readers — a reader racing a counter update could
//! otherwise prune away the bucket that still holds the key. This
//! engineering refinement is not spelled out in the paper; see
//! `DESIGN.md` §4.
//!
//! A probe that *misses* must additionally prove it did not race a
//! relocation: an item moving from a not-yet-checked candidate into an
//! already-checked one would otherwise be invisible to one unlucky pass
//! (the classic cuckoo reader race, MemC3 §3.2). Each bucket therefore
//! carries a version counter, bumped to odd before and even after every
//! content mutation; a miss is only reported once a full pass observes
//! identical, even versions before and after probing. Hits need no
//! validation — the matching `(key, value)` pair is loaded atomically.
//!
//! Implementation notes: buckets are `crossbeam` `AtomicCell`s (seqlock
//! semantics without unsafe code), counters are `AtomicU8`, versions are
//! `AtomicU64`, and writers serialize on a `parking_lot::Mutex`. Keys
//! and values must be `Copy` (pointer-sized payloads — use
//! [`crate::MultisetIndex`]-style indirection for fat values). The meter
//! is not threaded through this type; concurrency is evaluated by
//! throughput, not access counts.

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};

use crossbeam::atomic::AtomicCell;
use hash_kit::{BucketFamily, KeyHash, SplitMix64};
use mem_model::{InsertOutcome, InsertReport};
use parking_lot::Mutex;

use crate::config::McConfig;
use crate::obs::{Obs, TableStats};
use crate::single::MAX_D;

/// One table bucket: an atomically swappable `(key, value)` cell.
type Cell<K, V> = AtomicCell<Option<(K, V)>>;

/// Lock-free-read, single-writer multi-copy cuckoo table.
///
/// ```
/// use mccuckoo_core::{ConcurrentMcCuckoo, McConfig};
/// use std::sync::Arc;
///
/// let table = Arc::new(ConcurrentMcCuckoo::<u64, u64>::new(McConfig::paper(256, 1)));
/// table.insert(10, 100).unwrap();
/// let reader = {
///     let t = table.clone();
///     std::thread::spawn(move || t.get(&10))
/// };
/// assert_eq!(reader.join().unwrap(), Some(100));
/// assert_eq!(table.remove(&10), Some(100));
/// ```
pub struct ConcurrentMcCuckoo<K, V> {
    family: BucketFamily,
    d: usize,
    n: usize,
    maxloop: u32,
    cells: Box<[Cell<K, V>]>,
    counters: Box<[AtomicU8]>,
    /// Per-bucket seqlock versions: odd while a mutation is in flight.
    versions: Box<[AtomicU64]>,
    distinct: AtomicUsize,
    writer: Mutex<WriterState>,
    /// The configuration the table was built with (seed included),
    /// retained for snapshots.
    config: McConfig,
    /// Lock-free observability counters (monotonic; survive `clear`).
    obs: Obs,
}

struct WriterState {
    rng: SplitMix64,
}

impl<K, V> ConcurrentMcCuckoo<K, V>
where
    K: KeyHash + Eq + Copy,
    V: Copy,
{
    /// Build from a [`McConfig`] (stash and deletion-mode fields are
    /// ignored: the concurrent table always deletes by counter reset and
    /// reports failures to the caller instead of stashing).
    pub fn new(config: McConfig) -> Self {
        config.validate();
        let family = BucketFamily::new(
            config.family,
            config.d,
            config.buckets_per_table,
            config.seed,
        );
        let total = config.d * config.buckets_per_table;
        let cells: Box<[Cell<K, V>]> = (0..total).map(|_| AtomicCell::new(None)).collect();
        let counters: Box<[AtomicU8]> = (0..total).map(|_| AtomicU8::new(0)).collect();
        let versions: Box<[AtomicU64]> = (0..total).map(|_| AtomicU64::new(0)).collect();
        Self {
            family,
            d: config.d,
            n: config.buckets_per_table,
            maxloop: config.maxloop,
            cells,
            counters,
            versions,
            distinct: AtomicUsize::new(0),
            writer: Mutex::new(WriterState {
                rng: SplitMix64::new(config.seed ^ 0xC04C_44E4_7AB1_E000),
            }),
            config,
            obs: Obs::default(),
        }
    }

    /// The configuration the table was built with (seed included).
    pub fn config(&self) -> &McConfig {
        &self.config
    }

    /// Snapshot of the observability counters (op counts and probe/kick
    /// histograms). Monotonic over the table's lifetime; safe to call
    /// concurrently with readers and the writer.
    pub fn stats(&self) -> TableStats {
        self.obs.snapshot()
    }

    /// Distinct keys currently stored.
    pub fn len(&self) -> usize {
        self.distinct.load(Ordering::Acquire)
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bucket count.
    pub fn capacity(&self) -> usize {
        self.cells.len()
    }

    #[inline]
    fn candidates(&self, key: &K) -> [usize; MAX_D] {
        let mut raw = [0usize; MAX_D];
        self.family.buckets_into(key, &mut raw[..self.d]);
        let mut out = [usize::MAX; MAX_D];
        for i in 0..self.d {
            out[i] = i * self.n + raw[i];
        }
        out
    }

    /// Writer-side bucket mutation, bracketed by version bumps (odd
    /// while in flight). `counter` optionally updates the copy counter
    /// inside the same bracket.
    fn write_bucket(&self, idx: usize, content: Option<(K, V)>, counter: Option<u8>) {
        self.versions[idx].fetch_add(1, Ordering::AcqRel);
        self.cells[idx].store(content);
        if let Some(c) = counter {
            self.counters[idx].store(c, Ordering::Release);
        }
        self.versions[idx].fetch_add(1, Ordering::Release);
    }

    // ------------------------------------------------------------------
    // Readers
    // ------------------------------------------------------------------

    /// Lock-free lookup. Linearizes with concurrent writes: a key
    /// committed before the call starts is always found — a miss is only
    /// reported after a probe pass bracketed by stable, even bucket
    /// versions (see module docs).
    pub fn get(&self, key: &K) -> Option<V> {
        let cands = self.candidates(key);
        loop {
            let mut pre = [0u64; MAX_D];
            let mut stable = true;
            for i in 0..self.d {
                pre[i] = self.versions[cands[i]].load(Ordering::Acquire);
                stable &= pre[i] % 2 == 0;
            }
            if !stable {
                std::hint::spin_loop();
                continue;
            }
            let mut probes = 0u64;
            for &c in cands.iter().take(self.d) {
                // Counter becomes non-zero only after content is written,
                // so skipping zero is the one safe counter shortcut.
                if self.counters[c].load(Ordering::Acquire) == 0 {
                    continue;
                }
                probes += 1;
                if let Some((k, v)) = self.cells[c].load() {
                    if k == *key {
                        self.obs.record_lookup(true, probes);
                        return Some(v);
                    }
                }
            }
            // Validate the miss: no bucket changed underneath the pass.
            let unchanged =
                (0..self.d).all(|i| self.versions[cands[i]].load(Ordering::Acquire) == pre[i]);
            if unchanged {
                self.obs.record_lookup(false, probes);
                return None;
            }
            std::hint::spin_loop();
        }
    }

    /// Whether `key` is stored.
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    // ------------------------------------------------------------------
    // Writer
    // ------------------------------------------------------------------

    /// Insert or update. Returns `Ok(true)` when an existing key was
    /// updated in place and `Ok(false)` when the key was freshly placed.
    /// Returns `Err((key, value))` when the relocation budget is
    /// exhausted — in which case, unlike the sequential random-walk,
    /// **nothing was mutated** (the path is precomputed).
    pub fn insert(&self, key: K, value: V) -> Result<bool, (K, V)> {
        let mut writer = self.writer.lock();
        let out = self.insert_locked(key, value, &mut writer);
        self.check_paranoid_locked();
        out
    }

    /// Upsert a whole batch under **one** writer-lock acquisition.
    ///
    /// Results are positional: `out[i]` is what [`Self::insert`] would
    /// have returned for `items[i]`. Failed items are skipped (the table
    /// is left exactly as if their individual inserts had been rejected),
    /// so one overflow does not poison the rest of the batch. Readers
    /// remain lock-free throughout — they observe the batch item by item.
    pub fn insert_batch(&self, items: &[(K, V)]) -> Vec<Result<bool, (K, V)>> {
        self.obs.record_batch(items.len());
        let mut writer = self.writer.lock();
        let out = items
            .iter()
            .map(|&(k, v)| self.insert_locked(k, v, &mut writer))
            .collect();
        self.check_paranoid_locked();
        out
    }

    /// Insert a key known to be absent, skipping the in-place update
    /// scan. Same failure contract as [`Self::insert`]: on `Err` nothing
    /// was mutated. Inserting a key that is already present corrupts the
    /// copy bookkeeping (`debug_assert`ed).
    pub fn insert_new(&self, key: K, value: V) -> Result<(), (K, V)> {
        let mut writer = self.writer.lock();
        debug_assert!(!self.raw_contains(&key), "insert_new of a present key");
        let out = self.insert_fresh_locked(key, value, &mut writer);
        self.record_fresh(&out);
        self.check_paranoid_locked();
        out.map(|_| ())
    }

    /// [`Self::insert_new`] without observability recording — snapshot
    /// restores go through this so re-placing persisted items does not
    /// count as user inserts.
    pub(crate) fn insert_new_unrecorded(&self, key: K, value: V) -> Result<(), (K, V)> {
        let mut writer = self.writer.lock();
        debug_assert!(!self.raw_contains(&key), "insert_new of a present key");
        let out = self.insert_fresh_locked(key, value, &mut writer);
        self.check_paranoid_locked();
        out.map(|_| ())
    }

    /// Unrecorded presence scan (debug assertions and restores only).
    /// Caller must hold the writer lock.
    fn raw_contains(&self, key: &K) -> bool {
        let cands = self.candidates(key);
        cands.iter().take(self.d).any(|&c| {
            self.counters[c].load(Ordering::Acquire) != 0
                && matches!(self.cells[c].load(), Some((k, _)) if k == *key)
        })
    }

    /// Record the outcome of one fresh-key insertion attempt.
    fn record_fresh(&self, out: &Result<InsertReport, (K, V)>) {
        match out {
            Ok(report) => self.obs.record_insert(report),
            Err(_) => self.obs.record_insert(&InsertReport {
                outcome: InsertOutcome::Failed,
                kickouts: 0, // nothing was mutated (precomputed path)
                collision: true,
                copies_written: 0,
            }),
        }
    }

    fn insert_locked(&self, key: K, value: V, writer: &mut WriterState) -> Result<bool, (K, V)> {
        // Update in place if present (writer is exclusive, so a plain
        // scan is race-free against other writers).
        let cands = self.candidates(&key);
        let mut existing = [false; MAX_D];
        let mut exists = false;
        for i in 0..self.d {
            if let Some((k, _)) = self.cells[cands[i]].load() {
                if k == key && self.counters[cands[i]].load(Ordering::Acquire) > 0 {
                    existing[i] = true;
                    exists = true;
                }
            }
        }
        if exists {
            let mut copies = 0u8;
            for i in 0..self.d {
                if existing[i] {
                    self.write_bucket(cands[i], Some((key, value)), None);
                    copies += 1;
                }
            }
            self.obs.record_insert(&InsertReport {
                outcome: InsertOutcome::Updated,
                kickouts: 0,
                collision: false,
                copies_written: copies,
            });
            return Ok(true);
        }
        let out = self.insert_fresh_locked(key, value, writer);
        self.record_fresh(&out);
        out.map(|_| false)
    }

    /// The fresh-key insertion path (placement, then precomputed
    /// backward-executed relocation). Caller holds the writer lock and
    /// has established that `key` is absent. Returns the insertion
    /// report; recording is the caller's business (so restores can stay
    /// unrecorded).
    fn insert_fresh_locked(
        &self,
        key: K,
        value: V,
        writer: &mut WriterState,
    ) -> Result<InsertReport, (K, V)> {
        if let Some(copies) = self.try_place_locked(&key, &value) {
            self.distinct.fetch_add(1, Ordering::AcqRel);
            return Ok(InsertReport::clean(copies));
        }
        // Real collision: precompute a random-walk path, then execute it
        // backwards (MemC3 ordering) so readers never lose an item.
        let Some(path) = self.precompute_path(&key, &mut writer.rng) else {
            return Err((key, value));
        };
        // Settle the path's terminal occupant first (it has a free or
        // redundant bucket), then shift the chain backwards.
        let last = *path.last().expect("path is non-empty");
        let (terminal_key, terminal_value) =
            self.cells[last].load().expect("path buckets are occupied");
        let placed = self
            .try_place_locked(&terminal_key, &terminal_value)
            .is_some();
        debug_assert!(placed, "terminal item was chosen for its free bucket");
        for w in path.windows(2).rev() {
            let (src, dst) = (w[0], w[1]);
            let item = self.cells[src].load().expect("path buckets are occupied");
            self.write_bucket(dst, Some(item), Some(1));
        }
        self.write_bucket(path[0], Some((key, value)), Some(1));
        self.distinct.fetch_add(1, Ordering::AcqRel);
        Ok(InsertReport {
            outcome: InsertOutcome::Placed,
            kickouts: path.len() as u32,
            collision: true,
            copies_written: 1,
        })
    }

    /// Remove `key` (counter-reset deletion). Returns its value.
    pub fn remove(&self, key: &K) -> Option<V> {
        let _writer = self.writer.lock();
        let out = self.remove_locked(key);
        self.check_paranoid_locked();
        out
    }

    /// Remove a whole batch of keys under **one** writer-lock
    /// acquisition. Results are positional: `out[i]` is what
    /// [`Self::remove`] would have returned for `keys[i]` (duplicates in
    /// the batch see the earlier removal — only the first wins).
    pub fn remove_batch(&self, keys: &[K]) -> Vec<Option<V>> {
        self.obs.record_batch(keys.len());
        let _writer = self.writer.lock();
        let out = keys.iter().map(|k| self.remove_locked(k)).collect();
        self.check_paranoid_locked();
        out
    }

    /// Look up a batch of keys. Reads are lock-free, so this is a plain
    /// loop over [`Self::get`] — it exists so batched callers (the
    /// sharded front end) have a positional batch API for all three op
    /// kinds.
    pub fn get_batch(&self, keys: &[K]) -> Vec<Option<V>> {
        self.obs.record_batch(keys.len());
        keys.iter().map(|k| self.get(k)).collect()
    }

    /// The deletion body. Caller holds the writer lock.
    fn remove_locked(&self, key: &K) -> Option<V> {
        let cands = self.candidates(key);
        let mut value = None;
        let mut locations = [usize::MAX; MAX_D];
        let mut count = 0usize;
        for &c in cands.iter().take(self.d) {
            if self.counters[c].load(Ordering::Acquire) == 0 {
                continue;
            }
            if let Some((k, v)) = self.cells[c].load() {
                if k == *key {
                    value = Some(v);
                    locations[count] = c;
                    count += 1;
                }
            }
        }
        if count > 0 {
            for &l in &locations[..count] {
                self.write_bucket(l, None, Some(0));
            }
            self.distinct.fetch_sub(1, Ordering::AcqRel);
        }
        self.obs.record_remove(value.is_some());
        value
    }

    /// Remove every item and zero every counter. Writer-exclusive;
    /// concurrent readers see each bucket cleared atomically (per-bucket
    /// seqlock brackets), so a racing lookup returns either the old value
    /// or a miss — never torn state.
    pub fn clear(&self) {
        let _writer = self.writer.lock();
        for idx in 0..self.cells.len() {
            self.write_bucket(idx, None, Some(0));
        }
        self.distinct.store(0, Ordering::Release);
        self.check_paranoid_locked();
    }

    /// Every stored `(key, value)` pair, each key emitted exactly once
    /// (at its smallest copy location). Acquires the writer lock, so the
    /// scan observes a quiescent table. Used by snapshots.
    pub fn items(&self) -> Vec<(K, V)> {
        let _writer = self.writer.lock();
        let mut out = Vec::with_capacity(self.len());
        for i in 0..self.cells.len() {
            if self.counters[i].load(Ordering::Acquire) == 0 {
                continue;
            }
            let Some((k, v)) = self.cells[i].load() else {
                continue;
            };
            // Emit at the smallest candidate bucket holding a copy.
            let cands = self.candidates(&k);
            let mut first = usize::MAX;
            for &b in cands.iter().take(self.d) {
                if self.counters[b].load(Ordering::Acquire) == 0 {
                    continue;
                }
                if let Some((bk, _)) = self.cells[b].load() {
                    if bk == k {
                        first = first.min(b);
                    }
                }
            }
            if first == i {
                out.push((k, v));
            }
        }
        out
    }

    /// Exhaustive structural validation (see [`crate::invariant`]).
    ///
    /// Acquires the writer lock, so it observes a quiescent table with
    /// respect to mutations; concurrent readers are unaffected.
    pub fn check_invariants(&self) -> Result<(), String> {
        let _writer = self.writer.lock();
        self.validate_locked()
    }

    #[cfg(feature = "paranoid")]
    fn check_paranoid_locked(&self) {
        self.validate_locked()
            .expect("paranoid: invariant violated after mutation");
    }

    #[cfg(not(feature = "paranoid"))]
    #[inline(always)]
    fn check_paranoid_locked(&self) {}

    /// The validator body. Caller must hold the writer lock (or otherwise
    /// guarantee no writer is active).
    fn validate_locked(&self) -> Result<(), String> {
        let total = self.cells.len();
        // 1. All seqlock versions even (no mutation in flight).
        for (i, v) in self.versions.iter().enumerate() {
            let v = v.load(Ordering::Acquire);
            if v % 2 != 0 {
                return Err(format!("bucket {i}: odd version {v} while quiescent"));
            }
        }
        // 2. Counter/content agreement per bucket, and each occupant
        // sits in one of its own candidate buckets.
        let mut occupied: Vec<(usize, K)> = Vec::new();
        for i in 0..total {
            let c = self.counters[i].load(Ordering::Acquire);
            match self.cells[i].load() {
                None if c != 0 => {
                    return Err(format!("bucket {i}: counter {c} but vacant"));
                }
                Some((k, _)) if c == 0 => {
                    let _ = k; // stale content behind counter 0 is a leak
                    return Err(format!("bucket {i}: counter 0 but occupied"));
                }
                Some((k, _)) => {
                    let cands = self.candidates(&k);
                    if !cands.iter().take(self.d).any(|&b| b == i) {
                        return Err(format!("bucket {i}: occupant not a candidate"));
                    }
                    occupied.push((i, k));
                }
                None => {}
            }
        }
        // 3. All copies of a key share counter == copy count; distinct
        // count matches the scan. Copies only live among a key's own
        // candidates, so each occupied bucket is checked against its
        // occupant's d candidate buckets — linear in the table size.
        let mut distinct_seen = 0usize;
        for &(i, ref k) in &occupied {
            let cands = self.candidates(k);
            let mut copies = 0u8;
            let mut first = usize::MAX;
            for &b in cands.iter().take(self.d) {
                if self.counters[b].load(Ordering::Acquire) == 0 {
                    continue;
                }
                if let Some((bk, _)) = self.cells[b].load() {
                    if bk == *k {
                        copies += 1;
                        first = first.min(b);
                    }
                }
            }
            if first == i {
                distinct_seen += 1;
            }
            let c = self.counters[i].load(Ordering::Acquire);
            if c != copies {
                return Err(format!(
                    "bucket {i}: counter {c} but occupant has {copies} copies"
                ));
            }
        }
        let distinct = self.distinct.load(Ordering::Acquire);
        if distinct != distinct_seen {
            return Err(format!(
                "distinct count {distinct} but scan found {distinct_seen}"
            ));
        }
        Ok(())
    }

    /// Place copies by the insertion principles; returns the number of
    /// copies written, or `None` on a real collision. Caller holds the
    /// writer lock. Ordering: contents before counters, sibling
    /// decrements before the overwrite's own counter.
    fn try_place_locked(&self, key: &K, value: &V) -> Option<u8> {
        let cands = self.candidates(key);
        let mut cvals = [0u8; MAX_D];
        for i in 0..self.d {
            cvals[i] = self.counters[cands[i]].load(Ordering::Acquire);
        }
        let mut taken = [false; MAX_D];
        let mut placed = [usize::MAX; MAX_D];
        let mut placed_len = 0usize;
        for i in 0..self.d {
            if cvals[i] == 0 {
                self.write_bucket(cands[i], Some((*key, *value)), None);
                taken[i] = true;
                placed[placed_len] = cands[i];
                placed_len += 1;
            }
        }
        loop {
            let mut best: Option<usize> = None;
            for i in 0..self.d {
                // MSRV 1.75: spelled without `Option::is_none_or`.
                if !taken[i] && cvals[i] >= 2 && best.map(|b| cvals[i] > cvals[b]).unwrap_or(true) {
                    best = Some(i);
                }
            }
            let Some(i) = best else { break };
            if placed_len as u8 + 2 > cvals[i] {
                break;
            }
            self.overwrite_locked(cands[i], cvals[i], key, value, &cands, &mut cvals);
            taken[i] = true;
            placed[placed_len] = cands[i];
            placed_len += 1;
        }
        if placed_len == 0 {
            return None;
        }
        for &p in placed.iter().take(placed_len) {
            self.counters[p].store(placed_len as u8, Ordering::Release);
        }
        Some(placed_len as u8)
    }

    /// Overwrite the redundant copy at `idx` (count `vcount`), fixing the
    /// victim's siblings.
    fn overwrite_locked(
        &self,
        idx: usize,
        vcount: u8,
        key: &K,
        value: &V,
        cands: &[usize; MAX_D],
        cvals: &mut [u8; MAX_D],
    ) {
        let (vkey, _) = self.cells[idx].load().expect("counter ≥ 1 ⇒ occupied");
        let vcands = self.candidates(&vkey);
        // New content first: the victim stays reachable via its siblings
        // during the whole update.
        self.write_bucket(idx, Some((*key, *value)), None);
        for &s in vcands.iter().take(self.d) {
            if s == idx {
                continue;
            }
            if self.counters[s].load(Ordering::Acquire) != vcount {
                continue;
            }
            // Verify content: another item may share the counter value.
            if let Some((k, _)) = self.cells[s].load() {
                if k == vkey {
                    self.counters[s].store(vcount - 1, Ordering::Release);
                    for i in 0..self.d {
                        if cands[i] == s {
                            cvals[i] = vcount - 1;
                        }
                    }
                }
            }
        }
    }

    /// Precompute a random-walk relocation path: a chain of occupied
    /// buckets whose last occupant can settle elsewhere. Read-only. The
    /// path is kept *simple* (no bucket repeats) so the backward
    /// execution never clobbers an unmoved item; a walk with no unvisited
    /// candidate is abandoned as a failure.
    fn precompute_path(&self, key: &K, rng: &mut SplitMix64) -> Option<Vec<usize>> {
        let mut path: Vec<usize> = Vec::new();
        let mut cur_key = *key;
        for _ in 0..self.maxloop {
            let cands = self.candidates(&cur_key);
            let choices: Vec<usize> = (0..self.d)
                .map(|i| cands[i])
                .filter(|b| !path.contains(b))
                .collect();
            if choices.is_empty() {
                return None; // walk trapped in its own footprint
            }
            let next = choices[rng.next_below(choices.len() as u64) as usize];
            path.push(next);
            let (occupant, _) = self.cells[next].load()?; // counter-1 bucket: occupied
                                                          // Can the occupant settle? (any empty or ≥2 candidate)
            let ocands = self.candidates(&occupant);
            let placeable = (0..self.d).any(|i| {
                let c = self.counters[ocands[i]].load(Ordering::Acquire);
                c == 0 || (c >= 2 && ocands[i] != next)
            });
            if placeable {
                return Some(path);
            }
            cur_key = occupant;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use workloads::UniqueKeys;

    fn table(n: usize, seed: u64) -> ConcurrentMcCuckoo<u64, u64> {
        ConcurrentMcCuckoo::new(McConfig::paper(n, seed))
    }

    /// Under `paranoid` every mutation runs the exhaustive validator, so
    /// the volume tests scale down by this factor to stay fast.
    #[cfg(feature = "paranoid")]
    const SCALE: usize = 10;
    #[cfg(not(feature = "paranoid"))]
    const SCALE: usize = 1;

    #[test]
    fn sequential_roundtrip() {
        let t = table(1_024 / SCALE, 1);
        let mut keys = UniqueKeys::new(2);
        let ks = keys.take_vec(2_000 / SCALE);
        for &k in &ks {
            t.insert(k, k.wrapping_mul(2)).unwrap();
        }
        for &k in &ks {
            assert_eq!(t.get(&k), Some(k.wrapping_mul(2)));
        }
        assert_eq!(t.len(), 2_000 / SCALE);
        for &k in &ks {
            assert_eq!(t.remove(&k), Some(k.wrapping_mul(2)));
            assert_eq!(t.get(&k), None);
        }
        assert!(t.is_empty());
    }

    #[test]
    fn update_in_place() {
        let t = table(64, 3);
        assert_eq!(t.insert(5, 50), Ok(false), "fresh key is a placement");
        assert_eq!(t.insert(5, 51), Ok(true), "live key is an update");
        assert_eq!(t.get(&5), Some(51));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn batched_ops_match_singles() {
        let singles = table(256, 21);
        let batched = table(256, 21);
        let mut keys = UniqueKeys::new(22);
        let items: Vec<(u64, u64)> = keys.take_vec(400).into_iter().map(|k| (k, k + 7)).collect();
        let mut single_results = Vec::new();
        for &(k, v) in &items {
            single_results.push(singles.insert(k, v));
        }
        assert_eq!(batched.insert_batch(&items), single_results);
        assert_eq!(batched.len(), singles.len());
        let ks: Vec<u64> = items.iter().map(|&(k, _)| k).collect();
        assert_eq!(batched.get_batch(&ks), singles.get_batch(&ks));
        // Re-upserting the whole batch reports updates positionally.
        let bumped: Vec<(u64, u64)> = items.iter().map(|&(k, v)| (k, v + 1)).collect();
        assert!(batched.insert_batch(&bumped).iter().all(|r| *r == Ok(true)));
        // Batch removal, with a duplicate: only the first occurrence wins.
        let mut dup = ks.clone();
        dup.push(ks[0]);
        let removed = batched.remove_batch(&dup);
        assert!(removed[..ks.len()].iter().all(|r| r.is_some()));
        assert_eq!(removed[ks.len()], None, "duplicate key already removed");
        assert!(batched.is_empty());
        batched.check_invariants().unwrap();
    }

    #[test]
    fn insert_new_and_clear_roundtrip() {
        let t = table(256 / SCALE, 11);
        let mut keys = UniqueKeys::new(12);
        let ks = keys.take_vec(300 / SCALE);
        for &k in &ks {
            t.insert_new(k, k).unwrap();
        }
        assert_eq!(t.len(), ks.len());
        t.clear();
        assert!(t.is_empty());
        for &k in &ks {
            assert_eq!(t.get(&k), None);
        }
        t.check_invariants().unwrap();
        // A cleared table is fully reusable.
        for &k in &ks {
            t.insert_new(k, k + 1).unwrap();
        }
        assert_eq!(t.get(&ks[0]), Some(ks[0] + 1));
        t.check_invariants().unwrap();
    }

    #[test]
    fn failed_insert_mutates_nothing() {
        let t: ConcurrentMcCuckoo<u64, u64> =
            ConcurrentMcCuckoo::new(McConfig::paper(4, 4).with_maxloop(20));
        let mut keys = UniqueKeys::new(5);
        let mut stored = Vec::new();
        let mut failed = None;
        for _ in 0..40 {
            let k = keys.next_key();
            match t.insert(k, k) {
                Ok(_) => stored.push(k),
                Err((ek, _)) => {
                    failed = Some(ek);
                    break;
                }
            }
        }
        let failed = failed.expect("a 12-bucket table must overflow");
        assert_eq!(t.get(&failed), None, "failed insert must not be visible");
        for k in &stored {
            assert_eq!(t.get(k), Some(*k), "failure must not disturb others");
        }
    }

    #[test]
    fn readers_never_lose_stable_keys_during_writer_churn() {
        // The §III.H property: items never become unavailable during
        // relocations. Readers hammer a stable key set while the writer
        // inserts/removes churn keys that force evictions.
        let t = std::sync::Arc::new(table(2_048 / SCALE, 6));
        let mut keys = UniqueKeys::new(7);
        let stable: Vec<u64> = keys.take_vec(2_000 / SCALE);
        for &k in &stable {
            t.insert(k, k ^ 0xABCD).unwrap();
        }
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let misses = std::sync::Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for r in 0..4 {
                let t = t.clone();
                let stable = stable.clone();
                let stop = stop.clone();
                let misses = misses.clone();
                scope.spawn(move || {
                    let mut i = r;
                    while !stop.load(Ordering::Relaxed) {
                        let k = stable[i % stable.len()];
                        if t.get(&k) != Some(k ^ 0xABCD) {
                            misses.fetch_add(1, Ordering::Relaxed);
                        }
                        i += 1;
                    }
                });
            }
            // Writer: churn 20k keys through the table.
            let mut churn = UniqueKeys::new(8);
            let mut window: Vec<u64> = Vec::new();
            for _ in 0..20_000 / SCALE {
                let k = churn.next_key();
                if t.insert(k, k).is_ok() {
                    window.push(k);
                }
                if window.len() > 1_500 / SCALE {
                    let victim = window.remove(0);
                    t.remove(&victim);
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(
            misses.load(Ordering::Relaxed),
            0,
            "stable keys must never be unavailable"
        );
        for &k in &stable {
            assert_eq!(t.get(&k), Some(k ^ 0xABCD));
        }
    }

    #[test]
    fn concurrent_readers_scale_without_poisoning() {
        // Smoke test for read-read parallelism: many readers over a
        // static table agree on every answer.
        let t = std::sync::Arc::new(table(1_024 / SCALE, 9));
        let mut keys = UniqueKeys::new(10);
        let ks: Vec<u64> = keys.take_vec(2_500 / SCALE);
        for &k in &ks {
            t.insert(k, k + 1).unwrap();
        }
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let t = t.clone();
                let ks = ks.clone();
                scope.spawn(move || {
                    for &k in &ks {
                        assert_eq!(t.get(&k), Some(k + 1));
                    }
                });
            }
        });
    }
}
