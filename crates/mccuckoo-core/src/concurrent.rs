//! Striped-writer, lock-free-reader concurrency (§III.H of the paper).
//!
//! The paper observes that McCuckoo composes naturally with MemC3-style
//! concurrency: the counters let a writer *precompute* a short cuckoo
//! path before touching the table, and the moves can then be executed
//! from the path's far end backwards so that **no item is ever absent**
//! — each item is written to its destination before its source is
//! overwritten. Multi-copy strengthens this further: overwriting a
//! redundant copy never makes its owner unavailable at all.
//!
//! # Readers
//!
//! Readers are genuinely lock-free. Each bucket is a plain cell guarded
//! by a seqlock version counter, bumped to odd before and back to even
//! after every content mutation. A probe reads the cell with a volatile
//! load into uninitialised storage, and only interprets the bytes after
//! re-reading the version and finding it unchanged and even — a torn
//! read is discarded before it is ever typed, so readers never observe
//! a half-written pair. A probe that *misses* must additionally prove it
//! did not race a relocation: an item moving from a not-yet-checked
//! candidate into an already-checked one would otherwise be invisible to
//! one unlucky pass (the classic cuckoo reader race, MemC3 §3.2), so a
//! miss is only reported once a full pass observes identical, even
//! versions before and after probing.
//!
//! Readers probe **conservatively**: the only counter-derived shortcut
//! they use is skipping counter-zero buckets (sound, because a counter
//! only becomes non-zero *after* its content is written). The
//! single-slot partition pruning is deliberately not used by concurrent
//! readers — a reader racing a counter update could otherwise prune away
//! the bucket that still holds the key. See `DESIGN.md` §4.
//!
//! # Writers: striped bucket locks
//!
//! Writers do **not** serialize on one table-wide mutex. The buckets are
//! partitioned into a power-of-two array of cacheline-padded lock
//! stripes (`stripe(b) = b & (nstripes − 1)`), and a writer acquires
//! only the stripes its probe/kick footprint touches, always in
//! ascending stripe order — a global total order, so overlapping writers
//! cannot deadlock. Since the footprint of a cuckoo insert is only fully
//! known *after* planning it, acquisition is a plan → lock → grow →
//! re-plan loop: each attempt locks the stripes the previous attempt
//! discovered, re-plans under those locks, and executes only once the
//! plan's whole footprint is covered. Walks whose footprint exceeds a
//! small stripe budget — and the rare shapes the striped executor does
//! not handle (settling a kick chain's terminal item by overwriting a
//! redundant copy) — fall back to a **global stripe sweep**: locking
//! every stripe, which trivially covers any footprint and restores the
//! old single-writer semantics for that one operation. Batched entry
//! points take the sweep once per batch, amortising acquisition across
//! the whole batch.
//!
//! Stripe guards are RAII: a writer that panics mid-operation (see
//! `testhooks`) releases its stripes on unwind, and the mutexes are
//! `parking_lot`-style unpoisonable, so the table stays writable.
//!
//! Keys and values must be `Copy` (pointer-sized payloads — use
//! [`crate::MultisetIndex`]-style indirection for fat values). The
//! sequential tables' `Cell`-based meter is not `Sync`, so this type
//! carries its own relaxed-atomic access tallies instead: lookups and
//! the write paths count their modelled on-chip (counter) and off-chip
//! (bucket) accesses into [`ConcurrentMcCuckoo::mem_stats`]. Maintenance
//! scans (`items`, the validators) stay unmetered — they model no
//! data-path traffic.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicU64, AtomicU8, AtomicUsize, Ordering};

use hash_kit::{BucketFamily, KeyHash, SplitMix64};
use mem_model::{InsertOutcome, InsertReport, MemStats};
use parking_lot::{Mutex, MutexGuard};

use crate::config::McConfig;
use crate::kick::{self, EvictionGraph};
use crate::obs::{InsertTally, Obs, TableStats};
use crate::pad::CachePadded;
use crate::single::MAX_D;

/// Upper bound on the stripe count: one `u64` bitmask addresses every
/// stripe, so lock *sets* stay registers, not heap allocations.
const MAX_STRIPES: usize = 64;

/// Plan → lock → grow attempts before an insert escalates to the sweep.
const LOCK_ATTEMPTS: usize = 4;

/// A kick walk needing more than this many stripes escalates to the
/// sweep — locking most of the table piecemeal is slower than sweeping.
const STRIPE_BUDGET: u32 = 8;

/// Per-op RNG stream increment (the SplitMix64 golden-gamma constant),
/// so concurrent inserts draw from decorrelated streams without sharing
/// mutable writer state.
const RNG_STREAM_STEP: u64 = 0x9E37_79B9_7F4A_7C15;

type CellArray<K, V> = Box<[UnsafeCell<Option<(K, V)>>]>;

/// Thread-safe memory-access tallies (the concurrent analogue of
/// `mem_model::MemMeter`, whose `Cell` counters are not `Sync`).
/// All updates are `Relaxed`: the counts are statistics, not
/// synchronisation, and per-thread increments commute.
#[derive(Default)]
struct AccessMeter {
    offchip_reads: AtomicU64,
    offchip_writes: AtomicU64,
    onchip_reads: AtomicU64,
    onchip_writes: AtomicU64,
}

impl AccessMeter {
    #[inline]
    fn offchip_read(&self, n: u64) {
        self.offchip_reads.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    fn offchip_write(&self, n: u64) {
        self.offchip_writes.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    fn onchip_read(&self, n: u64) {
        self.onchip_reads.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    fn onchip_write(&self, n: u64) {
        self.onchip_writes.fetch_add(n, Ordering::Relaxed);
    }

    fn snapshot(&self) -> MemStats {
        MemStats {
            offchip_reads: self.offchip_reads.load(Ordering::Relaxed),
            offchip_writes: self.offchip_writes.load(Ordering::Relaxed),
            onchip_reads: self.onchip_reads.load(Ordering::Relaxed),
            onchip_writes: self.onchip_writes.load(Ordering::Relaxed),
            ..MemStats::default()
        }
    }
}

/// Lock-free-read, striped-multi-writer multi-copy cuckoo table.
///
/// ```
/// use mccuckoo_core::{ConcurrentMcCuckoo, McConfig};
/// use std::sync::Arc;
///
/// let table = Arc::new(ConcurrentMcCuckoo::<u64, u64>::new(McConfig::paper(256, 1)));
/// table.insert(10, 100).unwrap();
/// let reader = {
///     let t = table.clone();
///     std::thread::spawn(move || t.get(&10))
/// };
/// assert_eq!(reader.join().unwrap(), Some(100));
/// assert_eq!(table.remove(&10), Some(100));
/// ```
pub struct ConcurrentMcCuckoo<K, V> {
    family: BucketFamily,
    d: usize,
    n: usize,
    maxloop: u32,
    cells: CellArray<K, V>,
    counters: Box<[AtomicU8]>,
    /// Per-bucket seqlock versions: odd while a mutation is in flight.
    versions: Box<[AtomicU64]>,
    /// Striped writer locks; `stripe(b) = b & (stripes.len() − 1)`.
    stripes: Box<[CachePadded<Mutex<()>>]>,
    /// Bitmask with one bit per existing stripe (the sweep's lock set).
    all_stripes: u64,
    distinct: CachePadded<AtomicUsize>,
    /// Monotonic per-op RNG stream selector (see [`RNG_STREAM_STEP`]).
    rng_stream: CachePadded<AtomicU64>,
    /// The configuration the table was built with (seed included),
    /// retained for snapshots.
    config: McConfig,
    /// Lock-free observability counters (monotonic; survive `clear`).
    obs: Obs,
    /// Relaxed-atomic memory-access tallies (monotonic; survive `clear`).
    access: CachePadded<AccessMeter>,
}

// SAFETY: the `UnsafeCell` buckets are written only by `write_bucket`,
// whose callers hold the covering stripe lock (or the full sweep), and
// are read either under those locks or through the seqlock protocol —
// a volatile read into `MaybeUninit` that is interpreted only after the
// bucket's version proves the bytes were not torn. K and V are `Copy`
// in every constructible instance, so no drop races exist.
unsafe impl<K: Send, V: Send> Sync for ConcurrentMcCuckoo<K, V> {}

/// RAII holder of a set of stripe locks, released (in any order) on
/// drop — including panic unwinds, so an aborted writer never wedges
/// the table.
struct StripeGuard<'a> {
    /// Which stripes this guard holds, as a bitmask.
    mask: u64,
    _held: [Option<MutexGuard<'a, ()>>; MAX_STRIPES],
}

/// What an upsert does when it finds the key already present.
#[derive(Clone, Copy, PartialEq, Eq)]
enum UpsertMode {
    /// Rewrite every live copy in place (the public `insert`).
    Update,
    /// Leave the existing entry untouched and report `Updated` with
    /// zero copies written — an atomic insert-if-absent, used by the
    /// shard migrator and duplicate-tolerant restores.
    KeepExisting,
    /// The caller guarantees absence (`insert_new`); presence is a
    /// bookkeeping bug, `debug_assert`ed.
    AssertAbsent,
}

/// Result of [`ConcurrentMcCuckoo::migrate_out`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MigrateOutcome {
    /// The key was handed to `transfer` and removed from this table.
    Moved,
    /// The key was no longer present (already moved or removed).
    Skipped,
    /// `transfer` declined (destination full); the key stays here.
    Failed,
}

impl<K, V> ConcurrentMcCuckoo<K, V>
where
    K: KeyHash + Eq + Copy,
    V: Copy,
{
    /// Build from a [`McConfig`] (stash and deletion-mode fields are
    /// ignored: the concurrent table always deletes by counter reset and
    /// reports failures to the caller instead of stashing).
    pub fn new(config: McConfig) -> Self {
        config.validate();
        let family = BucketFamily::new(
            config.family,
            config.d,
            config.buckets_per_table,
            config.seed,
        );
        let total = config.d * config.buckets_per_table;
        let cells: CellArray<K, V> = (0..total).map(|_| UnsafeCell::new(None)).collect();
        let counters: Box<[AtomicU8]> = (0..total).map(|_| AtomicU8::new(0)).collect();
        let versions: Box<[AtomicU64]> = (0..total).map(|_| AtomicU64::new(0)).collect();
        // ~8 buckets per stripe keeps false lock sharing low while the
        // whole stripe set still fits one u64 mask.
        let nstripes = (total / 8).next_power_of_two().clamp(1, MAX_STRIPES);
        let stripes: Box<[CachePadded<Mutex<()>>]> = (0..nstripes)
            .map(|_| CachePadded::new(Mutex::new(())))
            .collect();
        let all_stripes = u64::MAX >> (64 - nstripes as u32);
        Self {
            family,
            d: config.d,
            n: config.buckets_per_table,
            maxloop: config.maxloop,
            cells,
            counters,
            versions,
            stripes,
            all_stripes,
            distinct: CachePadded::new(AtomicUsize::new(0)),
            rng_stream: CachePadded::new(AtomicU64::new(config.seed ^ 0xC04C_44E4_7AB1_E000)),
            config,
            obs: Obs::default(),
            access: CachePadded::new(AccessMeter::default()),
        }
    }

    /// The configuration the table was built with (seed included).
    pub fn config(&self) -> &McConfig {
        &self.config
    }

    /// Snapshot of the observability counters (op counts and probe/kick
    /// histograms). Monotonic over the table's lifetime; safe to call
    /// concurrently with readers and writers.
    pub fn stats(&self) -> TableStats {
        let mut s = self.obs.snapshot();
        s.kick_policy = self.config.kick.label().to_string();
        s
    }

    /// Snapshot of the modelled memory-access tallies: off-chip bucket
    /// reads/writes and on-chip counter reads/writes, accumulated by the
    /// lookup and write paths (relaxed atomics — safe to call while
    /// readers and writers run). Stash fields are always zero: the
    /// concurrent table has no stash.
    pub fn mem_stats(&self) -> MemStats {
        self.access.snapshot()
    }

    /// Distinct keys currently stored.
    pub fn len(&self) -> usize {
        self.distinct.load(Ordering::Acquire)
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bucket count.
    pub fn capacity(&self) -> usize {
        self.cells.len()
    }

    #[inline]
    fn candidates(&self, key: &K) -> [usize; MAX_D] {
        let mut raw = [0usize; MAX_D];
        self.family.buckets_into(key, &mut raw[..self.d]);
        let mut out = [usize::MAX; MAX_D];
        for i in 0..self.d {
            out[i] = i * self.n + raw[i];
        }
        out
    }

    // ------------------------------------------------------------------
    // Stripes
    // ------------------------------------------------------------------

    /// Number of writer lock stripes (a power of two ≤ 64).
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// The stripe set `key`'s candidate buckets map to, as a bitmask.
    /// Exposed so adversarial tests can mine key sets that contend on
    /// few stripes.
    pub fn stripe_mask_of(&self, key: &K) -> u64 {
        self.mask_of(&self.candidates(key))
    }

    /// True when no stripe is currently held (test support: a panicked
    /// writer must leave every stripe released).
    pub fn stripes_quiescent(&self) -> bool {
        self.stripes.iter().all(|s| s.try_lock().is_some())
    }

    #[inline]
    fn stripe_bit(&self, bucket: usize) -> u64 {
        1u64 << (bucket & (self.stripes.len() - 1))
    }

    fn mask_of(&self, cands: &[usize; MAX_D]) -> u64 {
        let mut m = 0u64;
        for &c in cands.iter().take(self.d) {
            m |= self.stripe_bit(c);
        }
        m
    }

    /// Acquire every stripe in `mask`, in ascending stripe order. All
    /// writers (including the full sweep, whose mask is all ones) use
    /// this path, so lock acquisition follows one global total order and
    /// overlapping writers cannot deadlock.
    fn lock_stripes(&self, mask: u64) -> StripeGuard<'_> {
        let mut held: [Option<MutexGuard<'_, ()>>; MAX_STRIPES] = std::array::from_fn(|_| None);
        let mut m = mask;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            held[i] = Some(self.stripes[i].lock());
            m &= m - 1;
        }
        StripeGuard { mask, _held: held }
    }

    /// A fresh decorrelated RNG for one insert's kick walk.
    fn op_rng(&self) -> SplitMix64 {
        let stream = self
            .rng_stream
            .fetch_add(RNG_STREAM_STEP, Ordering::Relaxed);
        SplitMix64::new(self.config.seed ^ stream)
    }

    // ------------------------------------------------------------------
    // Bucket access primitives
    // ------------------------------------------------------------------

    /// Writer-side bucket mutation, bracketed by version bumps (odd
    /// while in flight). `counter` optionally updates the copy counter
    /// inside the same bracket. Caller must hold the bucket's stripe.
    fn write_bucket(&self, idx: usize, content: Option<(K, V)>, counter: Option<u8>) {
        // The stripe lock serializes writers on this bucket, so the
        // version can be bumped with plain loads/stores (two lock-prefix
        // RMWs per write would double the cost of the multi-copy write
        // fan-out). The release fence keeps the odd store ahead of the
        // content bytes for any racing seqlock reader.
        let v = self.versions[idx].load(Ordering::Relaxed);
        debug_assert_eq!(v % 2, 0, "bucket {idx}: concurrent writers");
        self.versions[idx].store(v + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        // SAFETY: the stripe lock covering `idx` is held, so this is the
        // only writer; concurrent readers validate against the odd
        // version and discard whatever bytes they raced.
        unsafe { std::ptr::write_volatile(self.cells[idx].get(), content) };
        self.access.offchip_write(1);
        if let Some(c) = counter {
            self.counters[idx].store(c, Ordering::Release);
            self.access.onchip_write(1);
        }
        self.versions[idx].store(v + 2, Ordering::Release);
    }

    /// Plain read of a bucket the caller has exclusive access to (its
    /// stripe held, the full sweep held, or the table quiescent).
    #[inline]
    fn cell_read_locked(&self, idx: usize) -> Option<(K, V)> {
        // SAFETY: exclusivity is the caller's contract, so no writer can
        // race this read.
        unsafe { *self.cells[idx].get() }
    }

    /// [`Self::cell_read_locked`] plus one modelled off-chip read. The
    /// mutation paths (upsert/remove/kick) read buckets through this;
    /// maintenance scans (`items`, validators) keep the unmetered
    /// variant — they model no data-path traffic.
    #[inline]
    fn cell_read_metered(&self, idx: usize) -> Option<(K, V)> {
        self.access.offchip_read(1);
        self.cell_read_locked(idx)
    }

    /// Seqlock-validated read of a bucket the caller has *not* locked.
    /// Spins until it observes a stable even version around the load, so
    /// the returned value was fully written.
    fn cell_read_atomic(&self, idx: usize) -> Option<(K, V)> {
        loop {
            let v1 = self.versions[idx].load(Ordering::Acquire);
            if v1 % 2 == 0 {
                // SAFETY: the bytes land in `MaybeUninit`, so a torn
                // read is never typed; they are interpreted only after
                // the version check proves no writer intervened.
                let raw = unsafe {
                    std::ptr::read_volatile(
                        self.cells[idx].get().cast::<MaybeUninit<Option<(K, V)>>>(),
                    )
                };
                fence(Ordering::Acquire);
                if self.versions[idx].load(Ordering::Relaxed) == v1 {
                    return unsafe { raw.assume_init() };
                }
            }
            std::hint::spin_loop();
        }
    }

    // ------------------------------------------------------------------
    // Readers
    // ------------------------------------------------------------------

    /// Lock-free lookup. Linearizes with concurrent writes: a key
    /// committed before the call starts is always found — a miss is only
    /// reported after a probe pass bracketed by stable, even bucket
    /// versions (see module docs).
    pub fn get(&self, key: &K) -> Option<V> {
        let cands = self.candidates(key);
        let (found, probes) = self.get_with_cands(key, &cands);
        self.obs.record_lookup(found.is_some(), probes);
        found
    }

    /// [`Self::get`] body with the candidate buckets precomputed (the
    /// batched path hashes every key up front so it can prefetch).
    /// Returns the probe count instead of recording it — the batched
    /// path tallies a whole batch locally and flushes the observability
    /// atomics once ([`Obs::absorb_lookups`]); access-model metering
    /// stays per-key in here.
    fn get_with_cands(&self, key: &K, cands: &[usize; MAX_D]) -> (Option<V>, u64) {
        loop {
            let mut pre = [0u64; MAX_D];
            let mut stable = true;
            for i in 0..self.d {
                pre[i] = self.versions[cands[i]].load(Ordering::Acquire);
                stable &= pre[i] % 2 == 0;
            }
            if !stable {
                std::hint::spin_loop();
                continue;
            }
            let mut probes = 0u64;
            let mut torn = false;
            for i in 0..self.d {
                let c = cands[i];
                // Counter becomes non-zero only after content is written,
                // so skipping zero is the one safe counter shortcut.
                if self.counters[c].load(Ordering::Acquire) == 0 {
                    continue;
                }
                probes += 1;
                // SAFETY: torn bytes stay untyped in `MaybeUninit` until
                // the version recheck below proves the read was stable.
                let raw = unsafe {
                    std::ptr::read_volatile(
                        self.cells[c].get().cast::<MaybeUninit<Option<(K, V)>>>(),
                    )
                };
                fence(Ordering::Acquire);
                if self.versions[c].load(Ordering::Relaxed) != pre[i] {
                    torn = true;
                    break;
                }
                if let Some((k, v)) = unsafe { raw.assume_init() } {
                    if k == *key {
                        self.access.onchip_read(self.d as u64);
                        self.access.offchip_read(probes);
                        return (Some(v), probes);
                    }
                }
            }
            if !torn {
                // Validate the miss: no bucket changed underneath the pass.
                let unchanged =
                    (0..self.d).all(|i| self.versions[cands[i]].load(Ordering::Acquire) == pre[i]);
                if unchanged {
                    self.access.onchip_read(self.d as u64);
                    self.access.offchip_read(probes);
                    return (None, probes);
                }
            }
            std::hint::spin_loop();
        }
    }

    /// Whether `key` is stored.
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    // ------------------------------------------------------------------
    // Writers: public entry points
    // ------------------------------------------------------------------

    /// Insert or update. Returns `Ok(true)` when an existing key was
    /// updated in place and `Ok(false)` when the key was freshly placed.
    /// Returns `Err((key, value))` when the relocation budget is
    /// exhausted — in which case, unlike the sequential random-walk,
    /// **nothing was mutated** (the path is precomputed).
    ///
    /// Safe to call from many threads at once: writers with disjoint
    /// stripe footprints run concurrently.
    pub fn insert(&self, key: K, value: V) -> Result<bool, (K, V)> {
        let out = self.upsert_striped(key, value, UpsertMode::Update);
        self.record_upsert(&out);
        self.check_paranoid();
        out.map(|rep| matches!(rep.outcome, InsertOutcome::Updated))
    }

    /// Upsert a whole batch under **one** global stripe sweep.
    ///
    /// Results are positional: `out[i]` is what [`Self::insert`] would
    /// have returned for `items[i]`. Failed items are skipped (the table
    /// is left exactly as if their individual inserts had been rejected),
    /// so one overflow does not poison the rest of the batch. Readers
    /// remain lock-free throughout — they observe the batch item by item.
    pub fn insert_batch(&self, items: &[(K, V)]) -> Vec<Result<bool, (K, V)>> {
        self.obs.record_batch(items.len());
        let mut out = Vec::with_capacity(items.len());
        // Per-item observability is tallied locally and flushed once —
        // the batched path pays one pass of atomic traffic per batch,
        // not ~5 RMWs per item.
        let mut tally = InsertTally::default();
        {
            let _guard = self.lock_stripes(self.all_stripes);
            let mut path_buf = Vec::new();
            for &(k, v) in items {
                let r = self.upsert_excl(k, v, UpsertMode::Update, &mut path_buf);
                match &r {
                    Ok(rep) => tally.record(rep),
                    Err(_) => tally.record(&InsertReport {
                        outcome: InsertOutcome::Failed,
                        kickouts: 0, // nothing was mutated (precomputed path)
                        collision: true,
                        copies_written: 0,
                    }),
                }
                out.push(r.map(|rep| matches!(rep.outcome, InsertOutcome::Updated)));
            }
        }
        self.obs.absorb_inserts(&tally);
        self.check_paranoid();
        out
    }

    /// Insert a key known to be absent, skipping the in-place update
    /// scan. Same failure contract as [`Self::insert`]: on `Err` nothing
    /// was mutated. Inserting a key that is already present corrupts the
    /// copy bookkeeping (`debug_assert`ed).
    pub fn insert_new(&self, key: K, value: V) -> Result<(), (K, V)> {
        let out = self.upsert_striped(key, value, UpsertMode::AssertAbsent);
        self.record_upsert(&out);
        self.check_paranoid();
        out.map(|_| ())
    }

    // ------------------------------------------------------------------
    // Migration / maintenance support (crate-internal: the sharded
    // layer's split migrator and live snapshots build on these)
    // ------------------------------------------------------------------

    /// Unrecorded upsert returning the full [`InsertReport`] — the
    /// sharded layer records exactly one op per *public* call, even
    /// when forwarding retries the op on a sibling table.
    pub(crate) fn upsert_unrecorded(&self, key: K, value: V) -> Result<InsertReport, (K, V)> {
        let out = self.upsert_striped(key, value, UpsertMode::Update);
        self.check_paranoid();
        out
    }

    /// Atomic insert-if-absent (unrecorded). `Ok(true)` means the key
    /// was freshly placed; `Ok(false)` means it was already present and
    /// the stored value was left untouched. `Err` returns the pair on a
    /// relocation-budget overflow with nothing mutated.
    pub(crate) fn insert_if_absent_unrecorded(&self, key: K, value: V) -> Result<bool, (K, V)> {
        let out = self.upsert_striped(key, value, UpsertMode::KeepExisting);
        self.check_paranoid();
        out.map(|rep| matches!(rep.outcome, InsertOutcome::Placed))
    }

    /// Unrecorded removal.
    pub(crate) fn remove_unrecorded(&self, key: &K) -> Option<V> {
        let cands = self.candidates(key);
        let out = {
            let _guard = self.lock_stripes(self.mask_of(&cands));
            self.remove_excl(key, &cands)
        };
        self.check_paranoid();
        out
    }

    /// Unrecorded lock-free lookup, returning the probe count for the
    /// caller to record against whichever table answered.
    pub(crate) fn get_unrecorded(&self, key: &K) -> (Option<V>, u64) {
        let cands = self.candidates(key);
        self.get_with_cands(key, &cands)
    }

    /// Rewrite every live copy of `key` if (and only if) it is already
    /// present; never places a fresh entry. Returns whether an update
    /// happened. Unrecorded.
    pub(crate) fn update_existing_unrecorded(&self, key: &K, value: &V) -> bool {
        let cands = self.candidates(key);
        let out = {
            let _guard = self.lock_stripes(self.mask_of(&cands));
            self.try_update_excl(key, value, &cands).is_some()
        };
        self.check_paranoid();
        out
    }

    /// How many writer-lock stripes this table has (the migration
    /// cursor sweeps them one at a time).
    pub(crate) fn nstripes(&self) -> usize {
        self.stripes.len()
    }

    /// The distinct keys whose buckets map to lock `stripe`, read under
    /// that one stripe lock. A key with several copies inside the
    /// stripe appears once per copy — migration callers re-validate per
    /// key under locks anyway, so duplicates are harmlessly skipped.
    pub(crate) fn stripe_keys(&self, stripe: usize) -> Vec<K> {
        debug_assert!(stripe < self.stripes.len());
        let _guard = self.lock_stripes(1u64 << stripe);
        let mut out = Vec::new();
        // Buckets on stripe s are exactly those ≡ s (mod nstripes).
        let mut b = stripe;
        while b < self.cells.len() {
            if self.counters[b].load(Ordering::Acquire) != 0 {
                if let Some((k, _)) = self.cell_read_locked(b) {
                    out.push(k);
                }
            }
            b += self.stripes.len();
        }
        out
    }

    /// Atomically hand one key to another table: under this table's
    /// candidate stripes, re-read the key, call `transfer(k, v)`, and
    /// remove the local entry only if the transfer reports success.
    /// Holding the source stripes across the transfer closes the
    /// lost-update window (a concurrent upsert of the same key blocks
    /// on these stripes until the move completes). Only the migration
    /// cursor holds locks in two tables at once, always source→dest,
    /// so no lock cycle can form.
    pub(crate) fn migrate_out<F: FnOnce(K, V) -> bool>(
        &self,
        key: &K,
        transfer: F,
    ) -> MigrateOutcome {
        let cands = self.candidates(key);
        let out = {
            let _guard = self.lock_stripes(self.mask_of(&cands));
            let mut found = None;
            for &c in cands.iter().take(self.d) {
                if self.counters[c].load(Ordering::Acquire) == 0 {
                    continue;
                }
                if let Some((k, v)) = self.cell_read_locked(c) {
                    if k == *key {
                        found = Some(v);
                        break;
                    }
                }
            }
            match found {
                None => MigrateOutcome::Skipped,
                Some(v) => {
                    if transfer(*key, v) {
                        let removed = self.remove_excl(key, &cands);
                        debug_assert!(removed.is_some(), "key vanished under held stripes");
                        MigrateOutcome::Moved
                    } else {
                        MigrateOutcome::Failed
                    }
                }
            }
        };
        self.check_paranoid();
        out
    }

    /// Every stored pair via the lock-free seqlock read protocol — no
    /// writer lock is taken, so this can run concurrently with writers.
    /// Each bucket read is individually consistent (torn reads are
    /// discarded); the scan as a whole is a best-effort cut: exact when
    /// the table is quiescent, and any pair stable across the scan is
    /// present exactly once. Used by background snapshots.
    pub(crate) fn items_live(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        for i in 0..self.cells.len() {
            let Some((k, v)) = self.cell_read_atomic(i) else {
                continue;
            };
            // Emit at the smallest candidate bucket currently holding a
            // copy, so a multi-copy key is reported once.
            let cands = self.candidates(&k);
            let mut first = usize::MAX;
            for &b in cands.iter().take(self.d) {
                if self.counters[b].load(Ordering::Acquire) == 0 {
                    continue;
                }
                if let Some((bk, _)) = self.cell_read_atomic(b) {
                    if bk == k {
                        first = first.min(b);
                    }
                }
            }
            if first == i {
                out.push((k, v));
            }
        }
        out
    }

    /// The observability recorder (the sharded layer records forwarded
    /// ops against the table that served them).
    pub(crate) fn obs(&self) -> &Obs {
        &self.obs
    }

    /// [`Self::insert_batch`] body without observability recording and
    /// with the full per-item [`InsertReport`]s — the sharded layer
    /// revalidates routing after the batch and records each item against
    /// whichever table finally served it.
    pub(crate) fn insert_batch_unrecorded(
        &self,
        items: &[(K, V)],
    ) -> Vec<Result<InsertReport, (K, V)>> {
        let mut out = Vec::with_capacity(items.len());
        {
            let _guard = self.lock_stripes(self.all_stripes);
            let mut path_buf = Vec::new();
            for &(k, v) in items {
                out.push(self.upsert_excl(k, v, UpsertMode::Update, &mut path_buf));
            }
        }
        self.check_paranoid();
        out
    }

    /// [`Self::remove_batch`] body without observability recording.
    pub(crate) fn remove_batch_unrecorded(&self, keys: &[K]) -> Vec<Option<V>> {
        let mut out = Vec::with_capacity(keys.len());
        {
            let _guard = self.lock_stripes(self.all_stripes);
            for k in keys {
                out.push(self.remove_excl(k, &self.candidates(k)));
            }
        }
        self.check_paranoid();
        out
    }

    /// [`Self::get_batch`] body without observability recording,
    /// returning per-key probe counts for the caller to tally against
    /// whichever table answered. Keeps the interleaved prefetch pipeline.
    pub(crate) fn get_batch_with_probes(&self, keys: &[K]) -> Vec<(Option<V>, u64)> {
        const BATCH_CHUNK: usize = 16;
        let mut out = Vec::with_capacity(keys.len());
        let mut cands_buf = [[usize::MAX; MAX_D]; BATCH_CHUNK];
        for chunk in keys.chunks(BATCH_CHUNK) {
            for (key, cands) in chunk.iter().zip(cands_buf.iter_mut()) {
                *cands = self.candidates(key);
                for &c in cands.iter().take(self.d) {
                    if self.counters[c].load(Ordering::Relaxed) != 0 {
                        crate::prefetch::prefetch_index(&self.versions, c);
                        crate::prefetch::prefetch_index(&self.cells, c);
                    }
                }
            }
            for (key, cands) in chunk.iter().zip(cands_buf.iter()) {
                out.push(self.get_with_cands(key, cands));
            }
        }
        out
    }

    /// Remove `key` (counter-reset deletion). Returns its value.
    pub fn remove(&self, key: &K) -> Option<V> {
        let cands = self.candidates(key);
        let out = {
            let _guard = self.lock_stripes(self.mask_of(&cands));
            self.remove_excl(key, &cands)
        };
        self.obs.record_remove(out.is_some());
        self.check_paranoid();
        out
    }

    /// Remove a whole batch of keys under **one** global stripe sweep.
    /// Results are positional: `out[i]` is what [`Self::remove`] would
    /// have returned for `keys[i]` (duplicates in the batch see the
    /// earlier removal — only the first wins).
    pub fn remove_batch(&self, keys: &[K]) -> Vec<Option<V>> {
        self.obs.record_batch(keys.len());
        let mut out = Vec::with_capacity(keys.len());
        {
            let _guard = self.lock_stripes(self.all_stripes);
            for k in keys {
                let r = self.remove_excl(k, &self.candidates(k));
                self.obs.record_remove(r.is_some());
                out.push(r);
            }
        }
        self.check_paranoid();
        out
    }

    /// Look up a batch of keys with an interleaved multi-key probe state
    /// machine: per chunk, hash every key, pick its live target buckets
    /// from the on-chip counters, issue software prefetches for their
    /// seqlock versions and cells, then run the (unchanged, lock-free)
    /// per-key probes against lines already in flight — the software
    /// analogue of the paper's FPGA pipeline. Results are positional and
    /// semantically identical to a loop over [`Self::get`], including the
    /// modelled access counts; the stage-1 counter peeks steer prefetch
    /// only and are deliberately unmetered.
    pub fn get_batch(&self, keys: &[K]) -> Vec<Option<V>> {
        const BATCH_CHUNK: usize = 16;
        self.obs.record_batch(keys.len());
        let mut out = Vec::with_capacity(keys.len());
        let mut cands_buf = [[usize::MAX; MAX_D]; BATCH_CHUNK];
        let mut tally = crate::obs::LookupTally::default();
        for chunk in keys.chunks(BATCH_CHUNK) {
            for (key, cands) in chunk.iter().zip(cands_buf.iter_mut()) {
                *cands = self.candidates(key);
                for &c in cands.iter().take(self.d) {
                    if self.counters[c].load(Ordering::Relaxed) != 0 {
                        crate::prefetch::prefetch_index(&self.versions, c);
                        crate::prefetch::prefetch_index(&self.cells, c);
                    }
                }
            }
            for (key, cands) in chunk.iter().zip(cands_buf.iter()) {
                let (found, probes) = self.get_with_cands(key, cands);
                tally.record(found.is_some(), probes);
                out.push(found);
            }
        }
        self.obs.absorb_lookups(&tally);
        out
    }

    /// Remove every item and zero every counter. Takes the full stripe
    /// sweep; concurrent readers see each bucket cleared atomically
    /// (per-bucket seqlock brackets), so a racing lookup returns either
    /// the old value or a miss — never torn state.
    pub fn clear(&self) {
        {
            let _guard = self.lock_stripes(self.all_stripes);
            for idx in 0..self.cells.len() {
                self.write_bucket(idx, None, Some(0));
            }
            self.distinct.store(0, Ordering::Release);
        }
        self.check_paranoid();
    }

    /// Every stored `(key, value)` pair, each key emitted exactly once
    /// (at its smallest copy location). Takes the full stripe sweep, so
    /// the scan observes a quiescent table. Used by snapshots.
    pub fn items(&self) -> Vec<(K, V)> {
        let _guard = self.lock_stripes(self.all_stripes);
        let mut out = Vec::with_capacity(self.len());
        for i in 0..self.cells.len() {
            if self.counters[i].load(Ordering::Acquire) == 0 {
                continue;
            }
            let Some((k, v)) = self.cell_read_locked(i) else {
                continue;
            };
            // Emit at the smallest candidate bucket holding a copy.
            let cands = self.candidates(&k);
            let mut first = usize::MAX;
            for &b in cands.iter().take(self.d) {
                if self.counters[b].load(Ordering::Acquire) == 0 {
                    continue;
                }
                if let Some((bk, _)) = self.cell_read_locked(b) {
                    if bk == k {
                        first = first.min(b);
                    }
                }
            }
            if first == i {
                out.push((k, v));
            }
        }
        out
    }

    /// Exhaustive structural validation (see [`crate::invariant`]).
    ///
    /// Takes the full stripe sweep, so it observes a quiescent table
    /// with respect to mutations; concurrent readers are unaffected.
    pub fn check_invariants(&self) -> Result<(), String> {
        let _guard = self.lock_stripes(self.all_stripes);
        self.validate_excl()
    }

    /// Record the outcome of one public upsert attempt.
    fn record_upsert(&self, out: &Result<InsertReport, (K, V)>) {
        match out {
            Ok(report) => self.obs.record_insert(report),
            Err(_) => self.obs.record_insert(&InsertReport {
                outcome: InsertOutcome::Failed,
                kickouts: 0, // nothing was mutated (precomputed path)
                collision: true,
                copies_written: 0,
            }),
        }
    }

    #[cfg(feature = "paranoid")]
    fn check_paranoid(&self) {
        // Runs after the mutating guard has dropped: the validator takes
        // the full sweep itself, so re-entrant lock acquisition (and
        // deadlock) is impossible. Other writers may slip in between the
        // op and its check — every op leaves a consistent table, so the
        // validator still holds.
        self.check_invariants()
            .expect("paranoid: invariant violated after mutation");
    }

    #[cfg(not(feature = "paranoid"))]
    #[inline(always)]
    fn check_paranoid(&self) {}

    // ------------------------------------------------------------------
    // Writers: the striped upsert driver
    // ------------------------------------------------------------------

    /// The striped insert/upsert engine: a plan → lock → grow → re-plan
    /// loop. Each attempt locks the footprint the previous attempt
    /// discovered, re-plans under those locks, and only mutates once the
    /// whole plan is covered by held stripes; anything that exceeds the
    /// stripe budget (or the attempt limit) escalates to the global
    /// sweep, which runs the full single-writer logic.
    fn upsert_striped(&self, key: K, value: V, mode: UpsertMode) -> Result<InsertReport, (K, V)> {
        let cands = self.candidates(&key);
        let base = self.mask_of(&cands);
        let mut want = base;
        let mut path: Vec<usize> = Vec::new();
        for _ in 0..LOCK_ATTEMPTS {
            let guard = self.lock_stripes(want);
            match mode {
                UpsertMode::Update => {
                    if let Some(copies) = self.try_update_excl(&key, &value, &cands) {
                        return Ok(InsertReport {
                            outcome: InsertOutcome::Updated,
                            kickouts: 0,
                            collision: false,
                            copies_written: copies,
                        });
                    }
                }
                UpsertMode::KeepExisting => {
                    if self.raw_contains_excl(&key) {
                        return Ok(InsertReport {
                            outcome: InsertOutcome::Updated,
                            kickouts: 0,
                            collision: false,
                            copies_written: 0,
                        });
                    }
                }
                UpsertMode::AssertAbsent => {
                    debug_assert!(!self.raw_contains_excl(&key), "insert_new of a present key");
                }
            }
            if let Some(extra) = self.plan_place(&cands) {
                let need = base | extra;
                if need & !guard.mask == 0 {
                    // The plan ran entirely under held locks, so the
                    // executor sees the identical world and must succeed.
                    let copies = self
                        .try_place_excl(&key, &value)
                        .expect("planned placement is executable under its locks");
                    self.distinct.fetch_add(1, Ordering::AcqRel);
                    return Ok(InsertReport::clean(copies));
                }
                want |= need;
                continue;
            }
            // Real collision: plan a displacement chain through the
            // configured kick policy (`crate::kick`). The plan is pure
            // reads, so its slot list is exactly the stripe footprint the
            // executor needs. The striped executor only settles chains
            // whose terminal item has an *empty* candidate
            // (`empty_terminal_only`); overwrite-terminal chains go to
            // the sweep.
            let mut rng = self.op_rng();
            if !kick::plan_kick(
                self,
                self.config.kick,
                &key,
                &mut rng,
                true,
                self.maxloop,
                &mut path,
            ) {
                break;
            }
            let mut need = base;
            for &b in &path {
                need |= self.stripe_bit(b);
            }
            let last = *path.last().expect("path is non-empty");
            self.access.offchip_read(1);
            let Some((tk0, _)) = self.cell_read_atomic(last) else {
                break; // raced a removal of the terminal; escalate
            };
            need |= self.mask_of(&self.candidates(&tk0));
            if need.count_ones() > STRIPE_BUDGET {
                break;
            }
            if need & !guard.mask != 0 {
                want |= need;
                continue;
            }
            // Whole footprint held: re-validate the chain under the
            // locks (the walk itself ran under them, so this only fails
            // if the racy terminal read above lied) and execute.
            let Some((tk, tv)) = self.validate_path(&key, &path) else {
                continue;
            };
            let tcands = self.candidates(&tk);
            let tmask = self.mask_of(&tcands);
            if tmask & !guard.mask != 0 {
                want |= tmask;
                continue;
            }
            if !(0..self.d).any(|i| self.counters[tcands[i]].load(Ordering::Acquire) == 0) {
                break; // terminal can no longer settle into an empty
            }
            #[cfg(feature = "testhooks")]
            crate::testhooks::fire_panic_in_kick();
            // Settle the terminal into its empty candidates, then shift
            // the chain backwards (MemC3 ordering: destination before
            // source, so no item is ever absent).
            let settled = self.place_empties_excl(&tk, &tv);
            debug_assert!(settled > 0, "validated terminal had an empty candidate");
            for w in path.windows(2).rev() {
                let (src, dst) = (w[0], w[1]);
                let item = self.cell_read_metered(src).expect("validated path bucket");
                self.write_bucket(dst, Some(item), Some(1));
            }
            self.write_bucket(path[0], Some((key, value)), Some(1));
            self.distinct.fetch_add(1, Ordering::AcqRel);
            return Ok(InsertReport {
                outcome: InsertOutcome::Placed,
                kickouts: path.len() as u32,
                collision: true,
                copies_written: 1,
            });
        }
        // Escalation: the global stripe sweep covers any footprint and
        // runs the full (overwrite-terminal included) insert logic.
        let _guard = self.lock_stripes(self.all_stripes);
        self.upsert_excl(key, value, mode, &mut path)
    }

    /// Dry-run of [`Self::try_place_excl`]: decides placeability and
    /// returns the *extra* stripes (beyond the key's own candidates)
    /// that executing the plan would touch — the candidate stripes of
    /// every overwrite victim, whose sibling counters the executor
    /// decrements. `None` means a real collision (a kick walk is
    /// needed). Read-only.
    ///
    /// The plan is faithful to the executor when both run under locks
    /// covering `base | extra`: the executor's sibling decrements feed
    /// back into its greedy choices only through the candidate-local
    /// `cvals`, which the simulation updates identically (including the
    /// prior-target skip — a bucket already claimed for the new key
    /// fails the executor's content check).
    fn plan_place(&self, cands: &[usize; MAX_D]) -> Option<u64> {
        let mut cvals = [0u8; MAX_D];
        for i in 0..self.d {
            cvals[i] = self.counters[cands[i]].load(Ordering::Acquire);
        }
        let mut taken = [false; MAX_D];
        let mut placed_len = 0usize;
        let mut extra = 0u64;
        for i in 0..self.d {
            if cvals[i] == 0 {
                taken[i] = true;
                placed_len += 1;
            }
        }
        loop {
            let mut best: Option<usize> = None;
            for i in 0..self.d {
                // MSRV 1.75: spelled without `Option::is_none_or`.
                if !taken[i] && cvals[i] >= 2 && best.map(|b| cvals[i] > cvals[b]).unwrap_or(true) {
                    best = Some(i);
                }
            }
            let Some(i) = best else { break };
            let vcount = cvals[i];
            if placed_len as u8 + 2 > vcount {
                break;
            }
            // Candidate buckets are always locked (base ⊆ held), so the
            // victim read is stable.
            let (vkey, _) = self
                .cell_read_locked(cands[i])
                .expect("counter ≥ 1 ⇒ occupied");
            let vcands = self.candidates(&vkey);
            for &s in vcands.iter().take(self.d) {
                extra |= self.stripe_bit(s);
                if s == cands[i] {
                    continue;
                }
                // Mirror the executor's sibling decrement where it feeds
                // back: only victim copies sitting in *our* candidate set
                // influence later greedy rounds.
                for j in 0..self.d {
                    if cands[j] != s || taken[j] || cvals[j] != vcount {
                        continue;
                    }
                    if matches!(self.cell_read_locked(s), Some((k, _)) if k == vkey) {
                        cvals[j] = vcount - 1;
                    }
                }
            }
            taken[i] = true;
            placed_len += 1;
        }
        if placed_len == 0 {
            return None;
        }
        Some(extra)
    }

    /// Re-check a precomputed kick chain under held locks: every hop
    /// must still be a counter-1 candidate of the previous item.
    /// Returns the terminal occupant, or `None` if the chain went stale.
    fn validate_path(&self, key: &K, path: &[usize]) -> Option<(K, V)> {
        let mut cur = *key;
        let mut terminal = None;
        for &b in path {
            let cands = self.candidates(&cur);
            if !cands.iter().take(self.d).any(|&c| c == b) {
                return None;
            }
            if self.counters[b].load(Ordering::Acquire) != 1 {
                return None;
            }
            let occ = self.cell_read_locked(b)?;
            cur = occ.0;
            terminal = Some(occ);
        }
        terminal
    }

    // ------------------------------------------------------------------
    // Writers: exclusive-access bodies (caller holds covering stripes)
    // ------------------------------------------------------------------

    /// Full upsert under exclusive access to every bucket it may touch
    /// (in practice: the global sweep). This is the original
    /// single-writer path, overwrite-terminal kick walks included.
    fn upsert_excl(
        &self,
        key: K,
        value: V,
        mode: UpsertMode,
        path: &mut Vec<usize>,
    ) -> Result<InsertReport, (K, V)> {
        let cands = self.candidates(&key);
        match mode {
            UpsertMode::Update => {
                if let Some(copies) = self.try_update_excl(&key, &value, &cands) {
                    return Ok(InsertReport {
                        outcome: InsertOutcome::Updated,
                        kickouts: 0,
                        collision: false,
                        copies_written: copies,
                    });
                }
            }
            UpsertMode::KeepExisting => {
                if self.raw_contains_excl(&key) {
                    return Ok(InsertReport {
                        outcome: InsertOutcome::Updated,
                        kickouts: 0,
                        collision: false,
                        copies_written: 0,
                    });
                }
            }
            UpsertMode::AssertAbsent => {}
        }
        if let Some(copies) = self.try_place_excl(&key, &value) {
            self.distinct.fetch_add(1, Ordering::AcqRel);
            return Ok(InsertReport::clean(copies));
        }
        // Real collision: plan a displacement chain through the
        // configured kick policy, then execute it backwards (MemC3
        // ordering) so readers never lose an item.
        let mut rng = self.op_rng();
        if !kick::plan_kick(
            self,
            self.config.kick,
            &key,
            &mut rng,
            false,
            self.maxloop,
            path,
        ) {
            return Err((key, value));
        }
        // Settle the path's terminal occupant first (it has a free or
        // redundant bucket), then shift the chain backwards.
        let last = *path.last().expect("path is non-empty");
        let (terminal_key, terminal_value) = self
            .cell_read_metered(last)
            .expect("path buckets are occupied");
        #[cfg(feature = "testhooks")]
        crate::testhooks::fire_panic_in_kick();
        let placed = self
            .try_place_excl(&terminal_key, &terminal_value)
            .is_some();
        debug_assert!(placed, "terminal item was chosen for its free bucket");
        for w in path.windows(2).rev() {
            let (src, dst) = (w[0], w[1]);
            let item = self
                .cell_read_metered(src)
                .expect("path buckets are occupied");
            self.write_bucket(dst, Some(item), Some(1));
        }
        self.write_bucket(path[0], Some((key, value)), Some(1));
        self.distinct.fetch_add(1, Ordering::AcqRel);
        Ok(InsertReport {
            outcome: InsertOutcome::Placed,
            kickouts: path.len() as u32,
            collision: true,
            copies_written: 1,
        })
    }

    /// In-place update scan: rewrite every live copy of `key`. Returns
    /// the copies updated, or `None` if the key is absent. Caller holds
    /// the candidate stripes.
    fn try_update_excl(&self, key: &K, value: &V, cands: &[usize; MAX_D]) -> Option<u8> {
        let mut existing = [false; MAX_D];
        let mut exists = false;
        self.access.onchip_read(self.d as u64);
        for i in 0..self.d {
            if let Some((k, _)) = self.cell_read_metered(cands[i]) {
                if k == *key && self.counters[cands[i]].load(Ordering::Acquire) > 0 {
                    existing[i] = true;
                    exists = true;
                }
            }
        }
        if !exists {
            return None;
        }
        let mut copies = 0u8;
        for i in 0..self.d {
            if existing[i] {
                self.write_bucket(cands[i], Some((*key, *value)), None);
                copies += 1;
            }
        }
        Some(copies)
    }

    /// Unrecorded presence scan (debug assertions and restores only).
    /// Caller holds the candidate stripes.
    fn raw_contains_excl(&self, key: &K) -> bool {
        let cands = self.candidates(key);
        cands.iter().take(self.d).any(|&c| {
            self.counters[c].load(Ordering::Acquire) != 0
                && matches!(self.cell_read_locked(c), Some((k, _)) if k == *key)
        })
    }

    /// The deletion body. Caller holds the candidate stripes.
    fn remove_excl(&self, key: &K, cands: &[usize; MAX_D]) -> Option<V> {
        let mut value = None;
        let mut locations = [usize::MAX; MAX_D];
        let mut count = 0usize;
        self.access.onchip_read(self.d as u64);
        for &c in cands.iter().take(self.d) {
            if self.counters[c].load(Ordering::Acquire) == 0 {
                continue;
            }
            if let Some((k, v)) = self.cell_read_metered(c) {
                if k == *key {
                    value = Some(v);
                    locations[count] = c;
                    count += 1;
                }
            }
        }
        if count > 0 {
            for &l in &locations[..count] {
                self.write_bucket(l, None, Some(0));
            }
            self.distinct.fetch_sub(1, Ordering::AcqRel);
        }
        value
    }

    /// Place copies by the insertion principles; returns the number of
    /// copies written, or `None` on a real collision. Caller holds every
    /// stripe the placement can touch (the candidate stripes plus, for
    /// overwrites, the victims' candidate stripes — see
    /// [`Self::plan_place`]). Ordering: contents before counters,
    /// sibling decrements before the overwrite's own counter.
    fn try_place_excl(&self, key: &K, value: &V) -> Option<u8> {
        let cands = self.candidates(key);
        let mut cvals = [0u8; MAX_D];
        self.access.onchip_read(self.d as u64);
        for i in 0..self.d {
            cvals[i] = self.counters[cands[i]].load(Ordering::Acquire);
        }
        let mut taken = [false; MAX_D];
        let mut placed = [usize::MAX; MAX_D];
        let mut placed_len = 0usize;
        for i in 0..self.d {
            if cvals[i] == 0 {
                self.write_bucket(cands[i], Some((*key, *value)), None);
                taken[i] = true;
                placed[placed_len] = cands[i];
                placed_len += 1;
            }
        }
        loop {
            let mut best: Option<usize> = None;
            for i in 0..self.d {
                // MSRV 1.75: spelled without `Option::is_none_or`.
                if !taken[i] && cvals[i] >= 2 && best.map(|b| cvals[i] > cvals[b]).unwrap_or(true) {
                    best = Some(i);
                }
            }
            let Some(i) = best else { break };
            if placed_len as u8 + 2 > cvals[i] {
                break;
            }
            self.overwrite_excl(cands[i], cvals[i], key, value, &cands, &mut cvals);
            taken[i] = true;
            placed[placed_len] = cands[i];
            placed_len += 1;
        }
        if placed_len == 0 {
            return None;
        }
        for &p in placed.iter().take(placed_len) {
            self.counters[p].store(placed_len as u8, Ordering::Release);
        }
        self.access.onchip_write(placed_len as u64);
        Some(placed_len as u8)
    }

    /// Write `key` into every currently-empty candidate bucket, setting
    /// the copy counters. Returns copies written (0 when no empties).
    /// Caller holds the candidate stripes.
    fn place_empties_excl(&self, key: &K, value: &V) -> u8 {
        let cands = self.candidates(key);
        let mut placed = [usize::MAX; MAX_D];
        let mut placed_len = 0usize;
        for &c in cands.iter().take(self.d) {
            if self.counters[c].load(Ordering::Acquire) == 0 {
                self.write_bucket(c, Some((*key, *value)), None);
                placed[placed_len] = c;
                placed_len += 1;
            }
        }
        for &p in placed.iter().take(placed_len) {
            self.counters[p].store(placed_len as u8, Ordering::Release);
        }
        self.access.onchip_write(placed_len as u64);
        placed_len as u8
    }

    /// Overwrite the redundant copy at `idx` (count `vcount`), fixing the
    /// victim's siblings. Caller holds the victim's candidate stripes.
    fn overwrite_excl(
        &self,
        idx: usize,
        vcount: u8,
        key: &K,
        value: &V,
        cands: &[usize; MAX_D],
        cvals: &mut [u8; MAX_D],
    ) {
        let (vkey, _) = self.cell_read_metered(idx).expect("counter ≥ 1 ⇒ occupied");
        let vcands = self.candidates(&vkey);
        // New content first: the victim stays reachable via its siblings
        // during the whole update.
        self.write_bucket(idx, Some((*key, *value)), None);
        for &s in vcands.iter().take(self.d) {
            if s == idx {
                continue;
            }
            self.access.onchip_read(1);
            if self.counters[s].load(Ordering::Acquire) != vcount {
                continue;
            }
            // Verify content: another item may share the counter value.
            if let Some((k, _)) = self.cell_read_metered(s) {
                if k == vkey {
                    self.counters[s].store(vcount - 1, Ordering::Release);
                    self.access.onchip_write(1);
                    for i in 0..self.d {
                        if cands[i] == s {
                            cvals[i] = vcount - 1;
                        }
                    }
                }
            }
        }
    }

    /// The validator body. Caller must hold every stripe (or otherwise
    /// guarantee no writer is active).
    fn validate_excl(&self) -> Result<(), String> {
        let total = self.cells.len();
        // 1. All seqlock versions even (no mutation in flight).
        for (i, v) in self.versions.iter().enumerate() {
            let v = v.load(Ordering::Acquire);
            if v % 2 != 0 {
                return Err(format!("bucket {i}: odd version {v} while quiescent"));
            }
        }
        // 2. Counter/content agreement per bucket, and each occupant
        // sits in one of its own candidate buckets.
        let mut occupied: Vec<(usize, K)> = Vec::new();
        for i in 0..total {
            let c = self.counters[i].load(Ordering::Acquire);
            match self.cell_read_locked(i) {
                None if c != 0 => {
                    return Err(format!("bucket {i}: counter {c} but vacant"));
                }
                Some((k, _)) if c == 0 => {
                    let _ = k; // stale content behind counter 0 is a leak
                    return Err(format!("bucket {i}: counter 0 but occupied"));
                }
                Some((k, _)) => {
                    let cands = self.candidates(&k);
                    if !cands.iter().take(self.d).any(|&b| b == i) {
                        return Err(format!("bucket {i}: occupant not a candidate"));
                    }
                    occupied.push((i, k));
                }
                None => {}
            }
        }
        // 3. All copies of a key share counter == copy count; distinct
        // count matches the scan. Copies only live among a key's own
        // candidates, so each occupied bucket is checked against its
        // occupant's d candidate buckets — linear in the table size.
        let mut distinct_seen = 0usize;
        for &(i, ref k) in &occupied {
            let cands = self.candidates(k);
            let mut copies = 0u8;
            let mut first = usize::MAX;
            for &b in cands.iter().take(self.d) {
                if self.counters[b].load(Ordering::Acquire) == 0 {
                    continue;
                }
                if let Some((bk, _)) = self.cell_read_locked(b) {
                    if bk == *k {
                        copies += 1;
                        first = first.min(b);
                    }
                }
            }
            if first == i {
                distinct_seen += 1;
            }
            let c = self.counters[i].load(Ordering::Acquire);
            if c != copies {
                return Err(format!(
                    "bucket {i}: counter {c} but occupant has {copies} copies"
                ));
            }
        }
        let distinct = self.distinct.load(Ordering::Acquire);
        if distinct != distinct_seen {
            return Err(format!(
                "distinct count {distinct} but scan found {distinct_seen}"
            ));
        }
        Ok(())
    }
}

/// The concurrent table as a planning substrate for [`crate::kick`]:
/// one slot per bucket (`l = 1`), counters read with `Acquire`, and
/// occupants read through the seqlock (`cell_read_atomic`) — a planner
/// runs **unlocked**, so a raced removal surfaces as `None` and fails
/// the plan, which the caller re-validates or retries under locks
/// anyway. This is the only kick-walk logic the concurrent table has:
/// all three policies (random-walk, BFS, bubbling) drive the striped
/// plan→lock→re-validate pipeline through the shared planners.
impl<K, V> EvictionGraph for ConcurrentMcCuckoo<K, V>
where
    K: KeyHash + Eq + Copy,
    V: Copy,
{
    type Key = K;

    fn d(&self) -> usize {
        self.d
    }

    fn l(&self) -> usize {
        1
    }

    fn counter(&self, slot: usize) -> u8 {
        self.counters[slot].load(Ordering::Acquire)
    }

    fn cands(&self, key: &K) -> [usize; MAX_D] {
        self.candidates(key)
    }

    fn slot_of(&self, bucket: usize, _slot: usize) -> usize {
        bucket
    }

    fn occupant(&self, slot: usize) -> Option<K> {
        self.access.offchip_read(1);
        self.cell_read_atomic(slot).map(|(k, _)| k)
    }

    fn meter_onchip(&self, n: u64) {
        self.access.onchip_read(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use workloads::UniqueKeys;

    fn table(n: usize, seed: u64) -> ConcurrentMcCuckoo<u64, u64> {
        ConcurrentMcCuckoo::new(McConfig::paper(n, seed))
    }

    /// Under `paranoid` every mutation runs the exhaustive validator, so
    /// the volume tests scale down by this factor to stay fast.
    #[cfg(feature = "paranoid")]
    const SCALE: usize = 10;
    #[cfg(not(feature = "paranoid"))]
    const SCALE: usize = 1;

    #[test]
    fn sequential_roundtrip() {
        let t = table(1_024 / SCALE, 1);
        let mut keys = UniqueKeys::new(2);
        let ks = keys.take_vec(2_000 / SCALE);
        for &k in &ks {
            t.insert(k, k.wrapping_mul(2)).unwrap();
        }
        for &k in &ks {
            assert_eq!(t.get(&k), Some(k.wrapping_mul(2)));
        }
        assert_eq!(t.len(), 2_000 / SCALE);
        for &k in &ks {
            assert_eq!(t.remove(&k), Some(k.wrapping_mul(2)));
            assert_eq!(t.get(&k), None);
        }
        assert!(t.is_empty());
    }

    #[test]
    fn update_in_place() {
        let t = table(64, 3);
        assert_eq!(t.insert(5, 50), Ok(false), "fresh key is a placement");
        assert_eq!(t.insert(5, 51), Ok(true), "live key is an update");
        assert_eq!(t.get(&5), Some(51));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn batched_ops_match_singles() {
        let singles = table(256, 21);
        let batched = table(256, 21);
        let mut keys = UniqueKeys::new(22);
        let items: Vec<(u64, u64)> = keys.take_vec(400).into_iter().map(|k| (k, k + 7)).collect();
        let mut single_results = Vec::new();
        for &(k, v) in &items {
            single_results.push(singles.insert(k, v));
        }
        assert_eq!(batched.insert_batch(&items), single_results);
        assert_eq!(batched.len(), singles.len());
        let ks: Vec<u64> = items.iter().map(|&(k, _)| k).collect();
        assert_eq!(batched.get_batch(&ks), singles.get_batch(&ks));
        // Re-upserting the whole batch reports updates positionally.
        let bumped: Vec<(u64, u64)> = items.iter().map(|&(k, v)| (k, v + 1)).collect();
        assert!(batched.insert_batch(&bumped).iter().all(|r| *r == Ok(true)));
        // Batch removal, with a duplicate: only the first occurrence wins.
        let mut dup = ks.clone();
        dup.push(ks[0]);
        let removed = batched.remove_batch(&dup);
        assert!(removed[..ks.len()].iter().all(|r| r.is_some()));
        assert_eq!(removed[ks.len()], None, "duplicate key already removed");
        assert!(batched.is_empty());
        batched.check_invariants().unwrap();
    }

    #[test]
    fn insert_new_and_clear_roundtrip() {
        let t = table(256 / SCALE, 11);
        let mut keys = UniqueKeys::new(12);
        let ks = keys.take_vec(300 / SCALE);
        for &k in &ks {
            t.insert_new(k, k).unwrap();
        }
        assert_eq!(t.len(), ks.len());
        t.clear();
        assert!(t.is_empty());
        for &k in &ks {
            assert_eq!(t.get(&k), None);
        }
        t.check_invariants().unwrap();
        // A cleared table is fully reusable.
        for &k in &ks {
            t.insert_new(k, k + 1).unwrap();
        }
        assert_eq!(t.get(&ks[0]), Some(ks[0] + 1));
        t.check_invariants().unwrap();
    }

    #[test]
    fn failed_insert_mutates_nothing() {
        let t: ConcurrentMcCuckoo<u64, u64> =
            ConcurrentMcCuckoo::new(McConfig::paper(4, 4).with_maxloop(20));
        let mut keys = UniqueKeys::new(5);
        let mut stored = Vec::new();
        let mut failed = None;
        for _ in 0..40 {
            let k = keys.next_key();
            match t.insert(k, k) {
                Ok(_) => stored.push(k),
                Err((ek, _)) => {
                    failed = Some(ek);
                    break;
                }
            }
        }
        let failed = failed.expect("a 12-bucket table must overflow");
        assert_eq!(t.get(&failed), None, "failed insert must not be visible");
        for k in &stored {
            assert_eq!(t.get(k), Some(*k), "failure must not disturb others");
        }
    }

    #[test]
    fn every_kick_policy_drives_the_striped_path() {
        use crate::config::KickPolicyKind;
        for kind in KickPolicyKind::ALL {
            let t: ConcurrentMcCuckoo<u64, u64> = ConcurrentMcCuckoo::new(
                McConfig::paper(256 / SCALE.min(4), 21).with_kick_policy(kind),
            );
            let mut keys = UniqueKeys::new(22);
            // ~78% load: plenty of real collisions, so every policy's
            // plan actually flows through plan→lock→re-validate.
            let ks = keys.take_vec(600 / SCALE.min(4));
            for &k in &ks {
                t.insert(k, k ^ 1)
                    .unwrap_or_else(|_| panic!("{kind:?}: table overflowed"));
            }
            for &k in &ks {
                assert_eq!(t.get(&k), Some(k ^ 1), "{kind:?}: key lost");
            }
            let s = t.stats();
            assert_eq!(s.kick_policy, kind.label());
            assert!(s.kick_hist.count > 0, "{kind:?}: no kick was exercised");
            t.check_invariants().unwrap();
        }
    }

    #[test]
    fn failed_insert_mutates_nothing_under_every_policy() {
        use crate::config::KickPolicyKind;
        for kind in KickPolicyKind::ALL {
            let t: ConcurrentMcCuckoo<u64, u64> = ConcurrentMcCuckoo::new(
                McConfig::paper(4, 4)
                    .with_maxloop(20)
                    .with_kick_policy(kind),
            );
            let mut keys = UniqueKeys::new(5);
            let mut stored = Vec::new();
            let mut failed = None;
            for _ in 0..40 {
                let k = keys.next_key();
                match t.insert(k, k) {
                    Ok(_) => stored.push(k),
                    Err((ek, _)) => {
                        failed = Some(ek);
                        break;
                    }
                }
            }
            let failed = failed.unwrap_or_else(|| panic!("{kind:?}: 12 buckets must overflow"));
            assert_eq!(t.get(&failed), None, "{kind:?}: failed insert visible");
            for k in &stored {
                assert_eq!(t.get(k), Some(*k), "{kind:?}: failure disturbed others");
            }
            t.check_invariants().unwrap();
        }
    }

    #[test]
    fn stripe_geometry_and_masks() {
        let t = table(256, 13);
        let n = t.stripe_count();
        assert!(n.is_power_of_two() && n <= MAX_STRIPES);
        assert!(t.stripes_quiescent());
        for k in 0..64u64 {
            let m = t.stripe_mask_of(&k);
            assert_ne!(m, 0, "candidate set maps to at least one stripe");
            assert_eq!(m & !t.all_stripes, 0, "mask stays within live stripes");
        }
        // Tiny tables degenerate to one stripe and still work.
        let tiny = table(1, 14);
        assert_eq!(tiny.stripe_count(), 1);
        tiny.insert(9, 90).unwrap();
        assert_eq!(tiny.get(&9), Some(90));
    }

    #[test]
    fn parallel_writers_on_one_table_land_all_keys() {
        // The tentpole property: multiple writers mutate ONE table
        // concurrently (no sharding) and nothing is lost or duplicated.
        const WRITERS: u64 = 4;
        let per = 1_500 / SCALE;
        let t = std::sync::Arc::new(table(4_096 / SCALE, 31));
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let t = t.clone();
                scope.spawn(move || {
                    let mut keys = UniqueKeys::new(100 + w);
                    for k in keys.take_vec(per) {
                        t.insert(k, k ^ w).unwrap();
                    }
                });
            }
        });
        assert_eq!(t.len(), WRITERS as usize * per);
        t.check_invariants().unwrap();
        for w in 0..WRITERS {
            let mut keys = UniqueKeys::new(100 + w);
            for k in keys.take_vec(per) {
                assert_eq!(t.get(&k), Some(k ^ w));
            }
        }
    }

    #[test]
    fn readers_never_lose_stable_keys_during_writer_churn() {
        // The §III.H property: items never become unavailable during
        // relocations. Readers hammer a stable key set while the writer
        // inserts/removes churn keys that force evictions.
        let t = std::sync::Arc::new(table(2_048 / SCALE, 6));
        let mut keys = UniqueKeys::new(7);
        let stable: Vec<u64> = keys.take_vec(2_000 / SCALE);
        for &k in &stable {
            t.insert(k, k ^ 0xABCD).unwrap();
        }
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let misses = std::sync::Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for r in 0..4 {
                let t = t.clone();
                let stable = stable.clone();
                let stop = stop.clone();
                let misses = misses.clone();
                scope.spawn(move || {
                    let mut i = r;
                    while !stop.load(Ordering::Relaxed) {
                        let k = stable[i % stable.len()];
                        if t.get(&k) != Some(k ^ 0xABCD) {
                            misses.fetch_add(1, Ordering::Relaxed);
                        }
                        i += 1;
                    }
                });
            }
            // Writer: churn 20k keys through the table.
            let mut churn = UniqueKeys::new(8);
            let mut window: Vec<u64> = Vec::new();
            for _ in 0..20_000 / SCALE {
                let k = churn.next_key();
                if t.insert(k, k).is_ok() {
                    window.push(k);
                }
                if window.len() > 1_500 / SCALE {
                    let victim = window.remove(0);
                    t.remove(&victim);
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(
            misses.load(Ordering::Relaxed),
            0,
            "stable keys must never be unavailable"
        );
        for &k in &stable {
            assert_eq!(t.get(&k), Some(k ^ 0xABCD));
        }
    }

    #[test]
    fn concurrent_readers_scale_without_poisoning() {
        // Smoke test for read-read parallelism: many readers over a
        // static table agree on every answer.
        let t = std::sync::Arc::new(table(1_024 / SCALE, 9));
        let mut keys = UniqueKeys::new(10);
        let ks: Vec<u64> = keys.take_vec(2_500 / SCALE);
        for &k in &ks {
            t.insert(k, k + 1).unwrap();
        }
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let t = t.clone();
                let ks = ks.clone();
                scope.spawn(move || {
                    for &k in &ks {
                        assert_eq!(t.get(&k), Some(k + 1));
                    }
                });
            }
        });
    }
}
