//! # mccuckoo-core — Multi-copy Cuckoo Hashing (McCuckoo, ICDE 2019)
//!
//! A from-scratch implementation of *Multi-copy Cuckoo Hashing* (Li, Du,
//! Liu, Yang & Cui, ICDE 2019). Instead of committing an inserted item to
//! a single bucket, McCuckoo writes a **copy into every free candidate
//! bucket** and tracks the number of live copies of each bucket's occupant
//! in a compact **on-chip counter array** (2 bits per bucket for d = 3).
//! The counters make collision handling foresighted instead of blind:
//!
//! * a counter ≥ 2 marks a bucket whose occupant has redundant copies —
//!   it can be overwritten without losing anybody (insertion principles,
//!   §III.B.1);
//! * all copies of an item share one counter value, so lookups partition
//!   candidates by value, skip impossible partitions, and probe at most
//!   `S − V + 1` buckets of a partition of size `S` and value `V`
//!   (lookup principles, §III.B.2 / Theorem 3);
//! * a counter of 0 anywhere proves absence (Bloom-filter behaviour);
//! * deletion just zeroes (or tombstones) counters — **no off-chip
//!   writes** (§III.B.3);
//! * insertion failures go to a large **off-chip stash** whose checks are
//!   pre-screened by the counters plus a 1-bit per-bucket flag that rides
//!   along with ordinary bucket reads (§III.E).
//!
//! # Crate layout
//!
//! One shared engine, two instantiations, one public trait:
//!
//! * [`engine`] — the generic multi-copy cuckoo core:
//!   [`Engine`](engine::Engine) holds the shared
//!   insert/lookup/remove/kick-walk/stash control flow, parameterised by
//!   a [`BucketLayout`](engine::BucketLayout) (slots per bucket, victim
//!   slot choice, the two probe strategies),
//! * [`kick`] — the pluggable `KickPolicy` layer: random-walk, BFS, and
//!   bubbling displacement-chain planners shared by the engine and the
//!   concurrent table (configured via
//!   [`KickPolicyKind`]),
//! * [`McCuckoo`] = `Engine<K, V, SingleLayout>` — the single-slot d-ary
//!   table (d = 3 in the paper) with partition-pruned lookups
//!   ([`single`]),
//! * [`BlockedMcCuckoo`] = `Engine<K, V, BlockedLayout>` — the
//!   multi-slot extension ("B-McCuckoo", §III.G; Algorithms 1–3) with
//!   Algorithm-2 lookups ([`blocked`]),
//! * [`McTable`] — the object-safe trait ([`table`]) implemented by both
//!   instantiations, [`ConcurrentMcCuckoo`], and the baseline tables, so
//!   harnesses and benchmarks drive every variant through one interface,
//! * [`counters`] — the packed on-chip counter array,
//! * [`stash`] — off-chip stash structures,
//! * [`concurrent`] — one-writer-many-readers wrapper (§III.H),
//! * [`shard`] — N-way sharded multi-writer serving layer with batched
//!   operations, built from independent [`concurrent`] shards,
//! * [`maint`] — cooperative background maintenance for the sharded
//!   layer: forwarding retirement, automated op-log compaction, managed
//!   snapshots,
//! * [`multiset`] — multiset indexing via an external record arena
//!   (§III.H),
//! * [`invariant`] — exhaustive structural validators used by the test
//!   suite (and after every mutation under the `paranoid` feature).
//!
//! # Quick start
//!
//! ```
//! use mccuckoo_core::{McConfig, McCuckoo};
//!
//! // 3 hash functions × 1024 buckets each, the paper's configuration.
//! let mut table: McCuckoo<u64, &str> = McCuckoo::new(McConfig::paper(1024, 42));
//! table.insert(7, "seven").unwrap();
//! assert_eq!(table.get(&7), Some(&"seven"));
//! assert_eq!(table.get(&8), None);
//! // The first item occupied all three candidate buckets:
//! assert_eq!(table.copy_count(&7), 3);
//! ```

pub mod blocked;
pub mod concurrent;
pub mod config;
pub mod counters;
pub mod engine;
pub mod invariant;
pub mod kick;
pub mod maint;
pub mod map;
pub mod multiset;
pub mod obs;
pub mod oplog;
pub mod pad;
pub mod persist;
pub mod prefetch;
pub mod rehash;
pub mod shard;
pub mod single;
pub mod stash;
pub mod table;
#[cfg(feature = "testhooks")]
pub mod testhooks;

pub use blocked::{BlockedConfig, BlockedMcCuckoo};
pub use concurrent::ConcurrentMcCuckoo;
pub use config::{DeletionMode, KickPolicyKind, McConfig, ResolutionPolicy, StashPolicy};
pub use counters::CounterArray;
pub use engine::McFull;
pub use maint::{CompactReport, Compactor, MaintConfig, MaintHandle, Maintainer, ManagedSnapshot};
pub use map::{GrowError, McMap};
pub use multiset::MultisetIndex;
pub use obs::{Histogram, MaintStats, MigrationStats, OpStats, ShardStats, TableStats};
pub use oplog::{parse_log, LogSink, OpLog, OpRecord, RecoverError, VecSink};
pub use pad::CachePadded;
pub use persist::{BlockedSnapshot, SnapshotOverflow, TableSnapshot};
pub use rehash::{RehashOverflow, RehashReport};
pub use shard::{
    RetireReport, ShardedMcCuckoo, ShardedSnapshot, SplitError, SplitReport,
    SHARDED_SNAPSHOT_FORMAT,
};
pub use single::McCuckoo;
pub use table::McTable;
