//! The shared multi-copy cuckoo engine.
//!
//! [`McCuckoo`](crate::McCuckoo) and
//! [`BlockedMcCuckoo`](crate::BlockedMcCuckoo) are two instantiations of
//! the one [`Engine`] defined here: the single-slot table is the `l = 1`
//! case, the blocked table ("B-McCuckoo", §III.G) the `l`-slot case. The
//! geometry- and probe-strategy differences live in a [`BucketLayout`]
//! implementation; everything else — candidate generation, foresighted
//! insertion, the kick walk, counter maintenance, deletion, the stash —
//! is this module's shared control flow.
//!
//! Layout: `d` sub-tables of `n` buckets of `l` slots off-chip, plus a
//! 1-bit stash flag per *bucket* that travels with the bucket; and an
//! on-chip [`CounterArray`] with one counter per *slot* recording how
//! many live copies the slot's occupant has.
//!
//! ## Insertion principles (§III.B.1, Algorithm 1)
//! 1. copy into **every** candidate bucket with a free slot;
//! 2. never overwrite a slot of value 1;
//! 3. overwrite the rest in decreasing order of value, while the
//!    overwrite still leaves the victim at least as many copies as the
//!    inserted item gains (formally: overwrite value `V` only while the
//!    inserted item's current copy count `c` satisfies `c + 2 ≤ V`).
//!
//! ## Lookup
//! The probe strategy is the paper-mandated per-variant difference and
//! therefore a [`BucketLayout`] hook:
//!
//! * the single-slot layout partitions candidates by counter value,
//!   skips impossible partitions and probes at most `S − V + 1` buckets
//!   of a surviving partition (§III.B.2 / Theorem 3);
//! * the blocked layout follows Algorithm 2: only the bucket-sum-zero
//!   skip is counter-driven ("the lookup routine is more like a
//!   traditional one that does not rely much on the counters").
//!
//! ## Copy-set disambiguation
//! When a redundant copy of victim `B` (copy count `v`) is overwritten,
//! `B`'s remaining copies must be decremented. Every stored entry
//! carries creation-time slot hints (one per candidate table, Fig. 5);
//! copies sit in hinted slots whose counter equals `v`, and when more
//! slots match than copies exist the extras are resolved with
//! verification reads (`DESIGN.md` §4 — the paper leaves this ambiguity
//! implicit).

use hash_kit::{BucketFamily, KeyHash, SplitMix64};
use mem_model::{InsertOutcome, InsertReport, MemMeter};

use crate::config::{DeletionMode, KickPolicyKind, McConfig, ResolutionPolicy};
use crate::counters::CounterArray;
use crate::kick::{self, EvictionGraph};
use crate::obs::{Obs, TableStats};
use crate::stash::Stash;

/// Maximum supported `d` (the paper argues d = 3 suffices in practice).
pub const MAX_D: usize = 4;

/// Slot-hint sentinel: "no copy in this table".
pub(crate) const NO_SLOT: u8 = 0xFF;

/// Seed tweak for the per-slot fingerprint tags. Dedicated salt so the
/// tag byte is independent of every bucket-choice hash.
const TAG_SALT: u64 = 0x7A95_C0DE_5EED_7A65;

/// Broadcast a tag byte across all 8 lanes of a `u64`.
#[inline]
pub(crate) fn swar_broadcast(tag: u8) -> u64 {
    tag as u64 * 0x0101_0101_0101_0101
}

/// SWAR byte-equality mask: bit 7 of each of the first `lanes` bytes is
/// set iff that byte of `packed` equals the broadcast `needle`. Classic
/// zero-byte detection over `packed ^ needle`; lanes past `lanes` are
/// cleared so zero-padding never aliases a real slot.
#[inline]
pub(crate) fn swar_eq_mask(packed: u64, needle: u64, lanes: usize) -> u64 {
    debug_assert!((1..=8).contains(&lanes));
    let x = packed ^ needle;
    let hit = x.wrapping_sub(0x0101_0101_0101_0101) & !x & 0x8080_8080_8080_8080;
    if lanes == 8 {
        hit
    } else {
        hit & ((1u64 << (8 * lanes)) - 1)
    }
}

/// Lane index (0-based byte position) of the lowest set hit in a
/// [`swar_eq_mask`] result.
#[inline]
pub(crate) fn swar_first_lane(mask: u64) -> usize {
    (mask.trailing_zeros() / 8) as usize
}

/// Insertion failure: relocation budget exhausted and no stash configured.
///
/// As with classic cuckoo hashing, the inserted item was placed during
/// the walk and `evicted` is the last displaced victim; every other item
/// remains findable.
#[derive(Debug)]
pub struct McFull<K, V> {
    /// The item that fell out of the table.
    pub evicted: (K, V),
    /// Instrumentation of the failed insertion.
    pub report: InsertReport,
}

/// A stored item plus its copy-location metadata.
#[derive(Debug, Clone)]
pub(crate) struct Entry<K, V> {
    pub(crate) key: K,
    pub(crate) value: V,
    /// Slot of this item's copy in candidate table `t` at creation time
    /// (`NO_SLOT` when table `t` received no copy). Written identically
    /// into every copy; entries can go stale when a sibling copy is
    /// destroyed, so they are always cross-checked against counters (and
    /// content when still ambiguous). Travels with the item off-chip —
    /// the victim read that counter maintenance needs anyway brings it
    /// in for free, sparing most verification reads (Fig. 5).
    pub(crate) hints: [u8; MAX_D],
}

/// Result of a layout's first-hit probe.
#[derive(Debug)]
pub enum Probe {
    /// Slot index of the first copy found.
    Found(usize),
    /// Not in the main table.
    Miss {
        /// Whether stash screening allows the stash lookup.
        check_stash: bool,
    },
}

/// Result of a layout's all-copies probe (deletion/update path).
#[derive(Debug)]
pub enum CopyProbe {
    /// Every live copy of the key.
    Found {
        /// Slot indices of all copies.
        locations: Vec<usize>,
        /// The copy whose value the operation should report (the one the
        /// probe actually read).
        primary: usize,
    },
    /// Not in the main table.
    Miss {
        /// Whether stash screening allows the stash access.
        check_stash: bool,
    },
}

/// The per-variant half of the algorithm: geometry (slots per bucket)
/// and the paper-mandated probe strategies.
///
/// [`SingleLayout`](crate::single::SingleLayout) is the `l = 1`
/// instantiation with partition-pruned lookups;
/// [`BlockedLayout`](crate::blocked::BlockedLayout) is the `l`-slot
/// instantiation with Algorithm 2 lookups.
pub trait BucketLayout: std::fmt::Debug {
    /// XOR tweak applied to the configuration seed for the kick-walk RNG
    /// (keeps the walk streams of distinct variants decorrelated).
    const RNG_TWEAK: u64;

    /// Slots per bucket (`l`).
    fn slots(&self) -> usize;

    /// Draw the victim slot for one kick-walk eviction. The single-slot
    /// layout returns 0 without consuming randomness; the blocked layout
    /// always draws, even for `l = 1`.
    fn draw_slot(&self, rng: &mut SplitMix64) -> usize;

    /// Find the first slot holding `key`, or decide the miss path
    /// (including stash screening). `cands` and `tag` are the key's
    /// candidate buckets and fingerprint, precomputed by the caller so
    /// the batched read path hashes each key exactly once (stage 1
    /// computes them for prefetching; stage 2 probes with them).
    fn probe_first<K: KeyHash + Eq + Clone, V: Clone>(
        t: &Engine<K, V, Self>,
        key: &K,
        cands: &[usize; MAX_D],
        tag: u8,
    ) -> Probe
    where
        Self: Sized;

    /// Locate **all** copies of `key` (deletion principles, §III.B.3).
    /// Same precomputed-`cands`/`tag` contract as
    /// [`BucketLayout::probe_first`].
    fn probe_copies<K: KeyHash + Eq + Clone, V: Clone>(
        t: &Engine<K, V, Self>,
        key: &K,
        cands: &[usize; MAX_D],
        tag: u8,
    ) -> CopyProbe
    where
        Self: Sized;

    /// Stage 1 of the batched read pipeline: consult the on-chip
    /// counters to work out **exactly** which positions a subsequent
    /// [`BucketLayout::probe_first`] on the same key would read, issue a
    /// software prefetch for each, and return them as a [`ProbePlan`]
    /// that stage 2 ([`BucketLayout::probe_planned`]) replays without
    /// re-deriving the pruning. Must be **unmetered** (peek at counters
    /// directly, never through the metered readers): the modelled access
    /// counts of a batched lookup are required to equal the per-key
    /// path's exactly.
    ///
    /// The default covers any layout soundly: it prefetches every
    /// candidate bucket with a non-zero counter (an all-zero bucket is
    /// skipped by every probe strategy) and returns a fallback plan
    /// that makes `probe_planned` take the ordinary `probe_first` path.
    /// Layouts with tighter pruning should override **both** hooks
    /// together.
    fn plan_probe<K: KeyHash + Eq + Clone, V: Clone>(
        t: &Engine<K, V, Self>,
        cands: &[usize; MAX_D],
    ) -> ProbePlan
    where
        Self: Sized,
    {
        let l = t.layout.slots();
        for &c in cands.iter().take(t.d) {
            let base = t.slot_idx(c, 0);
            if (0..l).any(|s| t.counters.get(base + s) != 0) {
                crate::prefetch::prefetch_index(&t.slots, base);
                crate::prefetch::prefetch_index(&t.tags, base);
                crate::prefetch::prefetch_index(&t.flags, c);
            }
        }
        ProbePlan::FALLBACK
    }

    /// Stage 2 of the batched read pipeline: probe with the positions
    /// stage 1 planned (and prefetched), metering exactly like
    /// [`BucketLayout::probe_first`] would. The two stages run against
    /// the same immutable `&Engine`, so the plan cannot go stale; the
    /// replay is therefore equivalent by construction — same result,
    /// same metered counts, same stash-screening decision.
    ///
    /// Also returns the number of off-chip reads the probe performed
    /// (the replay counts its own visits), so the batched path can feed
    /// the probe histogram without bracketing every key in two full
    /// meter snapshots.
    ///
    /// The default ignores the plan and runs `probe_first` under a
    /// snapshot pair, which is trivially equivalent (that's the
    /// fallback contract of the default [`BucketLayout::plan_probe`]).
    fn probe_planned<K: KeyHash + Eq + Clone, V: Clone>(
        t: &Engine<K, V, Self>,
        key: &K,
        cands: &[usize; MAX_D],
        tag: u8,
        plan: &ProbePlan,
    ) -> (Probe, u64)
    where
        Self: Sized,
    {
        let _ = plan;
        let before = t.meter.snapshot();
        let probe = Self::probe_first(t, key, cands, tag);
        let delta = t.meter.snapshot() - before;
        (probe, delta.offchip_reads)
    }
}

/// Output of [`BucketLayout::plan_probe`]: the off-chip positions
/// (slots for the single layout, buckets for the blocked one) that
/// `probe_first` on the same key would visit, in probe order, plus the
/// rule-1 verdict. `FALLBACK` marks "no plan — probe normally".
#[derive(Debug, Clone, Copy)]
pub struct ProbePlan {
    /// Probe positions in visit order (`order[..len]` are valid). A key
    /// is probed at most once per candidate, so `MAX_D` always fits.
    pub(crate) order: [usize; MAX_D],
    pub(crate) len: u8,
    /// Lookup rule 1 fired: a definite miss with zero off-chip reads
    /// and no stash consultation.
    pub(crate) rule1: bool,
}

impl ProbePlan {
    /// The empty non-rule1 plan — and, by the default-hook contract,
    /// the "replay via `probe_first`" sentinel.
    pub(crate) const FALLBACK: ProbePlan = ProbePlan {
        order: [0; MAX_D],
        len: 0,
        rule1: false,
    };
}

/// The generic multi-copy cuckoo table. Use through the
/// [`McCuckoo`](crate::McCuckoo) / [`BlockedMcCuckoo`](crate::BlockedMcCuckoo)
/// aliases.
#[derive(Debug)]
pub struct Engine<K, V, L: BucketLayout> {
    pub(crate) layout: L,
    pub(crate) family: BucketFamily,
    pub(crate) d: usize,
    pub(crate) n: usize,
    pub(crate) deletion: DeletionMode,
    pub(crate) maxloop: u32,
    pub(crate) resolution: ResolutionPolicy,
    /// Kick-walk strategy: the paper's mutate-as-you-walk random walk,
    /// or a plan-first policy (BFS / bubbling) from the [`kick`] layer.
    pub(crate) kick: KickPolicyKind,
    /// Off-chip slots: `(table * n + bucket) * l + slot`.
    pub(crate) slots: Vec<Option<Entry<K, V>>>,
    /// Dense fingerprint plane: one tag byte per slot, same indexing as
    /// `slots`, so a bucket's `l` tags are contiguous and SWAR-comparable
    /// in one `u64` load. Tags are a pure software-side probe filter —
    /// may-match with entry confirmation — and are deliberately left
    /// stale on removal (counters and the entry compare gate occupancy),
    /// so they add **zero** metered off-chip accesses.
    pub(crate) tags: Vec<u8>,
    /// Off-chip 1-bit stash flags, one per bucket (read/written together
    /// with the bucket, so they cost no dedicated accesses on lookups).
    pub(crate) flags: Vec<bool>,
    /// On-chip per-slot copy counters.
    pub(crate) counters: CounterArray,
    /// On-chip 5-bit kick-history counters, one per bucket (MinCounter
    /// policy only).
    pub(crate) kick_history: Option<Vec<u8>>,
    pub(crate) stash: Stash<K, V>,
    pub(crate) stash_policy: crate::config::StashPolicy,
    /// Construction seed (retained for snapshots/rehash derivation).
    pub(crate) seed: u64,
    /// Distinct live keys in the main table.
    pub(crate) distinct: usize,
    /// Cumulative proactive redundant writes (Theorem 2 accounting).
    pub(crate) redundant_writes: u64,
    pub(crate) rng: SplitMix64,
    pub(crate) meter: MemMeter,
    /// Lock-free observability counters (monotonic; survive `clear`).
    pub(crate) obs: Obs,
}

impl<K: KeyHash + Eq + Clone, V: Clone, L: BucketLayout> Engine<K, V, L> {
    /// Build a table from a validated base configuration and a layout.
    pub(crate) fn from_config(config: McConfig, layout: L) -> Self {
        config.validate();
        let family = BucketFamily::new(
            config.family,
            config.d,
            config.buckets_per_table,
            config.seed,
        );
        let l = layout.slots();
        let total_buckets = config.d * config.buckets_per_table;
        let total_slots = total_buckets * l;
        let mut slots = Vec::with_capacity(total_slots);
        slots.resize_with(total_slots, || None);
        Self {
            layout,
            family,
            d: config.d,
            n: config.buckets_per_table,
            deletion: config.deletion,
            maxloop: config.maxloop,
            resolution: config.resolution,
            kick: config.kick,
            slots,
            tags: vec![0u8; total_slots],
            flags: vec![false; total_buckets],
            counters: CounterArray::new(total_slots, config.d as u8),
            kick_history: match config.resolution {
                ResolutionPolicy::MinCounter => Some(vec![0u8; total_buckets]),
                ResolutionPolicy::RandomWalk => None,
            },
            stash: Stash::new(config.stash),
            stash_policy: config.stash,
            seed: config.seed,
            distinct: 0,
            redundant_writes: 0,
            rng: SplitMix64::new(config.seed ^ L::RNG_TWEAK),
            meter: MemMeter::new(),
            obs: Obs::default(),
        }
    }

    /// Reconstruct the base configuration this table is equivalent to
    /// (used by snapshots; note a resized table reports its *current*
    /// geometry).
    pub fn config_snapshot(&self) -> McConfig {
        McConfig {
            d: self.d,
            buckets_per_table: self.n,
            maxloop: self.maxloop,
            resolution: self.resolution,
            kick: self.kick,
            deletion: self.deletion,
            stash: self.stash_policy,
            family: self.family.kind(),
            seed: self.seed,
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Number of hash functions.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Distinct keys stored in the main table.
    pub fn main_len(&self) -> usize {
        self.distinct
    }

    /// Items in the stash.
    pub fn stash_len(&self) -> usize {
        self.stash.len()
    }

    /// Total distinct keys stored (main table + stash).
    pub fn len(&self) -> usize {
        self.distinct + self.stash.len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slot count (`d × buckets_per_table × slots_per_bucket`).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Load ratio: distinct items / slot count (the paper's measure —
    /// note redundant copies do *not* inflate it).
    pub fn load_ratio(&self) -> f64 {
        self.len() as f64 / self.capacity() as f64
    }

    /// Access meter.
    pub fn meter(&self) -> &MemMeter {
        &self.meter
    }

    /// Snapshot of the observability counters (op counts and probe/kick
    /// histograms). Monotonic over the table's lifetime. The snapshot is
    /// labelled with the configured kick policy — one table runs exactly
    /// one policy, so `kick_hist` *is* that policy's walk-length
    /// histogram.
    pub fn stats(&self) -> TableStats {
        let mut s = self.obs.snapshot();
        s.kick_policy = self.kick.label().to_string();
        s
    }

    /// The table's observability recorder. Wrapper layers that serve a
    /// key from *outside* the table proper (e.g. [`crate::McMap`]'s
    /// parked buffer) record the operation here themselves, so
    /// [`Engine::stats`] still counts every logical operation exactly
    /// once.
    pub(crate) fn obs(&self) -> &crate::obs::Obs {
        &self.obs
    }

    /// Deletion mode the table was configured with.
    pub fn deletion_mode(&self) -> DeletionMode {
        self.deletion
    }

    /// Cumulative proactive redundant writes — copies written beyond the
    /// first per placement. Theorem 2 bounds this by
    /// `S · ((d−1)/d + Σ_{t=3..d} (t−2)/(t(t−1)))` (= 5S/6 for d = 3).
    pub fn redundant_writes(&self) -> u64 {
        self.redundant_writes
    }

    /// On-chip bytes consumed by the counter array (plus the kick
    /// history under the MinCounter policy, 5 bits per bucket rounded
    /// up to whole bytes).
    pub fn onchip_bytes(&self) -> usize {
        self.counters.onchip_bytes()
            + self
                .kick_history
                .as_ref()
                .map_or(0, |k| (k.len() * 5).div_ceil(8))
    }

    /// Buckets per sub-table (`n`).
    pub fn buckets_per_table(&self) -> usize {
        self.n
    }

    /// Remove and return every stored item (main table + stash),
    /// leaving the table empty. Host-side maintenance: unmetered except
    /// through the callers that model it (see `rehash`).
    pub(crate) fn drain_items(&mut self) -> Vec<(K, V)> {
        let mut items: Vec<(K, V)> = Vec::with_capacity(self.len());
        for idx in 0..self.slots.len() {
            if self.counters.get(idx) == 0 {
                continue; // vacant (or tombstoned)
            }
            let entry = self.slots[idx].take().expect("counter>0 ⇒ occupied");
            // Emit once per item: clear the counters of all copies so the
            // siblings are skipped when the scan reaches them.
            let locs = self.raw_copy_locations(&entry.key);
            self.counters.set(idx, 0);
            for l in locs {
                self.counters.set(l, 0);
                self.slots[l] = None;
            }
            items.push((entry.key, entry.value));
        }
        for (k, v) in self.stash.drain_all() {
            items.push((k, v));
        }
        self.distinct = 0;
        items
    }

    /// Re-derive hash functions (and optionally the geometry) and clear
    /// all storage planes. Used by rehash/resize.
    pub(crate) fn rebuild_storage(&mut self, new_buckets_per_table: Option<usize>, seed: u64) {
        if let Some(n) = new_buckets_per_table {
            assert!(n > 0, "table must be non-empty");
            self.n = n;
        }
        self.family = self.family.reseeded_with_len(seed, self.n);
        let total_buckets = self.d * self.n;
        let total_slots = total_buckets * self.layout.slots();
        self.slots.clear();
        self.slots.resize_with(total_slots, || None);
        self.tags.clear();
        self.tags.resize(total_slots, 0);
        self.flags.clear();
        self.flags.resize(total_buckets, false);
        self.counters = CounterArray::new(total_slots, self.d as u8);
        if let Some(h) = &mut self.kick_history {
            h.clear();
            h.resize(total_buckets, 0);
        }
        self.distinct = 0;
        self.redundant_writes = 0;
    }

    /// Remove every item, keeping geometry and hash functions.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.tags.fill(0);
        self.flags.fill(false);
        self.counters.reset();
        if let Some(h) = &mut self.kick_history {
            h.fill(0);
        }
        let _ = self.stash.drain_all();
        self.distinct = 0;
        self.redundant_writes = 0;
    }

    // ------------------------------------------------------------------
    // Geometry helpers
    // ------------------------------------------------------------------

    /// Global bucket indices of `key`'s `d` candidates.
    #[inline]
    pub(crate) fn candidate_buckets(&self, key: &K) -> [usize; MAX_D] {
        let mut raw = [0usize; MAX_D];
        self.family.buckets_into(key, &mut raw[..self.d]);
        let mut out = [usize::MAX; MAX_D];
        for i in 0..self.d {
            out[i] = i * self.n + raw[i];
        }
        out
    }

    /// Global slot index of `(bucket, slot)`.
    #[inline]
    pub(crate) fn slot_idx(&self, bucket: usize, slot: usize) -> usize {
        bucket * self.layout.slots() + slot
    }

    /// Fingerprint byte of `key` for the tag plane (top byte of a
    /// dedicated-salt hash, independent of the bucket-choice hashes).
    #[inline]
    pub(crate) fn tag_of(&self, key: &K) -> u8 {
        (key.hash_seeded(self.seed ^ TAG_SALT) >> 56) as u8
    }

    /// The `l` tag bytes of `bucket`, packed little-endian into a `u64`
    /// (lane `s` = slot `s`; lanes ≥ `l` zero). One load when `l = 8`.
    #[inline]
    pub(crate) fn bucket_tags(&self, bucket: usize) -> u64 {
        let l = self.layout.slots();
        let base = bucket * l;
        let mut packed = 0u64;
        for (s, &t) in self.tags[base..base + l].iter().enumerate() {
            packed |= (t as u64) << (8 * s);
        }
        packed
    }

    /// Sum of a bucket's slot counters (on-chip, metered by caller).
    pub(crate) fn bucket_sum(&self, bucket: usize) -> u32 {
        (0..self.layout.slots())
            .map(|s| self.counters.get(self.slot_idx(bucket, s)) as u32)
            .sum()
    }

    /// Meter one on-chip read per slot counter of the candidate set.
    pub(crate) fn meter_counter_scan(&self) {
        self.meter
            .onchip_read((self.d * self.layout.slots()) as u64);
    }

    // ------------------------------------------------------------------
    // Insertion (Algorithm 1, generalised to the d-ary principles)
    // ------------------------------------------------------------------

    /// Upsert: update the value if `key` exists (all copies are
    /// rewritten), otherwise insert it fresh.
    pub fn insert(&mut self, key: K, value: V) -> Result<InsertReport, McFull<K, V>> {
        if let Some(report) = self.try_update(&key, &value) {
            self.obs.record_insert(&report);
            return Ok(report);
        }
        self.insert_new(key, value)
    }

    /// Insert a key **known to be absent** (checked in debug builds).
    /// This is the operation the paper's experiments measure; the
    /// existence probe of [`Engine::insert`] is skipped.
    pub fn insert_new(&mut self, key: K, value: V) -> Result<InsertReport, McFull<K, V>> {
        let out = self.insert_new_unrecorded(key, value);
        match &out {
            Ok(report) => self.obs.record_insert(report),
            Err(full) => self.obs.record_insert(&full.report),
        }
        out
    }

    /// [`Engine::insert`] without observability recording. Wrapper
    /// layers that can rescue a full-table failure (e.g.
    /// [`crate::McMap`]'s growth path) go through this and record the
    /// *final* outcome once via [`Engine::obs`], so a rescued insert is
    /// never counted as the `Failed` the inner table saw.
    pub(crate) fn insert_unrecorded(
        &mut self,
        key: K,
        value: V,
    ) -> Result<InsertReport, McFull<K, V>> {
        if let Some(report) = self.try_update(&key, &value) {
            return Ok(report);
        }
        self.insert_new_unrecorded(key, value)
    }

    /// [`Engine::insert_new`] without observability recording. Internal
    /// re-insert paths — stash refresh, rehash, snapshot restore — go
    /// through this so one logical user operation is never counted twice.
    pub(crate) fn insert_new_unrecorded(
        &mut self,
        key: K,
        value: V,
    ) -> Result<InsertReport, McFull<K, V>> {
        debug_assert!(
            self.raw_find(&key).is_none() && !self.raw_in_stash(&key),
            "insert_new requires a fresh key"
        );
        let cands = self.candidate_buckets(&key);
        self.meter_counter_scan();
        if let Some(copies) = self.try_place(&key, &value, &cands) {
            self.distinct += 1;
            self.check_paranoid();
            return Ok(InsertReport::clean(copies));
        }
        let out = self.resolve_collision(key, value);
        self.check_paranoid();
        out
    }

    /// Apply the insertion principles over the candidate buckets. Claims
    /// at most one slot per bucket, writes all copies with a shared hint
    /// set, finalizes counters. `None` on a real collision (all `d·l`
    /// candidate counters equal 1).
    fn try_place(&mut self, key: &K, value: &V, cands: &[usize; MAX_D]) -> Option<u8> {
        let l = self.layout.slots();
        let mut claimed: [Option<u8>; MAX_D] = [None; MAX_D];
        let mut claimed_len = 0usize;

        // Principle 1: one copy into every bucket with a free slot
        // (counter 0 reads as empty for insertion; tombstones too).
        for i in 0..self.d {
            if let Some(s) = (0..l).find(|&s| self.counters.get(self.slot_idx(cands[i], s)) == 0) {
                claimed[i] = Some(s as u8);
                claimed_len += 1;
            }
        }

        // Principles 2+3: overwrite redundant copies, highest counter
        // value first, while the inserted item still ends up no more
        // redundant than the diminished victim (c + 2 ≤ V); among
        // buckets offering the same value, prefer the most "available"
        // bucket (largest counter sum — Algorithm 1's sort key; a
        // degenerate tie at l = 1). Victim bookkeeping happens at claim
        // time; the content write is deferred so every copy can carry
        // the complete hint set.
        for target in (2..=self.d as u8).rev() {
            loop {
                if claimed_len as u8 + 2 > target {
                    break;
                }
                let mut best: Option<(usize, usize, u32)> = None; // (i, slot, sum)
                for i in 0..self.d {
                    if claimed[i].is_some() {
                        continue;
                    }
                    let Some(s) =
                        (0..l).find(|&s| self.counters.get(self.slot_idx(cands[i], s)) == target)
                    else {
                        continue;
                    };
                    let sum = self.bucket_sum(cands[i]);
                    // MSRV 1.75: spelled without `Option::is_none_or`.
                    if best.map(|(_, _, bs)| sum > bs).unwrap_or(true) {
                        best = Some((i, s, sum));
                    }
                }
                let Some((i, s, _)) = best else { break };
                self.decrement_victim_siblings(cands[i], s);
                claimed[i] = Some(s as u8);
                claimed_len += 1;
            }
        }

        if claimed_len == 0 {
            debug_assert!(
                (0..self.d)
                    .all(|i| (0..l).all(|s| self.counters.get(self.slot_idx(cands[i], s)) == 1)),
                "collision ⇔ all ones"
            );
            return None;
        }
        self.write_copies(key, value, cands, &claimed, claimed_len);
        Some(claimed_len as u8)
    }

    /// Read the victim in `(bucket, slot)` (about to be overwritten) and
    /// decrement its siblings' counters, located through its verified
    /// hints (copy-set disambiguation).
    fn decrement_victim_siblings(&mut self, bucket: usize, slot: usize) {
        let idx = self.slot_idx(bucket, slot);
        let vcount = self.counters.get(idx);
        debug_assert!(vcount >= 2, "principle 2: never overwrite value 1");
        // The victim's identity (and hint set) is needed to locate its
        // siblings: one off-chip read.
        self.meter.offchip_read(1);
        let victim = self.slots[idx].as_ref().expect("counter ≥ 1 ⇒ occupied");
        let vkey = victim.key.clone();
        let vhints = victim.hints;
        let siblings = self.locate_siblings(&vkey, &vhints, vcount, idx);
        debug_assert_eq!(siblings.len(), vcount as usize - 1);
        self.meter.onchip_write(siblings.len() as u64);
        for sidx in siblings {
            self.counters.set(sidx, vcount - 1);
        }
    }

    /// Locate the live sibling copies of `key` (total `count` copies,
    /// excluding the one at `exclude`), using its hint set verified
    /// against counters and, when ambiguous, slot contents.
    pub(crate) fn locate_siblings(
        &self,
        key: &K,
        hints: &[u8; MAX_D],
        count: u8,
        exclude: usize,
    ) -> Vec<usize> {
        let cands = self.candidate_buckets(key);
        self.meter.onchip_read(self.d as u64);
        let needed = count as usize - 1;
        let matches: Vec<usize> = (0..self.d)
            .filter(|&t| hints[t] != NO_SLOT)
            .map(|t| self.slot_idx(cands[t], hints[t] as usize))
            .filter(|&p| p != exclude && self.counters.get(p) == count)
            .collect();
        debug_assert!(matches.len() >= needed, "copies must be among matches");
        if matches.len() == needed {
            return matches;
        }
        // Ambiguous: verify contents until the remainder is forced. The
        // tag plane pre-filters the entry compare (a mismatched tag
        // byte proves a different occupant without dereferencing the
        // `Option<Entry>`); the verification read is still metered —
        // the modelled system fetched the slot either way — so the
        // access counts are bit-identical to the untagged scan.
        let tag = self.tag_of(key);
        let mut confirmed = Vec::with_capacity(needed);
        for (pos, &m) in matches.iter().enumerate() {
            if confirmed.len() == needed {
                break;
            }
            if matches.len() - pos == needed - confirmed.len() {
                confirmed.extend_from_slice(&matches[pos..]);
                break;
            }
            self.meter.verify_read(1);
            if self.tags[m] == tag && self.slots[m].as_ref().is_some_and(|e| e.key == *key) {
                confirmed.push(m);
            }
        }
        debug_assert_eq!(confirmed.len(), needed);
        confirmed
    }

    /// Write the claimed copies with a shared hint set and finalize
    /// counters.
    fn write_copies(
        &mut self,
        key: &K,
        value: &V,
        cands: &[usize; MAX_D],
        claimed: &[Option<u8>; MAX_D],
        claimed_len: usize,
    ) {
        let mut hints = [NO_SLOT; MAX_D];
        for i in 0..self.d {
            if let Some(s) = claimed[i] {
                hints[i] = s;
            }
        }
        self.meter.offchip_write(claimed_len as u64);
        self.meter.onchip_write(claimed_len as u64);
        let tag = self.tag_of(key);
        for i in 0..self.d {
            let Some(s) = claimed[i] else { continue };
            let idx = self.slot_idx(cands[i], s as usize);
            self.slots[idx] = Some(Entry {
                key: key.clone(),
                value: value.clone(),
                hints,
            });
            self.tags[idx] = tag;
            self.counters.set(idx, claimed_len as u8);
        }
        self.redundant_writes += claimed_len as u64 - 1;
    }

    /// Collision resolution: the counters have already proven that every
    /// candidate slot holds a sole copy, so a displacement chain is
    /// needed. Dispatch on the configured [`KickPolicyKind`]: the
    /// paper's random walk mutates as it goes (§III.D, preserved
    /// bit-for-bit); BFS and bubbling plan a complete chain through the
    /// [`kick`] layer first and execute it only if it exists, so their
    /// failed inserts leave the main table untouched.
    fn resolve_collision(&mut self, key: K, value: V) -> Result<InsertReport, McFull<K, V>> {
        match self.kick {
            KickPolicyKind::RandomWalk => self.resolve_collision_walk(key, value),
            KickPolicyKind::Bfs | KickPolicyKind::Bubble => {
                self.resolve_collision_planned(key, value)
            }
        }
    }

    /// The paper's mutate-as-you-walk random walk (§III.D): each step
    /// re-applies the insertion principles for the carried item and the
    /// counters pinpoint a usable slot the moment one exists on the
    /// walk. On budget exhaustion the relocations stay in place and the
    /// *last carried* item is stashed (classic cuckoo failure
    /// semantics).
    fn resolve_collision_walk(&mut self, key: K, value: V) -> Result<InsertReport, McFull<K, V>> {
        let mut kickouts = 0u32;
        let mut carried_key = key;
        let mut carried_value = value;
        let mut prev_bucket = usize::MAX;
        loop {
            if kickouts >= self.maxloop {
                return self.stash_item(carried_key, carried_value, kickouts);
            }
            #[cfg(feature = "testhooks")]
            crate::testhooks::fire_panic_in_kick();
            let cands = self.candidate_buckets(&carried_key);
            let vi = self.pick_victim(&cands, prev_bucket);
            let vb = cands[vi];
            let vslot = self.layout.draw_slot(&mut self.rng);
            let idx = self.slot_idx(vb, vslot);
            debug_assert_eq!(self.counters.get(idx), 1, "walk only sees sole copies");
            let mut hints = [NO_SLOT; MAX_D];
            hints[vi] = vslot as u8;
            // Swap the carried item into the victim's slot: one read
            // (victim identity) + one write. Counter stays 1 (sole copy
            // out, sole copy in).
            self.meter.offchip_read(1);
            self.meter.offchip_write(1);
            let tag = self.tag_of(&carried_key);
            let old = self.slots[idx]
                .replace(Entry {
                    key: carried_key,
                    value: carried_value,
                    hints,
                })
                .expect("victims hold sole copies");
            self.tags[idx] = tag;
            carried_key = old.key;
            carried_value = old.value;
            prev_bucket = vb;
            kickouts += 1;
            // Try to settle the evicted item by the normal principles.
            let cands = self.candidate_buckets(&carried_key);
            self.meter_counter_scan();
            if let Some(copies) = self.try_place(&carried_key, &carried_value, &cands) {
                self.distinct += 1;
                return Ok(InsertReport {
                    outcome: InsertOutcome::Placed,
                    kickouts,
                    collision: true,
                    copies_written: copies,
                });
            }
        }
    }

    /// Plan-first collision resolution (BFS / bubbling): ask the [`kick`]
    /// layer for a complete displacement chain, then execute it —
    /// settle the terminal occupant by the ordinary insertion
    /// principles, shift the chain backward one slot each, write the
    /// inserted key into the freed front slot. Planning only reads, so
    /// a plan failure stashes the *original* key with the main table
    /// strictly untouched (no unwind log needed — contrast with the
    /// random walk, which leaves its relocations in place).
    fn resolve_collision_planned(
        &mut self,
        key: K,
        value: V,
    ) -> Result<InsertReport, McFull<K, V>> {
        let mut path = Vec::new();
        // The planner borrows the table immutably; lend it the RNG.
        let mut rng = std::mem::replace(&mut self.rng, SplitMix64::new(0));
        let planned = kick::plan_kick(
            &*self,
            self.kick,
            &key,
            &mut rng,
            false,
            self.maxloop,
            &mut path,
        );
        self.rng = rng;
        if !planned {
            return self.stash_item(key, value, 0);
        }
        #[cfg(feature = "testhooks")]
        crate::testhooks::fire_panic_in_kick();
        let l = self.layout.slots();
        let kickouts = path.len() as u32;

        // 1. Settle the terminal occupant via the insertion principles.
        //    The planner guaranteed a counter-0 slot or an overwritable
        //    redundant copy among its candidates, and nothing has moved
        //    since (sequential table), so this cannot fail. Its `distinct`
        //    was counted when it first entered the table; its stale copy
        //    at the terminal slot is overwritten in step 2.
        let last = *path.last().expect("planned chains are non-empty");
        self.meter.offchip_read(1);
        let terminal = self.slots[last]
            .as_ref()
            .expect("chain slots hold sole copies");
        let (tkey, tvalue) = (terminal.key.clone(), terminal.value.clone());
        let tcands = self.candidate_buckets(&tkey);
        self.meter_counter_scan();
        let copies = self
            .try_place(&tkey, &tvalue, &tcands)
            .expect("planned terminal occupant must settle");

        // 2. Shift the chain backward: the occupant of `path[w]` moves
        //    into `path[w+1]` (just vacated logically). Sole copies move
        //    between sole-copy slots, so every counter on the chain stays
        //    1; each hop is one victim read + one write, like a walk hop.
        for w in (0..path.len() - 1).rev() {
            let (src, dst) = (path[w], path[w + 1]);
            self.meter.offchip_read(1);
            self.meter.offchip_write(1);
            let e = self.slots[src]
                .as_ref()
                .expect("chain slots hold sole copies");
            let (mkey, mvalue) = (e.key.clone(), e.value.clone());
            let mcands = self.candidate_buckets(&mkey);
            let dst_bucket = dst / l;
            let t = (0..self.d)
                .find(|&t| mcands[t] == dst_bucket)
                .expect("chain hop lands in a candidate bucket");
            let mut hints = [NO_SLOT; MAX_D];
            hints[t] = (dst % l) as u8;
            let tag = self.tag_of(&mkey);
            self.slots[dst] = Some(Entry {
                key: mkey,
                value: mvalue,
                hints,
            });
            self.tags[dst] = tag;
        }

        // 3. The front slot now belongs to the inserted key (sole copy).
        let s0 = path[0];
        let cands = self.candidate_buckets(&key);
        let t = (0..self.d)
            .find(|&t| cands[t] == s0 / l)
            .expect("chains start at a candidate of the inserted key");
        let mut hints = [NO_SLOT; MAX_D];
        hints[t] = (s0 % l) as u8;
        self.meter.offchip_write(1);
        let tag = self.tag_of(&key);
        self.slots[s0] = Some(Entry { key, value, hints });
        self.tags[s0] = tag;
        self.distinct += 1;
        Ok(InsertReport {
            outcome: InsertOutcome::Placed,
            kickouts,
            collision: true,
            copies_written: copies,
        })
    }

    /// Choose the candidate index to evict from, excluding `prev_bucket`.
    fn pick_victim(&mut self, cands: &[usize; MAX_D], prev_bucket: usize) -> usize {
        match self.resolution {
            ResolutionPolicy::RandomWalk => loop {
                let i = self.rng.next_below(self.d as u64) as usize;
                if cands[i] != prev_bucket {
                    return i;
                }
            },
            ResolutionPolicy::MinCounter => {
                let hist = self.kick_history.as_ref().expect("policy has history");
                self.meter.onchip_read(self.d as u64);
                let mut best: Vec<usize> = Vec::with_capacity(self.d);
                let mut best_val = u8::MAX;
                for i in 0..self.d {
                    if cands[i] == prev_bucket {
                        continue;
                    }
                    let h = hist[cands[i]];
                    match h.cmp(&best_val) {
                        std::cmp::Ordering::Less => {
                            best_val = h;
                            best.clear();
                            best.push(i);
                        }
                        std::cmp::Ordering::Equal => best.push(i),
                        std::cmp::Ordering::Greater => {}
                    }
                }
                let pick = best[self.rng.next_below(best.len() as u64) as usize];
                let hist = self.kick_history.as_mut().unwrap();
                hist[cands[pick]] = (hist[cands[pick]] + 1).min(31); // 5-bit saturating
                self.meter.onchip_write(1);
                pick
            }
        }
    }

    /// Stash a failed item and raise the flags of its candidates
    /// (§III.E): d posted flag writes.
    fn stash_item(
        &mut self,
        key: K,
        value: V,
        kickouts: u32,
    ) -> Result<InsertReport, McFull<K, V>> {
        let cands = self.candidate_buckets(&key);
        let report = InsertReport {
            outcome: InsertOutcome::Stashed,
            kickouts,
            collision: true,
            copies_written: 0,
        };
        match self.stash.push(key, value, &self.meter) {
            Ok(()) => {
                self.meter.offchip_write(self.d as u64);
                for &c in cands.iter().take(self.d) {
                    self.flags[c] = true;
                }
                Ok(report)
            }
            Err((key, value)) => Err(McFull {
                evicted: (key, value),
                report: InsertReport {
                    outcome: InsertOutcome::Failed,
                    ..report
                },
            }),
        }
    }

    /// If `key` exists, rewrite the value of every copy (and/or the stash
    /// entry) and return an `Updated` report.
    fn try_update(&mut self, key: &K, value: &V) -> Option<InsertReport> {
        match L::probe_copies(self, key, &self.candidate_buckets(key), self.tag_of(key)) {
            CopyProbe::Found { locations, .. } => {
                self.meter.offchip_write(locations.len() as u64);
                for &l in &locations {
                    let hints = self.slots[l].as_ref().expect("copy occupied").hints;
                    self.slots[l] = Some(Entry {
                        key: key.clone(),
                        value: value.clone(),
                        hints,
                    });
                }
                Some(InsertReport {
                    outcome: InsertOutcome::Updated,
                    kickouts: 0,
                    collision: false,
                    copies_written: locations.len() as u8,
                })
            }
            CopyProbe::Miss { check_stash } => {
                if check_stash {
                    if let Some(v) = self.stash_update(key, value) {
                        return Some(v);
                    }
                }
                None
            }
        }
    }

    fn stash_update(&mut self, key: &K, value: &V) -> Option<InsertReport> {
        // Linear/hashed stash: remove + re-push keeps the metering honest.
        let _old = self.stash.remove(key, &self.meter)?;
        self.stash
            .push(key.clone(), value.clone(), &self.meter)
            .ok()
            .expect("stash accepted this key before");
        Some(InsertReport {
            outcome: InsertOutcome::Updated,
            kickouts: 0,
            collision: false,
            copies_written: 0,
        })
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    /// Look up `key` using the layout's probe strategy and the stash
    /// screening rules (§III.E–F).
    pub fn get(&self, key: &K) -> Option<&V> {
        self.get_prepared(key, &self.candidate_buckets(key), self.tag_of(key))
    }

    /// [`Engine::get`] with the key's candidate buckets and tag already
    /// in hand. The batched path computes both during its planning stage
    /// and probes with them here, so each key is hashed exactly once per
    /// batch; metering is identical because every meter call lives
    /// inside the probe bodies and the stash, not in the hashing.
    fn get_prepared(&self, key: &K, cands: &[usize; MAX_D], tag: u8) -> Option<&V> {
        let before = self.meter.snapshot();
        let found = match L::probe_first(self, key, cands, tag) {
            Probe::Found(idx) => self.slots[idx].as_ref().map(|e| &e.value),
            Probe::Miss { check_stash } => {
                if check_stash {
                    self.stash.get(key, &self.meter)
                } else {
                    None
                }
            }
        };
        let delta = self.meter.snapshot() - before;
        self.obs
            .record_lookup(found.is_some(), delta.offchip_reads + delta.stash_reads);
        found
    }

    /// Stage 2 of the batched pipeline: like [`Engine::get_prepared`]
    /// but probing through the layout's plan replay
    /// ([`BucketLayout::probe_planned`]) instead of a fresh
    /// `probe_first` — the plan was computed against this same immutable
    /// `&self`, so the result and every metered count are identical.
    /// Returns the probe count instead of recording it: the caller
    /// tallies per-key outcomes locally and flushes the whole batch's
    /// observability in one [`Obs::absorb_lookups`] pass.
    fn get_planned(
        &self,
        key: &K,
        cands: &[usize; MAX_D],
        tag: u8,
        plan: &ProbePlan,
    ) -> (Option<&V>, u64) {
        let (probe, mut probes) = L::probe_planned(self, key, cands, tag, plan);
        let found = match probe {
            Probe::Found(idx) => self.slots[idx].as_ref().map(|e| &e.value),
            Probe::Miss { check_stash } => {
                if check_stash {
                    // Rare path: only a stash consultation needs the
                    // full snapshot bracket (its reads are metered
                    // inside the stash).
                    let before = self.meter.snapshot();
                    let v = self.stash.get(key, &self.meter);
                    let delta = self.meter.snapshot() - before;
                    probes += delta.offchip_reads + delta.stash_reads;
                    v
                } else {
                    None
                }
            }
        };
        (found, probes)
    }

    /// Whether `key` is stored (main table or stash).
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Batched lookup: one result per key, in order, exactly equivalent
    /// to calling [`Engine::get`] per key (same hits, same misses, same
    /// metered access counts, same per-lookup observability records —
    /// plus one batch-size sample).
    ///
    /// The throughput win comes from an interleaved two-stage state
    /// machine over fixed-size chunks, the software analogue of the
    /// paper's FPGA pipeline: stage 1 hashes every key of the chunk,
    /// consults the on-chip counters to find the buckets a probe will
    /// actually touch, and issues a software prefetch for each of them;
    /// stage 2 runs the ordinary probe, by which time the lines are in
    /// flight. Counter reads in stage 1 are on-chip and the prefetches
    /// are hints, so the modelled access counts cannot change.
    pub fn lookup_batch(&self, keys: &[K]) -> Vec<Option<V>> {
        /// Keys in flight per pipeline round: enough outstanding loads
        /// to cover DRAM latency, small enough to stay in the L1 TLB.
        const BATCH_CHUNK: usize = 16;
        self.obs.record_batch(keys.len());
        let mut out = Vec::with_capacity(keys.len());
        let mut cands_buf = [[usize::MAX; MAX_D]; BATCH_CHUNK];
        let mut tag_buf = [0u8; BATCH_CHUNK];
        let mut plan_buf = [ProbePlan::FALLBACK; BATCH_CHUNK];
        let mut tally = crate::obs::LookupTally::default();
        for chunk in keys.chunks(BATCH_CHUNK) {
            for (i, key) in chunk.iter().enumerate() {
                cands_buf[i] = self.candidate_buckets(key);
                tag_buf[i] = self.tag_of(key);
                // The on-chip counters tell stage 1 exactly which lines
                // the probe will fetch; prefetch them and keep the plan.
                plan_buf[i] = L::plan_probe(self, &cands_buf[i]);
            }
            for (i, key) in chunk.iter().enumerate() {
                let (found, probes) =
                    self.get_planned(key, &cands_buf[i], tag_buf[i], &plan_buf[i]);
                tally.record(found.is_some(), probes);
                out.push(found.cloned());
            }
        }
        self.obs.absorb_lookups(&tally);
        out
    }

    /// Number of live copies of `key` in the main table (0 if absent or
    /// stashed). Unmetered diagnostic.
    pub fn copy_count(&self, key: &K) -> u8 {
        self.raw_find(key).map_or(0, |idx| self.counters.get(idx))
    }

    /// Stash screening (§III.E–F): decide whether a failed main-table
    /// lookup needs to consult the stash.
    pub(crate) fn stash_screen(&self, cands: &[usize; MAX_D], visited_flags_ok: bool) -> bool {
        if !self.stash.enabled() || self.stash.is_empty() {
            return false;
        }
        match self.deletion {
            // Counters never increase while deletions are disabled, and a
            // stashed item saw all-ones; any other value excludes it.
            DeletionMode::Disabled => {
                let l = self.layout.slots();
                let all_ones = (0..self.d)
                    .all(|i| (0..l).all(|s| self.counters.get(self.slot_idx(cands[i], s)) == 1));
                all_ones && visited_flags_ok
            }
            // With deletions, re-occupied buckets may carry any counter;
            // only the flags of actually-visited buckets can veto
            // (§III.F), at the price of more false positives.
            DeletionMode::Reset | DeletionMode::Tombstone => visited_flags_ok,
        }
    }

    // ------------------------------------------------------------------
    // Deletion (Algorithm 3)
    // ------------------------------------------------------------------

    /// Remove `key`, returning its value. Copies are erased by counter
    /// updates only — **zero off-chip writes** (§III.B.3).
    ///
    /// # Panics
    /// Panics if the table was configured with
    /// [`DeletionMode::Disabled`].
    pub fn remove(&mut self, key: &K) -> Option<V> {
        assert!(
            self.deletion != DeletionMode::Disabled,
            "this table was configured with DeletionMode::Disabled"
        );
        let out = match L::probe_copies(self, key, &self.candidate_buckets(key), self.tag_of(key)) {
            CopyProbe::Found { locations, primary } => {
                self.meter.onchip_write(locations.len() as u64);
                #[cfg(feature = "testhooks")]
                let skip_first = crate::testhooks::take_skip_counter_reset();
                #[cfg(not(feature = "testhooks"))]
                let skip_first = false;
                for (i, &l) in locations.iter().enumerate() {
                    if skip_first && i == 0 {
                        continue;
                    }
                    match self.deletion {
                        DeletionMode::Reset => self.counters.set(l, 0),
                        DeletionMode::Tombstone => self.counters.set_tombstone(l),
                        DeletionMode::Disabled => unreachable!(),
                    }
                }
                // Physical reclamation: the modelled system leaves stale
                // bytes to be overwritten later; dropping them here costs
                // no modelled write and keeps the `counter = 0 ⇔ vacant`
                // invariant tight.
                let mut value = None;
                for &l in &locations {
                    let e = self.slots[l].take();
                    if l == primary {
                        value = e.map(|e| e.value);
                    }
                }
                self.distinct -= 1;
                value
            }
            CopyProbe::Miss { check_stash } => {
                if check_stash {
                    self.stash.remove(key, &self.meter)
                } else {
                    None
                }
            }
        };
        self.obs.record_remove(out.is_some());
        self.check_paranoid();
        out
    }

    // ------------------------------------------------------------------
    // Stash maintenance
    // ------------------------------------------------------------------

    /// Re-synchronise the stash flags (§III.F): clear every flag, then
    /// re-insert all stashed items (which either settle in the table or
    /// re-stash and re-raise their flags). Returns how many items left
    /// the stash. The bulk flag clear is metered as one write per bucket.
    pub fn refresh_stash(&mut self) -> usize {
        self.meter.offchip_write(self.flags.len() as u64);
        self.flags.fill(false);
        let items = self.stash.drain_all();
        let before = items.len();
        for (k, v) in items {
            // Unrecorded insert_new: stash keys are never in the main
            // table, and a refresh is maintenance, not a user insert.
            let _ = self.insert_new_unrecorded(k, v);
        }
        before - self.stash.len()
    }

    // ------------------------------------------------------------------
    // Iteration & diagnostics (unmetered)
    // ------------------------------------------------------------------

    /// Iterate distinct `(key, value)` pairs (main table, then stash).
    /// Unmetered: iteration is a host-side maintenance operation.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(move |(idx, s)| {
                let e = s.as_ref()?;
                // Emit an item only at its smallest copy location.
                let locs = self.raw_copy_locations(&e.key);
                (locs.iter().min() == Some(&idx)).then_some((&e.key, &e.value))
            })
            .chain(self.stash.iter())
    }

    /// Unmetered: the first candidate slot holding `key`, if any.
    pub(crate) fn raw_find(&self, key: &K) -> Option<usize> {
        let cands = self.candidate_buckets(key);
        let l = self.layout.slots();
        for &c in cands.iter().take(self.d) {
            for s in 0..l {
                let idx = self.slot_idx(c, s);
                if self.slots[idx].as_ref().is_some_and(|e| e.key == *key) {
                    return Some(idx);
                }
            }
        }
        None
    }

    pub(crate) fn raw_in_stash(&self, key: &K) -> bool {
        self.stash.iter().any(|(k, _)| k == key)
    }

    /// Unmetered: every slot holding `key`.
    pub(crate) fn raw_copy_locations(&self, key: &K) -> Vec<usize> {
        let cands = self.candidate_buckets(key);
        let l = self.layout.slots();
        let mut out = Vec::new();
        for &c in cands.iter().take(self.d) {
            for s in 0..l {
                let idx = self.slot_idx(c, s);
                if self.slots[idx].as_ref().is_some_and(|e| e.key == *key) {
                    out.push(idx);
                }
            }
        }
        out
    }

    /// Exhaustive structural validation; returns the first violation as a
    /// human-readable message. Used pervasively by the tests and after
    /// every mutation under the `paranoid` feature.
    pub fn check_invariants(&self) -> Result<(), String> {
        let l = self.layout.slots();
        if self.counters.len() != self.slots.len()
            || self.tags.len() != self.slots.len()
            || self.flags.len() * l != self.slots.len()
        {
            return Err("length mismatch between planes".into());
        }
        let mut distinct_seen = 0usize;
        for idx in 0..self.slots.len() {
            let c = self.counters.get(idx);
            match (&self.slots[idx], c) {
                (None, 0) => {}
                (None, c) => return Err(format!("slot {idx}: vacant but counter {c}")),
                (Some(_), 0) => return Err(format!("slot {idx}: occupied but counter 0")),
                (Some(e), c) => {
                    // The tag filter is may-match: a live copy whose tag
                    // byte went stale would be a false *negative*, which
                    // the probe paths cannot recover from.
                    if self.tags[idx] != self.tag_of(&e.key) {
                        return Err(format!("slot {idx}: tag does not match occupant"));
                    }
                    let bucket = idx / l;
                    let cands = self.candidate_buckets(&e.key);
                    let Some(t) = (0..self.d).find(|&t| cands[t] == bucket) else {
                        return Err(format!("slot {idx}: occupant not hashed here"));
                    };
                    // Self-hint must be accurate.
                    if e.hints[t] as usize != idx % l {
                        return Err(format!("slot {idx}: self-hint wrong"));
                    }
                    let locs = self.raw_copy_locations(&e.key);
                    if locs.len() != c as usize {
                        return Err(format!(
                            "slot {idx}: counter {c} but {} live copies",
                            locs.len()
                        ));
                    }
                    for &loc in &locs {
                        if self.counters.get(loc) != c {
                            return Err(format!(
                                "slot {idx}: sibling {loc} has counter {} ≠ {c}",
                                self.counters.get(loc)
                            ));
                        }
                    }
                    if locs.iter().min() == Some(&idx) {
                        distinct_seen += 1;
                    }
                }
            }
        }
        if distinct_seen != self.distinct {
            return Err(format!(
                "distinct count {} but {} found",
                self.distinct, distinct_seen
            ));
        }
        for (k, _) in self.stash.iter() {
            if self.raw_find(k).is_some() {
                return Err("stash item also present in main table".into());
            }
        }
        Ok(())
    }

    #[inline]
    fn check_paranoid(&self) {
        #[cfg(feature = "paranoid")]
        if let Err(e) = self.check_invariants() {
            panic!("invariant violated: {e}");
        }
    }
}

/// The engine's read-only view for the [`kick`] planners. `occupant`
/// meters one off-chip read (the planner is charged for every victim
/// identity it inspects, exactly like the mutate-as-you-walk loop);
/// counter peeks are raw and the planners meter the scans they model.
impl<K: KeyHash + Eq + Clone, V: Clone, L: BucketLayout> EvictionGraph for Engine<K, V, L> {
    type Key = K;

    fn d(&self) -> usize {
        self.d
    }

    fn l(&self) -> usize {
        self.layout.slots()
    }

    fn counter(&self, slot: usize) -> u8 {
        self.counters.get(slot)
    }

    fn cands(&self, key: &K) -> [usize; MAX_D] {
        self.candidate_buckets(key)
    }

    fn slot_of(&self, bucket: usize, slot: usize) -> usize {
        self.slot_idx(bucket, slot)
    }

    fn occupant(&self, slot: usize) -> Option<K> {
        self.meter.offchip_read(1);
        self.slots[slot].as_ref().map(|e| e.key.clone())
    }

    fn meter_onchip(&self, n: u64) {
        self.meter.onchip_read(n);
    }
}

#[cfg(test)]
mod tests {
    use crate::{McConfig, McCuckoo};
    use proptest::prelude::*;

    #[test]
    fn onchip_bytes_rounds_kick_history_up() {
        // MinCounter keeps 5 bits per bucket: 3 tables × 3 buckets = 9
        // buckets → 45 bits → 6 bytes (truncating division said 5).
        let config = McConfig::paper(3, 1).with_resolution(crate::ResolutionPolicy::MinCounter);
        let t: McCuckoo<u64, u64> = McCuckoo::new(config);
        assert_eq!(t.onchip_bytes(), t.counters.onchip_bytes() + 6);
        // Without kick history the counter array is all there is.
        let t2: McCuckoo<u64, u64> = McCuckoo::new(McConfig::paper(3, 1));
        assert_eq!(t2.onchip_bytes(), t2.counters.onchip_bytes());
    }

    /// The flag plane a refresh must leave behind: exactly the union of
    /// the candidate buckets of the items still stashed afterwards.
    fn expected_flags(t: &McCuckoo<u64, u64>) -> Vec<bool> {
        let mut want = vec![false; t.flags.len()];
        let stashed: Vec<u64> = t.stash.iter().map(|(k, _)| *k).collect();
        for k in stashed {
            for &b in t.candidate_buckets(&k).iter().take(t.d) {
                want[b] = true;
            }
        }
        want
    }

    proptest! {
        /// §III.F: after `refresh_stash` the 1-bit flags are exactly the
        /// candidate-bucket flags of the items that remained stashed —
        /// no stale flag survives for an item that settled back into the
        /// main table, and every survivor's d flags are re-raised. The
        /// bulk flag clear is metered as one posted write per bucket
        /// (`flags.len()`), checked exactly when the stash drains dry.
        #[test]
        fn refresh_stash_leaves_exact_flags_and_meters_the_clear(
            seed in any::<u64>(),
            buckets in 4usize..24,
            maxloop in 2u32..12,
            inserts in 16usize..160,
            removes in prop::collection::vec(any::<prop::sample::Index>(), 0..40),
        ) {
            let config = McConfig {
                maxloop,
                deletion: crate::DeletionMode::Reset,
                ..McConfig::paper(buckets, seed)
            };
            let mut t: McCuckoo<u64, u64> = McCuckoo::new(config);
            // Overfill a small table so some inserts land in the stash.
            let mut live: Vec<u64> = Vec::new();
            for k in 0..inserts as u64 {
                if t.insert(k, k * 3).is_ok() {
                    live.push(k);
                }
            }
            // Random deletions free buckets, so a refresh can actually
            // move stashed items back into the table.
            for idx in removes {
                if live.is_empty() {
                    break;
                }
                let k = live.swap_remove(idx.index(live.len()));
                t.remove(&k);
            }

            let stashed_before = t.stash_len();
            let before = t.meter.snapshot();
            let moved = t.refresh_stash();
            let delta = t.meter.snapshot() - before;

            prop_assert_eq!(moved, stashed_before - t.stash_len());
            prop_assert_eq!(&t.flags, &expected_flags(&t),
                "flags must be exactly the candidates of still-stashed items");
            prop_assert!(
                delta.offchip_writes >= t.flags.len() as u64,
                "the bulk clear alone posts one write per bucket"
            );
            if stashed_before == 0 {
                prop_assert_eq!(delta.offchip_writes, t.flags.len() as u64,
                    "an empty stash refresh is exactly the flag clear");
            }
            let inv = t.check_invariants();
            prop_assert!(inv.is_ok(), "invariants: {:?}", inv);

            // A second refresh keeps the properties: the stash can only
            // shrink (the walks are randomized, so a retry may succeed
            // where the first pass failed) and the flags stay exact.
            let stash_now = t.stash_len();
            t.refresh_stash();
            prop_assert!(t.stash_len() <= stash_now);
            prop_assert_eq!(&t.flags, &expected_flags(&t));
        }
    }
}
