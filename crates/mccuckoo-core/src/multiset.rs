//! Multiset support (§III.H of the paper).
//!
//! McCuckoo cannot store duplicate keys among an item's copies — the
//! copies must stay identical. The paper's prescription: "it can act as
//! an indexing structure pointing to the address where all those items
//! are actually stored." [`MultisetIndex`] implements exactly that: the
//! McCuckoo table maps each key to the head of a linked chain in an
//! external record arena; duplicates chain through the arena, and the
//! table is updated (an upsert rewriting all copies) only when the head
//! moves.

use hash_kit::KeyHash;

use crate::config::McConfig;
use crate::single::{McCuckoo, McFull};

const NIL: u32 = u32::MAX;

#[derive(Debug)]
struct Node<V> {
    value: V,
    next: u32,
}

/// A multiset keyed by `K`: any number of values per key.
///
/// ```
/// use mccuckoo_core::{DeletionMode, McConfig, MultisetIndex};
///
/// let mut m: MultisetIndex<u64, &str> =
///     MultisetIndex::new(McConfig::paper(64, 3).with_deletion(DeletionMode::Reset));
/// m.push(7, "first").unwrap();
/// m.push(7, "second").unwrap();
/// assert_eq!(m.count(&7), 2);
/// let vals: Vec<&&str> = m.get_all(&7).collect();
/// assert_eq!(vals, [&"second", &"first"]); // most recent first
/// assert_eq!(m.pop_one(&7), Some("second"));
/// ```
#[derive(Debug)]
pub struct MultisetIndex<K, V> {
    /// Key → chain head (arena index).
    index: McCuckoo<K, u32>,
    arena: Vec<Option<Node<V>>>,
    free: Vec<u32>,
    values: usize,
}

impl<K: KeyHash + Eq + Clone, V> MultisetIndex<K, V> {
    /// Build over a table configured by `config`.
    pub fn new(config: McConfig) -> Self {
        Self {
            index: McCuckoo::new(config),
            arena: Vec::new(),
            free: Vec::new(),
            values: 0,
        }
    }

    /// Total stored values (counting duplicates).
    pub fn len(&self) -> usize {
        self.values
    }

    /// True if no values are stored.
    pub fn is_empty(&self) -> bool {
        self.values == 0
    }

    /// Distinct keys present.
    pub fn distinct_keys(&self) -> usize {
        self.index.len()
    }

    fn alloc(&mut self, node: Node<V>) -> u32 {
        if let Some(i) = self.free.pop() {
            self.arena[i as usize] = Some(node);
            i
        } else {
            self.arena.push(Some(node));
            (self.arena.len() - 1) as u32
        }
    }

    /// Add one `(key, value)` occurrence.
    pub fn push(&mut self, key: K, value: V) -> Result<(), McFull<K, u32>> {
        let head = self.index.get(&key).copied();
        let node = Node {
            value,
            next: head.unwrap_or(NIL),
        };
        let idx = self.alloc(node);
        // Upsert: rewrites all copies when the key already exists.
        let out = match self.index.insert(key, idx) {
            Ok(_) => {
                self.values += 1;
                Ok(())
            }
            Err(full) => {
                // Roll the arena back so a failed insert leaks nothing.
                self.arena[idx as usize] = None;
                self.free.push(idx);
                Err(full)
            }
        };
        self.check_paranoid();
        out
    }

    /// Iterate the values stored under `key`, most recent first.
    pub fn get_all<'a>(&'a self, key: &K) -> impl Iterator<Item = &'a V> + 'a {
        let mut cursor = self.index.get(key).copied().unwrap_or(NIL);
        std::iter::from_fn(move || {
            if cursor == NIL {
                return None;
            }
            let node = self.arena[cursor as usize]
                .as_ref()
                .expect("chain nodes are live");
            cursor = node.next;
            Some(&node.value)
        })
    }

    /// Number of values under `key`.
    pub fn count(&self, key: &K) -> usize {
        self.get_all(key).count()
    }

    /// Remove all values under `key`, returning them (most recent first).
    ///
    /// # Panics
    /// Panics if the underlying table was configured with
    /// [`crate::DeletionMode::Disabled`].
    pub fn remove_all(&mut self, key: &K) -> Vec<V> {
        let Some(head) = self.index.remove(key) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut cursor = head;
        while cursor != NIL {
            let node = self.arena[cursor as usize]
                .take()
                .expect("chain nodes are live");
            self.free.push(cursor);
            out.push(node.value);
            cursor = node.next;
        }
        self.values -= out.len();
        self.check_paranoid();
        out
    }

    /// Remove one (the most recent) value under `key`.
    pub fn pop_one(&mut self, key: &K) -> Option<V> {
        let head = *self.index.get(key)?;
        let node = self.arena[head as usize]
            .take()
            .expect("chain nodes are live");
        self.free.push(head);
        self.values -= 1;
        if node.next == NIL {
            self.index.remove(key);
        } else {
            let Ok(_) = self.index.insert(key.clone(), node.next) else {
                unreachable!("updating an existing key cannot fail")
            };
        }
        self.check_paranoid();
        Some(node.value)
    }

    /// Drop every value and key; arena storage is retained for reuse.
    pub fn clear(&mut self) {
        self.index.clear();
        self.free.clear();
        for (i, slot) in self.arena.iter_mut().enumerate() {
            *slot = None;
            self.free.push(i as u32);
        }
        self.values = 0;
        self.check_paranoid();
    }

    /// Exhaustive structural validation (see [`crate::invariant`]): the
    /// underlying index validates, every chain is acyclic over live
    /// arena nodes, the free list covers exactly the dead nodes, and the
    /// value/distinct counts match a full walk.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.index.check_invariants()?;
        let mut visited = vec![false; self.arena.len()];
        let mut walked = 0usize;
        for (key, &head) in self.index.iter() {
            let _ = key;
            let mut cursor = head;
            let mut steps = 0usize;
            while cursor != NIL {
                let i = cursor as usize;
                if i >= self.arena.len() {
                    return Err(format!("chain cursor {i} out of arena bounds"));
                }
                if visited[i] {
                    return Err(format!("arena node {i} reached twice (cycle or share)"));
                }
                visited[i] = true;
                walked += 1;
                steps += 1;
                if steps > self.arena.len() {
                    return Err("chain longer than arena (cycle)".into());
                }
                let Some(node) = self.arena[i].as_ref() else {
                    return Err(format!("chain reaches dead arena node {i}"));
                };
                cursor = node.next;
            }
        }
        if walked != self.values {
            return Err(format!(
                "value count {} but chains hold {walked}",
                self.values
            ));
        }
        let live = self.arena.iter().filter(|s| s.is_some()).count();
        if live != walked {
            return Err(format!("{live} live arena nodes but {walked} reachable"));
        }
        for &f in &self.free {
            let i = f as usize;
            if i >= self.arena.len() {
                return Err(format!("free-list entry {i} out of arena bounds"));
            }
            if self.arena[i].is_some() {
                return Err(format!("free-list entry {i} points at a live node"));
            }
        }
        if self.free.len() != self.arena.len() - live {
            return Err(format!(
                "free-list holds {} but {} arena nodes are dead",
                self.free.len(),
                self.arena.len() - live
            ));
        }
        if self.distinct_keys() != self.index.len() {
            return Err("distinct_keys out of sync with index".into());
        }
        Ok(())
    }

    #[cfg(feature = "paranoid")]
    fn check_paranoid(&self) {
        self.check_invariants()
            .expect("paranoid: invariant violated after mutation");
    }

    #[cfg(not(feature = "paranoid"))]
    #[inline(always)]
    fn check_paranoid(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeletionMode;
    use std::collections::HashMap;

    fn multiset() -> MultisetIndex<u64, String> {
        MultisetIndex::new(McConfig::paper(256, 1).with_deletion(DeletionMode::Reset))
    }

    #[test]
    fn push_and_get_all() {
        let mut m = multiset();
        m.push(1, "a".into()).unwrap();
        m.push(1, "b".into()).unwrap();
        m.push(2, "c".into()).unwrap();
        let got: Vec<&String> = m.get_all(&1).collect();
        assert_eq!(got, ["b", "a"]); // most recent first
        assert_eq!(m.count(&1), 2);
        assert_eq!(m.count(&2), 1);
        assert_eq!(m.count(&3), 0);
        assert_eq!(m.len(), 3);
        assert_eq!(m.distinct_keys(), 2);
    }

    #[test]
    fn remove_all_frees_and_reuses_arena() {
        let mut m = multiset();
        for i in 0..10u64 {
            m.push(7, format!("v{i}")).unwrap();
        }
        let removed = m.remove_all(&7);
        assert_eq!(removed.len(), 10);
        assert_eq!(removed[0], "v9");
        assert!(m.is_empty());
        // Arena slots must be recycled.
        let before = m.arena.len();
        for i in 0..10u64 {
            m.push(8, format!("w{i}")).unwrap();
        }
        assert_eq!(m.arena.len(), before, "freelist must be reused");
    }

    #[test]
    fn pop_one_peels_the_chain() {
        let mut m = multiset();
        m.push(5, "x".into()).unwrap();
        m.push(5, "y".into()).unwrap();
        assert_eq!(m.pop_one(&5), Some("y".into()));
        assert_eq!(m.count(&5), 1);
        assert_eq!(m.pop_one(&5), Some("x".into()));
        assert_eq!(m.count(&5), 0);
        assert_eq!(m.pop_one(&5), None);
        assert_eq!(m.distinct_keys(), 0);
    }

    #[test]
    fn differential_against_hashmap_of_vecs() {
        let mut m: MultisetIndex<u64, u64> =
            MultisetIndex::new(McConfig::paper(512, 2).with_deletion(DeletionMode::Reset));
        let mut model: HashMap<u64, Vec<u64>> = HashMap::new();
        let mut rng = hash_kit::SplitMix64::new(3);
        // Scaled down under `paranoid`: every mutation validates.
        #[cfg(feature = "paranoid")]
        let steps = 3_000u64;
        #[cfg(not(feature = "paranoid"))]
        let steps = 20_000u64;
        for step in 0..steps {
            let k = rng.next_below(300);
            match rng.next_below(4) {
                0 | 1 => {
                    m.push(k, step).unwrap();
                    model.entry(k).or_default().push(step);
                }
                2 => {
                    let got: Vec<u64> = m.get_all(&k).copied().collect();
                    let mut want = model.get(&k).cloned().unwrap_or_default();
                    want.reverse();
                    assert_eq!(got, want);
                }
                _ => {
                    let got = m.pop_one(&k);
                    let want = model.get_mut(&k).and_then(|v| v.pop());
                    if model.get(&k).is_some_and(|v| v.is_empty()) {
                        model.remove(&k);
                    }
                    assert_eq!(got, want);
                }
            }
        }
        let model_len: usize = model.values().map(|v| v.len()).sum();
        assert_eq!(m.len(), model_len);
        assert_eq!(m.distinct_keys(), model.len());
    }
}
