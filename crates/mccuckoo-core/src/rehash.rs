//! Full-table rehash and resize — the "costly remedy" (§I, §II.B) that
//! McCuckoo's stash exists to avoid, provided for completeness and for
//! the auto-growing [`crate::McMap`] wrapper.
//!
//! The traditional procedure: read out every stored item, draw a fresh
//! set of hash functions (optionally over a bigger table), and re-insert
//! everything. During a rehash the table is unusable — exactly the cost
//! the paper's Tables II–III argue a large off-chip stash amortises away.
//! Metering reflects the procedure: one off-chip read per scanned bucket
//! plus the ordinary cost of every re-insertion.

use hash_kit::KeyHash;

use crate::engine::Engine;
use crate::single::SingleLayout;

/// Outcome of a successful rehash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RehashReport {
    /// Items re-inserted into the main table.
    pub reinserted: usize,
    /// Items that ended in the stash after the rehash.
    pub stashed: usize,
    /// New total bucket count.
    pub new_capacity: usize,
}

/// A rehash that could not place every item (only possible with
/// [`crate::StashPolicy::None`]). The table holds everything that fit;
/// `leftover` holds the rest, in no particular order.
#[derive(Debug)]
pub struct RehashOverflow<K, V> {
    /// Items that did not fit; nothing was lost.
    pub leftover: Vec<(K, V)>,
    /// Report for the items that did fit.
    pub report: RehashReport,
}

impl<K: KeyHash + Eq + Clone, V: Clone> Engine<K, V, SingleLayout> {
    /// Rehash all items with freshly derived hash functions, optionally
    /// into `new_buckets_per_table` buckets per sub-table (same size
    /// when `None`). Items in the stash are re-offered to the main
    /// table.
    ///
    /// On [`crate::StashPolicy::None`] tables the rehash can overflow;
    /// the unplaced items are handed back in [`RehashOverflow`] and the
    /// table remains valid with everything else.
    pub fn rehash(
        &mut self,
        new_buckets_per_table: Option<usize>,
        new_seed: u64,
    ) -> Result<RehashReport, RehashOverflow<K, V>> {
        // Read-out phase: the modelled system scans the whole table.
        self.meter().offchip_read(self.capacity() as u64);
        let items = self.drain_items();
        let total = items.len();
        self.rebuild_storage(new_buckets_per_table, new_seed);
        let mut leftover = Vec::new();
        for (k, v) in items {
            // Unrecorded: a rehash re-offers items the user already
            // inserted once; the obs counters track user ops only.
            if let Err(full) = self.insert_new_unrecorded(k, v) {
                leftover.push(full.evicted);
            }
        }
        let report = RehashReport {
            reinserted: total - leftover.len() - self.stash_len(),
            stashed: self.stash_len(),
            new_capacity: self.capacity(),
        };
        if leftover.is_empty() {
            Ok(report)
        } else {
            Err(RehashOverflow { leftover, report })
        }
    }

    /// Grow to double the per-table bucket count and rehash.
    pub fn grow(&mut self, new_seed: u64) -> Result<RehashReport, RehashOverflow<K, V>> {
        let n = self.buckets_per_table();
        self.rehash(Some(n * 2), new_seed)
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{DeletionMode, McConfig, StashPolicy};
    use crate::single::McCuckoo;
    use workloads::UniqueKeys;

    #[test]
    fn rehash_preserves_every_item() {
        let mut t: McCuckoo<u64, u64> = McCuckoo::new(McConfig::paper(512, 1));
        let mut keys = UniqueKeys::new(2);
        let ks = keys.take_vec(1_200);
        for &k in &ks {
            t.insert_new(k, k + 1).unwrap();
        }
        let before_len = t.len();
        let report = t.rehash(None, 99).unwrap();
        assert_eq!(t.len(), before_len);
        assert_eq!(report.reinserted + report.stashed, before_len);
        for &k in &ks {
            assert_eq!(t.get(&k), Some(&(k + 1)));
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn grow_doubles_capacity_and_keeps_items() {
        let mut t: McCuckoo<u64, u64> = McCuckoo::new(McConfig::paper(256, 3));
        let mut keys = UniqueKeys::new(4);
        let ks = keys.take_vec(700); // ~91% load
        for &k in &ks {
            t.insert_new(k, k).unwrap();
        }
        let old_cap = t.capacity();
        let report = t.grow(5).unwrap();
        assert_eq!(t.capacity(), old_cap * 2);
        assert_eq!(report.new_capacity, old_cap * 2);
        // At half the load, nothing should need the stash.
        assert_eq!(t.stash_len(), 0);
        for &k in &ks {
            assert_eq!(t.get(&k), Some(&k));
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn rehash_drains_a_loaded_stash() {
        let mut t: McCuckoo<u64, u64> = McCuckoo::new(McConfig::paper(128, 6).with_maxloop(20));
        let mut keys = UniqueKeys::new(7);
        // Fill to 100%: guaranteed stash use.
        let ks = keys.take_vec(3 * 128);
        for &k in &ks {
            t.insert_new(k, k).unwrap();
        }
        assert!(t.stash_len() > 0);
        let report = t.grow(8).unwrap();
        assert_eq!(report.stashed, 0, "grown table must absorb the stash");
        for &k in &ks {
            assert_eq!(t.get(&k), Some(&k));
        }
    }

    #[test]
    fn rehash_overflow_hands_items_back() {
        // Stash-less table shrunk below its content: overflow expected,
        // but nothing may be lost.
        let mut t: McCuckoo<u64, u64> = McCuckoo::new(
            McConfig::paper(256, 9)
                .with_stash(StashPolicy::None)
                .with_maxloop(20),
        );
        let mut keys = UniqueKeys::new(10);
        let ks = keys.take_vec(600);
        for &k in &ks {
            t.insert_new(k, k).unwrap();
        }
        match t.rehash(Some(64), 11) {
            Ok(r) => {
                // 600 items into 192 buckets cannot fit; Ok means a bug.
                panic!("impossible fit reported: {r:?}");
            }
            Err(overflow) => {
                let in_table: usize = t.len();
                assert_eq!(in_table + overflow.leftover.len(), ks.len());
                for (k, v) in &overflow.leftover {
                    assert_eq!(k, v);
                }
                t.check_invariants().unwrap();
            }
        }
    }

    #[test]
    fn rehash_works_with_deletion_modes() {
        for mode in [DeletionMode::Reset, DeletionMode::Tombstone] {
            let mut t: McCuckoo<u64, u64> =
                McCuckoo::new(McConfig::paper(256, 12).with_deletion(mode));
            let mut keys = UniqueKeys::new(13);
            let ks = keys.take_vec(500);
            for &k in &ks {
                t.insert_new(k, k).unwrap();
            }
            for &k in ks.iter().take(250) {
                t.remove(&k);
            }
            t.rehash(None, 14).unwrap();
            for &k in ks.iter().take(250) {
                assert_eq!(t.get(&k), None, "{mode:?}: deleted key revived");
            }
            for &k in ks.iter().skip(250) {
                assert_eq!(t.get(&k), Some(&k), "{mode:?}: live key lost");
            }
            t.check_invariants().unwrap();
        }
    }
}
