//! Best-effort software prefetch shim for the batched read paths.
//!
//! The batched lookup state machine
//! ([`McTable::lookup_batch`](crate::McTable::lookup_batch)) hashes a
//! whole batch of keys, picks
//! each key's target buckets from the on-chip counters, and issues a
//! prefetch for every bucket it is about to probe before touching any of
//! them — the software analogue of the paper's FPGA pipeline keeping
//! many keys in flight to hide memory latency.
//!
//! Prefetching is purely a *hint*: it never faults, never changes
//! results, and never changes the modelled access counts. On x86_64 it
//! lowers to `_mm_prefetch(T0)`, on aarch64 to `prfm pldl1keep`; on
//! every other target — and under the `no_prefetch` feature, which CI
//! uses to keep the portable fallback green — it compiles to nothing.

/// Hint the CPU to pull the cache line containing `p` toward L1.
///
/// Safe for any pointer value, including dangling or null: the
/// underlying instructions are architectural no-ops on unmapped
/// addresses and the pointer is never dereferenced.
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(all(target_arch = "x86_64", not(feature = "no_prefetch")))]
    // SAFETY: _mm_prefetch has no memory effects visible to the program;
    // it is a hint and cannot fault regardless of the address.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p as *const i8);
    }
    #[cfg(all(target_arch = "aarch64", not(feature = "no_prefetch")))]
    // SAFETY: PRFM is a hint instruction; it cannot fault and has no
    // architectural side effects beyond cache state.
    unsafe {
        core::arch::asm!("prfm pldl1keep, [{0}]", in(reg) p, options(nostack, preserves_flags));
    }
    #[cfg(any(
        not(any(target_arch = "x86_64", target_arch = "aarch64")),
        feature = "no_prefetch"
    ))]
    let _ = p;
}

/// Prefetch a slice element (bounds-unchecked on purpose: an
/// out-of-range index only wastes the hint).
#[inline(always)]
pub fn prefetch_index<T>(slice: &[T], index: usize) {
    // Pointer arithmetic without `get_unchecked`: wrapping add keeps
    // this sound for any index, the resulting pointer is never read.
    prefetch_read(slice.as_ptr().wrapping_add(index));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_tolerates_any_pointer() {
        let v = [1u64, 2, 3];
        prefetch_read(v.as_ptr());
        prefetch_read(core::ptr::null::<u64>());
        prefetch_read(usize::MAX as *const u64);
        prefetch_index(&v, 0);
        prefetch_index(&v, 1_000_000); // far out of range: still a no-op
    }
}
