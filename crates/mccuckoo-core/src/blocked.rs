//! The blocked (multi-slot) McCuckoo — "B-McCuckoo" (§III.G,
//! Algorithms 1–3 of the paper).
//!
//! `d` sub-tables of buckets with `l` slots each; one on-chip counter per
//! **slot**, stash flags per **bucket**. Reading a bucket (all `l` slots)
//! is one off-chip access.
//!
//! Because set-associativity hides placement details from the counters,
//! each stored item also carries **copy-location metadata**: which slot
//! its sibling copies occupy in their buckets ("(d−1)·log l bits per
//! slot", Fig. 5 — we store one slot hint per candidate table, `0xFF`
//! when the table holds no copy). Hints are written at copy-creation
//! time; destroyed siblings leave them stale, so hints are *verified*
//! against counters (and content reads when ambiguous) before use —
//! `DESIGN.md` §4.
//!
//! Lookup follows Algorithm 2 faithfully: only the bucket-sum-zero skip
//! is counter-driven ("the lookup routine is more like a traditional one
//! that does not rely much on the counters"). The
//! [`BlockedConfig::aggressive_lookup`] extension additionally treats a
//! sum-zero candidate bucket as proof of absence when deletions are
//! disabled (sound for the same reason as the single-slot rule 1); it is
//! benchmarked by the ablation suite.

use hash_kit::{BucketFamily, KeyHash, SplitMix64};
use mem_model::{InsertOutcome, InsertReport, MemMeter};

use crate::config::{DeletionMode, McConfig};
use crate::counters::CounterArray;
use crate::single::{McFull, MAX_D};
use crate::stash::Stash;

/// Slot-hint sentinel: "no copy in this table".
const NO_SLOT: u8 = 0xFF;

/// Configuration of a [`BlockedMcCuckoo`].
#[derive(Debug, Clone)]
pub struct BlockedConfig {
    /// Shared parameters (d, buckets per table, maxloop, deletion, stash,
    /// hash family, seed).
    pub base: McConfig,
    /// Slots per bucket.
    pub slots: usize,
    /// Extension: treat a sum-zero candidate bucket as a definite miss
    /// when deletions are disabled (see module docs).
    pub aggressive_lookup: bool,
}

impl BlockedConfig {
    /// The paper's blocked setup: 3 hash functions × 3 slots.
    pub fn paper(buckets_per_table: usize, seed: u64) -> Self {
        Self {
            base: McConfig::paper(buckets_per_table, seed),
            slots: 3,
            aggressive_lookup: false,
        }
    }

    /// Toggle the aggressive-lookup extension.
    pub fn with_aggressive_lookup(mut self, on: bool) -> Self {
        self.aggressive_lookup = on;
        self
    }
}

#[derive(Debug, Clone)]
struct Entry<K, V> {
    key: K,
    value: V,
    /// Slot of this item's copy in candidate table `t` at creation time
    /// (`NO_SLOT` when table `t` received no copy). Stale entries are
    /// possible for destroyed siblings; always verified before use.
    hints: [u8; MAX_D],
}

/// Multi-slot multi-copy cuckoo table ("B-McCuckoo").
///
/// ```
/// use mccuckoo_core::{BlockedConfig, BlockedMcCuckoo};
///
/// // The paper's blocked setup: 3 hash functions × 3 slots per bucket.
/// let mut t: BlockedMcCuckoo<u64, &str> = BlockedMcCuckoo::new(BlockedConfig::paper(64, 7));
/// t.insert(1, "one").unwrap();
/// assert_eq!(t.get(&1), Some(&"one"));
/// // The first item copied itself into all three candidate buckets.
/// assert_eq!(t.copy_count(&1), 3);
/// ```
#[derive(Debug)]
pub struct BlockedMcCuckoo<K, V> {
    family: BucketFamily,
    d: usize,
    l: usize,
    n: usize,
    deletion: DeletionMode,
    maxloop: u32,
    aggressive_lookup: bool,
    /// Off-chip slots: `(table * n + bucket) * l + slot`.
    slots: Vec<Option<Entry<K, V>>>,
    /// Off-chip 1-bit stash flags, one per bucket.
    flags: Vec<bool>,
    /// On-chip per-slot copy counters.
    counters: CounterArray,
    stash: Stash<K, V>,
    stash_policy: crate::config::StashPolicy,
    resolution: crate::config::ResolutionPolicy,
    seed: u64,
    distinct: usize,
    redundant_writes: u64,
    rng: SplitMix64,
    meter: MemMeter,
}

impl<K: KeyHash + Eq + Clone, V: Clone> BlockedMcCuckoo<K, V> {
    /// Build a table from `config`.
    ///
    /// # Panics
    /// Panics on invalid configuration (`slots` must be 1..=8).
    pub fn new(config: BlockedConfig) -> Self {
        config.base.validate();
        assert!(
            (1..=8).contains(&config.slots),
            "slots per bucket must be 1..=8"
        );
        let base = &config.base;
        let family = BucketFamily::new(base.family, base.d, base.buckets_per_table, base.seed);
        let total_buckets = base.d * base.buckets_per_table;
        let total_slots = total_buckets * config.slots;
        let mut slots = Vec::with_capacity(total_slots);
        slots.resize_with(total_slots, || None);
        Self {
            family,
            d: base.d,
            l: config.slots,
            n: base.buckets_per_table,
            deletion: base.deletion,
            maxloop: base.maxloop,
            aggressive_lookup: config.aggressive_lookup,
            slots,
            flags: vec![false; total_buckets],
            counters: CounterArray::new(total_slots, base.d as u8),
            stash: Stash::new(base.stash),
            stash_policy: base.stash,
            resolution: base.resolution,
            seed: base.seed,
            distinct: 0,
            redundant_writes: 0,
            rng: SplitMix64::new(base.seed ^ 0xB10C_0C0A_57A5_4B1D),
            meter: MemMeter::new(),
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Number of hash functions.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Slots per bucket.
    pub fn slots_per_bucket(&self) -> usize {
        self.l
    }

    /// Distinct keys in the main table.
    pub fn main_len(&self) -> usize {
        self.distinct
    }

    /// Items in the stash.
    pub fn stash_len(&self) -> usize {
        self.stash.len()
    }

    /// Total distinct keys stored.
    pub fn len(&self) -> usize {
        self.distinct + self.stash.len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Load ratio: distinct items / slot count.
    pub fn load_ratio(&self) -> f64 {
        self.len() as f64 / self.capacity() as f64
    }

    /// Access meter.
    pub fn meter(&self) -> &MemMeter {
        &self.meter
    }

    /// Cumulative proactive redundant writes (Theorem 2 accounting).
    pub fn redundant_writes(&self) -> u64 {
        self.redundant_writes
    }

    /// Whether the aggressive-lookup extension is enabled.
    pub fn aggressive_lookup_enabled(&self) -> bool {
        self.aggressive_lookup
    }

    /// Reconstruct the base configuration (used by snapshots).
    pub fn config_snapshot(&self) -> McConfig {
        McConfig {
            d: self.d,
            buckets_per_table: self.n,
            maxloop: self.maxloop,
            resolution: self.resolution,
            deletion: self.deletion,
            stash: self.stash_policy,
            family: self.family.kind(),
            seed: self.seed,
        }
    }

    // ------------------------------------------------------------------
    // Geometry
    // ------------------------------------------------------------------

    /// Global bucket ids of `key`'s candidates.
    #[inline]
    fn candidate_buckets(&self, key: &K) -> [usize; MAX_D] {
        let mut raw = [0usize; MAX_D];
        self.family.buckets_into(key, &mut raw[..self.d]);
        let mut out = [usize::MAX; MAX_D];
        for i in 0..self.d {
            out[i] = i * self.n + raw[i];
        }
        out
    }

    #[inline]
    fn slot_idx(&self, bucket: usize, slot: usize) -> usize {
        bucket * self.l + slot
    }

    /// Sum of a bucket's slot counters (on-chip, metered by caller).
    fn bucket_sum(&self, bucket: usize) -> u32 {
        (0..self.l)
            .map(|s| self.counters.get(self.slot_idx(bucket, s)) as u32)
            .sum()
    }

    /// Meter one on-chip read per slot counter of the candidate set.
    fn meter_counter_scan(&self) {
        self.meter.onchip_read((self.d * self.l) as u64);
    }

    // ------------------------------------------------------------------
    // Insertion (Algorithm 1, generalised to the d-ary principles)
    // ------------------------------------------------------------------

    /// Upsert: update all copies if present, else insert fresh.
    pub fn insert(&mut self, key: K, value: V) -> Result<InsertReport, McFull<K, V>> {
        if let Some(report) = self.try_update(&key, &value) {
            return Ok(report);
        }
        self.insert_new(key, value)
    }

    /// Insert a key known to be absent (the measured operation).
    pub fn insert_new(&mut self, key: K, value: V) -> Result<InsertReport, McFull<K, V>> {
        debug_assert!(
            self.raw_find(&key).is_none() && !self.raw_in_stash(&key),
            "insert_new requires a fresh key"
        );
        let cands = self.candidate_buckets(&key);
        self.meter_counter_scan();
        if let Some(copies) = self.try_place(&key, &value, &cands) {
            self.distinct += 1;
            self.check_paranoid();
            return Ok(InsertReport::clean(copies));
        }
        let out = self.resolve_collision(key, value);
        self.check_paranoid();
        out
    }

    /// Apply the insertion principles over the candidate buckets. Claims
    /// at most one slot per bucket, writes all copies with a shared hint
    /// set, finalizes counters. `None` on a real collision (all `d·l`
    /// candidate counters equal 1).
    fn try_place(&mut self, key: &K, value: &V, cands: &[usize; MAX_D]) -> Option<u8> {
        let mut claimed: [Option<u8>; MAX_D] = [None; MAX_D];
        let mut claimed_len = 0usize;

        // Principle 1: one copy into every bucket with a free slot.
        for i in 0..self.d {
            if let Some(s) =
                (0..self.l).find(|&s| self.counters.get(self.slot_idx(cands[i], s)) == 0)
            {
                claimed[i] = Some(s as u8);
                claimed_len += 1;
            }
        }

        // Principles 2+3: overwrite redundant copies, highest counter
        // value first; among buckets offering the same value, prefer the
        // most "available" bucket (largest counter sum — Algorithm 1's
        // sort key).
        for target in (2..=self.d as u8).rev() {
            loop {
                if claimed_len as u8 + 2 > target {
                    break;
                }
                let mut best: Option<(usize, usize, u32)> = None; // (i, slot, sum)
                for i in 0..self.d {
                    if claimed[i].is_some() {
                        continue;
                    }
                    let Some(s) = (0..self.l)
                        .find(|&s| self.counters.get(self.slot_idx(cands[i], s)) == target)
                    else {
                        continue;
                    };
                    let sum = self.bucket_sum(cands[i]);
                    // MSRV 1.75: spelled without `Option::is_none_or`.
                    if best.map(|(_, _, bs)| sum > bs).unwrap_or(true) {
                        best = Some((i, s, sum));
                    }
                }
                let Some((i, s, _)) = best else { break };
                // Victim sibling maintenance happens at claim time.
                self.decrement_victim_siblings(cands[i], s);
                claimed[i] = Some(s as u8);
                claimed_len += 1;
            }
        }

        if claimed_len == 0 {
            return None;
        }
        self.write_copies(key, value, cands, &claimed, claimed_len);
        Some(claimed_len as u8)
    }

    /// Read the victim in `(bucket, slot)` (about to be overwritten) and
    /// decrement its siblings' counters, located through its verified
    /// hints.
    fn decrement_victim_siblings(&mut self, bucket: usize, slot: usize) {
        let idx = self.slot_idx(bucket, slot);
        let vcount = self.counters.get(idx);
        debug_assert!(vcount >= 2);
        self.meter.offchip_read(1);
        let victim = self.slots[idx].as_ref().expect("counter ≥ 1 ⇒ occupied");
        let vkey = victim.key.clone();
        let vhints = victim.hints;
        let siblings = self.locate_siblings(&vkey, &vhints, vcount, idx);
        debug_assert_eq!(siblings.len(), vcount as usize - 1);
        self.meter.onchip_write(siblings.len() as u64);
        for sidx in siblings {
            self.counters.set(sidx, vcount - 1);
        }
    }

    /// Locate the live sibling copies of `key` (total `count` copies,
    /// excluding the one at `exclude`), using its hint set verified
    /// against counters and, when ambiguous, slot contents.
    fn locate_siblings(
        &self,
        key: &K,
        hints: &[u8; MAX_D],
        count: u8,
        exclude: usize,
    ) -> Vec<usize> {
        let cands = self.candidate_buckets(key);
        self.meter.onchip_read(self.d as u64);
        let needed = count as usize - 1;
        let matches: Vec<usize> = (0..self.d)
            .filter(|&t| hints[t] != NO_SLOT)
            .map(|t| self.slot_idx(cands[t], hints[t] as usize))
            .filter(|&p| p != exclude && self.counters.get(p) == count)
            .collect();
        debug_assert!(matches.len() >= needed);
        if matches.len() == needed {
            return matches;
        }
        let mut confirmed = Vec::with_capacity(needed);
        for (pos, &m) in matches.iter().enumerate() {
            if confirmed.len() == needed {
                break;
            }
            if matches.len() - pos == needed - confirmed.len() {
                confirmed.extend_from_slice(&matches[pos..]);
                break;
            }
            self.meter.verify_read(1);
            if self.slots[m].as_ref().is_some_and(|e| e.key == *key) {
                confirmed.push(m);
            }
        }
        debug_assert_eq!(confirmed.len(), needed);
        confirmed
    }

    /// Write the claimed copies with a shared hint set and finalize
    /// counters.
    fn write_copies(
        &mut self,
        key: &K,
        value: &V,
        cands: &[usize; MAX_D],
        claimed: &[Option<u8>; MAX_D],
        claimed_len: usize,
    ) {
        let mut hints = [NO_SLOT; MAX_D];
        for i in 0..self.d {
            if let Some(s) = claimed[i] {
                hints[i] = s;
            }
        }
        self.meter.offchip_write(claimed_len as u64);
        self.meter.onchip_write(claimed_len as u64);
        for i in 0..self.d {
            let Some(s) = claimed[i] else { continue };
            let idx = self.slot_idx(cands[i], s as usize);
            self.slots[idx] = Some(Entry {
                key: key.clone(),
                value: value.clone(),
                hints,
            });
            self.counters.set(idx, claimed_len as u8);
        }
        self.redundant_writes += claimed_len as u64 - 1;
    }

    /// Collision resolution: random-walk over candidate slots
    /// (Algorithm 1's tail), re-applying the placement principles for
    /// each evicted item.
    fn resolve_collision(&mut self, key: K, value: V) -> Result<InsertReport, McFull<K, V>> {
        let mut kickouts = 0u32;
        let mut carried_key = key;
        let mut carried_value = value;
        let mut prev_bucket = usize::MAX;
        loop {
            if kickouts >= self.maxloop {
                return self.stash_item(carried_key, carried_value, kickouts);
            }
            let cands = self.candidate_buckets(&carried_key);
            let victim_bucket = loop {
                let i = self.rng.next_below(self.d as u64) as usize;
                if cands[i] != prev_bucket {
                    break i;
                }
            };
            let (vb, vslot) = (
                cands[victim_bucket],
                self.rng.next_below(self.l as u64) as usize,
            );
            let idx = self.slot_idx(vb, vslot);
            debug_assert_eq!(self.counters.get(idx), 1, "walk only sees sole copies");
            let mut hints = [NO_SLOT; MAX_D];
            hints[victim_bucket] = vslot as u8;
            self.meter.offchip_read(1);
            self.meter.offchip_write(1);
            let old = self.slots[idx]
                .replace(Entry {
                    key: carried_key,
                    value: carried_value,
                    hints,
                })
                .expect("victim slot occupied");
            carried_key = old.key;
            carried_value = old.value;
            prev_bucket = vb;
            kickouts += 1;
            let cands = self.candidate_buckets(&carried_key);
            self.meter_counter_scan();
            if let Some(copies) = self.try_place(&carried_key, &carried_value, &cands) {
                self.distinct += 1;
                return Ok(InsertReport {
                    outcome: InsertOutcome::Placed,
                    kickouts,
                    collision: true,
                    copies_written: copies,
                });
            }
        }
    }

    fn stash_item(
        &mut self,
        key: K,
        value: V,
        kickouts: u32,
    ) -> Result<InsertReport, McFull<K, V>> {
        let cands = self.candidate_buckets(&key);
        let report = InsertReport {
            outcome: InsertOutcome::Stashed,
            kickouts,
            collision: true,
            copies_written: 0,
        };
        match self.stash.push(key, value, &self.meter) {
            Ok(()) => {
                self.meter.offchip_write(self.d as u64);
                for &c in cands.iter().take(self.d) {
                    self.flags[c] = true;
                }
                Ok(report)
            }
            Err((key, value)) => Err(McFull {
                evicted: (key, value),
                report: InsertReport {
                    outcome: InsertOutcome::Failed,
                    ..report
                },
            }),
        }
    }

    // ------------------------------------------------------------------
    // Lookup (Algorithm 2)
    // ------------------------------------------------------------------

    /// Look up `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        match self.probe(key) {
            Probe::Found(idx) => self.slots[idx].as_ref().map(|e| &e.value),
            Probe::Miss { check_stash } => {
                if check_stash {
                    self.stash.get(key, &self.meter)
                } else {
                    None
                }
            }
        }
    }

    /// Whether `key` is stored.
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Live copies of `key` in the main table (unmetered diagnostic).
    pub fn copy_count(&self, key: &K) -> u8 {
        self.raw_find(key).map_or(0, |idx| self.counters.get(idx))
    }

    fn probe(&self, key: &K) -> Probe {
        let cands = self.candidate_buckets(key);
        self.meter_counter_scan();
        let sums: Vec<u32> = (0..self.d).map(|i| self.bucket_sum(cands[i])).collect();
        // Extension: Bloom-style early miss (sound without deletions —
        // an insertion leaves no candidate bucket entirely empty).
        if self.aggressive_lookup && self.deletion == DeletionMode::Disabled && sums.contains(&0) {
            return Probe::Miss { check_stash: false };
        }
        let mut visited_flags_ok = true;
        for i in 0..self.d {
            if sums[i] == 0 {
                continue; // Algorithm 2: skip empty buckets
            }
            self.meter.offchip_read(1);
            visited_flags_ok &= self.flags[cands[i]];
            for s in 0..self.l {
                let idx = self.slot_idx(cands[i], s);
                if self.slots[idx].as_ref().is_some_and(|e| e.key == *key) {
                    return Probe::Found(idx);
                }
            }
        }
        Probe::Miss {
            check_stash: self.stash_screen(&cands, visited_flags_ok),
        }
    }

    /// Stash screening: counters-all-one rule (no deletions) plus the
    /// visited-flag veto.
    fn stash_screen(&self, cands: &[usize; MAX_D], visited_flags_ok: bool) -> bool {
        if !self.stash.enabled() || self.stash.is_empty() {
            return false;
        }
        match self.deletion {
            DeletionMode::Disabled => {
                let all_ones = (0..self.d).all(|i| {
                    (0..self.l).all(|s| self.counters.get(self.slot_idx(cands[i], s)) == 1)
                });
                all_ones && visited_flags_ok
            }
            DeletionMode::Reset | DeletionMode::Tombstone => visited_flags_ok,
        }
    }

    // ------------------------------------------------------------------
    // Deletion (Algorithm 3)
    // ------------------------------------------------------------------

    /// Remove `key` — counters only, zero off-chip writes.
    ///
    /// # Panics
    /// Panics under [`DeletionMode::Disabled`].
    pub fn remove(&mut self, key: &K) -> Option<V> {
        assert!(
            self.deletion != DeletionMode::Disabled,
            "this table was configured with DeletionMode::Disabled"
        );
        let out = match self.probe(key) {
            Probe::Found(idx) => {
                let entry = self.slots[idx].as_ref().expect("probe found it");
                let count = self.counters.get(idx);
                let hints = entry.hints;
                let ekey = entry.key.clone();
                let mut locations = self.locate_siblings(&ekey, &hints, count, idx);
                locations.push(idx);
                self.meter.onchip_write(locations.len() as u64);
                let mut value = None;
                for &l in &locations {
                    match self.deletion {
                        DeletionMode::Reset => self.counters.set(l, 0),
                        DeletionMode::Tombstone => self.counters.set_tombstone(l),
                        DeletionMode::Disabled => unreachable!(),
                    }
                    let e = self.slots[l].take();
                    if l == idx {
                        value = e.map(|e| e.value);
                    }
                }
                self.distinct -= 1;
                value
            }
            Probe::Miss { check_stash } => {
                if check_stash {
                    self.stash.remove(key, &self.meter)
                } else {
                    None
                }
            }
        };
        self.check_paranoid();
        out
    }

    fn try_update(&mut self, key: &K, value: &V) -> Option<InsertReport> {
        match self.probe(key) {
            Probe::Found(idx) => {
                let entry = self.slots[idx].as_ref().expect("probe found it");
                let count = self.counters.get(idx);
                let hints = entry.hints;
                let ekey = entry.key.clone();
                let mut locations = self.locate_siblings(&ekey, &hints, count, idx);
                locations.push(idx);
                self.meter.offchip_write(locations.len() as u64);
                for &l in &locations {
                    let hints = self.slots[l].as_ref().expect("copy occupied").hints;
                    self.slots[l] = Some(Entry {
                        key: key.clone(),
                        value: value.clone(),
                        hints,
                    });
                }
                Some(InsertReport {
                    outcome: InsertOutcome::Updated,
                    kickouts: 0,
                    collision: false,
                    copies_written: locations.len() as u8,
                })
            }
            Probe::Miss { check_stash } => {
                if check_stash && self.stash.remove(key, &self.meter).is_some() {
                    self.stash
                        .push(key.clone(), value.clone(), &self.meter)
                        .ok()
                        .expect("stash accepted this key before");
                    return Some(InsertReport {
                        outcome: InsertOutcome::Updated,
                        kickouts: 0,
                        collision: false,
                        copies_written: 0,
                    });
                }
                None
            }
        }
    }

    /// Re-synchronise stash flags and retry stashed items (§III.F).
    pub fn refresh_stash(&mut self) -> usize {
        self.meter.offchip_write(self.flags.len() as u64);
        self.flags.fill(false);
        let items = self.stash.drain_all();
        let before = items.len();
        for (k, v) in items {
            let _ = self.insert_new(k, v);
        }
        before - self.stash.len()
    }

    // ------------------------------------------------------------------
    // Iteration & diagnostics (unmetered)
    // ------------------------------------------------------------------

    /// Iterate distinct `(key, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(move |(idx, s)| {
                let e = s.as_ref()?;
                let locs = self.raw_copy_locations(&e.key);
                (locs.iter().min() == Some(&idx)).then_some((&e.key, &e.value))
            })
            .chain(self.stash.iter())
    }

    fn raw_find(&self, key: &K) -> Option<usize> {
        let cands = self.candidate_buckets(key);
        for &c in cands.iter().take(self.d) {
            for s in 0..self.l {
                let idx = self.slot_idx(c, s);
                if self.slots[idx].as_ref().is_some_and(|e| e.key == *key) {
                    return Some(idx);
                }
            }
        }
        None
    }

    fn raw_in_stash(&self, key: &K) -> bool {
        self.stash.iter().any(|(k, _)| k == key)
    }

    fn raw_copy_locations(&self, key: &K) -> Vec<usize> {
        let cands = self.candidate_buckets(key);
        let mut out = Vec::new();
        for &c in cands.iter().take(self.d) {
            for s in 0..self.l {
                let idx = self.slot_idx(c, s);
                if self.slots[idx].as_ref().is_some_and(|e| e.key == *key) {
                    out.push(idx);
                }
            }
        }
        out
    }

    /// Exhaustive structural validation (see [`crate::invariant`]).
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.counters.len() != self.slots.len() {
            return Err("counter plane length mismatch".into());
        }
        let mut distinct_seen = 0usize;
        for idx in 0..self.slots.len() {
            let c = self.counters.get(idx);
            match (&self.slots[idx], c) {
                (None, 0) => {}
                (None, c) => return Err(format!("slot {idx}: vacant but counter {c}")),
                (Some(_), 0) => return Err(format!("slot {idx}: occupied but counter 0")),
                (Some(e), c) => {
                    let bucket = idx / self.l;
                    let cands = self.candidate_buckets(&e.key);
                    let Some(t) = (0..self.d).find(|&t| cands[t] == bucket) else {
                        return Err(format!("slot {idx}: occupant not hashed here"));
                    };
                    // Self-hint must be accurate.
                    if e.hints[t] as usize != idx % self.l {
                        return Err(format!("slot {idx}: self-hint wrong"));
                    }
                    let locs = self.raw_copy_locations(&e.key);
                    if locs.len() != c as usize {
                        return Err(format!(
                            "slot {idx}: counter {c} but {} live copies",
                            locs.len()
                        ));
                    }
                    for &l in &locs {
                        if self.counters.get(l) != c {
                            return Err(format!("slot {idx}: sibling {l} counter mismatch"));
                        }
                    }
                    if locs.iter().min() == Some(&idx) {
                        distinct_seen += 1;
                    }
                }
            }
        }
        if distinct_seen != self.distinct {
            return Err(format!(
                "distinct count {} but {} found",
                self.distinct, distinct_seen
            ));
        }
        for (k, _) in self.stash.iter() {
            if self.raw_find(k).is_some() {
                return Err("stash item also present in main table".into());
            }
        }
        Ok(())
    }

    #[inline]
    fn check_paranoid(&self) {
        #[cfg(feature = "paranoid")]
        if let Err(e) = self.check_invariants() {
            panic!("invariant violated: {e}");
        }
    }
}

enum Probe {
    Found(usize),
    Miss { check_stash: bool },
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use workloads::UniqueKeys;

    fn paper_table(n: usize, seed: u64) -> BlockedMcCuckoo<u64, u64> {
        BlockedMcCuckoo::new(BlockedConfig::paper(n, seed))
    }

    #[test]
    fn first_insert_gets_d_copies() {
        let mut t = paper_table(64, 1);
        let r = t.insert_new(9, 90).unwrap();
        assert_eq!(r.copies_written, 3);
        assert_eq!(t.copy_count(&9), 3);
        assert_eq!(t.get(&9), Some(&90));
        t.check_invariants().unwrap();
    }

    #[test]
    fn fills_to_99_percent() {
        // Table III runs B-McCuckoo to 100% load; 99% must fill with the
        // stash nearly empty.
        let n = 2_000;
        let mut t = paper_table(n, 2);
        let cap = 3 * n * 3;
        let target = cap * 99 / 100;
        let mut keys = UniqueKeys::new(3);
        for _ in 0..target {
            let k = keys.next_key();
            t.insert_new(k, k).unwrap();
        }
        assert!(t.load_ratio() > 0.98);
        assert!(t.stash_len() < cap / 200, "stash {}", t.stash_len());
        for k in UniqueKeys::new(3).take_vec(target) {
            assert!(t.contains(&k));
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn first_collision_beyond_half_load() {
        // Table I: B-McCuckoo's first collision at ~61%.
        let n = 2_000;
        let mut t = paper_table(n, 4);
        let mut keys = UniqueKeys::new(5);
        let cap = 3 * n * 3;
        let mut first = None;
        for i in 0..cap {
            let k = keys.next_key();
            let r = t.insert_new(k, k).unwrap();
            if r.collision {
                first = Some(i as f64 / cap as f64);
                break;
            }
        }
        let load = first.expect("collision expected before 100%");
        assert!(load > 0.4, "first collision at {load}, expected > 0.4");
    }

    #[test]
    fn lookup_hit_costs_at_most_d_reads() {
        let n = 1_000;
        let mut t = paper_table(n, 6);
        let mut keys = UniqueKeys::new(7);
        let ks: Vec<u64> = (0..3 * n * 3 * 80 / 100)
            .map(|_| {
                let k = keys.next_key();
                t.insert_new(k, k).unwrap();
                k
            })
            .collect();
        for k in &ks {
            let before = t.meter().snapshot();
            assert_eq!(t.get(k), Some(k));
            let delta = t.meter().snapshot() - before;
            assert!(delta.offchip_reads <= 3);
        }
    }

    #[test]
    fn deletion_reset_roundtrip_zero_writes() {
        let n = 500;
        let mut t: BlockedMcCuckoo<u64, u64> = BlockedMcCuckoo::new(BlockedConfig {
            base: McConfig::paper_with_deletion(n, 8),
            slots: 3,
            aggressive_lookup: false,
        });
        let mut keys = UniqueKeys::new(9);
        let ks = keys.take_vec(3 * n * 3 / 2);
        for &k in &ks {
            t.insert_new(k, k + 5).unwrap();
        }
        let before = t.meter().snapshot();
        for &k in &ks {
            assert_eq!(t.remove(&k), Some(k + 5));
        }
        let delta = t.meter().snapshot() - before;
        assert_eq!(delta.offchip_writes, 0);
        assert!(t.is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn differential_against_hashmap_with_deletions() {
        let mut t: BlockedMcCuckoo<u64, u64> = BlockedMcCuckoo::new(BlockedConfig {
            base: McConfig::paper_with_deletion(512, 10),
            slots: 3,
            aggressive_lookup: false,
        });
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut keys = UniqueKeys::new(11);
        let mut s = hash_kit::SplitMix64::new(12);
        let mut live: Vec<u64> = Vec::new();
        for step in 0..40_000u64 {
            match s.next_below(10) {
                0..=4 => {
                    let k = keys.next_key();
                    t.insert_new(k, k ^ step).unwrap();
                    model.insert(k, k ^ step);
                    live.push(k);
                }
                5..=6 if !live.is_empty() => {
                    let i = s.next_below(live.len() as u64) as usize;
                    assert_eq!(t.get(&live[i]), model.get(&live[i]));
                }
                7..=8 if !live.is_empty() => {
                    let i = s.next_below(live.len() as u64) as usize;
                    let k = live.swap_remove(i);
                    assert_eq!(t.remove(&k), model.remove(&k));
                }
                _ => {
                    let k = keys.absent_key(s.next_below(1 << 20));
                    assert_eq!(t.get(&k), None);
                }
            }
            if step % 10_000 == 0 {
                t.check_invariants().unwrap();
            }
        }
        assert_eq!(t.len(), model.len());
        for (k, v) in &model {
            assert_eq!(t.get(k), Some(v));
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn upsert_updates_every_copy() {
        let mut t = paper_table(64, 13);
        t.insert(3, 30).unwrap();
        assert_eq!(t.copy_count(&3), 3);
        let r = t.insert(3, 31).unwrap();
        assert_eq!(r.outcome, InsertOutcome::Updated);
        assert_eq!(t.get(&3), Some(&31));
        assert_eq!(t.main_len(), 1);
        // All physical copies must agree (scan raw locations).
        for idx in t.raw_copy_locations(&3) {
            assert_eq!(t.slots[idx].as_ref().unwrap().value, 31);
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn stash_and_screening_at_overload() {
        let n = 60;
        let mut t: BlockedMcCuckoo<u64, u64> = BlockedMcCuckoo::new(BlockedConfig {
            base: McConfig::paper(n, 14).with_maxloop(50),
            slots: 3,
            aggressive_lookup: false,
        });
        let mut keys = UniqueKeys::new(15);
        let cap = 3 * n * 3;
        let extra = cap / 20;
        let ks: Vec<u64> = (0..cap + extra)
            .map(|_| {
                let k = keys.next_key();
                t.insert_new(k, k).unwrap();
                k
            })
            .collect();
        assert!(t.stash_len() > 0, "overload must stash");
        for k in &ks {
            assert!(t.contains(k));
        }
        let before = t.meter().snapshot();
        for j in 0..1000 {
            assert_eq!(t.get(&keys.absent_key(j)), None);
        }
        let delta = t.meter().snapshot() - before;
        assert!(
            delta.stash_visits <= 150,
            "{} absent lookups visited stash",
            delta.stash_visits
        );
        t.check_invariants().unwrap();
    }

    #[test]
    fn aggressive_lookup_extension_is_sound_and_cheaper() {
        let n = 2_000;
        let mut plain = paper_table(n, 16);
        let mut aggro: BlockedMcCuckoo<u64, u64> =
            BlockedMcCuckoo::new(BlockedConfig::paper(n, 16).with_aggressive_lookup(true));
        let mut keys = UniqueKeys::new(17);
        let ks = keys.take_vec(3 * n * 3 / 4); // 25% load
        for &k in &ks {
            plain.insert_new(k, k).unwrap();
            aggro.insert_new(k, k).unwrap();
        }
        let (b_plain, b_aggro) = (plain.meter().snapshot(), aggro.meter().snapshot());
        for j in 0..2_000 {
            let a = keys.absent_key(j);
            assert_eq!(plain.get(&a), None);
            assert_eq!(aggro.get(&a), None);
        }
        let d_plain = plain.meter().snapshot() - b_plain;
        let d_aggro = aggro.meter().snapshot() - b_aggro;
        assert!(
            d_aggro.offchip_reads < d_plain.offchip_reads,
            "aggressive {} vs plain {}",
            d_aggro.offchip_reads,
            d_plain.offchip_reads
        );
        // Hits must still work.
        for &k in ks.iter().take(500) {
            assert_eq!(aggro.get(&k), Some(&k));
        }
    }

    #[test]
    fn single_slot_blocked_matches_single_behaviour() {
        // l=1 blocked table must behave like the single-slot design.
        let mut t: BlockedMcCuckoo<u64, u64> = BlockedMcCuckoo::new(BlockedConfig {
            base: McConfig::paper(512, 18),
            slots: 1,
            aggressive_lookup: false,
        });
        let mut keys = UniqueKeys::new(19);
        let ks = keys.take_vec(3 * 512 * 80 / 100);
        for &k in &ks {
            t.insert_new(k, k).unwrap();
        }
        for &k in &ks {
            assert!(t.contains(&k));
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn iter_unique_keys() {
        let mut t = paper_table(128, 20);
        let mut keys = UniqueKeys::new(21);
        let ks = keys.take_vec(400);
        for &k in &ks {
            t.insert_new(k, k).unwrap();
        }
        let mut got: Vec<u64> = t.iter().map(|(k, _)| *k).collect();
        got.sort_unstable();
        let mut want = ks.clone();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "slots per bucket")]
    fn too_many_slots_rejected() {
        let _ = BlockedMcCuckoo::<u64, u64>::new(BlockedConfig {
            base: McConfig::paper(8, 0),
            slots: 9,
            aggressive_lookup: false,
        });
    }
}
