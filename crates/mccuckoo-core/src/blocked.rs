//! The blocked (multi-slot) McCuckoo — "B-McCuckoo" (§III.G,
//! Algorithms 1–3 of the paper), as the `l`-slot instantiation of the
//! shared [`engine`](crate::engine).
//!
//! `d` sub-tables of buckets with `l` slots each; one on-chip counter per
//! **slot**, stash flags per **bucket**. Reading a bucket (all `l` slots)
//! is one off-chip access. The structural algorithm (insertion
//! principles, kick walk, counter maintenance, deletion, stash,
//! copy-set disambiguation via slot hints — "(d−1)·log l bits per slot",
//! Fig. 5) is documented on [`Engine`]; this
//! module contributes [`BlockedLayout`] and the blocked lookup strategy.
//!
//! Lookup follows Algorithm 2 faithfully: only the bucket-sum-zero skip
//! is counter-driven ("the lookup routine is more like a traditional one
//! that does not rely much on the counters"). The
//! [`BlockedConfig::aggressive_lookup`] extension additionally treats a
//! sum-zero candidate bucket as proof of absence when deletions are
//! disabled (sound for the same reason as the single-slot rule 1); it is
//! benchmarked by the ablation suite.

use hash_kit::{KeyHash, SplitMix64};

use crate::config::{DeletionMode, McConfig};
use crate::engine::{
    swar_broadcast, swar_eq_mask, swar_first_lane, BucketLayout, CopyProbe, Engine, Probe,
    ProbePlan, MAX_D,
};

/// Configuration of a [`BlockedMcCuckoo`].
#[derive(Debug, Clone)]
pub struct BlockedConfig {
    /// Shared parameters (d, buckets per table, maxloop, deletion, stash,
    /// hash family, seed).
    pub base: McConfig,
    /// Slots per bucket.
    pub slots: usize,
    /// Extension: treat a sum-zero candidate bucket as a definite miss
    /// when deletions are disabled (see module docs).
    pub aggressive_lookup: bool,
}

impl BlockedConfig {
    /// The paper's blocked setup: 3 hash functions × 3 slots.
    pub fn paper(buckets_per_table: usize, seed: u64) -> Self {
        Self {
            base: McConfig::paper(buckets_per_table, seed),
            slots: 3,
            aggressive_lookup: false,
        }
    }

    /// Toggle the aggressive-lookup extension.
    pub fn with_aggressive_lookup(mut self, on: bool) -> Self {
        self.aggressive_lookup = on;
        self
    }
}

/// The `l`-slot bucket layout: set-associative buckets, counters per
/// slot, Algorithm-2 lookups.
#[derive(Debug, Clone, Copy)]
pub struct BlockedLayout {
    pub(crate) l: usize,
    pub(crate) aggressive: bool,
}

/// Multi-slot multi-copy cuckoo table ("B-McCuckoo").
///
/// ```
/// use mccuckoo_core::{BlockedConfig, BlockedMcCuckoo};
///
/// // The paper's blocked setup: 3 hash functions × 3 slots per bucket.
/// let mut t: BlockedMcCuckoo<u64, &str> = BlockedMcCuckoo::new(BlockedConfig::paper(64, 7));
/// t.insert(1, "one").unwrap();
/// assert_eq!(t.get(&1), Some(&"one"));
/// // The first item copied itself into all three candidate buckets.
/// assert_eq!(t.copy_count(&1), 3);
/// ```
pub type BlockedMcCuckoo<K, V> = Engine<K, V, BlockedLayout>;

impl BucketLayout for BlockedLayout {
    const RNG_TWEAK: u64 = 0xB10C_0C0A_57A5_4B1D;

    fn slots(&self) -> usize {
        self.l
    }

    fn draw_slot(&self, rng: &mut SplitMix64) -> usize {
        // Always draws (even for l = 1) to keep the walk stream stable
        // across slot counts.
        rng.next_below(self.l as u64) as usize
    }

    /// Algorithm 2: skip sum-zero buckets, otherwise read the bucket
    /// (one off-chip access) and scan its `l` slots.
    fn probe_first<K: KeyHash + Eq + Clone, V: Clone>(
        t: &Engine<K, V, Self>,
        key: &K,
        cands: &[usize; MAX_D],
        tag: u8,
    ) -> Probe {
        t.meter_counter_scan();
        let mut sums = [0u32; MAX_D];
        for i in 0..t.d {
            sums[i] = t.bucket_sum(cands[i]);
        }
        // Extension: Bloom-style early miss (sound without deletions —
        // an insertion leaves no candidate bucket entirely empty).
        if t.layout.aggressive && t.deletion == DeletionMode::Disabled && sums[..t.d].contains(&0) {
            return Probe::Miss { check_stash: false };
        }
        let mut visited_flags_ok = true;
        // SWAR tag filter: compare all l fingerprint bytes of a bucket
        // against the key's tag in one u64 operation, then confirm each
        // matching lane on the full entry. Pure software fast path — the
        // bucket read stays metered as one off-chip access either way.
        let needle = swar_broadcast(tag);
        for i in 0..t.d {
            if sums[i] == 0 {
                continue; // Algorithm 2: skip empty buckets
            }
            t.meter.offchip_read(1);
            visited_flags_ok &= t.flags[cands[i]];
            let mut hits = swar_eq_mask(t.bucket_tags(cands[i]), needle, t.layout.l);
            while hits != 0 {
                let idx = t.slot_idx(cands[i], swar_first_lane(hits));
                if t.slots[idx].as_ref().is_some_and(|e| e.key == *key) {
                    return Probe::Found(idx);
                }
                hits &= hits - 1; // clear the lowest matching lane
            }
        }
        Probe::Miss {
            check_stash: t.stash_screen(cands, visited_flags_ok),
        }
    }

    /// All-copies probe: first hit via Algorithm 2, siblings through the
    /// verified hint set.
    fn probe_copies<K: KeyHash + Eq + Clone, V: Clone>(
        t: &Engine<K, V, Self>,
        key: &K,
        cands: &[usize; MAX_D],
        tag: u8,
    ) -> CopyProbe {
        match Self::probe_first(t, key, cands, tag) {
            Probe::Found(idx) => {
                let entry = t.slots[idx].as_ref().expect("probe found it");
                let count = t.counters.get(idx);
                let hints = entry.hints;
                let ekey = entry.key.clone();
                let mut locations = t.locate_siblings(&ekey, &hints, count, idx);
                locations.push(idx);
                CopyProbe::Found {
                    locations,
                    primary: idx,
                }
            }
            Probe::Miss { check_stash } => CopyProbe::Miss { check_stash },
        }
    }

    /// Stage-1 plan for Algorithm 2: unmetered sum peeks decide which
    /// buckets the probe will read (sum-zero buckets are skipped, the
    /// aggressive Bloom rule may kill the probe outright); only those
    /// are prefetched — bucket line, tag lane and flag byte.
    fn plan_probe<K: KeyHash + Eq + Clone, V: Clone>(
        t: &Engine<K, V, Self>,
        cands: &[usize; MAX_D],
    ) -> ProbePlan {
        let mut plan = ProbePlan::FALLBACK;
        let mut any_zero = false;
        for &c in cands.iter().take(t.d) {
            if t.bucket_sum(c) == 0 {
                any_zero = true;
                continue;
            }
            plan.order[plan.len as usize] = c;
            plan.len += 1;
        }
        if t.layout.aggressive && t.deletion == DeletionMode::Disabled && any_zero {
            plan.rule1 = true;
            plan.len = 0; // definite miss: nothing worth prefetching
            return plan;
        }
        for &c in plan.order[..plan.len as usize].iter() {
            let base = t.slot_idx(c, 0);
            crate::prefetch::prefetch_index(&t.slots, base);
            crate::prefetch::prefetch_index(&t.tags, base);
            crate::prefetch::prefetch_index(&t.flags, c);
        }
        plan
    }

    /// Replay of `probe_first` over the planned buckets: the metered
    /// counter scan, one off-chip read plus SWAR tag match per non-empty
    /// bucket, and the same stash-screening decision.
    fn probe_planned<K: KeyHash + Eq + Clone, V: Clone>(
        t: &Engine<K, V, Self>,
        key: &K,
        cands: &[usize; MAX_D],
        tag: u8,
        plan: &ProbePlan,
    ) -> (Probe, u64) {
        t.meter_counter_scan();
        if plan.rule1 {
            return (Probe::Miss { check_stash: false }, 0);
        }
        let mut visited_flags_ok = true;
        let mut visited = 0u64;
        let needle = swar_broadcast(tag);
        for &c in plan.order[..plan.len as usize].iter() {
            t.meter.offchip_read(1);
            visited += 1;
            visited_flags_ok &= t.flags[c];
            let mut hits = swar_eq_mask(t.bucket_tags(c), needle, t.layout.l);
            while hits != 0 {
                let idx = t.slot_idx(c, swar_first_lane(hits));
                if t.slots[idx].as_ref().is_some_and(|e| e.key == *key) {
                    return (Probe::Found(idx), visited);
                }
                hits &= hits - 1;
            }
        }
        (
            Probe::Miss {
                check_stash: t.stash_screen(cands, visited_flags_ok),
            },
            visited,
        )
    }
}

impl<K: KeyHash + Eq + Clone, V: Clone> Engine<K, V, BlockedLayout> {
    /// Build a table from `config`.
    ///
    /// # Panics
    /// Panics on invalid configuration (`slots` must be 1..=8).
    pub fn new(config: BlockedConfig) -> Self {
        config.base.validate();
        assert!(
            (1..=8).contains(&config.slots),
            "slots per bucket must be 1..=8"
        );
        Engine::from_config(
            config.base,
            BlockedLayout {
                l: config.slots,
                aggressive: config.aggressive_lookup,
            },
        )
    }

    /// Slots per bucket.
    pub fn slots_per_bucket(&self) -> usize {
        self.layout.l
    }

    /// Whether the aggressive-lookup extension is enabled.
    pub fn aggressive_lookup_enabled(&self) -> bool {
        self.layout.aggressive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem_model::InsertOutcome;
    use std::collections::HashMap;
    use workloads::UniqueKeys;

    fn paper_table(n: usize, seed: u64) -> BlockedMcCuckoo<u64, u64> {
        BlockedMcCuckoo::new(BlockedConfig::paper(n, seed))
    }

    #[test]
    fn first_insert_gets_d_copies() {
        let mut t = paper_table(64, 1);
        let r = t.insert_new(9, 90).unwrap();
        assert_eq!(r.copies_written, 3);
        assert_eq!(t.copy_count(&9), 3);
        assert_eq!(t.get(&9), Some(&90));
        t.check_invariants().unwrap();
    }

    #[test]
    fn fills_to_99_percent() {
        // Table III runs B-McCuckoo to 100% load; 99% must fill with the
        // stash nearly empty.
        let n = 2_000;
        let mut t = paper_table(n, 2);
        let cap = 3 * n * 3;
        let target = cap * 99 / 100;
        let mut keys = UniqueKeys::new(3);
        for _ in 0..target {
            let k = keys.next_key();
            t.insert_new(k, k).unwrap();
        }
        assert!(t.load_ratio() > 0.98);
        assert!(t.stash_len() < cap / 200, "stash {}", t.stash_len());
        for k in UniqueKeys::new(3).take_vec(target) {
            assert!(t.contains(&k));
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn first_collision_beyond_half_load() {
        // Table I: B-McCuckoo's first collision at ~61%.
        let n = 2_000;
        let mut t = paper_table(n, 4);
        let mut keys = UniqueKeys::new(5);
        let cap = 3 * n * 3;
        let mut first = None;
        for i in 0..cap {
            let k = keys.next_key();
            let r = t.insert_new(k, k).unwrap();
            if r.collision {
                first = Some(i as f64 / cap as f64);
                break;
            }
        }
        let load = first.expect("collision expected before 100%");
        assert!(load > 0.4, "first collision at {load}, expected > 0.4");
    }

    #[test]
    fn lookup_hit_costs_at_most_d_reads() {
        let n = 1_000;
        let mut t = paper_table(n, 6);
        let mut keys = UniqueKeys::new(7);
        let ks: Vec<u64> = (0..3 * n * 3 * 80 / 100)
            .map(|_| {
                let k = keys.next_key();
                t.insert_new(k, k).unwrap();
                k
            })
            .collect();
        for k in &ks {
            let before = t.meter().snapshot();
            assert_eq!(t.get(k), Some(k));
            let delta = t.meter().snapshot() - before;
            assert!(delta.offchip_reads <= 3);
        }
    }

    #[test]
    fn deletion_reset_roundtrip_zero_writes() {
        let n = 500;
        let mut t: BlockedMcCuckoo<u64, u64> = BlockedMcCuckoo::new(BlockedConfig {
            base: McConfig::paper_with_deletion(n, 8),
            slots: 3,
            aggressive_lookup: false,
        });
        let mut keys = UniqueKeys::new(9);
        let ks = keys.take_vec(3 * n * 3 / 2);
        for &k in &ks {
            t.insert_new(k, k + 5).unwrap();
        }
        let before = t.meter().snapshot();
        for &k in &ks {
            assert_eq!(t.remove(&k), Some(k + 5));
        }
        let delta = t.meter().snapshot() - before;
        assert_eq!(delta.offchip_writes, 0);
        assert!(t.is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn differential_against_hashmap_with_deletions() {
        let mut t: BlockedMcCuckoo<u64, u64> = BlockedMcCuckoo::new(BlockedConfig {
            base: McConfig::paper_with_deletion(512, 10),
            slots: 3,
            aggressive_lookup: false,
        });
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut keys = UniqueKeys::new(11);
        let mut s = hash_kit::SplitMix64::new(12);
        let mut live: Vec<u64> = Vec::new();
        for step in 0..40_000u64 {
            match s.next_below(10) {
                0..=4 => {
                    let k = keys.next_key();
                    t.insert_new(k, k ^ step).unwrap();
                    model.insert(k, k ^ step);
                    live.push(k);
                }
                5..=6 if !live.is_empty() => {
                    let i = s.next_below(live.len() as u64) as usize;
                    assert_eq!(t.get(&live[i]), model.get(&live[i]));
                }
                7..=8 if !live.is_empty() => {
                    let i = s.next_below(live.len() as u64) as usize;
                    let k = live.swap_remove(i);
                    assert_eq!(t.remove(&k), model.remove(&k));
                }
                _ => {
                    let k = keys.absent_key(s.next_below(1 << 20));
                    assert_eq!(t.get(&k), None);
                }
            }
            if step % 10_000 == 0 {
                t.check_invariants().unwrap();
            }
        }
        assert_eq!(t.len(), model.len());
        for (k, v) in &model {
            assert_eq!(t.get(k), Some(v));
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn upsert_updates_every_copy() {
        let mut t = paper_table(64, 13);
        t.insert(3, 30).unwrap();
        assert_eq!(t.copy_count(&3), 3);
        let r = t.insert(3, 31).unwrap();
        assert_eq!(r.outcome, InsertOutcome::Updated);
        assert_eq!(t.get(&3), Some(&31));
        assert_eq!(t.main_len(), 1);
        // All physical copies must agree (scan raw locations).
        for idx in t.raw_copy_locations(&3) {
            assert_eq!(t.slots[idx].as_ref().unwrap().value, 31);
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn stash_and_screening_at_overload() {
        let n = 60;
        let mut t: BlockedMcCuckoo<u64, u64> = BlockedMcCuckoo::new(BlockedConfig {
            base: McConfig::paper(n, 14).with_maxloop(50),
            slots: 3,
            aggressive_lookup: false,
        });
        let mut keys = UniqueKeys::new(15);
        let cap = 3 * n * 3;
        let extra = cap / 20;
        let ks: Vec<u64> = (0..cap + extra)
            .map(|_| {
                let k = keys.next_key();
                t.insert_new(k, k).unwrap();
                k
            })
            .collect();
        assert!(t.stash_len() > 0, "overload must stash");
        for k in &ks {
            assert!(t.contains(k));
        }
        let before = t.meter().snapshot();
        for j in 0..1000 {
            assert_eq!(t.get(&keys.absent_key(j)), None);
        }
        let delta = t.meter().snapshot() - before;
        assert!(
            delta.stash_visits <= 150,
            "{} absent lookups visited stash",
            delta.stash_visits
        );
        t.check_invariants().unwrap();
    }

    #[test]
    fn aggressive_lookup_extension_is_sound_and_cheaper() {
        let n = 2_000;
        let mut plain = paper_table(n, 16);
        let mut aggro: BlockedMcCuckoo<u64, u64> =
            BlockedMcCuckoo::new(BlockedConfig::paper(n, 16).with_aggressive_lookup(true));
        let mut keys = UniqueKeys::new(17);
        let ks = keys.take_vec(3 * n * 3 / 4); // 25% load
        for &k in &ks {
            plain.insert_new(k, k).unwrap();
            aggro.insert_new(k, k).unwrap();
        }
        let (b_plain, b_aggro) = (plain.meter().snapshot(), aggro.meter().snapshot());
        for j in 0..2_000 {
            let a = keys.absent_key(j);
            assert_eq!(plain.get(&a), None);
            assert_eq!(aggro.get(&a), None);
        }
        let d_plain = plain.meter().snapshot() - b_plain;
        let d_aggro = aggro.meter().snapshot() - b_aggro;
        assert!(
            d_aggro.offchip_reads < d_plain.offchip_reads,
            "aggressive {} vs plain {}",
            d_aggro.offchip_reads,
            d_plain.offchip_reads
        );
        // Hits must still work.
        for &k in ks.iter().take(500) {
            assert_eq!(aggro.get(&k), Some(&k));
        }
    }

    #[test]
    fn single_slot_blocked_matches_single_behaviour() {
        // l=1 blocked table must behave like the single-slot design.
        let mut t: BlockedMcCuckoo<u64, u64> = BlockedMcCuckoo::new(BlockedConfig {
            base: McConfig::paper(512, 18),
            slots: 1,
            aggressive_lookup: false,
        });
        let mut keys = UniqueKeys::new(19);
        let ks = keys.take_vec(3 * 512 * 80 / 100);
        for &k in &ks {
            t.insert_new(k, k).unwrap();
        }
        for &k in &ks {
            assert!(t.contains(&k));
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn iter_unique_keys() {
        let mut t = paper_table(128, 20);
        let mut keys = UniqueKeys::new(21);
        let ks = keys.take_vec(400);
        for &k in &ks {
            t.insert_new(k, k).unwrap();
        }
        let mut got: Vec<u64> = t.iter().map(|(k, _)| *k).collect();
        got.sort_unstable();
        let mut want = ks.clone();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "slots per bucket")]
    fn too_many_slots_rejected() {
        let _ = BlockedMcCuckoo::<u64, u64>::new(BlockedConfig {
            base: McConfig::paper(8, 0),
            slots: 9,
            aggressive_lookup: false,
        });
    }
}
