//! Lock-free per-table statistics (the observability layer).
//!
//! Every table in the workspace exposes
//! [`McTable::stats`](crate::McTable::stats), which returns a plain-data
//! [`TableStats`] snapshot assembled from an [`Obs`] recorder embedded in
//! the table. The recorder is a set of monotonic relaxed atomics — safe
//! to bump from the concurrent table's lock-free read path and cheap
//! enough to leave on unconditionally:
//!
//! * **op counters** ([`OpStats`]): inserts / in-place updates / failed
//!   inserts / stash spills / lookup hits + misses / removes (hit and
//!   miss) / total kick-outs;
//! * **log-bucketed histograms** ([`Histogram`]): probe count per
//!   lookup, kick-walk length per fresh insert, and batch size for the
//!   batched entry points. Bucket 0 holds exact zeroes; bucket *i* ≥ 1
//!   holds values in `[2^(i-1), 2^i)`, with the last bucket open-ended.
//!
//! Counters are *monotonic for the lifetime of the table* — they are not
//! reset by [`clear`](crate::McTable::clear) — so differential harnesses
//! can take a baseline snapshot, run a workload, and reconcile the delta
//! against an oracle tally regardless of intervening clears.
//!
//! [`ShardedMcCuckoo`](crate::ShardedMcCuckoo) reports both the merged
//! aggregate and a per-shard breakdown ([`ShardStats`]), enabling
//! occupancy-skew and hot-shard detection
//! ([`TableStats::occupancy_skew`], [`TableStats::hottest_shard`]).
//!
//! All snapshot types serialise via `jsonlite`, so stats embed directly
//! in benchmark JSON reports.

use std::sync::atomic::{AtomicU64, Ordering};

use jsonlite::impl_json_struct;
use mem_model::{InsertOutcome, InsertReport};

use crate::pad::CachePadded;

/// Number of log2 buckets in each histogram. Bucket 0 is the exact-zero
/// bucket; bucket 15 is open-ended, so values up to `2^14 - 1` land in
/// their precise power-of-two band.
pub const HIST_BUCKETS: usize = 16;

/// Index of the log2 bucket that `value` falls into.
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// A fixed-size log2-bucketed histogram with relaxed-atomic cells.
#[derive(Debug, Default)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// Batch-local, non-atomic insert bookkeeping, flushed in one pass by
/// [`Obs::absorb_inserts`]. Keeps the batched write paths free of
/// per-item atomic traffic.
#[derive(Debug, Default)]
pub(crate) struct InsertTally {
    inserts: u64,
    updates: u64,
    failed_inserts: u64,
    stash_spills: u64,
    kicks: u64,
    kick_buckets: [u64; HIST_BUCKETS],
    kick_count: u64,
    kick_sum: u64,
}

impl InsertTally {
    /// Mirror of [`Obs::record_insert`] against the local tally.
    pub(crate) fn record(&mut self, report: &InsertReport) {
        match report.outcome {
            InsertOutcome::Placed => self.inserts += 1,
            InsertOutcome::Updated => {
                self.updates += 1;
                return;
            }
            InsertOutcome::Stashed => {
                self.inserts += 1;
                self.stash_spills += 1;
            }
            InsertOutcome::Failed => self.failed_inserts += 1,
        }
        self.kicks += report.kickouts as u64;
        self.kick_buckets[bucket_of(report.kickouts as u64)] += 1;
        self.kick_count += 1;
        self.kick_sum += report.kickouts as u64;
    }
}

/// Batch-local, non-atomic lookup bookkeeping, flushed in one pass by
/// [`Obs::absorb_lookups`]. The batched read paths tally per-key
/// outcomes here and pay the atomic traffic once per batch instead of
/// ~4 RMWs per key — on a table whose probes mostly hit cache, those
/// RMWs are a large share of the whole lookup.
#[derive(Debug, Default)]
pub(crate) struct LookupTally {
    hits: u64,
    misses: u64,
    probe_buckets: [u64; HIST_BUCKETS],
    probe_count: u64,
    probe_sum: u64,
}

impl LookupTally {
    /// Mirror of [`Obs::record_lookup`] against the local tally.
    pub(crate) fn record(&mut self, hit: bool, probes: u64) {
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        self.probe_buckets[bucket_of(probes)] += 1;
        self.probe_count += 1;
        self.probe_sum += probes;
    }
}

impl AtomicHistogram {
    /// Record one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Plain-data snapshot of the current cell values.
    pub fn snapshot(&self) -> Histogram {
        Histogram {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of an [`AtomicHistogram`]: per-bucket sample counts plus the
/// total sample count and value sum (for exact means).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[0]` counts exact zeroes; `buckets[i]` (i ≥ 1) counts
    /// samples in `[2^(i-1), 2^i)`; the last bucket is open-ended.
    pub buckets: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all sample values.
    pub sum: u64,
}

impl_json_struct!(Histogram {
    buckets,
    count,
    sum
});

impl Histogram {
    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Accumulate `other` into `self`, bucket by bucket.
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// Monotonic operation counters of one table (or one shard).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Fresh keys placed in the main table.
    pub inserts: u64,
    /// Upserts that updated an existing key in place.
    pub updates: u64,
    /// Inserts that failed outright (no stash, walk exhausted).
    pub failed_inserts: u64,
    /// Inserts that spilled to the stash.
    pub stash_spills: u64,
    /// Lookups that found the key.
    pub lookup_hits: u64,
    /// Lookups that missed.
    pub lookup_misses: u64,
    /// Removes that deleted a present key.
    pub removes: u64,
    /// Removes of absent keys.
    pub remove_misses: u64,
    /// Total items relocated by kick-out walks.
    pub kicks: u64,
}

impl_json_struct!(OpStats {
    inserts,
    updates,
    failed_inserts,
    stash_spills,
    lookup_hits,
    lookup_misses,
    removes,
    remove_misses,
    kicks
});

impl OpStats {
    /// Total operations observed (insert attempts + lookups + removes).
    pub fn total_ops(&self) -> u64 {
        self.inserts
            + self.updates
            + self.failed_inserts
            + self.lookup_hits
            + self.lookup_misses
            + self.removes
            + self.remove_misses
    }

    /// Insert attempts of any outcome (fresh, update, spill, or failure).
    pub fn insert_attempts(&self) -> u64 {
        self.inserts + self.updates + self.failed_inserts
    }

    /// Accumulate `other` into `self`.
    pub fn merge(&mut self, other: &OpStats) {
        self.inserts += other.inserts;
        self.updates += other.updates;
        self.failed_inserts += other.failed_inserts;
        self.stash_spills += other.stash_spills;
        self.lookup_hits += other.lookup_hits;
        self.lookup_misses += other.lookup_misses;
        self.removes += other.removes;
        self.remove_misses += other.remove_misses;
        self.kicks += other.kicks;
    }
}

/// Per-shard breakdown reported by the sharded serving layer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardStats {
    /// Shard index (router order).
    pub shard: usize,
    /// Distinct keys currently stored in the shard.
    pub len: usize,
    /// Slot capacity of the shard.
    pub capacity: usize,
    /// The shard's own op counters.
    pub ops: OpStats,
}

impl_json_struct!(ShardStats {
    shard,
    len,
    capacity,
    ops
});

impl ShardStats {
    /// Fraction of the shard's slots in use.
    pub fn load(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.len as f64 / self.capacity as f64
        }
    }
}

/// Counters for incremental shard-split migration (zero for tables
/// that never split). Monotonic, like every other observability cell.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MigrationStats {
    /// Shard splits begun (including resumed ones).
    pub splits_started: u64,
    /// Splits whose drain finished with forwarding fully retired.
    pub splits_completed: u64,
    /// Keys relocated from a parent shard to its split sibling.
    pub keys_moved: u64,
    /// Migration-cursor visits that found the key already gone
    /// (removed, or moved by a forwarded client upsert).
    pub keys_skipped: u64,
    /// Keys the sibling could not absorb (left in the parent behind a
    /// permanent forwarding entry).
    pub move_failures: u64,
    /// Operations that consulted the forwarding map and touched the
    /// parent side of an in-flight split.
    pub forwarding_hits: u64,
    /// Wall-clock duration of each completed `begin_split` call, in
    /// microseconds (log2 buckets).
    pub split_hist: Histogram,
}

impl_json_struct!(MigrationStats {
    splits_started,
    splits_completed,
    keys_moved,
    keys_skipped,
    move_failures,
    forwarding_hits,
    split_hist
});

impl MigrationStats {
    /// Accumulate `other` into `self`.
    pub fn merge(&mut self, other: &MigrationStats) {
        self.splits_started += other.splits_started;
        self.splits_completed += other.splits_completed;
        self.keys_moved += other.keys_moved;
        self.keys_skipped += other.keys_skipped;
        self.move_failures += other.move_failures;
        self.forwarding_hits += other.forwarding_hits;
        self.split_hist.merge(&other.split_hist);
    }
}

/// Relaxed-atomic recorder behind [`MigrationStats`] — one per sharded
/// table, bumped by the split cursor and the forwarding-aware routing
/// paths.
#[derive(Debug, Default)]
pub(crate) struct MigrationObs {
    splits_started: AtomicU64,
    splits_completed: AtomicU64,
    keys_moved: AtomicU64,
    keys_skipped: AtomicU64,
    move_failures: AtomicU64,
    forwarding_hits: AtomicU64,
    split_hist: AtomicHistogram,
}

impl MigrationObs {
    pub(crate) fn record_split_started(&self) {
        self.splits_started.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a finished drain: whether forwarding was fully retired,
    /// plus the split's wall-clock duration in microseconds.
    pub(crate) fn record_split_finished(&self, completed: bool, duration_us: u64) {
        if completed {
            self.splits_completed.fetch_add(1, Ordering::Relaxed);
        }
        self.split_hist.record(duration_us);
    }

    pub(crate) fn record_moved(&self) {
        self.keys_moved.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_skipped(&self) {
        self.keys_skipped.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_move_failure(&self) {
        self.move_failures.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_forwarding_hit(&self) {
        self.forwarding_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> MigrationStats {
        MigrationStats {
            splits_started: self.splits_started.load(Ordering::Relaxed),
            splits_completed: self.splits_completed.load(Ordering::Relaxed),
            keys_moved: self.keys_moved.load(Ordering::Relaxed),
            keys_skipped: self.keys_skipped.load(Ordering::Relaxed),
            move_failures: self.move_failures.load(Ordering::Relaxed),
            forwarding_hits: self.forwarding_hits.load(Ordering::Relaxed),
            split_hist: self.split_hist.snapshot(),
        }
    }
}

/// Counters for the cooperative maintenance loop ([`crate::maint`]):
/// forwarding retirement, automated log compaction, managed snapshots.
/// All-zero for tables nobody maintains. Counters are monotonic except
/// the two labelled gauges, which report the state at snapshot time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MaintStats {
    /// Retirement drains attempted (one per live forwarding pair per
    /// [`retire_forwarding`](crate::ShardedMcCuckoo::retire_forwarding)
    /// pass).
    pub retirements_attempted: u64,
    /// Retirement drains that fully emptied and cleared their
    /// forwarding entries.
    pub retirements_succeeded: u64,
    /// **Gauge**: directory entries currently carrying a forwarding tag
    /// (0 = every split fully retired; lookups everywhere one-sided).
    pub forwarding_live: u64,
    /// Automated log compactions run (capture-position-then-truncate).
    pub compactions: u64,
    /// Op-log records dropped by compaction.
    pub records_truncated: u64,
    /// Op-log bytes dropped by compaction.
    pub bytes_truncated: u64,
    /// Managed snapshots taken (cadence snapshots plus the capture each
    /// compaction takes).
    pub snapshots_taken: u64,
    /// **Gauge**: maintenance ticks since the last managed snapshot
    /// (equals the current tick count while none has been taken).
    pub last_snapshot_age: u64,
}

impl_json_struct!(MaintStats {
    retirements_attempted,
    retirements_succeeded,
    forwarding_live,
    compactions,
    records_truncated,
    bytes_truncated,
    snapshots_taken,
    last_snapshot_age
});

impl MaintStats {
    /// Accumulate `other` into `self` (gauges are summed too — merging
    /// tables sums their live forwarding entries and takes the larger
    /// snapshot age as the staler of the two loops).
    pub fn merge(&mut self, other: &MaintStats) {
        self.retirements_attempted += other.retirements_attempted;
        self.retirements_succeeded += other.retirements_succeeded;
        self.forwarding_live += other.forwarding_live;
        self.compactions += other.compactions;
        self.records_truncated += other.records_truncated;
        self.bytes_truncated += other.bytes_truncated;
        self.snapshots_taken += other.snapshots_taken;
        self.last_snapshot_age = self.last_snapshot_age.max(other.last_snapshot_age);
    }
}

/// Relaxed-atomic recorder behind [`MaintStats`] — one per sharded
/// table, bumped by retirement passes and the [`crate::maint`] driver.
/// The `forwarding_live` gauge is *not* stored here: the table computes
/// it from the directory at snapshot time.
#[derive(Debug, Default)]
pub(crate) struct MaintObs {
    retirements_attempted: AtomicU64,
    retirements_succeeded: AtomicU64,
    compactions: AtomicU64,
    records_truncated: AtomicU64,
    bytes_truncated: AtomicU64,
    snapshots_taken: AtomicU64,
    /// Maintenance ticks seen so far (the driver's clock).
    ticks: AtomicU64,
    /// Tick of the most recent managed snapshot.
    last_snapshot_tick: AtomicU64,
}

impl MaintObs {
    pub(crate) fn record_retirement_attempt(&self) {
        self.retirements_attempted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_retirement_success(&self) {
        self.retirements_succeeded.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_compaction(&self, records: u64, bytes: u64) {
        self.compactions.fetch_add(1, Ordering::Relaxed);
        self.records_truncated.fetch_add(records, Ordering::Relaxed);
        self.bytes_truncated.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_snapshot(&self) {
        self.snapshots_taken.fetch_add(1, Ordering::Relaxed);
        self.last_snapshot_tick
            .store(self.ticks.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    pub(crate) fn record_tick(&self) {
        self.ticks.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> MaintStats {
        let ticks = self.ticks.load(Ordering::Relaxed);
        MaintStats {
            retirements_attempted: self.retirements_attempted.load(Ordering::Relaxed),
            retirements_succeeded: self.retirements_succeeded.load(Ordering::Relaxed),
            forwarding_live: 0,
            compactions: self.compactions.load(Ordering::Relaxed),
            records_truncated: self.records_truncated.load(Ordering::Relaxed),
            bytes_truncated: self.bytes_truncated.load(Ordering::Relaxed),
            snapshots_taken: self.snapshots_taken.load(Ordering::Relaxed),
            last_snapshot_age: ticks
                .saturating_sub(self.last_snapshot_tick.load(Ordering::Relaxed)),
        }
    }
}

/// Plain-data statistics snapshot returned by
/// [`McTable::stats`](crate::McTable::stats).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableStats {
    /// Monotonic op counters (aggregate across shards, if any).
    pub ops: OpStats,
    /// Buckets probed per lookup.
    pub probe_hist: Histogram,
    /// Kick-walk length per fresh-insert attempt (0 = clean placement).
    pub kick_hist: Histogram,
    /// Batch sizes seen by the batched entry points (empty for tables
    /// without batch APIs).
    pub batch_hist: Histogram,
    /// Per-shard breakdown; empty for unsharded tables.
    pub shards: Vec<ShardStats>,
    /// Configured kick-walk policy label (`"random-walk"`, `"bfs"`,
    /// `"bubble"`); empty for tables without a kick policy (baselines).
    /// One table runs exactly one policy, so `kick_hist` *is* the
    /// per-policy kick-walk-length histogram — this label names it.
    pub kick_policy: String,
    /// Shard-split migration counters; all-zero for tables that never
    /// split (every unsharded table).
    pub migration: MigrationStats,
    /// Maintenance-loop counters (retirements, compactions, snapshot
    /// cadence); all-zero for tables without a maintenance loop.
    pub maint: MaintStats,
}

impl_json_struct!(TableStats {
    ops,
    probe_hist,
    kick_hist,
    batch_hist,
    shards,
    kick_policy,
    migration,
    maint
});

impl TableStats {
    /// Accumulate `other`'s counters and histograms into `self` (shard
    /// breakdowns are concatenated; the policy label is adopted from
    /// `other` when `self` has none).
    pub fn merge(&mut self, other: &TableStats) {
        self.ops.merge(&other.ops);
        self.probe_hist.merge(&other.probe_hist);
        self.kick_hist.merge(&other.kick_hist);
        self.batch_hist.merge(&other.batch_hist);
        self.shards.extend(other.shards.iter().cloned());
        if self.kick_policy.is_empty() {
            self.kick_policy = other.kick_policy.clone();
        }
        self.migration.merge(&other.migration);
        self.maint.merge(&other.maint);
    }

    /// Occupancy skew across shards: max shard load divided by mean
    /// shard load (1.0 = perfectly even; 0.0 when unsharded or empty).
    pub fn occupancy_skew(&self) -> f64 {
        if self.shards.is_empty() {
            return 0.0;
        }
        let loads: Vec<f64> = self.shards.iter().map(ShardStats::load).collect();
        let mean = loads.iter().sum::<f64>() / loads.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        loads.iter().cloned().fold(0.0f64, f64::max) / mean
    }

    /// Index of the shard with the most observed operations, if sharded.
    pub fn hottest_shard(&self) -> Option<usize> {
        self.shards
            .iter()
            .max_by_key(|s| s.ops.total_ops())
            .map(|s| s.shard)
    }
}

/// Counters bumped by mutating operations (the writer-side half).
#[derive(Debug, Default)]
struct WriteObs {
    inserts: AtomicU64,
    updates: AtomicU64,
    failed_inserts: AtomicU64,
    stash_spills: AtomicU64,
    removes: AtomicU64,
    remove_misses: AtomicU64,
    kicks: AtomicU64,
    kick_hist: AtomicHistogram,
    batch_hist: AtomicHistogram,
}

/// Counters bumped by the lock-free read path (the reader-side half).
#[derive(Debug, Default)]
struct ReadObs {
    lookup_hits: AtomicU64,
    lookup_misses: AtomicU64,
    probe_hist: AtomicHistogram,
}

/// The in-table recorder: one cell per counter, all relaxed atomics.
///
/// Embed one per table; bump from the outermost public operations only
/// (internal re-insert paths — stash refresh, rehash, snapshot restore —
/// must go through unrecorded inner variants so one logical op is never
/// counted twice).
///
/// The cells are split into a writer half and a reader half, each padded
/// to its own cacheline pair: lock-free readers hammering `probe_hist`
/// must not bounce the line a concurrent writer's `inserts` counter
/// lives on (and in the sharded table, neighbouring shards' recorders
/// must not share lines either).
#[derive(Debug, Default)]
pub struct Obs {
    write: CachePadded<WriteObs>,
    read: CachePadded<ReadObs>,
}

impl Clone for Obs {
    /// Cloning a table clones the counter *values* (the clone keeps its
    /// own independent cells).
    fn clone(&self) -> Self {
        let fresh = Obs::default();
        fresh.absorb(&self.snapshot());
        fresh
    }
}

impl Obs {
    /// Record the outcome of one public insert/upsert call.
    pub fn record_insert(&self, report: &InsertReport) {
        match report.outcome {
            InsertOutcome::Placed => {
                self.write.inserts.fetch_add(1, Ordering::Relaxed);
            }
            InsertOutcome::Updated => {
                self.write.updates.fetch_add(1, Ordering::Relaxed);
                // An in-place update is not a walk; keep kick_hist to
                // fresh placement attempts only.
                return;
            }
            InsertOutcome::Stashed => {
                self.write.inserts.fetch_add(1, Ordering::Relaxed);
                self.write.stash_spills.fetch_add(1, Ordering::Relaxed);
            }
            InsertOutcome::Failed => {
                self.write.failed_inserts.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.write
            .kicks
            .fetch_add(report.kickouts as u64, Ordering::Relaxed);
        self.write.kick_hist.record(report.kickouts as u64);
    }

    /// Record one public lookup and how many buckets it probed.
    pub fn record_lookup(&self, hit: bool, probes: u64) {
        if hit {
            self.read.lookup_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.read.lookup_misses.fetch_add(1, Ordering::Relaxed);
        }
        self.read.probe_hist.record(probes);
    }

    /// Record one public remove.
    pub fn record_remove(&self, hit: bool) {
        if hit {
            self.write.removes.fetch_add(1, Ordering::Relaxed);
        } else {
            self.write.remove_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record the size of one batched call.
    pub fn record_batch(&self, len: usize) {
        self.write.batch_hist.record(len as u64);
    }

    /// Flush a batch-local insert tally in one pass — the batched write
    /// paths accumulate into a plain [`InsertTally`] per batch instead
    /// of paying ~5 atomic RMWs per item, and the identities observed by
    /// [`Self::snapshot`] come out exactly as if each report had been
    /// recorded individually.
    pub(crate) fn absorb_inserts(&self, t: &InsertTally) {
        let w = &self.write;
        if t.inserts > 0 {
            w.inserts.fetch_add(t.inserts, Ordering::Relaxed);
        }
        if t.updates > 0 {
            w.updates.fetch_add(t.updates, Ordering::Relaxed);
        }
        if t.failed_inserts > 0 {
            w.failed_inserts
                .fetch_add(t.failed_inserts, Ordering::Relaxed);
        }
        if t.stash_spills > 0 {
            w.stash_spills.fetch_add(t.stash_spills, Ordering::Relaxed);
        }
        if t.kicks > 0 {
            w.kicks.fetch_add(t.kicks, Ordering::Relaxed);
        }
        for (i, &n) in t.kick_buckets.iter().enumerate() {
            if n > 0 {
                w.kick_hist.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        if t.kick_count > 0 {
            w.kick_hist.count.fetch_add(t.kick_count, Ordering::Relaxed);
            w.kick_hist.sum.fetch_add(t.kick_sum, Ordering::Relaxed);
        }
    }

    /// Flush a batch-local lookup tally in one pass — the read-side twin
    /// of [`Self::absorb_inserts`]. Every counter and histogram cell
    /// lands exactly as if each lookup had called
    /// [`Self::record_lookup`] individually.
    pub(crate) fn absorb_lookups(&self, t: &LookupTally) {
        let r = &self.read;
        if t.hits > 0 {
            r.lookup_hits.fetch_add(t.hits, Ordering::Relaxed);
        }
        if t.misses > 0 {
            r.lookup_misses.fetch_add(t.misses, Ordering::Relaxed);
        }
        for (i, &n) in t.probe_buckets.iter().enumerate() {
            if n > 0 {
                r.probe_hist.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        if t.probe_count > 0 {
            r.probe_hist
                .count
                .fetch_add(t.probe_count, Ordering::Relaxed);
            r.probe_hist.sum.fetch_add(t.probe_sum, Ordering::Relaxed);
        }
    }

    /// Plain-data snapshot of every counter and histogram.
    pub fn snapshot(&self) -> TableStats {
        TableStats {
            ops: OpStats {
                inserts: self.write.inserts.load(Ordering::Relaxed),
                updates: self.write.updates.load(Ordering::Relaxed),
                failed_inserts: self.write.failed_inserts.load(Ordering::Relaxed),
                stash_spills: self.write.stash_spills.load(Ordering::Relaxed),
                lookup_hits: self.read.lookup_hits.load(Ordering::Relaxed),
                lookup_misses: self.read.lookup_misses.load(Ordering::Relaxed),
                removes: self.write.removes.load(Ordering::Relaxed),
                remove_misses: self.write.remove_misses.load(Ordering::Relaxed),
                kicks: self.write.kicks.load(Ordering::Relaxed),
            },
            probe_hist: self.read.probe_hist.snapshot(),
            kick_hist: self.write.kick_hist.snapshot(),
            batch_hist: self.write.batch_hist.snapshot(),
            shards: Vec::new(),
            kick_policy: String::new(),
            migration: MigrationStats::default(),
            maint: MaintStats::default(),
        }
    }

    /// Add a snapshot's counts onto this recorder (used by `Clone` and by
    /// aggregation paths that fold shard recorders together).
    pub fn absorb(&self, stats: &TableStats) {
        self.write
            .inserts
            .fetch_add(stats.ops.inserts, Ordering::Relaxed);
        self.write
            .updates
            .fetch_add(stats.ops.updates, Ordering::Relaxed);
        self.write
            .failed_inserts
            .fetch_add(stats.ops.failed_inserts, Ordering::Relaxed);
        self.write
            .stash_spills
            .fetch_add(stats.ops.stash_spills, Ordering::Relaxed);
        self.read
            .lookup_hits
            .fetch_add(stats.ops.lookup_hits, Ordering::Relaxed);
        self.read
            .lookup_misses
            .fetch_add(stats.ops.lookup_misses, Ordering::Relaxed);
        self.write
            .removes
            .fetch_add(stats.ops.removes, Ordering::Relaxed);
        self.write
            .remove_misses
            .fetch_add(stats.ops.remove_misses, Ordering::Relaxed);
        self.write
            .kicks
            .fetch_add(stats.ops.kicks, Ordering::Relaxed);
        for (hist, snap) in [
            (&self.read.probe_hist, &stats.probe_hist),
            (&self.write.kick_hist, &stats.kick_hist),
            (&self.write.batch_hist, &stats.batch_hist),
        ] {
            for (i, &n) in snap.buckets.iter().enumerate() {
                if i < HIST_BUCKETS {
                    hist.buckets[i].fetch_add(n, Ordering::Relaxed);
                }
            }
            hist.count.fetch_add(snap.count, Ordering::Relaxed);
            hist.sum.fetch_add(snap.sum, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(1 << 14), 15);
        assert_eq!(bucket_of(u64::MAX), 15);
    }

    #[test]
    fn histogram_records_and_means() {
        let h = AtomicHistogram::default();
        h.record(0);
        h.record(1);
        h.record(5);
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum, 6);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[1], 1);
        assert_eq!(snap.buckets[3], 1);
        assert!((snap.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn insert_report_routing() {
        let obs = Obs::default();
        obs.record_insert(&InsertReport::clean(3));
        obs.record_insert(&InsertReport {
            outcome: InsertOutcome::Updated,
            kickouts: 0,
            collision: false,
            copies_written: 1,
        });
        obs.record_insert(&InsertReport {
            outcome: InsertOutcome::Stashed,
            kickouts: 50,
            collision: true,
            copies_written: 0,
        });
        obs.record_insert(&InsertReport {
            outcome: InsertOutcome::Failed,
            kickouts: 50,
            collision: true,
            copies_written: 0,
        });
        let s = obs.snapshot();
        assert_eq!(s.ops.inserts, 2); // clean + stashed
        assert_eq!(s.ops.updates, 1);
        assert_eq!(s.ops.failed_inserts, 1);
        assert_eq!(s.ops.stash_spills, 1);
        assert_eq!(s.ops.kicks, 100);
        // Updated is excluded from the walk histogram.
        assert_eq!(s.kick_hist.count, 3);
    }

    #[test]
    fn merge_and_skew() {
        let mut a = TableStats::default();
        a.shards.push(ShardStats {
            shard: 0,
            len: 10,
            capacity: 100,
            ops: OpStats {
                lookup_hits: 5,
                ..OpStats::default()
            },
        });
        let mut b = TableStats::default();
        b.shards.push(ShardStats {
            shard: 1,
            len: 30,
            capacity: 100,
            ops: OpStats {
                lookup_hits: 50,
                ..OpStats::default()
            },
        });
        a.merge(&b);
        assert_eq!(a.shards.len(), 2);
        // mean load = 0.2, max = 0.3 → skew 1.5
        assert!((a.occupancy_skew() - 1.5).abs() < 1e-12);
        assert_eq!(a.hottest_shard(), Some(1));
    }

    #[test]
    fn json_roundtrip() {
        let obs = Obs::default();
        obs.record_insert(&InsertReport::clean(1));
        obs.record_lookup(true, 2);
        obs.record_batch(128);
        let mut snap = obs.snapshot();
        snap.shards.push(ShardStats {
            shard: 0,
            len: 1,
            capacity: 3,
            ops: snap.ops,
        });
        snap.kick_policy = "bfs".to_string();
        let s = jsonlite::to_string(&snap);
        let back: TableStats = jsonlite::from_str(&s).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn merge_adopts_policy_label_when_absent() {
        let mut a = TableStats::default();
        let b = TableStats {
            kick_policy: "bubble".to_string(),
            ..TableStats::default()
        };
        a.merge(&b);
        assert_eq!(a.kick_policy, "bubble");
        // An already-set label is kept.
        let c = TableStats {
            kick_policy: "bfs".to_string(),
            ..TableStats::default()
        };
        a.merge(&c);
        assert_eq!(a.kick_policy, "bubble");
    }

    #[test]
    fn clone_snapshots_values() {
        let obs = Obs::default();
        obs.record_lookup(false, 1);
        let dup = obs.clone();
        obs.record_lookup(false, 1);
        assert_eq!(dup.snapshot().ops.lookup_misses, 1);
        assert_eq!(obs.snapshot().ops.lookup_misses, 2);
    }
}
