//! Append-only operation log — incremental persistence on top of
//! [`crate::persist`] snapshots.
//!
//! A snapshot alone forces a full re-insert on restore and says nothing
//! about operations after the capture. The op log closes both gaps:
//! the application records every *completed* mutation (insert, remove,
//! shard split, clear) as one JSON line through a pluggable
//! [`LogSink`], and [`crate::ShardedMcCuckoo::recover`] replays the
//! tail into a restored snapshot. Because shard and split-child hash
//! seeds re-derive deterministically from the master seed, replaying
//! the logged `Split` records reproduces the grown shard layout
//! exactly — a recovered table routes, probes, and splits identically
//! to the one that wrote the log.
//!
//! The writer is deliberately fsync-free and in-memory: durability
//! policy (buffering, rotation, fsync cadence) belongs to the sink, not
//! the table. [`VecSink`] is the reference sink — an `Arc`'d line
//! buffer that tests and the bench harness read back directly; a real
//! deployment implements [`LogSink`] over its file or replication
//! stream.
//!
//! **Recovery ordering.** Replay records in append order, after the
//! snapshot they follow. Logged shard ids are interpreted against the
//! recovering table's state, so the log must be replayed onto the
//! snapshot it was written against (standard log-shipping discipline:
//! a snapshot capture notes the log position and truncates up to it —
//! [`crate::maint::Compactor`] automates exactly that protocol through
//! [`LogSink::truncate_front`], on a watermark, under the split lock).
//! Records are idempotent at the value level (`Insert` is an upsert,
//! `Remove` of a missing key is a no-op), so replaying a suffix that
//! straddles a *live* snapshot capture converges to the same state.
//!
//! ```
//! use mccuckoo_core::oplog::{OpLog, OpRecord, VecSink, parse_log};
//! use mccuckoo_core::{McConfig, ShardedMcCuckoo};
//!
//! let table = ShardedMcCuckoo::<u64, u64>::new(2, McConfig::paper(256, 9));
//! let snapshot = table.to_snapshot(); // empty baseline
//!
//! let sink = VecSink::new();
//! let log = OpLog::new(sink.clone());
//! table.insert(1, 10).unwrap();
//! log.record(&OpRecord::Insert { key: 1u64, value: 10u64 });
//! table.begin_split(0).unwrap();
//! log.record(&OpRecord::<u64, u64>::Split { shard: 0 });
//!
//! // Crash. Recover = snapshot + replay.
//! let ops = parse_log::<u64, u64>(&sink.lines()).unwrap();
//! let recovered = ShardedMcCuckoo::recover(snapshot, &ops).unwrap();
//! assert_eq!(recovered.get(&1), Some(10));
//! assert_eq!(recovered.shard_count(), table.shard_count());
//! ```

use std::fmt;
use std::sync::{Arc, Mutex};

use jsonlite::{FromJson, Json, JsonError, ToJson};

use crate::shard::SplitError;

/// One logged mutation. `Insert` records the post-image (an upsert on
/// replay), so logging the operation *after* it completes is safe even
/// when it overwrote an existing value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpRecord<K, V> {
    /// A completed insert or update of `key` to `value`.
    Insert {
        /// The written key.
        key: K,
        /// The value the key held when the operation completed.
        value: V,
    },
    /// A completed removal of `key` (logging a miss is harmless).
    Remove {
        /// The removed key.
        key: K,
    },
    /// A completed [`crate::ShardedMcCuckoo::begin_split`] of `shard`.
    Split {
        /// The shard that was split (id in the *writing* table — replay
        /// against the snapshot this log was written over).
        shard: usize,
    },
    /// A completed [`crate::ShardedMcCuckoo::clear`].
    Clear,
}

impl<K: ToJson, V: ToJson> ToJson for OpRecord<K, V> {
    fn to_json(&self) -> Json {
        match self {
            OpRecord::Insert { key, value } => Json::Obj(vec![
                ("op".to_owned(), Json::Str("insert".to_owned())),
                ("key".to_owned(), key.to_json()),
                ("value".to_owned(), value.to_json()),
            ]),
            OpRecord::Remove { key } => Json::Obj(vec![
                ("op".to_owned(), Json::Str("remove".to_owned())),
                ("key".to_owned(), key.to_json()),
            ]),
            OpRecord::Split { shard } => Json::Obj(vec![
                ("op".to_owned(), Json::Str("split".to_owned())),
                ("shard".to_owned(), shard.to_json()),
            ]),
            OpRecord::Clear => Json::Obj(vec![("op".to_owned(), Json::Str("clear".to_owned()))]),
        }
    }
}

impl<K: FromJson, V: FromJson> FromJson for OpRecord<K, V> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let field = |name: &str| {
            j.get(name)
                .ok_or_else(|| JsonError(format!("op record missing field '{name}'")))
        };
        let Json::Str(op) = field("op")? else {
            return Err(JsonError("op record field 'op' must be a string".into()));
        };
        match op.as_str() {
            "insert" => Ok(OpRecord::Insert {
                key: FromJson::from_json(field("key")?)?,
                value: FromJson::from_json(field("value")?)?,
            }),
            "remove" => Ok(OpRecord::Remove {
                key: FromJson::from_json(field("key")?)?,
            }),
            "split" => Ok(OpRecord::Split {
                shard: FromJson::from_json(field("shard")?)?,
            }),
            "clear" => Ok(OpRecord::Clear),
            other => Err(JsonError(format!("unknown op record kind '{other}'"))),
        }
    }
}

/// Where serialised log lines go. Implementations own the durability
/// policy — buffer, rotate, fsync, replicate — the table layer never
/// blocks on it. `append` must be safe to call from multiple threads.
///
/// The truncation side of the trait is what [`crate::maint::Compactor`]
/// drives: a compaction captures the retained record count, takes a
/// snapshot, then drops everything before the capture with
/// [`Self::truncate_front`]. Positions are **absolute** — record `i` is
/// the `i`-th record ever appended, and [`Self::first_record_index`]
/// says where the retained tail starts — so a snapshot taken at
/// position `p` replays the retained records from offset
/// `p - first_record_index()` onward.
pub trait LogSink {
    /// Persist one serialised record (a single JSON object, no
    /// trailing newline).
    fn append(&self, line: &str);

    /// Records currently retained (appended and not yet truncated).
    fn record_count(&self) -> usize;

    /// Total serialised bytes of the retained records.
    fn byte_len(&self) -> u64;

    /// Absolute index of the oldest retained record: the total number
    /// of records ever dropped by [`Self::truncate_front`] (0 until the
    /// first truncation).
    fn first_record_index(&self) -> u64;

    /// Drop the oldest `records` retained records (clamped to the
    /// retained count). Returns the serialised bytes dropped.
    fn truncate_front(&self, records: usize) -> u64;
}

/// The reference in-memory sink: a shared, thread-safe line buffer.
/// Clones share the same buffer, so the writer side hands a clone to
/// the log and keeps one for reading the lines back. Truncation drops
/// retained lines from the front and remembers how many records (and
/// bytes) it has dropped, so absolute positions stay meaningful across
/// compactions.
#[derive(Clone, Default)]
pub struct VecSink {
    inner: Arc<Mutex<VecSinkInner>>,
}

#[derive(Default)]
struct VecSinkInner {
    lines: Vec<String>,
    dropped_records: u64,
    dropped_bytes: u64,
}

impl VecSink {
    /// An empty shared buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of every *retained* line (append order). After a
    /// compaction this is exactly the tail to replay over the
    /// compaction snapshot.
    pub fn lines(&self) -> Vec<String> {
        self.inner
            .lock()
            .expect("oplog sink poisoned")
            .lines
            .clone()
    }

    /// Retained lines (appended and not yet truncated).
    pub fn len(&self) -> usize {
        self.record_count()
    }

    /// Whether no lines are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl LogSink for VecSink {
    fn append(&self, line: &str) {
        self.inner
            .lock()
            .expect("oplog sink poisoned")
            .lines
            .push(line.to_owned());
    }

    fn record_count(&self) -> usize {
        self.inner.lock().expect("oplog sink poisoned").lines.len()
    }

    fn byte_len(&self) -> u64 {
        self.inner
            .lock()
            .expect("oplog sink poisoned")
            .lines
            .iter()
            .map(|l| l.len() as u64)
            .sum()
    }

    fn first_record_index(&self) -> u64 {
        self.inner
            .lock()
            .expect("oplog sink poisoned")
            .dropped_records
    }

    fn truncate_front(&self, records: usize) -> u64 {
        let mut inner = self.inner.lock().expect("oplog sink poisoned");
        let n = records.min(inner.lines.len());
        let bytes: u64 = inner.lines.drain(..n).map(|l| l.len() as u64).sum();
        inner.dropped_records += n as u64;
        inner.dropped_bytes += bytes;
        bytes
    }
}

/// The append-only writer: serialises each record through `jsonlite`
/// and hands the line to the sink. Stateless beyond the sink — cheap to
/// share behind an `Arc` next to the table.
pub struct OpLog<S: LogSink> {
    sink: S,
}

impl<S: LogSink> OpLog<S> {
    /// Wrap a sink.
    pub fn new(sink: S) -> Self {
        Self { sink }
    }

    /// Append one record.
    pub fn record<K: ToJson, V: ToJson>(&self, rec: &OpRecord<K, V>) {
        self.sink.append(&jsonlite::to_string(rec));
    }

    /// The sink, for handing to readers.
    pub fn sink(&self) -> &S {
        &self.sink
    }
}

/// Parse an append-ordered slice of log lines back into records.
/// Fails on the first malformed line (a torn tail line should be
/// truncated by the sink's recovery procedure before parsing).
pub fn parse_log<K: FromJson, V: FromJson>(
    lines: &[String],
) -> Result<Vec<OpRecord<K, V>>, JsonError> {
    lines
        .iter()
        .map(|l| OpRecord::from_json(&jsonlite::parse(l)?))
        .collect()
}

/// Why [`crate::ShardedMcCuckoo::recover`] could not rebuild the table.
/// Every variant is a *reported* failure — recovery never panics and
/// never silently drops data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoverError {
    /// The snapshot itself no longer fits its geometry (only possible
    /// when the snapshot was edited toward a smaller configuration).
    SnapshotOverflow {
        /// How many snapshot items could not be placed.
        leftover: usize,
    },
    /// A replayed insert overflowed the table.
    InsertOverflow {
        /// Index of the failing record in the log slice.
        index: usize,
    },
    /// A replayed split was rejected (e.g. the log was replayed against
    /// a snapshot it was not written over).
    Split {
        /// Index of the failing record in the log slice.
        index: usize,
        /// The split-layer rejection.
        error: SplitError,
    },
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::SnapshotOverflow { leftover } => {
                write!(
                    f,
                    "snapshot restore overflowed: {leftover} item(s) unplaceable"
                )
            }
            RecoverError::InsertOverflow { index } => {
                write!(
                    f,
                    "log replay: insert at record {index} overflowed the table"
                )
            }
            RecoverError::Split { index, error } => {
                write!(f, "log replay: split at record {index} rejected: {error}")
            }
        }
    }
}

impl std::error::Error for RecoverError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_roundtrip_through_json_lines() {
        let sink = VecSink::new();
        let log = OpLog::new(sink.clone());
        let recs: Vec<OpRecord<u64, u64>> = vec![
            OpRecord::Insert { key: 7, value: 70 },
            OpRecord::Remove { key: 7 },
            OpRecord::Split { shard: 1 },
            OpRecord::Clear,
            OpRecord::Insert { key: 8, value: 80 },
        ];
        for r in &recs {
            log.record(r);
        }
        assert_eq!(sink.len(), recs.len());
        let back = parse_log::<u64, u64>(&sink.lines()).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn malformed_lines_are_typed_errors() {
        let bad = vec!["{\"op\":\"teleport\",\"key\":1}".to_owned()];
        let err = parse_log::<u64, u64>(&bad).unwrap_err();
        assert!(err.0.contains("teleport"), "got: {}", err.0);
        let missing = vec!["{\"key\":1}".to_owned()];
        let err = parse_log::<u64, u64>(&missing).unwrap_err();
        assert!(err.0.contains("'op'"), "got: {}", err.0);
    }

    #[test]
    fn sink_clones_share_the_buffer() {
        let a = VecSink::new();
        let b = a.clone();
        a.append("x");
        b.append("y");
        assert_eq!(a.lines(), vec!["x".to_owned(), "y".to_owned()]);
        assert!(!b.is_empty());
    }

    #[test]
    fn truncate_front_drops_the_oldest_records_and_tracks_positions() {
        let sink = VecSink::new();
        for i in 0..5 {
            sink.append(&format!("rec-{i}"));
        }
        assert_eq!(sink.record_count(), 5);
        assert_eq!(sink.first_record_index(), 0);
        assert_eq!(sink.byte_len(), 5 * "rec-0".len() as u64);

        let dropped = sink.truncate_front(2);
        assert_eq!(dropped, 2 * "rec-0".len() as u64);
        assert_eq!(sink.record_count(), 3);
        assert_eq!(sink.first_record_index(), 2);
        assert_eq!(
            sink.lines(),
            vec!["rec-2".to_owned(), "rec-3".to_owned(), "rec-4".to_owned()]
        );

        // Appends after a truncation keep absolute positions meaningful.
        sink.append("rec-5");
        assert_eq!(sink.first_record_index() + sink.record_count() as u64, 6);

        // Over-asking clamps to the retained count.
        let dropped = sink.truncate_front(100);
        assert_eq!(dropped, 4 * "rec-0".len() as u64);
        assert!(sink.is_empty());
        assert_eq!(sink.first_record_index(), 6);
        assert_eq!(sink.byte_len(), 0);
        assert_eq!(sink.truncate_front(1), 0);
    }
}
