//! Cooperative background maintenance for [`ShardedMcCuckoo`]:
//! forwarding retirement, automated op-log compaction, and managed
//! snapshots.
//!
//! PR 9's growth layer left three runbook items that this module turns
//! into a loop:
//!
//! * **Forwarding retirement.** A split whose child placements overflow
//!   (or whose migrator crashes) leaves forwarding entries up, and every
//!   lookup on those routes pays a two-sided probe. Forwarding entries
//!   are fallback structures, like the paper's stash: they only
//!   preserve the O(1) lookup story if something actively bounds and
//!   retires them. [`Maintainer::tick`] re-runs
//!   [`ShardedMcCuckoo::retire_forwarding`] on a bounded backoff
//!   schedule until the directory carries no forwarding tags, turning a
//!   permanent degradation into a transient one. A crash mid-retirement
//!   leaves the table exactly as consistent and resumable as a crashed
//!   migrator.
//!
//! * **Automated log compaction.** [`Compactor`] wires
//!   [`ShardedMcCuckoo::snapshot_live`] and
//!   [`LogSink::truncate_front`] into the documented
//!   capture-position-then-truncate protocol, under the split lock so
//!   no `Split` record can straddle the boundary: capture the retained
//!   record count, snapshot (format 3 snapshots carry the split
//!   history, so the truncated `Split` records are not needed), then
//!   truncate everything before the capture. [`Maintainer::tick`] runs
//!   it whenever the retained record count crosses
//!   [`MaintConfig::compact_watermark`]. Recovery from the compaction
//!   snapshot plus the retained tail reproduces the live table exactly.
//!
//! * **Managed snapshots.** [`MaintConfig::snapshot_every`] takes a
//!   cadence snapshot every N ticks (compaction captures count too);
//!   the newest [`MaintConfig::retain`] are kept in a ring, each
//!   stamped with its absolute log position so the replay tail is
//!   well-defined.
//!
//! The loop is **cooperative**: the host calls [`Maintainer::tick`]
//! whenever it likes (an event loop turn, a timer, a request-count
//! threshold), or hands the maintainer to [`Maintainer::spawn`] for a
//! managed thread. Everything the loop does is observable through the
//! [`MaintStats`](crate::obs::MaintStats) block of
//! [`TableStats`](crate::TableStats).
//!
//! ```
//! use mccuckoo_core::maint::{MaintConfig, Maintainer};
//! use mccuckoo_core::oplog::{LogSink, OpLog, OpRecord, VecSink};
//! use mccuckoo_core::{McConfig, ShardedMcCuckoo};
//! use std::sync::Arc;
//!
//! let table = Arc::new(ShardedMcCuckoo::<u64, u64>::new(2, McConfig::paper(256, 9)));
//! let sink = VecSink::new();
//! let log = OpLog::new(sink.clone());
//! for k in 0..100u64 {
//!     table.insert(k, k).unwrap();
//!     log.record(&OpRecord::Insert { key: k, value: k });
//! }
//!
//! let mut maint = Maintainer::new(
//!     table.clone(),
//!     sink.clone(),
//!     MaintConfig {
//!         compact_watermark: 50,
//!         ..MaintConfig::default()
//!     },
//! );
//! let report = maint.tick();
//! assert!(report.compaction.is_some());
//! assert!(sink.record_count() < 50);
//! assert_eq!(table.stats().maint.compactions, 1);
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use hash_kit::KeyHash;

use crate::oplog::LogSink;
use crate::shard::{RetireReport, ShardedMcCuckoo, ShardedSnapshot};

/// Policy for the maintenance loop. All units are **ticks** — the loop
/// has no clock of its own; the host decides what a tick means by how
/// often it calls [`Maintainer::tick`] (or via the interval it hands to
/// [`Maintainer::spawn`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaintConfig {
    /// Take a managed cadence snapshot every this-many ticks (0 =
    /// cadence snapshots off; compaction captures are still managed).
    pub snapshot_every: u64,
    /// How many managed snapshots to keep (oldest dropped first;
    /// treated as at least 1 so a compaction capture is never lost).
    pub retain: usize,
    /// Run a compaction when the sink retains at least this many
    /// records (0 = automated compaction off).
    pub compact_watermark: usize,
    /// Ticks to wait between retirement attempts while forwarding stays
    /// up: the first failure waits `retire_backoff[0]` ticks, the next
    /// `retire_backoff[1]`, …, staying at the last entry once the
    /// schedule is exhausted (an empty schedule retries every tick).
    /// The backoff resets as soon as the directory is clean.
    pub retire_backoff: Vec<u64>,
}

impl Default for MaintConfig {
    fn default() -> Self {
        Self {
            snapshot_every: 0,
            retain: 2,
            compact_watermark: 4096,
            retire_backoff: vec![1, 2, 4, 8, 16],
        }
    }
}

/// What one [`Compactor::compact`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// Absolute log position of the capture: the snapshot reflects
    /// every record before this position; the retained tail starts
    /// here.
    pub log_pos: u64,
    /// Records truncated (everything before `log_pos`).
    pub records_dropped: usize,
    /// Serialised bytes those records occupied.
    pub bytes_dropped: u64,
}

/// One managed snapshot, stamped with when and where it was captured.
#[derive(Debug, Clone)]
pub struct ManagedSnapshot<K, V> {
    /// The maintenance tick that took it.
    pub at_tick: u64,
    /// Absolute log position of the capture; replay the records from
    /// this position onward to roll the snapshot forward.
    pub log_pos: u64,
    /// The capture itself.
    pub snapshot: ShardedSnapshot<K, V>,
}

impl<K, V> ManagedSnapshot<K, V> {
    /// Offset of this snapshot's replay tail inside the sink's retained
    /// records, given the sink's current
    /// [`first_record_index`](LogSink::first_record_index). `None` when
    /// a later compaction has truncated past the capture — the snapshot
    /// still restores, but only to its capture point.
    pub fn tail_offset(&self, first_record_index: u64) -> Option<usize> {
        self.log_pos
            .checked_sub(first_record_index)
            .map(|d| d as usize)
    }
}

/// The capture-position-then-truncate protocol as a value: snapshot the
/// table, then drop every log record the snapshot already covers.
///
/// The whole capture runs under the table's split lock, so a `Split`
/// record can never straddle the boundary (inserts and removes may —
/// they are idempotent on replay, so recovery converges regardless).
/// The truncation happens strictly *after* the snapshot exists; a crash
/// between the two (the `testhooks` feature's
/// `arm_panic_in_compaction` injects exactly that death) loses nothing
/// — the log is still intact and the previous baseline still replays.
pub struct Compactor<K, V, S: LogSink> {
    table: Arc<ShardedMcCuckoo<K, V>>,
    sink: S,
}

impl<K, V, S> Compactor<K, V, S>
where
    K: KeyHash + Eq + Copy,
    V: Copy,
    S: LogSink,
{
    /// Wire a table to its log sink.
    pub fn new(table: Arc<ShardedMcCuckoo<K, V>>, sink: S) -> Self {
        Self { table, sink }
    }

    /// The sink, for position queries.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Whether the sink's retained record count has reached `watermark`
    /// (0 = never).
    pub fn should_compact(&self, watermark: usize) -> bool {
        watermark > 0 && self.sink.record_count() >= watermark
    }

    /// Run one compaction: capture the retained record count and a live
    /// snapshot under the split lock, then truncate everything before
    /// the capture. Returns the snapshot (the caller owns durability)
    /// and the boundary report. Safe under concurrent writers: a record
    /// appended before the capture position is covered by the snapshot
    /// (its table effect happened-before the position read); records at
    /// or after it are retained and replay idempotently.
    pub fn compact(&self) -> (ShardedSnapshot<K, V>, CompactReport) {
        let _split = self.table.split_guard();
        let records = self.sink.record_count();
        let log_pos = self.sink.first_record_index() + records as u64;
        let snapshot = self.table.snapshot_live();
        #[cfg(feature = "testhooks")]
        crate::testhooks::fire_panic_in_compaction();
        let bytes = self.sink.truncate_front(records);
        self.table
            .maint_obs()
            .record_compaction(records as u64, bytes);
        (
            snapshot,
            CompactReport {
                log_pos,
                records_dropped: records,
                bytes_dropped: bytes,
            },
        )
    }
}

/// What one [`Maintainer::tick`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickReport {
    /// The tick number (1-based).
    pub tick: u64,
    /// The retirement pass this tick ran, if one was due.
    pub retire: Option<RetireReport>,
    /// The compaction this tick ran, if the watermark tripped.
    pub compaction: Option<CompactReport>,
    /// Whether a managed snapshot was taken (compaction capture or
    /// cadence snapshot).
    pub snapshot_taken: bool,
}

/// The cooperative maintenance driver: owns the policy, the retirement
/// backoff state, and the managed-snapshot ring. Drive it by calling
/// [`Self::tick`] from the host, or hand it to [`Self::spawn`] for a
/// managed thread.
pub struct Maintainer<K, V, S: LogSink> {
    compactor: Compactor<K, V, S>,
    table: Arc<ShardedMcCuckoo<K, V>>,
    config: MaintConfig,
    tick: u64,
    /// Index into `config.retire_backoff` for the *next* failed attempt.
    backoff_idx: usize,
    /// Earliest tick the next retirement attempt may run.
    next_retire_tick: u64,
    snapshots: VecDeque<ManagedSnapshot<K, V>>,
}

impl<K, V, S> Maintainer<K, V, S>
where
    K: KeyHash + Eq + Copy,
    V: Copy,
    S: LogSink,
{
    /// Wire a table, its log sink, and a policy into a driver.
    pub fn new(table: Arc<ShardedMcCuckoo<K, V>>, sink: S, config: MaintConfig) -> Self {
        Self {
            compactor: Compactor::new(table.clone(), sink),
            table,
            config,
            tick: 0,
            backoff_idx: 0,
            next_retire_tick: 0,
            snapshots: VecDeque::new(),
        }
    }

    /// The policy in force.
    pub fn config(&self) -> &MaintConfig {
        &self.config
    }

    /// The managed-snapshot ring, oldest first.
    pub fn snapshots(&self) -> impl Iterator<Item = &ManagedSnapshot<K, V>> {
        self.snapshots.iter()
    }

    /// The most recent managed snapshot.
    pub fn latest_snapshot(&self) -> Option<&ManagedSnapshot<K, V>> {
        self.snapshots.back()
    }

    /// One maintenance turn: retire forwarding if due, compact if the
    /// watermark tripped, take a cadence snapshot if one is due. Each
    /// leg is independent; an idle tick does nothing but advance the
    /// loop's clock.
    pub fn tick(&mut self) -> TickReport {
        self.tick += 1;
        self.table.maint_obs().record_tick();
        let mut report = TickReport {
            tick: self.tick,
            retire: None,
            compaction: None,
            snapshot_taken: false,
        };
        if self.table.forwarding_live() > 0 {
            if self.tick >= self.next_retire_tick {
                let r = self.table.retire_forwarding();
                if r.forwarding_live == 0 {
                    self.backoff_idx = 0;
                    self.next_retire_tick = 0;
                } else {
                    // Still degraded: back off along the schedule,
                    // staying at its last entry once exhausted.
                    let delay = self
                        .config
                        .retire_backoff
                        .get(self.backoff_idx)
                        .copied()
                        .unwrap_or(1);
                    if self.backoff_idx + 1 < self.config.retire_backoff.len() {
                        self.backoff_idx += 1;
                    }
                    self.next_retire_tick = self.tick + delay;
                }
                report.retire = Some(r);
            }
        } else {
            self.backoff_idx = 0;
            self.next_retire_tick = 0;
        }
        if self.compactor.should_compact(self.config.compact_watermark) {
            let (snapshot, cr) = self.compactor.compact();
            self.push_snapshot(snapshot, cr.log_pos);
            report.compaction = Some(cr);
            report.snapshot_taken = true;
        } else if self.config.snapshot_every > 0 && self.tick % self.config.snapshot_every == 0 {
            // Cadence snapshot: same capture discipline as the
            // compactor (position + snapshot under the split lock),
            // without the truncation.
            let (snapshot, log_pos) = {
                let _split = self.table.split_guard();
                let pos = self.compactor.sink().first_record_index()
                    + self.compactor.sink().record_count() as u64;
                (self.table.snapshot_live(), pos)
            };
            self.push_snapshot(snapshot, log_pos);
            report.snapshot_taken = true;
        }
        report
    }

    fn push_snapshot(&mut self, snapshot: ShardedSnapshot<K, V>, log_pos: u64) {
        self.table.maint_obs().record_snapshot();
        self.snapshots.push_back(ManagedSnapshot {
            at_tick: self.tick,
            log_pos,
            snapshot,
        });
        let retain = self.config.retain.max(1);
        while self.snapshots.len() > retain {
            self.snapshots.pop_front();
        }
    }
}

/// Control handle for a [`Maintainer::spawn`]ed thread.
pub struct MaintHandle<K, V, S: LogSink> {
    stop: Arc<AtomicBool>,
    join: JoinHandle<Maintainer<K, V, S>>,
}

impl<K, V, S: LogSink> MaintHandle<K, V, S> {
    /// Signal the thread to stop, wait for its current tick to finish,
    /// and hand the maintainer (with its snapshot ring) back.
    ///
    /// # Panics
    /// Panics if the maintenance thread itself panicked.
    pub fn stop(self) -> Maintainer<K, V, S> {
        self.stop.store(true, Ordering::Release);
        self.join.thread().unpark();
        self.join.join().expect("maintenance thread panicked")
    }
}

impl<K, V, S> Maintainer<K, V, S>
where
    K: KeyHash + Eq + Copy + Send + 'static,
    V: Copy + Send + 'static,
    S: LogSink + Send + 'static,
{
    /// The optional managed thread: tick every `interval` until
    /// [`MaintHandle::stop`] is called. For hosts that would rather own
    /// the cadence, call [`Self::tick`] directly instead.
    pub fn spawn(self, interval: Duration) -> MaintHandle<K, V, S> {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let join = std::thread::spawn(move || {
            let mut maint = self;
            while !flag.load(Ordering::Acquire) {
                maint.tick();
                std::thread::park_timeout(interval);
            }
            maint
        });
        MaintHandle { stop, join }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::McConfig;
    use crate::oplog::{parse_log, OpLog, OpRecord, VecSink};

    fn logged_table(
        shards: usize,
        seed: u64,
    ) -> (Arc<ShardedMcCuckoo<u64, u64>>, VecSink, OpLog<VecSink>) {
        let t = Arc::new(ShardedMcCuckoo::new(shards, McConfig::paper(256, seed)));
        let sink = VecSink::new();
        let log = OpLog::new(sink.clone());
        (t, sink, log)
    }

    fn insert_logged(
        t: &ShardedMcCuckoo<u64, u64>,
        log: &OpLog<VecSink>,
        keys: impl Iterator<Item = u64>,
    ) {
        for k in keys {
            let v = k.wrapping_mul(3);
            t.insert(k, v).unwrap();
            log.record(&OpRecord::Insert { key: k, value: v });
        }
    }

    /// Recover from a managed snapshot plus the sink's retained tail
    /// and assert logical identity with the live table.
    fn assert_recovers_identically(
        t: &ShardedMcCuckoo<u64, u64>,
        sink: &VecSink,
        ms: &ManagedSnapshot<u64, u64>,
    ) {
        let offset = ms
            .tail_offset(sink.first_record_index())
            .expect("tail truncated past the capture");
        let lines = sink.lines();
        let ops = parse_log::<u64, u64>(&lines[offset..]).unwrap();
        let r = ShardedMcCuckoo::recover(ms.snapshot.clone(), &ops).unwrap();
        assert_eq!(r.len(), t.len());
        assert_eq!(r.shard_count(), t.shard_count());
        let mut a = t.to_snapshot().items;
        let mut b = r.to_snapshot().items;
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "recovered items diverge from the writer");
        for &(k, _) in &a {
            assert_eq!(r.shard_of(&k), t.shard_of(&k), "routing diverged at {k}");
        }
        r.check_invariants().unwrap();
    }

    #[test]
    fn watermark_compaction_truncates_and_recovers_identically() {
        let (t, sink, log) = logged_table(2, 60);
        insert_logged(&t, &log, 0..120);
        t.begin_split(0).unwrap();
        log.record(&OpRecord::<u64, u64>::Split { shard: 0 });
        let mut maint = Maintainer::new(
            t.clone(),
            sink.clone(),
            MaintConfig {
                compact_watermark: 100,
                ..MaintConfig::default()
            },
        );
        let report = maint.tick();
        let cr = report.compaction.expect("watermark must trip");
        assert_eq!(cr.records_dropped, 121);
        assert_eq!(cr.log_pos, 121);
        assert!(cr.bytes_dropped > 0);
        assert_eq!(sink.record_count(), 0);
        assert_eq!(sink.first_record_index(), 121);
        assert!(report.snapshot_taken);

        // The capture is self-contained: it carries the split history.
        let ms = maint.latest_snapshot().unwrap();
        assert_eq!(ms.log_pos, 121);
        assert_eq!(ms.snapshot.splits, vec![0]);

        // Write across the boundary, then prove recovery is identical.
        insert_logged(&t, &log, 200..260);
        for k in 0..20u64 {
            t.remove(&k);
            log.record(&OpRecord::<u64, u64>::Remove { key: k });
        }
        t.begin_split(1).unwrap();
        log.record(&OpRecord::<u64, u64>::Split { shard: 1 });
        let ms = maint.latest_snapshot().unwrap().clone();
        assert_recovers_identically(&t, &sink, &ms);

        // A second tick below the watermark does nothing.
        let idle = maint.tick();
        assert!(idle.compaction.is_none() && !idle.snapshot_taken);
        let s = t.stats();
        assert_eq!(s.maint.compactions, 1);
        assert_eq!(s.maint.records_truncated, 121);
        assert!(s.maint.bytes_truncated > 0);
        assert_eq!(s.maint.snapshots_taken, 1);
    }

    #[test]
    fn cadence_snapshots_respect_retention_and_age() {
        let (t, sink, log) = logged_table(2, 61);
        insert_logged(&t, &log, 0..50);
        let mut maint = Maintainer::new(
            t.clone(),
            sink.clone(),
            MaintConfig {
                snapshot_every: 2,
                retain: 2,
                compact_watermark: 0,
                ..MaintConfig::default()
            },
        );
        for _ in 0..10 {
            maint.tick();
        }
        // Ticks 2,4,6,8,10 snapshotted; only the newest two are kept.
        let ticks: Vec<u64> = maint.snapshots().map(|s| s.at_tick).collect();
        assert_eq!(ticks, vec![8, 10]);
        // No compaction ran, so every tail is still replayable.
        for ms in maint.snapshots() {
            assert_recovers_identically(&t, &sink, ms);
        }
        let s = t.stats();
        assert_eq!(s.maint.snapshots_taken, 5);
        assert_eq!(s.maint.compactions, 0);
        assert_eq!(s.maint.last_snapshot_age, 0);
        maint.tick();
        assert_eq!(t.stats().maint.last_snapshot_age, 1);
    }

    #[test]
    fn managed_thread_ticks_and_hands_the_maintainer_back() {
        let (t, sink, log) = logged_table(2, 62);
        insert_logged(&t, &log, 0..80);
        let maint = Maintainer::new(
            t.clone(),
            sink.clone(),
            MaintConfig {
                compact_watermark: 10,
                ..MaintConfig::default()
            },
        );
        let handle = maint.spawn(Duration::from_millis(1));
        // Wait for the thread's loop to trip the watermark.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while t.stats().maint.compactions == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "managed thread never compacted"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        let maint = handle.stop();
        assert!(maint.latest_snapshot().is_some());
        assert!(sink.record_count() < 10);
        let ms = maint.latest_snapshot().unwrap().clone();
        assert_recovers_identically(&t, &sink, &ms);
    }

    #[cfg(feature = "testhooks")]
    #[test]
    fn maintenance_loop_retires_a_failed_split_with_backoff() {
        let (t, sink, log) = logged_table(2, 63);
        insert_logged(&t, &log, 0..300);
        // Degrade a split: every child placement fails, forwarding
        // stays up for the whole slice.
        crate::testhooks::arm_fail_child_placement(u32::MAX);
        let degraded = t.begin_split(0).unwrap();
        log.record(&OpRecord::<u64, u64>::Split { shard: 0 });
        assert!(degraded.failed > 0 && !degraded.forwarding_cleared);
        assert!(t.forwarding_live() > 0);

        let mut maint = Maintainer::new(
            t.clone(),
            sink.clone(),
            MaintConfig {
                retire_backoff: vec![2, 4],
                compact_watermark: 0,
                ..MaintConfig::default()
            },
        );
        // Keep failing placements: tick 1 attempts and fails, then the
        // schedule spaces attempts at ticks 3 and 7.
        let mut attempts = Vec::new();
        for _ in 0..7 {
            let r = maint.tick();
            if r.retire.is_some() {
                attempts.push(r.tick);
            }
        }
        assert_eq!(attempts, vec![1, 3, 7]);
        assert!(t.forwarding_live() > 0);

        // Let placements succeed: the next due attempt retires fully.
        crate::testhooks::disarm();
        let mut retired = None;
        for _ in 0..5 {
            let r = maint.tick();
            if let Some(rr) = r.retire {
                retired = Some(rr);
                break;
            }
        }
        let rr = retired.expect("a retirement attempt must come due");
        assert_eq!(rr.forwarding_live, 0);
        assert!(rr.moved > 0);
        assert_eq!(t.forwarding_live(), 0);
        for k in 0..300u64 {
            assert_eq!(t.get(&k), Some(k.wrapping_mul(3)));
        }
        t.check_invariants().unwrap();
        let s = t.stats();
        assert_eq!(s.maint.retirements_attempted, 4);
        assert_eq!(s.maint.retirements_succeeded, 1);
        assert_eq!(s.maint.forwarding_live, 0);
        // And the post-retirement table still recovers identically
        // across a compaction boundary (retirement needs no log record
        // — it only changes physical placement, never logical state).
        let compactor = Compactor::new(t.clone(), sink.clone());
        let (snapshot, cr) = compactor.compact();
        let ms = ManagedSnapshot {
            at_tick: 0,
            log_pos: cr.log_pos,
            snapshot,
        };
        assert_recovers_identically(&t, &sink, &ms);
    }
}
