//! The on-chip counter array (§III.C of the paper).
//!
//! One counter per bucket (or per slot in the blocked variant), recording
//! how many live copies the occupying item currently has in the whole
//! table. Counts never exceed `d ≤ 4`, so 2–3 bits suffice ("for the case
//! of d = 3, each counter costs only 2 bits"); counters are packed into
//! `u64` words exactly as an SRAM implementation would.
//!
//! Tombstones (deletion solution 2, §III.B.3) need one extra state beyond
//! `0..=d`. Rather than widening every counter, a separate packed bit
//! plane is allocated lazily the first time a tombstone is set — tables
//! configured without tombstone deletion pay nothing.

/// Packed counter array with optional tombstone plane.
#[derive(Debug, Clone)]
pub struct CounterArray {
    bits: u32,
    mask: u64,
    per_word: usize,
    len: usize,
    words: Vec<u64>,
    /// Lazily allocated tombstone bit plane (1 bit per counter).
    tombs: Option<Vec<u64>>,
    max_value: u8,
}

impl CounterArray {
    /// Array of `len` counters able to hold values `0..=max_value`.
    ///
    /// # Panics
    /// Panics if `max_value == 0` or `max_value > 15`.
    pub fn new(len: usize, max_value: u8) -> Self {
        assert!(max_value >= 1, "counters must hold at least 0..=1");
        assert!(max_value <= 15, "counter width capped at 4 bits");
        let bits = 8 - max_value.leading_zeros() % 8; // ceil(log2(max+1))
        let bits = bits.max(1);
        let per_word = (64 / bits) as usize;
        let words = vec![0u64; len.div_ceil(per_word)];
        Self {
            bits,
            mask: (1u64 << bits) - 1,
            per_word,
            len,
            words,
            tombs: None,
            max_value,
        }
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the array has no counters.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bits per counter (on-chip budget accounting; tombstone plane adds
    /// one more bit per counter once allocated).
    pub fn bits_per_counter(&self) -> u32 {
        self.bits + if self.tombs.is_some() { 1 } else { 0 }
    }

    /// Total on-chip bytes consumed.
    pub fn onchip_bytes(&self) -> usize {
        self.words.len() * 8 + self.tombs.as_ref().map_or(0, |t| t.len() * 8)
    }

    /// Counter value at `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u8 {
        debug_assert!(i < self.len);
        let w = i / self.per_word;
        let off = (i % self.per_word) as u32 * self.bits;
        ((self.words[w] >> off) & self.mask) as u8
    }

    /// Set counter `i` to `v`, clearing any tombstone.
    #[inline]
    pub fn set(&mut self, i: usize, v: u8) {
        debug_assert!(i < self.len);
        debug_assert!(
            v <= self.max_value,
            "counter value {v} exceeds max {}",
            self.max_value
        );
        let w = i / self.per_word;
        let off = (i % self.per_word) as u32 * self.bits;
        self.words[w] = (self.words[w] & !(self.mask << off)) | ((v as u64) << off);
        if let Some(t) = &mut self.tombs {
            t[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Whether counter `i` carries a tombstone mark.
    #[inline]
    pub fn is_tombstone(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.tombs
            .as_ref()
            .is_some_and(|t| t[i / 64] >> (i % 64) & 1 == 1)
    }

    /// Mark counter `i` as deleted: value forced to 0, tombstone bit set.
    pub fn set_tombstone(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.set(i, 0);
        let t = self
            .tombs
            .get_or_insert_with(|| vec![0u64; self.len.div_ceil(64)]);
        t[i / 64] |= 1u64 << (i % 64);
    }

    /// Convenience for the insertion rules: counter reads as *empty*
    /// (usable bucket) when 0 or tombstoned; tombstones read as 0 anyway,
    /// so this is just `get(i) == 0`.
    #[inline]
    pub fn reads_empty_for_insert(&self, i: usize) -> bool {
        self.get(i) == 0
    }

    /// Convenience for lookup rule 1: a tombstone is treated as non-zero
    /// ("treated as zero for insertion but as non-zero for lookups").
    #[inline]
    pub fn reads_zero_for_lookup(&self, i: usize) -> bool {
        self.get(i) == 0 && !self.is_tombstone(i)
    }

    /// Reset every counter (and tombstone) to 0 — what a table `clear`
    /// or flag refresh does.
    pub fn reset(&mut self) {
        self.words.fill(0);
        if let Some(t) = &mut self.tombs {
            t.fill(0);
        }
    }

    /// Iterator over all counter values.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0..self.len).map(|i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hash_kit::SplitMix64;

    #[test]
    fn width_selection() {
        assert_eq!(CounterArray::new(10, 1).bits, 1);
        assert_eq!(CounterArray::new(10, 2).bits, 2);
        assert_eq!(CounterArray::new(10, 3).bits, 2); // paper: d=3 → 2 bits
        assert_eq!(CounterArray::new(10, 4).bits, 3);
        assert_eq!(CounterArray::new(10, 7).bits, 3);
        assert_eq!(CounterArray::new(10, 15).bits, 4);
    }

    #[test]
    fn set_get_roundtrip_all_positions() {
        let n = 1000;
        let mut c = CounterArray::new(n, 3);
        let mut rng = SplitMix64::new(1);
        let vals: Vec<u8> = (0..n).map(|_| rng.next_below(4) as u8).collect();
        for (i, &v) in vals.iter().enumerate() {
            c.set(i, v);
        }
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(c.get(i), v, "position {i}");
        }
    }

    #[test]
    fn neighbours_are_not_disturbed() {
        let mut c = CounterArray::new(100, 3);
        for i in 0..100 {
            c.set(i, 1);
        }
        c.set(50, 3);
        assert_eq!(c.get(49), 1);
        assert_eq!(c.get(50), 3);
        assert_eq!(c.get(51), 1);
    }

    #[test]
    fn tombstone_semantics() {
        let mut c = CounterArray::new(64, 3);
        c.set(5, 2);
        c.set_tombstone(5);
        assert_eq!(c.get(5), 0);
        assert!(c.is_tombstone(5));
        assert!(c.reads_empty_for_insert(5)); // insertion sees empty
        assert!(!c.reads_zero_for_lookup(5)); // lookup rule 1 sees non-zero
                                              // Re-occupying clears the tombstone.
        c.set(5, 3);
        assert!(!c.is_tombstone(5));
        assert_eq!(c.get(5), 3);
        assert!(!c.reads_empty_for_insert(5));
    }

    #[test]
    fn tombstone_plane_is_lazy() {
        let mut c = CounterArray::new(1000, 3);
        assert_eq!(c.bits_per_counter(), 2);
        let base = c.onchip_bytes();
        c.set_tombstone(0);
        assert_eq!(c.bits_per_counter(), 3);
        assert!(c.onchip_bytes() > base);
    }

    #[test]
    fn onchip_budget_matches_paper() {
        // 3×n buckets with 2-bit counters: the paper's on-chip cost.
        let n = 1 << 20;
        let c = CounterArray::new(3 * n, 3);
        // 3 * 2^20 counters * 2 bits = 768 KiB.
        assert_eq!(c.onchip_bytes(), 3 * n * 2 / 8);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = CounterArray::new(100, 3);
        c.set(1, 3);
        c.set_tombstone(2);
        c.reset();
        assert_eq!(c.get(1), 0);
        assert!(!c.is_tombstone(2));
    }

    #[test]
    fn zero_before_any_set() {
        let c = CounterArray::new(77, 3);
        assert!(c.iter().all(|v| v == 0));
        assert!((0..77).all(|i| c.reads_zero_for_lookup(i)));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn overflow_value_is_rejected_in_debug() {
        let mut c = CounterArray::new(4, 3);
        c.set(0, 4);
    }

    #[test]
    fn word_boundary_positions() {
        // 2-bit counters: 32 per word; test around indices 31/32/33.
        let mut c = CounterArray::new(70, 3);
        for i in [31usize, 32, 33, 63, 64, 65] {
            c.set(i, 2);
            assert_eq!(c.get(i), 2);
        }
        // Check neighbours unaffected.
        assert_eq!(c.get(30), 0);
        assert_eq!(c.get(34), 0);
    }
}
