//! The single-slot d-ary McCuckoo table — the paper's core design
//! (§III.A–F), as the `l = 1` instantiation of the shared
//! [`engine`](crate::engine).
//!
//! Everything structural (insertion principles, kick walk, counter
//! maintenance, deletion, stash, invariants) lives in
//! [`Engine`]; this module contributes
//! [`SingleLayout`] and the single-slot lookup strategy:
//!
//! ## Lookup principles (§III.B.2)
//! 1. any candidate counter of 0 ⇒ definite miss (disabled under
//!    `Reset` deletion, tombstone-aware under `Tombstone`);
//! 2. partition candidates by counter value, skip partitions smaller
//!    than their value;
//! 3. probe at most `S − V + 1` buckets of a surviving partition.

use hash_kit::{KeyHash, SplitMix64};

use crate::config::DeletionMode;
use crate::engine::{BucketLayout, CopyProbe, Engine, Probe, ProbePlan};

pub use crate::engine::{McFull, MAX_D};

/// The `l = 1` bucket layout: one slot per bucket, counters per bucket,
/// partition-pruned lookups (§III.B.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct SingleLayout;

/// Multi-copy Cuckoo hash table (single slot per bucket).
///
/// See the [crate docs](crate) for a quick start. Keys are deduplicated:
/// `insert` is an upsert; `insert_new` skips the existence probe for
/// workloads known to carry distinct keys (this is what the paper's
/// experiments measure). All operations are documented on
/// [`Engine`].
pub type McCuckoo<K, V> = Engine<K, V, SingleLayout>;

impl BucketLayout for SingleLayout {
    const RNG_TWEAK: u64 = 0x3C0C_A11E_D0C0_FFEE;

    fn slots(&self) -> usize {
        1
    }

    fn draw_slot(&self, _rng: &mut SplitMix64) -> usize {
        0 // sole slot; no randomness consumed
    }

    /// Partition-pruned first-hit probe (§III.B.2). At `l = 1` the
    /// global bucket index doubles as the slot index.
    fn probe_first<K: KeyHash + Eq + Clone, V: Clone>(
        t: &Engine<K, V, Self>,
        key: &K,
        cands: &[usize; MAX_D],
        tag: u8,
    ) -> Probe {
        let cvals = read_counters(t, cands);
        // Lookup rule 1 (mode-dependent).
        if rule1_miss(t, cands, &cvals) {
            return Probe::Miss { check_stash: false };
        }
        let mut visited_flags_ok = true;
        // Partitions in decreasing counter value. Partition membership
        // fits in a fixed array — no heap traffic on the lookup path.
        for v in (1..=t.d as u8).rev() {
            let mut positions = [0usize; MAX_D];
            let mut plen = 0usize;
            for i in 0..t.d {
                if cvals[i] == v {
                    positions[plen] = cands[i];
                    plen += 1;
                }
            }
            if plen < v as usize {
                continue; // rule 2: impossible partition
            }
            let budget = plen - v as usize + 1; // rule 3
            for &p in positions.iter().take(budget) {
                t.meter.offchip_read(1);
                visited_flags_ok &= t.flags[p];
                // Tag filter (software fast path, zero modelled cost):
                // the bucket read is already metered above; the tag only
                // decides whether to touch the boxed entry and compare
                // the full key. May-match ⇒ confirm on the entry.
                if t.tags[p] == tag && t.slots[p].as_ref().is_some_and(|e| e.key == *key) {
                    return Probe::Found(p);
                }
            }
        }
        Probe::Miss {
            check_stash: t.stash_screen(cands, visited_flags_ok),
        }
    }

    /// Deletion/update probe: locate **all** copies of `key` (deletion
    /// principles, §III.B.3). Within the matching partition, probing may
    /// stop early once the remaining copies are pinned by counting.
    fn probe_copies<K: KeyHash + Eq + Clone, V: Clone>(
        t: &Engine<K, V, Self>,
        key: &K,
        cands: &[usize; MAX_D],
        tag: u8,
    ) -> CopyProbe {
        let cvals = read_counters(t, cands);
        if rule1_miss(t, cands, &cvals) {
            return CopyProbe::Miss { check_stash: false };
        }
        let mut visited_flags_ok = true;
        for v in (1..=t.d as u8).rev() {
            let positions: Vec<usize> = (0..t.d)
                .filter(|&i| cvals[i] == v)
                .map(|i| cands[i])
                .collect();
            if positions.len() < v as usize {
                continue;
            }
            let budget = positions.len() - v as usize + 1;
            let mut found: Vec<usize> = Vec::new();
            let mut first: Option<usize> = None;
            for (probed, &p) in positions.iter().enumerate() {
                let remaining_positions = positions.len() - probed;
                let remaining_needed = if found.is_empty() {
                    // Not yet found: only the probe budget limits us.
                    if probed >= budget {
                        break;
                    }
                    v as usize
                } else {
                    v as usize - found.len()
                };
                if remaining_needed == 0 {
                    break;
                }
                if !found.is_empty() && remaining_needed == remaining_positions {
                    // The rest are forced to be copies: no reads needed.
                    found.extend_from_slice(&positions[probed..]);
                    break;
                }
                t.meter.offchip_read(1);
                visited_flags_ok &= t.flags[p];
                // Tag-filtered entry confirm (see `probe_first`); the
                // counting-based early stops above never consult tags.
                if t.tags[p] == tag && t.slots[p].as_ref().is_some_and(|e| e.key == *key) {
                    if first.is_none() {
                        first = Some(p);
                    }
                    found.push(p);
                }
            }
            if let Some(first) = first {
                debug_assert_eq!(found.len(), v as usize, "all copies located");
                return CopyProbe::Found {
                    locations: found,
                    primary: first,
                };
            }
        }
        CopyProbe::Miss {
            check_stash: t.stash_screen(cands, visited_flags_ok),
        }
    }

    /// Replicates the partition-pruned probe order of `probe_first`
    /// (rules 1–3) with **unmetered** counter peeks, prefetching only
    /// the positions a probe on this key would actually read — on a hit
    /// with all counters at `d` that is a single line, where the naive
    /// all-candidates default would fetch `d` — and records them so
    /// [`BucketLayout::probe_planned`] can replay without re-deriving
    /// the partitions.
    fn plan_probe<K: KeyHash + Eq + Clone, V: Clone>(
        t: &Engine<K, V, Self>,
        cands: &[usize; MAX_D],
    ) -> ProbePlan {
        let mut cvals = [0u8; MAX_D];
        for i in 0..t.d {
            cvals[i] = t.counters.get(cands[i]);
        }
        let mut plan = ProbePlan::FALLBACK;
        if rule1_miss(t, cands, &cvals) {
            plan.rule1 = true; // the probe reads nothing off-chip
            return plan;
        }
        for v in (1..=t.d as u8).rev() {
            let mut positions = [0usize; MAX_D];
            let mut plen = 0usize;
            for i in 0..t.d {
                if cvals[i] == v {
                    positions[plen] = cands[i];
                    plen += 1;
                }
            }
            if plen < v as usize {
                continue;
            }
            let budget = plen - v as usize + 1;
            for &p in positions.iter().take(budget) {
                crate::prefetch::prefetch_index(&t.slots, p);
                crate::prefetch::prefetch_index(&t.tags, p);
                crate::prefetch::prefetch_index(&t.flags, p);
                plan.order[plan.len as usize] = p;
                plan.len += 1;
            }
        }
        plan
    }

    /// Replay of `probe_first` over the planned positions. Metering is
    /// identical: one on-chip read per counter (`read_counters`'
    /// tally — the values themselves were already peeked by the plan),
    /// one off-chip read per visited position, and the same
    /// stash-screening decision (rule 1 carries `check_stash: false`;
    /// an exhausted probe consults the visited flags).
    fn probe_planned<K: KeyHash + Eq + Clone, V: Clone>(
        t: &Engine<K, V, Self>,
        key: &K,
        cands: &[usize; MAX_D],
        tag: u8,
        plan: &ProbePlan,
    ) -> (Probe, u64) {
        t.meter.onchip_read(t.d as u64);
        if plan.rule1 {
            return (Probe::Miss { check_stash: false }, 0);
        }
        let mut visited_flags_ok = true;
        let mut visited = 0u64;
        for &p in plan.order[..plan.len as usize].iter() {
            t.meter.offchip_read(1);
            visited += 1;
            visited_flags_ok &= t.flags[p];
            if t.tags[p] == tag && t.slots[p].as_ref().is_some_and(|e| e.key == *key) {
                return (Probe::Found(p), visited);
            }
        }
        (
            Probe::Miss {
                check_stash: t.stash_screen(cands, visited_flags_ok),
            },
            visited,
        )
    }
}

/// Counter values of the candidates, metered as one on-chip read per
/// counter.
#[inline]
fn read_counters<K: KeyHash + Eq + Clone, V: Clone>(
    t: &Engine<K, V, SingleLayout>,
    cands: &[usize; MAX_D],
) -> [u8; MAX_D] {
    t.meter.onchip_read(t.d as u64);
    let mut vals = [0u8; MAX_D];
    for i in 0..t.d {
        vals[i] = t.counters.get(cands[i]);
    }
    vals
}

/// Lookup rule 1: a definitely-empty candidate proves absence.
fn rule1_miss<K: KeyHash + Eq + Clone, V: Clone>(
    t: &Engine<K, V, SingleLayout>,
    cands: &[usize; MAX_D],
    cvals: &[u8; MAX_D],
) -> bool {
    match t.deletion {
        DeletionMode::Disabled => (0..t.d).any(|i| cvals[i] == 0),
        // A zero may be a deletion scar: rule 1 is unsound.
        DeletionMode::Reset => false,
        // Tombstones read as non-zero for lookups.
        DeletionMode::Tombstone => {
            (0..t.d).any(|i| cvals[i] == 0 && !t.counters.is_tombstone(cands[i]))
        }
    }
}

impl<K: KeyHash + Eq + Clone, V: Clone> Engine<K, V, SingleLayout> {
    /// Build a table from `config`.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see
    /// [`McConfig`](crate::config::McConfig) limits).
    pub fn new(config: crate::config::McConfig) -> Self {
        Engine::from_config(config, SingleLayout)
    }

    /// Lookup **without** the partition-pruning rules 2–3: every
    /// non-empty candidate is probed in order, like a single-copy table
    /// would. Rule 1 (the Bloom shortcut) and stash screening still
    /// apply. Exists for the pruning ablation benchmark; results are
    /// identical to `get`, only the access counts differ.
    pub fn get_unpruned(&self, key: &K) -> Option<&V> {
        let cands = self.candidate_buckets(key);
        let cvals = read_counters(self, &cands);
        if rule1_miss(self, &cands, &cvals) {
            return None;
        }
        let mut visited_flags_ok = true;
        let tag = self.tag_of(key);
        for i in 0..self.d {
            if cvals[i] == 0 {
                continue;
            }
            let p = cands[i];
            self.meter.offchip_read(1);
            visited_flags_ok &= self.flags[p];
            if self.tags[p] == tag && self.slots[p].as_ref().is_some_and(|e| e.key == *key) {
                return self.slots[p].as_ref().map(|e| &e.value);
            }
        }
        if self.stash_screen(&cands, visited_flags_ok) {
            self.stash.get(key, &self.meter)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{McConfig, ResolutionPolicy, StashPolicy};
    use mem_model::InsertOutcome;
    use std::collections::HashMap;
    use workloads::UniqueKeys;

    fn paper_table(n: usize, seed: u64) -> McCuckoo<u64, u64> {
        McCuckoo::new(McConfig::paper(n, seed))
    }

    #[test]
    fn first_insert_occupies_all_candidates() {
        let mut t = paper_table(64, 1);
        let r = t.insert_new(42, 420).unwrap();
        assert_eq!(r.copies_written, 3);
        assert!(!r.collision);
        assert_eq!(t.copy_count(&42), 3);
        assert_eq!(t.get(&42), Some(&420));
        t.check_invariants().unwrap();
    }

    #[test]
    fn lookup_rule1_costs_zero_offchip_reads() {
        // Bloom behaviour: an absent key whose candidates include an
        // empty bucket is rejected without touching off-chip memory.
        let mut t = paper_table(1024, 2);
        for k in 0u64..10 {
            t.insert_new(k, k).unwrap();
        }
        let before = t.meter().snapshot();
        // At this load nearly every absent key hits an empty candidate.
        let mut zero_read_misses = 0;
        let keys = UniqueKeys::new(3);
        for j in 0..100 {
            let pre = t.meter().snapshot();
            assert_eq!(t.get(&keys.absent_key(j)), None);
            if (t.meter().snapshot() - pre).offchip_reads == 0 {
                zero_read_misses += 1;
            }
        }
        assert!(zero_read_misses > 90, "only {zero_read_misses} free misses");
        assert_eq!(
            (t.meter().snapshot() - before).offchip_writes,
            0,
            "lookups never write"
        );
    }

    #[test]
    fn fills_to_90_percent() {
        let n = 10_000;
        let mut t = paper_table(n, 4);
        let mut keys = UniqueKeys::new(5);
        let target = 3 * n * 90 / 100;
        for _ in 0..target {
            let k = keys.next_key();
            t.insert_new(k, k).unwrap();
        }
        assert!(t.load_ratio() > 0.89);
        assert!(
            t.stash_len() < target / 100,
            "stash {} too large",
            t.stash_len()
        );
        for k in UniqueKeys::new(5).take_vec(target) {
            assert!(t.contains(&k), "key lost");
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn no_collision_until_table_warm() {
        // Table I: McCuckoo's first real collision comes much later than
        // standard cuckoo's ~9%.
        let n = 5_000;
        let mut t = paper_table(n, 6);
        let mut keys = UniqueKeys::new(7);
        let cap = 3 * n;
        let mut first = None;
        for i in 0..cap {
            let k = keys.next_key();
            let r = t.insert_new(k, k).unwrap();
            if r.collision {
                first = Some(i as f64 / cap as f64);
                break;
            }
        }
        let load = first.expect("collision must eventually happen");
        assert!(load > 0.15, "first collision at {load}, expected > 0.15");
    }

    #[test]
    fn theorem2_redundant_write_bound() {
        // d=3: proactive redundant writes ≤ 5/6 · S over a full build-up.
        let n = 3_000;
        let mut t = paper_table(n, 8);
        let mut keys = UniqueKeys::new(9);
        let cap = 3 * n;
        for _ in 0..cap * 95 / 100 {
            let k = keys.next_key();
            let _ = t.insert_new(k, k);
        }
        let bound = (cap as f64) * 5.0 / 6.0;
        assert!(
            (t.redundant_writes() as f64) <= bound,
            "redundant writes {} exceed Theorem 2 bound {bound}",
            t.redundant_writes()
        );
    }

    #[test]
    fn update_rewrites_all_copies() {
        let mut t = paper_table(64, 10);
        t.insert(7, 70).unwrap();
        assert_eq!(t.copy_count(&7), 3);
        let r = t.insert(7, 71).unwrap();
        assert_eq!(r.outcome, InsertOutcome::Updated);
        assert_eq!(t.get(&7), Some(&71));
        assert_eq!(t.main_len(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn lookup_probe_budget_respected() {
        // With all candidates distinct values, at most S-V+1 probes per
        // partition; in aggregate a hit never costs more than d reads.
        let n = 2_000;
        let mut t = paper_table(n, 11);
        let mut keys = UniqueKeys::new(12);
        let inserted: Vec<u64> = (0..3 * n * 80 / 100)
            .map(|_| {
                let k = keys.next_key();
                t.insert_new(k, k).unwrap();
                k
            })
            .collect();
        for k in &inserted {
            let before = t.meter().snapshot();
            assert_eq!(t.get(k), Some(k));
            let delta = t.meter().snapshot() - before;
            assert!(delta.offchip_reads <= 3, "{} reads", delta.offchip_reads);
        }
    }

    #[test]
    fn deletion_reset_mode_roundtrip_and_zero_writes() {
        let n = 2_000;
        let mut t: McCuckoo<u64, u64> = McCuckoo::new(McConfig::paper_with_deletion(n, 13));
        let mut keys = UniqueKeys::new(14);
        let inserted: Vec<u64> = (0..3 * n / 2)
            .map(|_| {
                let k = keys.next_key();
                t.insert_new(k, k + 1).unwrap();
                k
            })
            .collect();
        let before = t.meter().snapshot();
        for k in &inserted {
            assert_eq!(t.remove(k), Some(k + 1));
        }
        let delta = t.meter().snapshot() - before;
        assert_eq!(delta.offchip_writes, 0, "deletion must not write off-chip");
        assert!(t.is_empty());
        for k in &inserted {
            assert_eq!(t.get(k), None);
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn deletion_tombstone_mode_keeps_rule1_sound() {
        let n = 512;
        let mut t: McCuckoo<u64, u64> =
            McCuckoo::new(McConfig::paper(n, 15).with_deletion(DeletionMode::Tombstone));
        let mut keys = UniqueKeys::new(16);
        let ks = keys.take_vec(500);
        for &k in &ks {
            t.insert_new(k, k).unwrap();
        }
        for &k in ks.iter().take(250) {
            assert_eq!(t.remove(&k), Some(k));
        }
        // Deleted keys gone, survivors intact.
        for &k in ks.iter().take(250) {
            assert_eq!(t.get(&k), None);
        }
        for &k in ks.iter().skip(250) {
            assert_eq!(t.get(&k), Some(&k));
        }
        // Freed buckets are reusable.
        let more = keys.take_vec(200);
        for &k in &more {
            t.insert_new(k, k).unwrap();
        }
        for &k in &more {
            assert_eq!(t.get(&k), Some(&k));
        }
        t.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "DeletionMode::Disabled")]
    fn remove_panics_when_disabled() {
        let mut t = paper_table(16, 17);
        t.insert_new(1, 1).unwrap();
        let _ = t.remove(&1);
    }

    #[test]
    fn stash_absorbs_overflow_and_screening_works() {
        // Small table driven past capacity: failures land in the stash
        // and remain findable; absent-key lookups rarely visit the stash.
        let n = 200;
        let mut t: McCuckoo<u64, u64> = McCuckoo::new(McConfig::paper(n, 18).with_maxloop(50));
        let mut keys = UniqueKeys::new(19);
        let total = 3 * n; // 100% load
        let inserted: Vec<u64> = (0..total)
            .map(|_| {
                let k = keys.next_key();
                t.insert_new(k, k).unwrap();
                k
            })
            .collect();
        assert!(t.stash_len() > 0, "100% load must overflow");
        for k in &inserted {
            assert_eq!(t.get(k), Some(k), "stashed or placed, key must be found");
        }
        // Screening: absent keys must rarely reach the stash.
        let before = t.meter().snapshot();
        for j in 0..1000 {
            assert_eq!(t.get(&keys.absent_key(j)), None);
        }
        let delta = t.meter().snapshot() - before;
        assert!(
            delta.stash_visits <= 50,
            "{} of 1000 absent lookups visited the stash",
            delta.stash_visits
        );
        t.check_invariants().unwrap();
    }

    #[test]
    fn refresh_stash_drains_after_deletions() {
        let n = 150;
        let mut t: McCuckoo<u64, u64> = McCuckoo::new(
            McConfig::paper(n, 20)
                .with_maxloop(30)
                .with_deletion(DeletionMode::Reset),
        );
        let mut keys = UniqueKeys::new(21);
        let inserted: Vec<u64> = (0..3 * n)
            .map(|_| {
                let k = keys.next_key();
                t.insert_new(k, k).unwrap();
                k
            })
            .collect();
        assert!(t.stash_len() > 0);
        // Delete a third of the table, then refresh.
        for k in inserted.iter().take(n) {
            t.remove(k);
        }
        let drained = t.refresh_stash();
        assert!(drained > 0, "free space must drain the stash");
        for k in inserted.iter().skip(n) {
            assert!(t.contains(k));
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn differential_against_hashmap_with_deletions() {
        let mut t: McCuckoo<u64, u64> = McCuckoo::new(McConfig::paper_with_deletion(2_048, 22));
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut keys = UniqueKeys::new(23);
        let mut s = hash_kit::SplitMix64::new(24);
        let mut live: Vec<u64> = Vec::new();
        for step in 0..40_000u64 {
            match s.next_below(10) {
                0..=4 => {
                    let k = keys.next_key();
                    t.insert_new(k, k ^ step).unwrap();
                    model.insert(k, k ^ step);
                    live.push(k);
                }
                5..=6 if !live.is_empty() => {
                    let i = s.next_below(live.len() as u64) as usize;
                    assert_eq!(t.get(&live[i]), model.get(&live[i]));
                }
                7..=8 if !live.is_empty() => {
                    let i = s.next_below(live.len() as u64) as usize;
                    let k = live.swap_remove(i);
                    assert_eq!(t.remove(&k), model.remove(&k));
                }
                _ => {
                    let k = keys.absent_key(s.next_below(1 << 20));
                    assert_eq!(t.get(&k), None);
                }
            }
            if step % 10_000 == 0 {
                t.check_invariants().unwrap();
            }
        }
        assert_eq!(t.len(), model.len());
        for (k, v) in &model {
            assert_eq!(t.get(k), Some(v), "key {k}");
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn upsert_differential_with_value_churn() {
        let mut t: McCuckoo<u64, u64> = McCuckoo::new(McConfig::paper(1_024, 25));
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut keys = UniqueKeys::new(26);
        let universe: Vec<u64> = keys.take_vec(1_500);
        let mut s = hash_kit::SplitMix64::new(27);
        for step in 0..20_000u64 {
            let k = universe[s.next_below(universe.len() as u64) as usize];
            if s.next_below(2) == 0 {
                t.insert(k, step).unwrap();
                model.insert(k, step);
            } else {
                assert_eq!(t.get(&k), model.get(&k));
            }
        }
        for (k, v) in &model {
            assert_eq!(t.get(k), Some(v));
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn mincounter_policy_fills_table() {
        let n = 3_000;
        let mut t: McCuckoo<u64, u64> =
            McCuckoo::new(McConfig::paper(n, 28).with_resolution(ResolutionPolicy::MinCounter));
        let mut keys = UniqueKeys::new(29);
        let target = 3 * n * 88 / 100;
        for _ in 0..target {
            let k = keys.next_key();
            t.insert_new(k, k).unwrap();
        }
        for k in UniqueKeys::new(29).take_vec(target) {
            assert!(t.contains(&k));
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn hashed_stash_policy_works_end_to_end() {
        let n = 150;
        let mut t: McCuckoo<u64, u64> = McCuckoo::new(
            McConfig::paper(n, 30)
                .with_maxloop(30)
                .with_stash(StashPolicy::Hashed),
        );
        let mut keys = UniqueKeys::new(31);
        let inserted: Vec<u64> = (0..3 * n)
            .map(|_| {
                let k = keys.next_key();
                t.insert_new(k, k).unwrap();
                k
            })
            .collect();
        assert!(t.stash_len() > 0);
        for k in &inserted {
            assert!(t.contains(k));
        }
    }

    #[test]
    fn no_stash_policy_surfaces_failures() {
        let n = 32;
        let mut t: McCuckoo<u64, u64> = McCuckoo::new(
            McConfig::paper(n, 32)
                .with_maxloop(10)
                .with_stash(StashPolicy::None),
        );
        let mut keys = UniqueKeys::new(33);
        let mut failed = false;
        for _ in 0..3 * n + 10 {
            let k = keys.next_key();
            if let Err(full) = t.insert_new(k, k) {
                assert_eq!(full.report.outcome, InsertOutcome::Failed);
                failed = true;
                break;
            }
        }
        assert!(failed, "overfilled table without stash must fail");
        t.check_invariants().unwrap();
    }

    #[test]
    fn iter_yields_each_distinct_key_once() {
        let mut t = paper_table(256, 34);
        let mut keys = UniqueKeys::new(35);
        let ks = keys.take_vec(300);
        for &k in &ks {
            t.insert_new(k, k.wrapping_mul(2)).unwrap();
        }
        let mut got: Vec<u64> = t.iter().map(|(k, _)| *k).collect();
        got.sort_unstable();
        let mut want = ks.clone();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn d2_and_d4_configurations_work() {
        for d in [2usize, 4] {
            let mut t: McCuckoo<u64, u64> = McCuckoo::new(McConfig::paper(512, 36).with_d(d));
            let mut keys = UniqueKeys::new(37 + d as u64);
            let target = d * 512 / 2; // 50% load: safe for d=2
            for _ in 0..target {
                let k = keys.next_key();
                t.insert_new(k, k).unwrap();
            }
            for k in UniqueKeys::new(37 + d as u64).take_vec(target) {
                assert!(t.contains(&k), "d={d}");
            }
            t.check_invariants().unwrap();
        }
    }

    #[test]
    fn counters_form_a_bloom_filter() {
        // Paper: "if we look at the on-chip counters as zero or non-zero,
        // they actually form a standard Bloom filter" — no false
        // negatives ever.
        let mut t = paper_table(1_024, 38);
        let mut keys = UniqueKeys::new(39);
        let ks = keys.take_vec(2_000);
        for &k in &ks {
            t.insert_new(k, k).unwrap();
        }
        for &k in &ks {
            // Every candidate counter of a present key must be non-zero.
            let cands = t.candidate_buckets(&k);
            for &c in cands.iter().take(t.d()) {
                assert!(t.counters.get(c) > 0);
            }
        }
    }

    #[test]
    fn string_keys_work() {
        let mut t: McCuckoo<String, u32> = McCuckoo::new(McConfig::paper(64, 40));
        t.insert("alpha".to_string(), 1).unwrap();
        t.insert("beta".to_string(), 2).unwrap();
        assert_eq!(t.get(&"alpha".to_string()), Some(&1));
        assert_eq!(t.get(&"gamma".to_string()), None);
        t.check_invariants().unwrap();
    }
}
