//! The single-slot d-ary McCuckoo table — the paper's core design
//! (§III.A–F).
//!
//! Layout: `d` sub-tables of `n` buckets off-chip, one item per bucket,
//! plus a 1-bit stash flag per bucket that travels with the bucket; and
//! an on-chip [`CounterArray`] with one counter per bucket recording how
//! many live copies the bucket's occupant has.
//!
//! ## Insertion principles (§III.B.1)
//! 1. occupy **all** empty candidate buckets;
//! 2. never overwrite buckets of value 1;
//! 3. overwrite the rest in decreasing order of value, while the
//!    overwrite still leaves the victim at least as many copies as the
//!    inserted item gains (formally: overwrite value `V` only while the
//!    inserted item's current copy count `c` satisfies `c + 2 ≤ V`).
//!
//! ## Lookup principles (§III.B.2)
//! 1. any candidate counter of 0 ⇒ definite miss (disabled under
//!    `Reset` deletion, tombstone-aware under `Tombstone`);
//! 2. partition candidates by counter value, skip partitions smaller
//!    than their value;
//! 3. probe at most `S − V + 1` buckets of a surviving partition.
//!
//! ## Copy-set disambiguation
//! When a redundant copy of victim `B` (copy count `v`) is overwritten,
//! `B`'s remaining copies must be decremented. All copies sit in
//! candidates of `B` whose counter equals `v`; if more candidates match
//! than `B` has copies, the extras are resolved with verification reads
//! (`DESIGN.md` §4 — the paper leaves this ambiguity implicit).

use hash_kit::{BucketFamily, KeyHash, SplitMix64};
use mem_model::{InsertOutcome, InsertReport, MemMeter};

use crate::config::{DeletionMode, McConfig, ResolutionPolicy};
use crate::counters::CounterArray;
use crate::stash::Stash;

/// Maximum supported `d` (the paper argues d = 3 suffices in practice).
pub const MAX_D: usize = 4;

/// Insertion failure: relocation budget exhausted and no stash configured.
///
/// As with classic cuckoo hashing, the inserted item was placed during
/// the walk and `evicted` is the last displaced victim; every other item
/// remains findable.
#[derive(Debug)]
pub struct McFull<K, V> {
    /// The item that fell out of the table.
    pub evicted: (K, V),
    /// Instrumentation of the failed insertion.
    pub report: InsertReport,
}

#[derive(Debug, Clone)]
struct Entry<K, V> {
    key: K,
    value: V,
    /// Bit `i` set ⇔ candidate `i` received a copy when this item's
    /// copies were created. Written identically into every copy; bits
    /// can go stale when a sibling copy is destroyed, so they are always
    /// cross-checked against counters (and content when still
    /// ambiguous). Travels with the item off-chip — the victim read that
    /// counter maintenance needs anyway brings it in for free, sparing
    /// most verification reads (the single-slot analogue of the blocked
    /// variant's slot hints, Fig. 5).
    hints: u8,
}

/// Multi-copy Cuckoo hash table (single slot per bucket).
///
/// See the [crate docs](crate) for a quick start. Keys are deduplicated:
/// [`McCuckoo::insert`] is an upsert; [`McCuckoo::insert_new`] skips the
/// existence probe for workloads known to carry distinct keys (this is
/// what the paper's experiments measure).
#[derive(Debug)]
pub struct McCuckoo<K, V> {
    family: BucketFamily,
    d: usize,
    n: usize,
    deletion: DeletionMode,
    maxloop: u32,
    resolution: ResolutionPolicy,
    /// Off-chip main table, `d * n` buckets.
    buckets: Vec<Option<Entry<K, V>>>,
    /// Off-chip 1-bit stash flags, one per bucket (read/written together
    /// with the bucket, so they cost no dedicated accesses on lookups).
    flags: Vec<bool>,
    /// On-chip copy counters.
    counters: CounterArray,
    /// On-chip 5-bit kick-history counters (MinCounter policy only).
    kick_history: Option<Vec<u8>>,
    stash: Stash<K, V>,
    stash_policy: crate::config::StashPolicy,
    /// Construction seed (retained for snapshots/rehash derivation).
    seed: u64,
    /// Distinct live keys in the main table.
    distinct: usize,
    /// Cumulative proactive redundant writes (Theorem 2 accounting).
    redundant_writes: u64,
    rng: SplitMix64,
    meter: MemMeter,
}

impl<K: KeyHash + Eq + Clone, V: Clone> McCuckoo<K, V> {
    /// Build a table from `config`.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see
    /// [`McConfig`] limits).
    pub fn new(config: McConfig) -> Self {
        config.validate();
        let family = BucketFamily::new(
            config.family,
            config.d,
            config.buckets_per_table,
            config.seed,
        );
        let total = config.d * config.buckets_per_table;
        let mut buckets = Vec::with_capacity(total);
        buckets.resize_with(total, || None);
        Self {
            family,
            d: config.d,
            n: config.buckets_per_table,
            deletion: config.deletion,
            maxloop: config.maxloop,
            resolution: config.resolution,
            buckets,
            flags: vec![false; total],
            counters: CounterArray::new(total, config.d as u8),
            kick_history: match config.resolution {
                ResolutionPolicy::MinCounter => Some(vec![0u8; total]),
                ResolutionPolicy::RandomWalk => None,
            },
            stash: Stash::new(config.stash),
            stash_policy: config.stash,
            seed: config.seed,
            distinct: 0,
            redundant_writes: 0,
            rng: SplitMix64::new(config.seed ^ 0x3C0C_A11E_D0C0_FFEE),
            meter: MemMeter::new(),
        }
    }

    /// Reconstruct the configuration this table is equivalent to
    /// (used by snapshots; note a resized table reports its *current*
    /// geometry).
    pub fn config_snapshot(&self) -> McConfig {
        McConfig {
            d: self.d,
            buckets_per_table: self.n,
            maxloop: self.maxloop,
            resolution: self.resolution,
            deletion: self.deletion,
            stash: self.stash_policy,
            family: self.family_kind(),
            seed: self.seed,
        }
    }

    fn family_kind(&self) -> hash_kit::FamilyKind {
        self.family.kind()
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Number of hash functions.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Distinct keys stored in the main table.
    pub fn main_len(&self) -> usize {
        self.distinct
    }

    /// Items in the stash.
    pub fn stash_len(&self) -> usize {
        self.stash.len()
    }

    /// Total distinct keys stored (main table + stash).
    pub fn len(&self) -> usize {
        self.distinct + self.stash.len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bucket count (`d × buckets_per_table`).
    pub fn capacity(&self) -> usize {
        self.buckets.len()
    }

    /// Load ratio: distinct items / bucket count (the paper's measure —
    /// note redundant copies do *not* inflate it).
    pub fn load_ratio(&self) -> f64 {
        self.len() as f64 / self.capacity() as f64
    }

    /// Access meter.
    pub fn meter(&self) -> &MemMeter {
        &self.meter
    }

    /// Deletion mode the table was configured with.
    pub fn deletion_mode(&self) -> DeletionMode {
        self.deletion
    }

    /// Cumulative proactive redundant writes — copies written beyond the
    /// first per placement. Theorem 2 bounds this by
    /// `S · ((d−1)/d + Σ_{t=3..d} (t−2)/(t(t−1)))` (= 5S/6 for d = 3).
    pub fn redundant_writes(&self) -> u64 {
        self.redundant_writes
    }

    /// On-chip bytes consumed by the counter array.
    pub fn onchip_bytes(&self) -> usize {
        self.counters.onchip_bytes() + self.kick_history.as_ref().map_or(0, |k| k.len() * 5 / 8)
    }

    /// Buckets per sub-table (`n`).
    pub fn buckets_per_table(&self) -> usize {
        self.n
    }

    /// Remove and return every stored item (main table + stash),
    /// leaving the table empty. Host-side maintenance: unmetered except
    /// through the callers that model it (see [`McCuckoo::rehash`]).
    pub(crate) fn drain_items(&mut self) -> Vec<(K, V)> {
        let mut items: Vec<(K, V)> = Vec::with_capacity(self.len());
        for idx in 0..self.buckets.len() {
            if self.counters.get(idx) == 0 {
                continue; // vacant (or tombstoned)
            }
            let entry = self.buckets[idx].take().expect("counter>0 ⇒ occupied");
            // Emit once per item: clear the counters of all copies so the
            // siblings are skipped when the scan reaches them.
            let locs = self.raw_copy_locations(&entry.key);
            self.counters.set(idx, 0);
            for l in locs {
                self.counters.set(l, 0);
                self.buckets[l] = None;
            }
            items.push((entry.key, entry.value));
        }
        for (k, v) in self.stash.drain_all() {
            items.push((k, v));
        }
        self.distinct = 0;
        items
    }

    /// Re-derive hash functions (and optionally the geometry) and clear
    /// all storage planes. Used by rehash/resize.
    pub(crate) fn rebuild_storage(&mut self, new_buckets_per_table: Option<usize>, seed: u64) {
        if let Some(n) = new_buckets_per_table {
            assert!(n > 0, "table must be non-empty");
            self.n = n;
        }
        self.family = self.family.reseeded_with_len(seed, self.n);
        let total = self.d * self.n;
        self.buckets.clear();
        self.buckets.resize_with(total, || None);
        self.flags.clear();
        self.flags.resize(total, false);
        self.counters = CounterArray::new(total, self.d as u8);
        if let Some(h) = &mut self.kick_history {
            h.clear();
            h.resize(total, 0);
        }
        self.distinct = 0;
        self.redundant_writes = 0;
    }

    /// Remove every item, keeping geometry and hash functions.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            *b = None;
        }
        self.flags.fill(false);
        self.counters.reset();
        if let Some(h) = &mut self.kick_history {
            h.fill(0);
        }
        let _ = self.stash.drain_all();
        self.distinct = 0;
        self.redundant_writes = 0;
    }

    // ------------------------------------------------------------------
    // Geometry helpers
    // ------------------------------------------------------------------

    /// Global bucket indices of `key`'s `d` candidates.
    #[inline]
    fn candidates(&self, key: &K) -> [usize; MAX_D] {
        let mut raw = [0usize; MAX_D];
        self.family.buckets_into(key, &mut raw[..self.d]);
        let mut out = [usize::MAX; MAX_D];
        for i in 0..self.d {
            out[i] = i * self.n + raw[i];
        }
        out
    }

    /// Counter values of the candidates, metered as one on-chip read per
    /// counter.
    #[inline]
    fn read_counters(&self, cands: &[usize; MAX_D]) -> [u8; MAX_D] {
        self.meter.onchip_read(self.d as u64);
        let mut vals = [0u8; MAX_D];
        for i in 0..self.d {
            vals[i] = self.counters.get(cands[i]);
        }
        vals
    }

    // ------------------------------------------------------------------
    // Insertion
    // ------------------------------------------------------------------

    /// Upsert: update the value if `key` exists (all copies are
    /// rewritten), otherwise insert it fresh.
    pub fn insert(&mut self, key: K, value: V) -> Result<InsertReport, McFull<K, V>> {
        if let Some(report) = self.try_update(&key, &value) {
            return Ok(report);
        }
        self.insert_new(key, value)
    }

    /// Insert a key **known to be absent** (checked in debug builds).
    /// This is the operation the paper's experiments measure; the
    /// existence probe of [`McCuckoo::insert`] is skipped.
    pub fn insert_new(&mut self, key: K, value: V) -> Result<InsertReport, McFull<K, V>> {
        debug_assert!(
            self.raw_find(&key).is_none() && !self.raw_in_stash(&key),
            "insert_new requires a fresh key"
        );
        let cands = self.candidates(&key);
        let cvals = self.read_counters(&cands);
        if let Some(copies) = self.try_place(&key, &value, &cands, &cvals) {
            self.distinct += 1;
            self.check_paranoid();
            return Ok(InsertReport::clean(copies));
        }
        let out = self.resolve_collision(key, value);
        self.check_paranoid();
        out
    }

    /// Place copies of `(key, value)` using insertion principles 1–3.
    /// Returns the number of copies written, or `None` on a real
    /// collision (all candidates at counter 1). Finalizes counters.
    fn try_place(
        &mut self,
        key: &K,
        value: &V,
        cands: &[usize; MAX_D],
        cvals: &[u8; MAX_D],
    ) -> Option<u8> {
        let mut cvals = *cvals;
        let mut claimed = [false; MAX_D];
        let mut placed_len = 0usize;

        // Principle 1: claim every empty candidate (counter 0 reads as
        // empty for insertion; tombstones too).
        for i in 0..self.d {
            if cvals[i] == 0 {
                claimed[i] = true;
                placed_len += 1;
            }
        }

        // Principles 2+3: overwrite redundant copies, largest value
        // first, while the inserted item still ends up no more redundant
        // than the diminished victim (c + 2 ≤ V). Victim bookkeeping
        // happens at claim time; the content write is deferred so every
        // copy can carry the complete hint bitmap.
        loop {
            let mut best: Option<usize> = None;
            for i in 0..self.d {
                if claimed[i] {
                    continue;
                }
                // MSRV 1.75: spelled without `Option::is_none_or`.
                if cvals[i] >= 2 && best.map(|b| cvals[i] > cvals[b]).unwrap_or(true) {
                    best = Some(i);
                }
            }
            let Some(i) = best else { break };
            let v = cvals[i];
            if placed_len as u8 + 2 > v {
                break;
            }
            self.release_victim_copy(cands[i], &mut cvals, cands);
            claimed[i] = true;
            placed_len += 1;
        }

        if placed_len == 0 {
            debug_assert!((0..self.d).all(|i| cvals[i] == 1), "collision ⇔ all ones");
            return None;
        }
        // Write phase: every copy carries the full hint bitmap, then the
        // counters are finalized to the total copy count.
        let mut hints = 0u8;
        for (i, &c) in claimed.iter().enumerate().take(self.d) {
            if c {
                hints |= 1 << i;
            }
        }
        self.meter.offchip_write(placed_len as u64);
        self.meter.onchip_write(placed_len as u64);
        for i in 0..self.d {
            if claimed[i] {
                self.buckets[cands[i]] = Some(Entry {
                    key: key.clone(),
                    value: value.clone(),
                    hints,
                });
                self.counters.set(cands[i], placed_len as u8);
            }
        }
        self.redundant_writes += placed_len as u64 - 1;
        Some(placed_len as u8)
    }

    /// Read the redundant copy at `idx` (about to be overwritten) and
    /// decrement its owner's sibling counters (copy-set disambiguation,
    /// hint-assisted).
    fn release_victim_copy(&mut self, idx: usize, cvals: &mut [u8; MAX_D], cands: &[usize; MAX_D]) {
        let vcount = self.counters.get(idx);
        debug_assert!(vcount >= 2, "principle 2: never overwrite value 1");
        // The victim's identity (and hint bitmap) is needed to locate its
        // siblings: one off-chip read.
        self.meter.offchip_read(1);
        let victim = self.buckets[idx]
            .as_ref()
            .expect("counter ≥ 1 implies occupied");
        let victim_key = victim.key.clone();
        let victim_hints = victim.hints;
        let others = self.locate_copies(&victim_key, victim_hints, vcount, Some(idx));
        debug_assert_eq!(others.len(), vcount as usize - 1);
        self.meter.onchip_write(others.len() as u64);
        for &o in &others {
            self.counters.set(o, vcount - 1);
            // Keep the caller's cached view of shared candidates fresh.
            for i in 0..self.d {
                if cands[i] == o {
                    cvals[i] = vcount - 1;
                }
            }
        }
    }

    /// Locate the live copies of `key`, which has exactly `count` copies,
    /// excluding `exclude` (the copy being overwritten) when given.
    ///
    /// All copies sit in candidates flagged by the creation-time hint
    /// bitmap whose counter equals `count`; when more positions match
    /// than copies exist (a stale hint whose new occupant coincidentally
    /// shares the counter value), the extras are resolved with
    /// verification reads.
    fn locate_copies(&self, key: &K, hints: u8, count: u8, exclude: Option<usize>) -> Vec<usize> {
        let cands = self.candidates(key);
        self.meter.onchip_read(self.d as u64);
        let needed = count as usize - exclude.is_some() as usize;
        let matches: Vec<usize> = (0..self.d)
            .filter(|&i| hints >> i & 1 == 1)
            .map(|i| cands[i])
            .filter(|&c| Some(c) != exclude && self.counters.get(c) == count)
            .collect();
        debug_assert!(matches.len() >= needed, "copies must be among matches");
        if matches.len() == needed {
            return matches;
        }
        // Ambiguous: verify contents until the remainder is forced.
        let mut confirmed = Vec::with_capacity(needed);
        for (pos, &m) in matches.iter().enumerate() {
            if confirmed.len() == needed {
                break;
            }
            if matches.len() - pos == needed - confirmed.len() {
                confirmed.extend_from_slice(&matches[pos..]);
                break;
            }
            self.meter.verify_read(1);
            if self.buckets[m].as_ref().is_some_and(|e| e.key == *key) {
                confirmed.push(m);
            }
        }
        debug_assert_eq!(confirmed.len(), needed);
        confirmed
    }

    /// Collision resolution (§III.D): the counters have already proven
    /// that every candidate holds a sole copy, so relocation begins
    /// immediately; each step re-applies the insertion principles for the
    /// carried item and the counters pinpoint a usable bucket the moment
    /// one exists on the walk.
    fn resolve_collision(&mut self, key: K, value: V) -> Result<InsertReport, McFull<K, V>> {
        let mut kickouts = 0u32;
        let mut carried_key = key;
        let mut carried_value = value;
        let mut prev = usize::MAX;
        loop {
            if kickouts >= self.maxloop {
                return self.stash_item(carried_key, carried_value, kickouts);
            }
            let cands = self.candidates(&carried_key);
            let victim_idx = self.pick_victim(&cands, prev);
            let hint_bit = (0..self.d)
                .find(|&i| cands[i] == victim_idx)
                .expect("victim is a candidate");
            // Swap the carried item into the victim's bucket: one read
            // (victim identity) + one write. Counter stays 1 (sole copy
            // out, sole copy in).
            self.meter.offchip_read(1);
            self.meter.offchip_write(1);
            let old = self.buckets[victim_idx]
                .replace(Entry {
                    key: carried_key,
                    value: carried_value,
                    hints: 1 << hint_bit,
                })
                .expect("victims hold sole copies");
            carried_key = old.key;
            carried_value = old.value;
            prev = victim_idx;
            kickouts += 1;
            // Try to settle the evicted item by the normal principles.
            let cands = self.candidates(&carried_key);
            let cvals = self.read_counters(&cands);
            if let Some(_copies) = self.try_place(&carried_key, &carried_value, &cands, &cvals) {
                self.distinct += 1;
                return Ok(InsertReport {
                    outcome: InsertOutcome::Placed,
                    kickouts,
                    collision: true,
                    copies_written: _copies,
                });
            }
        }
    }

    /// Choose the bucket to evict from among `cands`, excluding `prev`.
    fn pick_victim(&mut self, cands: &[usize; MAX_D], prev: usize) -> usize {
        match self.resolution {
            ResolutionPolicy::RandomWalk => loop {
                let i = self.rng.next_below(self.d as u64) as usize;
                if cands[i] != prev {
                    return cands[i];
                }
            },
            ResolutionPolicy::MinCounter => {
                let hist = self.kick_history.as_mut().expect("policy has history");
                self.meter.onchip_read(self.d as u64);
                let mut best: Vec<usize> = Vec::with_capacity(self.d);
                let mut best_val = u8::MAX;
                for i in 0..self.d {
                    if cands[i] == prev {
                        continue;
                    }
                    let h = hist[cands[i]];
                    match h.cmp(&best_val) {
                        std::cmp::Ordering::Less => {
                            best_val = h;
                            best.clear();
                            best.push(cands[i]);
                        }
                        std::cmp::Ordering::Equal => best.push(cands[i]),
                        std::cmp::Ordering::Greater => {}
                    }
                }
                let pick = best[self.rng.next_below(best.len() as u64) as usize];
                let hist = self.kick_history.as_mut().unwrap();
                hist[pick] = (hist[pick] + 1).min(31); // 5-bit saturating
                self.meter.onchip_write(1);
                pick
            }
        }
    }

    /// Stash a failed item and raise the flags of its candidates
    /// (§III.E): d posted flag writes.
    fn stash_item(
        &mut self,
        key: K,
        value: V,
        kickouts: u32,
    ) -> Result<InsertReport, McFull<K, V>> {
        let cands = self.candidates(&key);
        let report = InsertReport {
            outcome: InsertOutcome::Stashed,
            kickouts,
            collision: true,
            copies_written: 0,
        };
        match self.stash.push(key, value, &self.meter) {
            Ok(()) => {
                self.meter.offchip_write(self.d as u64);
                for &c in cands.iter().take(self.d) {
                    self.flags[c] = true;
                }
                Ok(report)
            }
            Err((key, value)) => Err(McFull {
                evicted: (key, value),
                report: InsertReport {
                    outcome: InsertOutcome::Failed,
                    ..report
                },
            }),
        }
    }

    /// If `key` exists, rewrite the value of every copy (and/or the stash
    /// entry) and return an `Updated` report.
    fn try_update(&mut self, key: &K, value: &V) -> Option<InsertReport> {
        let found = self.probe_for_copies(key);
        match found {
            ProbeResult::Found { locations, .. } => {
                self.meter.offchip_write(locations.len() as u64);
                for &l in &locations {
                    let hints = self.buckets[l].as_ref().expect("copy occupied").hints;
                    self.buckets[l] = Some(Entry {
                        key: key.clone(),
                        value: value.clone(),
                        hints,
                    });
                }
                Some(InsertReport {
                    outcome: InsertOutcome::Updated,
                    kickouts: 0,
                    collision: false,
                    copies_written: locations.len() as u8,
                })
            }
            ProbeResult::Miss { check_stash } => {
                if check_stash {
                    if let Some(v) = self.stash_update(key, value) {
                        return Some(v);
                    }
                }
                None
            }
        }
    }

    fn stash_update(&mut self, key: &K, value: &V) -> Option<InsertReport> {
        // Linear/hashed stash: remove + re-push keeps the metering honest.
        let _old = self.stash.remove(key, &self.meter)?;
        self.stash
            .push(key.clone(), value.clone(), &self.meter)
            .ok()
            .expect("stash accepted this key before");
        Some(InsertReport {
            outcome: InsertOutcome::Updated,
            kickouts: 0,
            collision: false,
            copies_written: 0,
        })
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    /// Look up `key` using the partition-pruned probe (§III.B.2) and the
    /// stash screening rules (§III.E–F).
    pub fn get(&self, key: &K) -> Option<&V> {
        match self.probe_for_first(key) {
            FirstProbe::Found(idx) => self.buckets[idx].as_ref().map(|e| &e.value),
            FirstProbe::Miss { check_stash } => {
                if check_stash {
                    self.stash.get(key, &self.meter)
                } else {
                    None
                }
            }
        }
    }

    /// Whether `key` is stored (main table or stash).
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Lookup **without** the partition-pruning rules 2–3: every
    /// non-empty candidate is probed in order, like a single-copy table
    /// would. Rule 1 (the Bloom shortcut) and stash screening still
    /// apply. Exists for the pruning ablation benchmark; results are
    /// identical to [`McCuckoo::get`], only the access counts differ.
    pub fn get_unpruned(&self, key: &K) -> Option<&V> {
        let cands = self.candidates(key);
        let cvals = self.read_counters(&cands);
        if self.rule1_miss(&cands, &cvals) {
            return None;
        }
        let mut visited_flags_ok = true;
        for i in 0..self.d {
            if cvals[i] == 0 {
                continue;
            }
            let p = cands[i];
            self.meter.offchip_read(1);
            visited_flags_ok &= self.flags[p];
            if self.buckets[p].as_ref().is_some_and(|e| e.key == *key) {
                return self.buckets[p].as_ref().map(|e| &e.value);
            }
        }
        if self.stash_screen(&cvals, visited_flags_ok) {
            self.stash.get(key, &self.meter)
        } else {
            None
        }
    }

    /// Number of live copies of `key` in the main table (0 if absent or
    /// stashed). Unmetered diagnostic.
    pub fn copy_count(&self, key: &K) -> u8 {
        self.raw_find(key).map_or(0, |idx| self.counters.get(idx))
    }

    /// Shared probe: find the first bucket holding `key`, or decide the
    /// miss path. Collects visited flags for stash screening.
    fn probe_for_first(&self, key: &K) -> FirstProbe {
        let cands = self.candidates(key);
        let cvals = self.read_counters(&cands);
        // Lookup rule 1 (mode-dependent).
        if self.rule1_miss(&cands, &cvals) {
            return FirstProbe::Miss { check_stash: false };
        }
        let mut visited_flags_ok = true;
        // Partitions in decreasing counter value.
        for v in (1..=self.d as u8).rev() {
            let positions: Vec<usize> = (0..self.d)
                .filter(|&i| cvals[i] == v)
                .map(|i| cands[i])
                .collect();
            if positions.len() < v as usize {
                continue; // rule 2: impossible partition
            }
            let budget = positions.len() - v as usize + 1; // rule 3
            for &p in positions.iter().take(budget) {
                self.meter.offchip_read(1);
                visited_flags_ok &= self.flags[p];
                if self.buckets[p].as_ref().is_some_and(|e| e.key == *key) {
                    return FirstProbe::Found(p);
                }
            }
        }
        FirstProbe::Miss {
            check_stash: self.stash_screen(&cvals, visited_flags_ok),
        }
    }

    /// Lookup rule 1: a definitely-empty candidate proves absence.
    fn rule1_miss(&self, cands: &[usize; MAX_D], cvals: &[u8; MAX_D]) -> bool {
        match self.deletion {
            DeletionMode::Disabled => (0..self.d).any(|i| cvals[i] == 0),
            // A zero may be a deletion scar: rule 1 is unsound.
            DeletionMode::Reset => false,
            // Tombstones read as non-zero for lookups.
            DeletionMode::Tombstone => {
                (0..self.d).any(|i| cvals[i] == 0 && !self.counters.is_tombstone(cands[i]))
            }
        }
    }

    /// Stash screening (§III.E–F): decide whether a failed main-table
    /// lookup needs to consult the stash.
    fn stash_screen(&self, cvals: &[u8; MAX_D], visited_flags_ok: bool) -> bool {
        if !self.stash.enabled() || self.stash.is_empty() {
            return false;
        }
        match self.deletion {
            // Counters never increase while deletions are disabled, and a
            // stashed item saw all-ones; any other value excludes it.
            // All-ones ⇒ every candidate was visited, so the flags are
            // all known.
            DeletionMode::Disabled => (0..self.d).all(|i| cvals[i] == 1) && visited_flags_ok,
            // With deletions, re-occupied buckets may carry any counter;
            // only the flags of actually-visited buckets can veto
            // (§III.F), at the price of more false positives.
            DeletionMode::Reset | DeletionMode::Tombstone => visited_flags_ok,
        }
    }

    // ------------------------------------------------------------------
    // Deletion
    // ------------------------------------------------------------------

    /// Remove `key`, returning its value. Copies are erased by counter
    /// updates only — **zero off-chip writes** (§III.B.3).
    ///
    /// # Panics
    /// Panics if the table was configured with
    /// [`DeletionMode::Disabled`].
    pub fn remove(&mut self, key: &K) -> Option<V> {
        assert!(
            self.deletion != DeletionMode::Disabled,
            "this table was configured with DeletionMode::Disabled"
        );
        let out = match self.probe_for_copies(key) {
            ProbeResult::Found { locations, first } => {
                self.meter.onchip_write(locations.len() as u64);
                #[cfg(feature = "testhooks")]
                let skip_first = crate::testhooks::take_skip_counter_reset();
                #[cfg(not(feature = "testhooks"))]
                let skip_first = false;
                for (i, &l) in locations.iter().enumerate() {
                    if skip_first && i == 0 {
                        continue;
                    }
                    match self.deletion {
                        DeletionMode::Reset => self.counters.set(l, 0),
                        DeletionMode::Tombstone => self.counters.set_tombstone(l),
                        DeletionMode::Disabled => unreachable!(),
                    }
                }
                // Physical reclamation: the modelled system leaves stale
                // bytes to be overwritten later; dropping them here costs
                // no modelled write and keeps the `counter = 0 ⇔ vacant`
                // invariant tight.
                let mut value = None;
                for &l in &locations {
                    let e = self.buckets[l].take();
                    if l == first {
                        value = e.map(|e| e.value);
                    }
                }
                self.distinct -= 1;
                value
            }
            ProbeResult::Miss { check_stash } => {
                if check_stash {
                    self.stash.remove(key, &self.meter)
                } else {
                    None
                }
            }
        };
        self.check_paranoid();
        out
    }

    /// Deletion/update probe: locate **all** copies of `key` (deletion
    /// principles, §III.B.3). Within the matching partition, probing may
    /// stop early once the remaining copies are pinned by counting.
    fn probe_for_copies(&self, key: &K) -> ProbeResult {
        let cands = self.candidates(key);
        let cvals = self.read_counters(&cands);
        if self.rule1_miss(&cands, &cvals) {
            return ProbeResult::Miss { check_stash: false };
        }
        let mut visited_flags_ok = true;
        for v in (1..=self.d as u8).rev() {
            let positions: Vec<usize> = (0..self.d)
                .filter(|&i| cvals[i] == v)
                .map(|i| cands[i])
                .collect();
            if positions.len() < v as usize {
                continue;
            }
            let budget = positions.len() - v as usize + 1;
            let mut found: Vec<usize> = Vec::new();
            let mut first: Option<usize> = None;
            for (probed, &p) in positions.iter().enumerate() {
                let remaining_positions = positions.len() - probed;
                let remaining_needed = if found.is_empty() {
                    // Not yet found: only the probe budget limits us.
                    if probed >= budget {
                        break;
                    }
                    v as usize
                } else {
                    v as usize - found.len()
                };
                if remaining_needed == 0 {
                    break;
                }
                if !found.is_empty() && remaining_needed == remaining_positions {
                    // The rest are forced to be copies: no reads needed.
                    found.extend_from_slice(&positions[probed..]);
                    break;
                }
                self.meter.offchip_read(1);
                visited_flags_ok &= self.flags[p];
                if self.buckets[p].as_ref().is_some_and(|e| e.key == *key) {
                    if first.is_none() {
                        first = Some(p);
                    }
                    found.push(p);
                }
            }
            if let Some(first) = first {
                debug_assert_eq!(found.len(), v as usize, "all copies located");
                return ProbeResult::Found {
                    locations: found,
                    first,
                };
            }
        }
        ProbeResult::Miss {
            check_stash: self.stash_screen(&cvals, visited_flags_ok),
        }
    }

    // ------------------------------------------------------------------
    // Stash maintenance
    // ------------------------------------------------------------------

    /// Re-synchronise the stash flags (§III.F): clear every flag, then
    /// re-insert all stashed items (which either settle in the table or
    /// re-stash and re-raise their flags). Returns how many items left
    /// the stash. The bulk flag clear is metered as one write per bucket.
    pub fn refresh_stash(&mut self) -> usize {
        self.meter.offchip_write(self.flags.len() as u64);
        self.flags.fill(false);
        let items = self.stash.drain_all();
        let before = items.len();
        for (k, v) in items {
            // insert_new: stash keys are never in the main table.
            let _ = self.insert_new(k, v);
        }
        before - self.stash.len()
    }

    // ------------------------------------------------------------------
    // Iteration & diagnostics (unmetered)
    // ------------------------------------------------------------------

    /// Iterate distinct `(key, value)` pairs (main table, then stash).
    /// Unmetered: iteration is a host-side maintenance operation.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(move |(idx, b)| {
                let e = b.as_ref()?;
                // Emit an item only at its smallest copy location.
                let locs = self.raw_copy_locations(&e.key);
                (locs.iter().min() == Some(&idx)).then_some((&e.key, &e.value))
            })
            .chain(self.stash.iter())
    }

    /// Unmetered: the first candidate bucket holding `key`, if any.
    fn raw_find(&self, key: &K) -> Option<usize> {
        let cands = self.candidates(key);
        (0..self.d)
            .map(|i| cands[i])
            .find(|&c| self.buckets[c].as_ref().is_some_and(|e| e.key == *key))
    }

    fn raw_in_stash(&self, key: &K) -> bool {
        self.stash.iter().any(|(k, _)| k == key)
    }

    /// Unmetered: every bucket holding `key`.
    fn raw_copy_locations(&self, key: &K) -> Vec<usize> {
        let cands = self.candidates(key);
        (0..self.d)
            .map(|i| cands[i])
            .filter(|&c| self.buckets[c].as_ref().is_some_and(|e| e.key == *key))
            .collect()
    }

    /// Exhaustive structural validation; returns the first violation as a
    /// human-readable message. Used pervasively by the tests and after
    /// every mutation under the `paranoid` feature.
    pub fn check_invariants(&self) -> Result<(), String> {
        let total = self.buckets.len();
        if self.counters.len() != total || self.flags.len() != total {
            return Err("length mismatch between planes".into());
        }
        let mut distinct_seen = 0usize;
        for idx in 0..total {
            let c = self.counters.get(idx);
            match (&self.buckets[idx], c) {
                (None, 0) => {}
                (None, c) => return Err(format!("bucket {idx}: vacant but counter {c}")),
                (Some(_), 0) => {
                    return Err(format!("bucket {idx}: occupied but counter 0"));
                }
                (Some(e), c) => {
                    let cands = self.candidates(&e.key);
                    let Some(pos) = (0..self.d).find(|&i| cands[i] == idx) else {
                        return Err(format!("bucket {idx}: occupant not hashed here"));
                    };
                    if e.hints >> pos & 1 != 1 {
                        return Err(format!("bucket {idx}: self-hint bit missing"));
                    }
                    let locs = self.raw_copy_locations(&e.key);
                    if locs.len() != c as usize {
                        return Err(format!(
                            "bucket {idx}: counter {c} but {} live copies",
                            locs.len()
                        ));
                    }
                    for &l in &locs {
                        if self.counters.get(l) != c {
                            return Err(format!(
                                "bucket {idx}: copy at {l} has counter {} ≠ {c}",
                                self.counters.get(l)
                            ));
                        }
                    }
                    if locs.iter().min() == Some(&idx) {
                        distinct_seen += 1;
                    }
                }
            }
        }
        if distinct_seen != self.distinct {
            return Err(format!(
                "distinct count {} but {} found",
                self.distinct, distinct_seen
            ));
        }
        for (k, _) in self.stash.iter() {
            if self.raw_find(k).is_some() {
                return Err("stash item also present in main table".into());
            }
        }
        Ok(())
    }

    #[inline]
    fn check_paranoid(&self) {
        #[cfg(feature = "paranoid")]
        if let Err(e) = self.check_invariants() {
            panic!("invariant violated: {e}");
        }
    }
}

/// Result of the first-hit probe.
enum FirstProbe {
    Found(usize),
    Miss { check_stash: bool },
}

/// Result of the all-copies probe.
enum ProbeResult {
    Found { locations: Vec<usize>, first: usize },
    Miss { check_stash: bool },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StashPolicy;
    use std::collections::HashMap;
    use workloads::UniqueKeys;

    fn paper_table(n: usize, seed: u64) -> McCuckoo<u64, u64> {
        McCuckoo::new(McConfig::paper(n, seed))
    }

    #[test]
    fn first_insert_occupies_all_candidates() {
        let mut t = paper_table(64, 1);
        let r = t.insert_new(42, 420).unwrap();
        assert_eq!(r.copies_written, 3);
        assert!(!r.collision);
        assert_eq!(t.copy_count(&42), 3);
        assert_eq!(t.get(&42), Some(&420));
        t.check_invariants().unwrap();
    }

    #[test]
    fn lookup_rule1_costs_zero_offchip_reads() {
        // Bloom behaviour: an absent key whose candidates include an
        // empty bucket is rejected without touching off-chip memory.
        let mut t = paper_table(1024, 2);
        for k in 0u64..10 {
            t.insert_new(k, k).unwrap();
        }
        let before = t.meter().snapshot();
        // At this load nearly every absent key hits an empty candidate.
        let mut zero_read_misses = 0;
        let keys = UniqueKeys::new(3);
        for j in 0..100 {
            let pre = t.meter().snapshot();
            assert_eq!(t.get(&keys.absent_key(j)), None);
            if (t.meter().snapshot() - pre).offchip_reads == 0 {
                zero_read_misses += 1;
            }
        }
        assert!(zero_read_misses > 90, "only {zero_read_misses} free misses");
        assert_eq!(
            (t.meter().snapshot() - before).offchip_writes,
            0,
            "lookups never write"
        );
    }

    #[test]
    fn fills_to_90_percent() {
        let n = 10_000;
        let mut t = paper_table(n, 4);
        let mut keys = UniqueKeys::new(5);
        let target = 3 * n * 90 / 100;
        for _ in 0..target {
            let k = keys.next_key();
            t.insert_new(k, k).unwrap();
        }
        assert!(t.load_ratio() > 0.89);
        assert!(
            t.stash_len() < target / 100,
            "stash {} too large",
            t.stash_len()
        );
        for k in UniqueKeys::new(5).take_vec(target) {
            assert!(t.contains(&k), "key lost");
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn no_collision_until_table_warm() {
        // Table I: McCuckoo's first real collision comes much later than
        // standard cuckoo's ~9%.
        let n = 5_000;
        let mut t = paper_table(n, 6);
        let mut keys = UniqueKeys::new(7);
        let cap = 3 * n;
        let mut first = None;
        for i in 0..cap {
            let k = keys.next_key();
            let r = t.insert_new(k, k).unwrap();
            if r.collision {
                first = Some(i as f64 / cap as f64);
                break;
            }
        }
        let load = first.expect("collision must eventually happen");
        assert!(load > 0.15, "first collision at {load}, expected > 0.15");
    }

    #[test]
    fn theorem2_redundant_write_bound() {
        // d=3: proactive redundant writes ≤ 5/6 · S over a full build-up.
        let n = 3_000;
        let mut t = paper_table(n, 8);
        let mut keys = UniqueKeys::new(9);
        let cap = 3 * n;
        for _ in 0..cap * 95 / 100 {
            let k = keys.next_key();
            let _ = t.insert_new(k, k);
        }
        let bound = (cap as f64) * 5.0 / 6.0;
        assert!(
            (t.redundant_writes() as f64) <= bound,
            "redundant writes {} exceed Theorem 2 bound {bound}",
            t.redundant_writes()
        );
    }

    #[test]
    fn update_rewrites_all_copies() {
        let mut t = paper_table(64, 10);
        t.insert(7, 70).unwrap();
        assert_eq!(t.copy_count(&7), 3);
        let r = t.insert(7, 71).unwrap();
        assert_eq!(r.outcome, InsertOutcome::Updated);
        assert_eq!(t.get(&7), Some(&71));
        assert_eq!(t.main_len(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn lookup_probe_budget_respected() {
        // With all candidates distinct values, at most S-V+1 probes per
        // partition; in aggregate a hit never costs more than d reads.
        let n = 2_000;
        let mut t = paper_table(n, 11);
        let mut keys = UniqueKeys::new(12);
        let inserted: Vec<u64> = (0..3 * n * 80 / 100)
            .map(|_| {
                let k = keys.next_key();
                t.insert_new(k, k).unwrap();
                k
            })
            .collect();
        for k in &inserted {
            let before = t.meter().snapshot();
            assert_eq!(t.get(k), Some(k));
            let delta = t.meter().snapshot() - before;
            assert!(delta.offchip_reads <= 3, "{} reads", delta.offchip_reads);
        }
    }

    #[test]
    fn deletion_reset_mode_roundtrip_and_zero_writes() {
        let n = 2_000;
        let mut t: McCuckoo<u64, u64> = McCuckoo::new(McConfig::paper_with_deletion(n, 13));
        let mut keys = UniqueKeys::new(14);
        let inserted: Vec<u64> = (0..3 * n / 2)
            .map(|_| {
                let k = keys.next_key();
                t.insert_new(k, k + 1).unwrap();
                k
            })
            .collect();
        let before = t.meter().snapshot();
        for k in &inserted {
            assert_eq!(t.remove(k), Some(k + 1));
        }
        let delta = t.meter().snapshot() - before;
        assert_eq!(delta.offchip_writes, 0, "deletion must not write off-chip");
        assert!(t.is_empty());
        for k in &inserted {
            assert_eq!(t.get(k), None);
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn deletion_tombstone_mode_keeps_rule1_sound() {
        let n = 512;
        let mut t: McCuckoo<u64, u64> =
            McCuckoo::new(McConfig::paper(n, 15).with_deletion(DeletionMode::Tombstone));
        let mut keys = UniqueKeys::new(16);
        let ks = keys.take_vec(500);
        for &k in &ks {
            t.insert_new(k, k).unwrap();
        }
        for &k in ks.iter().take(250) {
            assert_eq!(t.remove(&k), Some(k));
        }
        // Deleted keys gone, survivors intact.
        for &k in ks.iter().take(250) {
            assert_eq!(t.get(&k), None);
        }
        for &k in ks.iter().skip(250) {
            assert_eq!(t.get(&k), Some(&k));
        }
        // Freed buckets are reusable.
        let more = keys.take_vec(200);
        for &k in &more {
            t.insert_new(k, k).unwrap();
        }
        for &k in &more {
            assert_eq!(t.get(&k), Some(&k));
        }
        t.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "DeletionMode::Disabled")]
    fn remove_panics_when_disabled() {
        let mut t = paper_table(16, 17);
        t.insert_new(1, 1).unwrap();
        let _ = t.remove(&1);
    }

    #[test]
    fn stash_absorbs_overflow_and_screening_works() {
        // Small table driven past capacity: failures land in the stash
        // and remain findable; absent-key lookups rarely visit the stash.
        let n = 200;
        let mut t: McCuckoo<u64, u64> = McCuckoo::new(McConfig::paper(n, 18).with_maxloop(50));
        let mut keys = UniqueKeys::new(19);
        let total = 3 * n; // 100% load
        let inserted: Vec<u64> = (0..total)
            .map(|_| {
                let k = keys.next_key();
                t.insert_new(k, k).unwrap();
                k
            })
            .collect();
        assert!(t.stash_len() > 0, "100% load must overflow");
        for k in &inserted {
            assert_eq!(t.get(k), Some(k), "stashed or placed, key must be found");
        }
        // Screening: absent keys must rarely reach the stash.
        let before = t.meter().snapshot();
        for j in 0..1000 {
            assert_eq!(t.get(&keys.absent_key(j)), None);
        }
        let delta = t.meter().snapshot() - before;
        assert!(
            delta.stash_visits <= 50,
            "{} of 1000 absent lookups visited the stash",
            delta.stash_visits
        );
        t.check_invariants().unwrap();
    }

    #[test]
    fn refresh_stash_drains_after_deletions() {
        let n = 150;
        let mut t: McCuckoo<u64, u64> = McCuckoo::new(
            McConfig::paper(n, 20)
                .with_maxloop(30)
                .with_deletion(DeletionMode::Reset),
        );
        let mut keys = UniqueKeys::new(21);
        let inserted: Vec<u64> = (0..3 * n)
            .map(|_| {
                let k = keys.next_key();
                t.insert_new(k, k).unwrap();
                k
            })
            .collect();
        assert!(t.stash_len() > 0);
        // Delete a third of the table, then refresh.
        for k in inserted.iter().take(n) {
            t.remove(k);
        }
        let drained = t.refresh_stash();
        assert!(drained > 0, "free space must drain the stash");
        for k in inserted.iter().skip(n) {
            assert!(t.contains(k));
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn differential_against_hashmap_with_deletions() {
        let mut t: McCuckoo<u64, u64> = McCuckoo::new(McConfig::paper_with_deletion(2_048, 22));
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut keys = UniqueKeys::new(23);
        let mut s = hash_kit::SplitMix64::new(24);
        let mut live: Vec<u64> = Vec::new();
        for step in 0..40_000u64 {
            match s.next_below(10) {
                0..=4 => {
                    let k = keys.next_key();
                    t.insert_new(k, k ^ step).unwrap();
                    model.insert(k, k ^ step);
                    live.push(k);
                }
                5..=6 if !live.is_empty() => {
                    let i = s.next_below(live.len() as u64) as usize;
                    assert_eq!(t.get(&live[i]), model.get(&live[i]));
                }
                7..=8 if !live.is_empty() => {
                    let i = s.next_below(live.len() as u64) as usize;
                    let k = live.swap_remove(i);
                    assert_eq!(t.remove(&k), model.remove(&k));
                }
                _ => {
                    let k = keys.absent_key(s.next_below(1 << 20));
                    assert_eq!(t.get(&k), None);
                }
            }
            if step % 10_000 == 0 {
                t.check_invariants().unwrap();
            }
        }
        assert_eq!(t.len(), model.len());
        for (k, v) in &model {
            assert_eq!(t.get(k), Some(v), "key {k}");
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn upsert_differential_with_value_churn() {
        let mut t: McCuckoo<u64, u64> = McCuckoo::new(McConfig::paper(1_024, 25));
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut keys = UniqueKeys::new(26);
        let universe: Vec<u64> = keys.take_vec(1_500);
        let mut s = hash_kit::SplitMix64::new(27);
        for step in 0..20_000u64 {
            let k = universe[s.next_below(universe.len() as u64) as usize];
            if s.next_below(2) == 0 {
                t.insert(k, step).unwrap();
                model.insert(k, step);
            } else {
                assert_eq!(t.get(&k), model.get(&k));
            }
        }
        for (k, v) in &model {
            assert_eq!(t.get(k), Some(v));
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn mincounter_policy_fills_table() {
        let n = 3_000;
        let mut t: McCuckoo<u64, u64> =
            McCuckoo::new(McConfig::paper(n, 28).with_resolution(ResolutionPolicy::MinCounter));
        let mut keys = UniqueKeys::new(29);
        let target = 3 * n * 88 / 100;
        for _ in 0..target {
            let k = keys.next_key();
            t.insert_new(k, k).unwrap();
        }
        for k in UniqueKeys::new(29).take_vec(target) {
            assert!(t.contains(&k));
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn hashed_stash_policy_works_end_to_end() {
        let n = 150;
        let mut t: McCuckoo<u64, u64> = McCuckoo::new(
            McConfig::paper(n, 30)
                .with_maxloop(30)
                .with_stash(StashPolicy::Hashed),
        );
        let mut keys = UniqueKeys::new(31);
        let inserted: Vec<u64> = (0..3 * n)
            .map(|_| {
                let k = keys.next_key();
                t.insert_new(k, k).unwrap();
                k
            })
            .collect();
        assert!(t.stash_len() > 0);
        for k in &inserted {
            assert!(t.contains(k));
        }
    }

    #[test]
    fn no_stash_policy_surfaces_failures() {
        let n = 32;
        let mut t: McCuckoo<u64, u64> = McCuckoo::new(
            McConfig::paper(n, 32)
                .with_maxloop(10)
                .with_stash(StashPolicy::None),
        );
        let mut keys = UniqueKeys::new(33);
        let mut failed = false;
        for _ in 0..3 * n + 10 {
            let k = keys.next_key();
            if let Err(full) = t.insert_new(k, k) {
                assert_eq!(full.report.outcome, InsertOutcome::Failed);
                failed = true;
                break;
            }
        }
        assert!(failed, "overfilled table without stash must fail");
        t.check_invariants().unwrap();
    }

    #[test]
    fn iter_yields_each_distinct_key_once() {
        let mut t = paper_table(256, 34);
        let mut keys = UniqueKeys::new(35);
        let ks = keys.take_vec(300);
        for &k in &ks {
            t.insert_new(k, k.wrapping_mul(2)).unwrap();
        }
        let mut got: Vec<u64> = t.iter().map(|(k, _)| *k).collect();
        got.sort_unstable();
        let mut want = ks.clone();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn d2_and_d4_configurations_work() {
        for d in [2usize, 4] {
            let mut t: McCuckoo<u64, u64> = McCuckoo::new(McConfig::paper(512, 36).with_d(d));
            let mut keys = UniqueKeys::new(37 + d as u64);
            let target = d * 512 / 2; // 50% load: safe for d=2
            for _ in 0..target {
                let k = keys.next_key();
                t.insert_new(k, k).unwrap();
            }
            for k in UniqueKeys::new(37 + d as u64).take_vec(target) {
                assert!(t.contains(&k), "d={d}");
            }
            t.check_invariants().unwrap();
        }
    }

    #[test]
    fn counters_form_a_bloom_filter() {
        // Paper: "if we look at the on-chip counters as zero or non-zero,
        // they actually form a standard Bloom filter" — no false
        // negatives ever.
        let mut t = paper_table(1_024, 38);
        let mut keys = UniqueKeys::new(39);
        let ks = keys.take_vec(2_000);
        for &k in &ks {
            t.insert_new(k, k).unwrap();
        }
        for &k in &ks {
            // Every candidate counter of a present key must be non-zero.
            let cands = t.candidates(&k);
            for &c in cands.iter().take(t.d()) {
                assert!(t.counters.get(c) > 0);
            }
        }
    }

    #[test]
    fn string_keys_work() {
        let mut t: McCuckoo<String, u32> = McCuckoo::new(McConfig::paper(64, 40));
        t.insert("alpha".to_string(), 1).unwrap();
        t.insert("beta".to_string(), 2).unwrap();
        assert_eq!(t.get(&"alpha".to_string()), Some(&1));
        assert_eq!(t.get(&"gamma".to_string()), None);
        t.check_invariants().unwrap();
    }
}
