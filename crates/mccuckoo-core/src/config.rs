//! Configuration of McCuckoo tables.

use hash_kit::FamilyKind;
use jsonlite::{impl_json_enum, impl_json_struct};

/// How deletions are handled (§III.B.3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeletionMode {
    /// Deletions are not supported; [`crate::McCuckoo::remove`] panics.
    /// In exchange, lookup rule 1 applies in full: *any* candidate
    /// counter of 0 proves the key absent without touching off-chip
    /// memory (the counters form a Bloom filter).
    #[default]
    Disabled,
    /// Solution 1: deleting resets the copies' counters to 0. Lookup
    /// rule 1 must then be skipped (a zero may be a deletion scar), but
    /// the remaining pruning rules still apply and freed buckets are
    /// reusable immediately.
    Reset,
    /// Solution 2: deleted buckets are marked with a tombstone that is
    /// treated as *zero for insertion but non-zero for lookups*, keeping
    /// rule 1 sound at the cost of gradually fading filter power. Suited
    /// to workloads "where deletions rarely happen".
    Tombstone,
}

/// Which item is evicted when a real collision occurs (every candidate
/// holds a sole copy). The counters already pinpoint *whether* a free or
/// redundant bucket exists; these policies only decide the blind step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResolutionPolicy {
    /// Uniformly random victim, never stepping straight back (§III.D;
    /// the paper's choice).
    #[default]
    RandomWalk,
    /// MinCounter (paper ref \[17\]): per-bucket 5-bit kick-history
    /// counters, evict from the least-kicked ("coldest") bucket, ties
    /// broken randomly.
    MinCounter,
}

/// How an insertion chooses and traverses displacement chains when every
/// candidate bucket holds a sole copy (a *real* collision). Orthogonal to
/// [`ResolutionPolicy`], which only picks the blind victim inside the
/// random-walk policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KickPolicyKind {
    /// The paper's mutate-as-you-walk random walk (§III.D), optionally
    /// refined by [`ResolutionPolicy::MinCounter`]. `maxloop` counts
    /// *walk hops*. A failed walk leaves its relocations in place and
    /// stashes the last carried item.
    #[default]
    RandomWalk,
    /// Breadth-first search over the eviction tree: finds a *shortest*
    /// displacement chain before moving anything, so a failed insert is
    /// naturally a strict no-op. `maxloop` counts *expanded nodes*.
    Bfs,
    /// Depth-bounded bubbling per "Efficient d-ary Cuckoo Hashing at
    /// High Load Factors by Bubbling Up" (arXiv 2501.02312): recursive
    /// eviction with a small depth bound, planned up front like BFS.
    /// `maxloop` counts *visited nodes*; the depth bound is derived
    /// (≈ log₂ maxloop, clamped to 2..=8).
    Bubble,
}

impl KickPolicyKind {
    /// Stable lowercase label used in stats, CSV output, and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            KickPolicyKind::RandomWalk => "random-walk",
            KickPolicyKind::Bfs => "bfs",
            KickPolicyKind::Bubble => "bubble",
        }
    }

    /// All policies, in sweep order.
    pub const ALL: [KickPolicyKind; 3] = [
        KickPolicyKind::RandomWalk,
        KickPolicyKind::Bfs,
        KickPolicyKind::Bubble,
    ];
}

/// Stash configuration (§III.E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StashPolicy {
    /// No stash: a failed insertion reports [`crate::single::McFull`].
    #[default]
    None,
    /// Unbounded off-chip stash with linear scan. McCuckoo's counter +
    /// flag pre-screening makes visits so rare that scan cost is
    /// irrelevant to the figures; kept for clarity.
    Linear,
    /// Off-chip stash organised as a small open-addressing hash ("more
    /// advanced hash techniques to construct the stash, so that checking
    /// it can be finished with minimal access").
    Hashed,
}

/// Full configuration of a [`crate::McCuckoo`] / input to the blocked
/// variant's [`crate::BlockedConfig`].
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Number of hash functions / sub-tables (the paper uses 3; 2..=4
    /// supported).
    pub d: usize,
    /// Buckets per sub-table.
    pub buckets_per_table: usize,
    /// Kick-out budget before an insertion is declared failed.
    pub maxloop: u32,
    /// Collision resolution policy.
    pub resolution: ResolutionPolicy,
    /// Kick-walk strategy for real collisions.
    pub kick: KickPolicyKind,
    /// Deletion handling.
    pub deletion: DeletionMode,
    /// Stash behaviour.
    pub stash: StashPolicy,
    /// Hash family construction.
    pub family: FamilyKind,
    /// Master seed.
    pub seed: u64,
}

impl_json_enum!(DeletionMode {
    Disabled,
    Reset,
    Tombstone
});
impl_json_enum!(ResolutionPolicy {
    RandomWalk,
    MinCounter
});
impl_json_enum!(KickPolicyKind {
    RandomWalk,
    Bfs,
    Bubble
});
impl_json_enum!(StashPolicy {
    None,
    Linear,
    Hashed
});
impl_json_struct!(McConfig {
    d,
    buckets_per_table,
    maxloop,
    resolution,
    kick,
    deletion,
    stash,
    family,
    seed,
});

impl McConfig {
    /// The paper's software configuration: d = 3, random-walk, maxloop
    /// 500, off-chip stash, deletions disabled (the insertion/lookup
    /// experiments never delete).
    pub fn paper(buckets_per_table: usize, seed: u64) -> Self {
        Self {
            d: 3,
            buckets_per_table,
            maxloop: 500,
            resolution: ResolutionPolicy::RandomWalk,
            kick: KickPolicyKind::RandomWalk,
            deletion: DeletionMode::Disabled,
            stash: StashPolicy::Linear,
            family: FamilyKind::Independent,
            seed,
        }
    }

    /// Paper configuration with deletions enabled in `Reset` mode
    /// (used by the deletion experiments, Fig. 14).
    pub fn paper_with_deletion(buckets_per_table: usize, seed: u64) -> Self {
        Self {
            deletion: DeletionMode::Reset,
            ..Self::paper(buckets_per_table, seed)
        }
    }

    /// Builder-style setters.
    pub fn with_d(mut self, d: usize) -> Self {
        self.d = d;
        self
    }

    /// Set the kick-out budget.
    pub fn with_maxloop(mut self, maxloop: u32) -> Self {
        self.maxloop = maxloop;
        self
    }

    /// Set the deletion mode.
    pub fn with_deletion(mut self, mode: DeletionMode) -> Self {
        self.deletion = mode;
        self
    }

    /// Set the stash policy.
    pub fn with_stash(mut self, stash: StashPolicy) -> Self {
        self.stash = stash;
        self
    }

    /// Set the resolution policy.
    pub fn with_resolution(mut self, resolution: ResolutionPolicy) -> Self {
        self.resolution = resolution;
        self
    }

    /// Set the kick-walk policy.
    pub fn with_kick_policy(mut self, kick: KickPolicyKind) -> Self {
        self.kick = kick;
        self
    }

    /// Set the hash family.
    pub fn with_family(mut self, family: FamilyKind) -> Self {
        self.family = family;
        self
    }

    /// Validate structural limits.
    ///
    /// # Panics
    /// Panics if `d` is outside `2..=4` or the table is empty.
    pub(crate) fn validate(&self) {
        assert!(
            (2..=4).contains(&self.d),
            "McCuckoo supports 2..=4 hash functions (paper uses 3), got {}",
            self.d
        );
        assert!(self.buckets_per_table > 0, "table must be non-empty");
        assert!(self.maxloop > 0, "maxloop must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = McConfig::paper(100, 1);
        assert_eq!(c.d, 3);
        assert_eq!(c.maxloop, 500);
        assert_eq!(c.resolution, ResolutionPolicy::RandomWalk);
        assert_eq!(c.kick, KickPolicyKind::RandomWalk);
        assert_eq!(c.deletion, DeletionMode::Disabled);
        assert_eq!(c.stash, StashPolicy::Linear);
        c.validate();
    }

    #[test]
    fn builder_setters_chain() {
        let c = McConfig::paper(10, 2)
            .with_d(4)
            .with_maxloop(50)
            .with_deletion(DeletionMode::Tombstone)
            .with_stash(StashPolicy::Hashed)
            .with_resolution(ResolutionPolicy::MinCounter)
            .with_kick_policy(KickPolicyKind::Bfs);
        assert_eq!(c.d, 4);
        assert_eq!(c.maxloop, 50);
        assert_eq!(c.deletion, DeletionMode::Tombstone);
        assert_eq!(c.stash, StashPolicy::Hashed);
        assert_eq!(c.resolution, ResolutionPolicy::MinCounter);
        assert_eq!(c.kick, KickPolicyKind::Bfs);
    }

    #[test]
    fn kick_policy_labels_are_stable() {
        assert_eq!(KickPolicyKind::RandomWalk.label(), "random-walk");
        assert_eq!(KickPolicyKind::Bfs.label(), "bfs");
        assert_eq!(KickPolicyKind::Bubble.label(), "bubble");
        assert_eq!(KickPolicyKind::ALL.len(), 3);
    }

    #[test]
    #[should_panic(expected = "2..=4 hash functions")]
    fn d5_rejected() {
        McConfig::paper(10, 0).with_d(5).validate();
    }

    #[test]
    #[should_panic(expected = "2..=4 hash functions")]
    fn d1_rejected() {
        McConfig::paper(10, 0).with_d(1).validate();
    }
}
