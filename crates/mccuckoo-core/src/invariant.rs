//! Structural validation.
//!
//! Every table exposes `check_invariants()`, an exhaustive validator of
//! the multi-copy bookkeeping:
//!
//! * a counter of 0 (or a tombstone) ⇔ a vacant bucket/slot;
//! * an occupied location is one of its occupant's candidates;
//! * the occupant of a location with counter `c` has exactly `c` live
//!   copies, all carrying counter `c`;
//! * the distinct-item count matches a full scan;
//! * no stashed key is simultaneously present in the main table.
//!
//! The test suites call the validator after mutation batches; the
//! `paranoid` crate feature makes every mutating operation self-check.

/// Types that can exhaustively validate their internal invariants.
pub trait Validate {
    /// Return the first violated invariant as a human-readable message.
    fn validate(&self) -> Result<(), String>;
}

impl<K: hash_kit::KeyHash + Eq + Clone, V: Clone, L: crate::engine::BucketLayout> Validate
    for crate::engine::Engine<K, V, L>
{
    fn validate(&self) -> Result<(), String> {
        self.check_invariants()
    }
}

impl<K: hash_kit::KeyHash + Eq + Copy, V: Copy> Validate for crate::ConcurrentMcCuckoo<K, V> {
    fn validate(&self) -> Result<(), String> {
        self.check_invariants()
    }
}

impl<K: hash_kit::KeyHash + Eq + Copy, V: Copy> Validate for crate::ShardedMcCuckoo<K, V> {
    fn validate(&self) -> Result<(), String> {
        self.check_invariants()
    }
}

impl<K: hash_kit::KeyHash + Eq + Clone, V> Validate for crate::MultisetIndex<K, V> {
    fn validate(&self) -> Result<(), String> {
        self.check_invariants()
    }
}
